file(REMOVE_RECURSE
  "CMakeFiles/fig10_roc_eer.dir/bench_util.cpp.o"
  "CMakeFiles/fig10_roc_eer.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig10_roc_eer.dir/fig10_roc_eer.cpp.o"
  "CMakeFiles/fig10_roc_eer.dir/fig10_roc_eer.cpp.o.d"
  "fig10_roc_eer"
  "fig10_roc_eer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_roc_eer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
