# Empty compiler generated dependencies file for fig10_roc_eer.
# This may be replaced when dependencies are built.
