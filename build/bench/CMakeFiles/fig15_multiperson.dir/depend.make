# Empty dependencies file for fig15_multiperson.
# This may be replaced when dependencies are built.
