file(REMOVE_RECURSE
  "CMakeFiles/fig15_multiperson.dir/bench_util.cpp.o"
  "CMakeFiles/fig15_multiperson.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig15_multiperson.dir/fig15_multiperson.cpp.o"
  "CMakeFiles/fig15_multiperson.dir/fig15_multiperson.cpp.o.d"
  "fig15_multiperson"
  "fig15_multiperson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_multiperson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
