# Empty compiler generated dependencies file for sec7_cross_env.
# This may be replaced when dependencies are built.
