file(REMOVE_RECURSE
  "CMakeFiles/sec7_cross_env.dir/bench_util.cpp.o"
  "CMakeFiles/sec7_cross_env.dir/bench_util.cpp.o.d"
  "CMakeFiles/sec7_cross_env.dir/sec7_cross_env.cpp.o"
  "CMakeFiles/sec7_cross_env.dir/sec7_cross_env.cpp.o.d"
  "sec7_cross_env"
  "sec7_cross_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec7_cross_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
