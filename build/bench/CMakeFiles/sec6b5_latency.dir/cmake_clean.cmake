file(REMOVE_RECURSE
  "CMakeFiles/sec6b5_latency.dir/bench_util.cpp.o"
  "CMakeFiles/sec6b5_latency.dir/bench_util.cpp.o.d"
  "CMakeFiles/sec6b5_latency.dir/sec6b5_latency.cpp.o"
  "CMakeFiles/sec6b5_latency.dir/sec6b5_latency.cpp.o.d"
  "sec6b5_latency"
  "sec6b5_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6b5_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
