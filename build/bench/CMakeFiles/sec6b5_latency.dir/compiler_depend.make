# Empty compiler generated dependencies file for sec6b5_latency.
# This may be replaced when dependencies are built.
