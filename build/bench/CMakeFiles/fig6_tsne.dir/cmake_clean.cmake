file(REMOVE_RECURSE
  "CMakeFiles/fig6_tsne.dir/bench_util.cpp.o"
  "CMakeFiles/fig6_tsne.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig6_tsne.dir/fig6_tsne.cpp.o"
  "CMakeFiles/fig6_tsne.dir/fig6_tsne.cpp.o.d"
  "fig6_tsne"
  "fig6_tsne.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_tsne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
