file(REMOVE_RECURSE
  "CMakeFiles/fig3_pointcloud_metrics.dir/bench_util.cpp.o"
  "CMakeFiles/fig3_pointcloud_metrics.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig3_pointcloud_metrics.dir/fig3_pointcloud_metrics.cpp.o"
  "CMakeFiles/fig3_pointcloud_metrics.dir/fig3_pointcloud_metrics.cpp.o.d"
  "fig3_pointcloud_metrics"
  "fig3_pointcloud_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_pointcloud_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
