# Empty dependencies file for fig3_pointcloud_metrics.
# This may be replaced when dependencies are built.
