# Empty dependencies file for fig11_distance.
# This may be replaced when dependencies are built.
