file(REMOVE_RECURSE
  "CMakeFiles/fig11_distance.dir/bench_util.cpp.o"
  "CMakeFiles/fig11_distance.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig11_distance.dir/fig11_distance.cpp.o"
  "CMakeFiles/fig11_distance.dir/fig11_distance.cpp.o.d"
  "fig11_distance"
  "fig11_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
