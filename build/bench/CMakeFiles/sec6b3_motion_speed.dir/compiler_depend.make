# Empty compiler generated dependencies file for sec6b3_motion_speed.
# This may be replaced when dependencies are built.
