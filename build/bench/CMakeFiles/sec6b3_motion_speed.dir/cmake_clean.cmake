file(REMOVE_RECURSE
  "CMakeFiles/sec6b3_motion_speed.dir/bench_util.cpp.o"
  "CMakeFiles/sec6b3_motion_speed.dir/bench_util.cpp.o.d"
  "CMakeFiles/sec6b3_motion_speed.dir/sec6b3_motion_speed.cpp.o"
  "CMakeFiles/sec6b3_motion_speed.dir/sec6b3_motion_speed.cpp.o.d"
  "sec6b3_motion_speed"
  "sec6b3_motion_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6b3_motion_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
