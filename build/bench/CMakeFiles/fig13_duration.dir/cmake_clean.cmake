file(REMOVE_RECURSE
  "CMakeFiles/fig13_duration.dir/bench_util.cpp.o"
  "CMakeFiles/fig13_duration.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig13_duration.dir/fig13_duration.cpp.o"
  "CMakeFiles/fig13_duration.dir/fig13_duration.cpp.o.d"
  "fig13_duration"
  "fig13_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
