# Empty dependencies file for fig12_distance_robustness.
# This may be replaced when dependencies are built.
