file(REMOVE_RECURSE
  "CMakeFiles/fig12_distance_robustness.dir/bench_util.cpp.o"
  "CMakeFiles/fig12_distance_robustness.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig12_distance_robustness.dir/fig12_distance_robustness.cpp.o"
  "CMakeFiles/fig12_distance_robustness.dir/fig12_distance_robustness.cpp.o.d"
  "fig12_distance_robustness"
  "fig12_distance_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_distance_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
