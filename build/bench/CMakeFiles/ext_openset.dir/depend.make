# Empty dependencies file for ext_openset.
# This may be replaced when dependencies are built.
