file(REMOVE_RECURSE
  "CMakeFiles/ext_openset.dir/bench_util.cpp.o"
  "CMakeFiles/ext_openset.dir/bench_util.cpp.o.d"
  "CMakeFiles/ext_openset.dir/ext_openset.cpp.o"
  "CMakeFiles/ext_openset.dir/ext_openset.cpp.o.d"
  "ext_openset"
  "ext_openset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_openset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
