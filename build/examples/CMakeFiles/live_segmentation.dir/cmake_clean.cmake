file(REMOVE_RECURSE
  "CMakeFiles/live_segmentation.dir/live_segmentation.cpp.o"
  "CMakeFiles/live_segmentation.dir/live_segmentation.cpp.o.d"
  "live_segmentation"
  "live_segmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_segmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
