# Empty compiler generated dependencies file for live_segmentation.
# This may be replaced when dependencies are built.
