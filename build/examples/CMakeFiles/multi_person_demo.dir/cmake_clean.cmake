file(REMOVE_RECURSE
  "CMakeFiles/multi_person_demo.dir/multi_person_demo.cpp.o"
  "CMakeFiles/multi_person_demo.dir/multi_person_demo.cpp.o.d"
  "multi_person_demo"
  "multi_person_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_person_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
