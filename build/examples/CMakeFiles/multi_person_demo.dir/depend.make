# Empty dependencies file for multi_person_demo.
# This may be replaced when dependencies are built.
