file(REMOVE_RECURSE
  "CMakeFiles/gpctl.dir/gpctl.cpp.o"
  "CMakeFiles/gpctl.dir/gpctl.cpp.o.d"
  "gpctl"
  "gpctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
