# Empty compiler generated dependencies file for gpctl.
# This may be replaced when dependencies are built.
