file(REMOVE_RECURSE
  "CMakeFiles/asl_dataset_tool.dir/asl_dataset_tool.cpp.o"
  "CMakeFiles/asl_dataset_tool.dir/asl_dataset_tool.cpp.o.d"
  "asl_dataset_tool"
  "asl_dataset_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asl_dataset_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
