# Empty dependencies file for asl_dataset_tool.
# This may be replaced when dependencies are built.
