# Empty compiler generated dependencies file for gp_eval.
# This may be replaced when dependencies are built.
