file(REMOVE_RECURSE
  "CMakeFiles/gp_eval.dir/metrics.cpp.o"
  "CMakeFiles/gp_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/gp_eval.dir/roc.cpp.o"
  "CMakeFiles/gp_eval.dir/roc.cpp.o.d"
  "CMakeFiles/gp_eval.dir/splits.cpp.o"
  "CMakeFiles/gp_eval.dir/splits.cpp.o.d"
  "CMakeFiles/gp_eval.dir/tsne.cpp.o"
  "CMakeFiles/gp_eval.dir/tsne.cpp.o.d"
  "libgp_eval.a"
  "libgp_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
