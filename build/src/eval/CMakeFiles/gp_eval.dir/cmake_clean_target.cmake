file(REMOVE_RECURSE
  "libgp_eval.a"
)
