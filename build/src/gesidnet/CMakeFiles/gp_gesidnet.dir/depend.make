# Empty dependencies file for gp_gesidnet.
# This may be replaced when dependencies are built.
