
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gesidnet/batch.cpp" "src/gesidnet/CMakeFiles/gp_gesidnet.dir/batch.cpp.o" "gcc" "src/gesidnet/CMakeFiles/gp_gesidnet.dir/batch.cpp.o.d"
  "/root/repo/src/gesidnet/fusion.cpp" "src/gesidnet/CMakeFiles/gp_gesidnet.dir/fusion.cpp.o" "gcc" "src/gesidnet/CMakeFiles/gp_gesidnet.dir/fusion.cpp.o.d"
  "/root/repo/src/gesidnet/gesidnet.cpp" "src/gesidnet/CMakeFiles/gp_gesidnet.dir/gesidnet.cpp.o" "gcc" "src/gesidnet/CMakeFiles/gp_gesidnet.dir/gesidnet.cpp.o.d"
  "/root/repo/src/gesidnet/set_abstraction.cpp" "src/gesidnet/CMakeFiles/gp_gesidnet.dir/set_abstraction.cpp.o" "gcc" "src/gesidnet/CMakeFiles/gp_gesidnet.dir/set_abstraction.cpp.o.d"
  "/root/repo/src/gesidnet/trainer.cpp" "src/gesidnet/CMakeFiles/gp_gesidnet.dir/trainer.cpp.o" "gcc" "src/gesidnet/CMakeFiles/gp_gesidnet.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/gp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/gp_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/pointcloud/CMakeFiles/gp_pointcloud.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
