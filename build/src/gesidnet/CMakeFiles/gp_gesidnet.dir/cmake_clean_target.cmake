file(REMOVE_RECURSE
  "libgp_gesidnet.a"
)
