file(REMOVE_RECURSE
  "CMakeFiles/gp_gesidnet.dir/batch.cpp.o"
  "CMakeFiles/gp_gesidnet.dir/batch.cpp.o.d"
  "CMakeFiles/gp_gesidnet.dir/fusion.cpp.o"
  "CMakeFiles/gp_gesidnet.dir/fusion.cpp.o.d"
  "CMakeFiles/gp_gesidnet.dir/gesidnet.cpp.o"
  "CMakeFiles/gp_gesidnet.dir/gesidnet.cpp.o.d"
  "CMakeFiles/gp_gesidnet.dir/set_abstraction.cpp.o"
  "CMakeFiles/gp_gesidnet.dir/set_abstraction.cpp.o.d"
  "CMakeFiles/gp_gesidnet.dir/trainer.cpp.o"
  "CMakeFiles/gp_gesidnet.dir/trainer.cpp.o.d"
  "libgp_gesidnet.a"
  "libgp_gesidnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_gesidnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
