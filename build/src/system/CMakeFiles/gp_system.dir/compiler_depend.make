# Empty compiler generated dependencies file for gp_system.
# This may be replaced when dependencies are built.
