file(REMOVE_RECURSE
  "libgp_system.a"
)
