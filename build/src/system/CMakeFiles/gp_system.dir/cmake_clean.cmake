file(REMOVE_RECURSE
  "CMakeFiles/gp_system.dir/cross_validate.cpp.o"
  "CMakeFiles/gp_system.dir/cross_validate.cpp.o.d"
  "CMakeFiles/gp_system.dir/gestureprint.cpp.o"
  "CMakeFiles/gp_system.dir/gestureprint.cpp.o.d"
  "CMakeFiles/gp_system.dir/multi_person.cpp.o"
  "CMakeFiles/gp_system.dir/multi_person.cpp.o.d"
  "CMakeFiles/gp_system.dir/multi_user.cpp.o"
  "CMakeFiles/gp_system.dir/multi_user.cpp.o.d"
  "CMakeFiles/gp_system.dir/open_set.cpp.o"
  "CMakeFiles/gp_system.dir/open_set.cpp.o.d"
  "CMakeFiles/gp_system.dir/tracker.cpp.o"
  "CMakeFiles/gp_system.dir/tracker.cpp.o.d"
  "libgp_system.a"
  "libgp_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
