
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/system/cross_validate.cpp" "src/system/CMakeFiles/gp_system.dir/cross_validate.cpp.o" "gcc" "src/system/CMakeFiles/gp_system.dir/cross_validate.cpp.o.d"
  "/root/repo/src/system/gestureprint.cpp" "src/system/CMakeFiles/gp_system.dir/gestureprint.cpp.o" "gcc" "src/system/CMakeFiles/gp_system.dir/gestureprint.cpp.o.d"
  "/root/repo/src/system/multi_person.cpp" "src/system/CMakeFiles/gp_system.dir/multi_person.cpp.o" "gcc" "src/system/CMakeFiles/gp_system.dir/multi_person.cpp.o.d"
  "/root/repo/src/system/multi_user.cpp" "src/system/CMakeFiles/gp_system.dir/multi_user.cpp.o" "gcc" "src/system/CMakeFiles/gp_system.dir/multi_user.cpp.o.d"
  "/root/repo/src/system/open_set.cpp" "src/system/CMakeFiles/gp_system.dir/open_set.cpp.o" "gcc" "src/system/CMakeFiles/gp_system.dir/open_set.cpp.o.d"
  "/root/repo/src/system/tracker.cpp" "src/system/CMakeFiles/gp_system.dir/tracker.cpp.o" "gcc" "src/system/CMakeFiles/gp_system.dir/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/gp_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/gesidnet/CMakeFiles/gp_gesidnet.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/gp_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/gp_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/radar/CMakeFiles/gp_radar.dir/DependInfo.cmake"
  "/root/repo/build/src/kinematics/CMakeFiles/gp_kinematics.dir/DependInfo.cmake"
  "/root/repo/build/src/pointcloud/CMakeFiles/gp_pointcloud.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/gp_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/gp_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
