
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/augmentation.cpp" "src/pipeline/CMakeFiles/gp_pipeline.dir/augmentation.cpp.o" "gcc" "src/pipeline/CMakeFiles/gp_pipeline.dir/augmentation.cpp.o.d"
  "/root/repo/src/pipeline/energy_segmentation.cpp" "src/pipeline/CMakeFiles/gp_pipeline.dir/energy_segmentation.cpp.o" "gcc" "src/pipeline/CMakeFiles/gp_pipeline.dir/energy_segmentation.cpp.o.d"
  "/root/repo/src/pipeline/noise_cancel.cpp" "src/pipeline/CMakeFiles/gp_pipeline.dir/noise_cancel.cpp.o" "gcc" "src/pipeline/CMakeFiles/gp_pipeline.dir/noise_cancel.cpp.o.d"
  "/root/repo/src/pipeline/preprocessor.cpp" "src/pipeline/CMakeFiles/gp_pipeline.dir/preprocessor.cpp.o" "gcc" "src/pipeline/CMakeFiles/gp_pipeline.dir/preprocessor.cpp.o.d"
  "/root/repo/src/pipeline/segmentation.cpp" "src/pipeline/CMakeFiles/gp_pipeline.dir/segmentation.cpp.o" "gcc" "src/pipeline/CMakeFiles/gp_pipeline.dir/segmentation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pointcloud/CMakeFiles/gp_pointcloud.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
