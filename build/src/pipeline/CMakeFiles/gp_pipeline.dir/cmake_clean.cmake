file(REMOVE_RECURSE
  "CMakeFiles/gp_pipeline.dir/augmentation.cpp.o"
  "CMakeFiles/gp_pipeline.dir/augmentation.cpp.o.d"
  "CMakeFiles/gp_pipeline.dir/energy_segmentation.cpp.o"
  "CMakeFiles/gp_pipeline.dir/energy_segmentation.cpp.o.d"
  "CMakeFiles/gp_pipeline.dir/noise_cancel.cpp.o"
  "CMakeFiles/gp_pipeline.dir/noise_cancel.cpp.o.d"
  "CMakeFiles/gp_pipeline.dir/preprocessor.cpp.o"
  "CMakeFiles/gp_pipeline.dir/preprocessor.cpp.o.d"
  "CMakeFiles/gp_pipeline.dir/segmentation.cpp.o"
  "CMakeFiles/gp_pipeline.dir/segmentation.cpp.o.d"
  "libgp_pipeline.a"
  "libgp_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
