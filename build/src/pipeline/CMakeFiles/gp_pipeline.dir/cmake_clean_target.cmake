file(REMOVE_RECURSE
  "libgp_pipeline.a"
)
