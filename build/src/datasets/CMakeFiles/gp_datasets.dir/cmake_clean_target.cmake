file(REMOVE_RECURSE
  "libgp_datasets.a"
)
