# Empty compiler generated dependencies file for gp_datasets.
# This may be replaced when dependencies are built.
