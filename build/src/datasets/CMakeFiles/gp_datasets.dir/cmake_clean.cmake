file(REMOVE_RECURSE
  "CMakeFiles/gp_datasets.dir/cache.cpp.o"
  "CMakeFiles/gp_datasets.dir/cache.cpp.o.d"
  "CMakeFiles/gp_datasets.dir/catalog.cpp.o"
  "CMakeFiles/gp_datasets.dir/catalog.cpp.o.d"
  "CMakeFiles/gp_datasets.dir/dataset.cpp.o"
  "CMakeFiles/gp_datasets.dir/dataset.cpp.o.d"
  "CMakeFiles/gp_datasets.dir/prep.cpp.o"
  "CMakeFiles/gp_datasets.dir/prep.cpp.o.d"
  "libgp_datasets.a"
  "libgp_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
