# Empty compiler generated dependencies file for gp_pointcloud.
# This may be replaced when dependencies are built.
