file(REMOVE_RECURSE
  "libgp_pointcloud.a"
)
