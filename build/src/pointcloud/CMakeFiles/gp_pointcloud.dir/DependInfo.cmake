
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pointcloud/dbscan.cpp" "src/pointcloud/CMakeFiles/gp_pointcloud.dir/dbscan.cpp.o" "gcc" "src/pointcloud/CMakeFiles/gp_pointcloud.dir/dbscan.cpp.o.d"
  "/root/repo/src/pointcloud/io.cpp" "src/pointcloud/CMakeFiles/gp_pointcloud.dir/io.cpp.o" "gcc" "src/pointcloud/CMakeFiles/gp_pointcloud.dir/io.cpp.o.d"
  "/root/repo/src/pointcloud/metrics.cpp" "src/pointcloud/CMakeFiles/gp_pointcloud.dir/metrics.cpp.o" "gcc" "src/pointcloud/CMakeFiles/gp_pointcloud.dir/metrics.cpp.o.d"
  "/root/repo/src/pointcloud/ops.cpp" "src/pointcloud/CMakeFiles/gp_pointcloud.dir/ops.cpp.o" "gcc" "src/pointcloud/CMakeFiles/gp_pointcloud.dir/ops.cpp.o.d"
  "/root/repo/src/pointcloud/point.cpp" "src/pointcloud/CMakeFiles/gp_pointcloud.dir/point.cpp.o" "gcc" "src/pointcloud/CMakeFiles/gp_pointcloud.dir/point.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
