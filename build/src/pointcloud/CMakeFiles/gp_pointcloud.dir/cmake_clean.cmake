file(REMOVE_RECURSE
  "CMakeFiles/gp_pointcloud.dir/dbscan.cpp.o"
  "CMakeFiles/gp_pointcloud.dir/dbscan.cpp.o.d"
  "CMakeFiles/gp_pointcloud.dir/io.cpp.o"
  "CMakeFiles/gp_pointcloud.dir/io.cpp.o.d"
  "CMakeFiles/gp_pointcloud.dir/metrics.cpp.o"
  "CMakeFiles/gp_pointcloud.dir/metrics.cpp.o.d"
  "CMakeFiles/gp_pointcloud.dir/ops.cpp.o"
  "CMakeFiles/gp_pointcloud.dir/ops.cpp.o.d"
  "CMakeFiles/gp_pointcloud.dir/point.cpp.o"
  "CMakeFiles/gp_pointcloud.dir/point.cpp.o.d"
  "libgp_pointcloud.a"
  "libgp_pointcloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_pointcloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
