file(REMOVE_RECURSE
  "CMakeFiles/gp_kinematics.dir/body.cpp.o"
  "CMakeFiles/gp_kinematics.dir/body.cpp.o.d"
  "CMakeFiles/gp_kinematics.dir/gesture_spec.cpp.o"
  "CMakeFiles/gp_kinematics.dir/gesture_spec.cpp.o.d"
  "CMakeFiles/gp_kinematics.dir/performer.cpp.o"
  "CMakeFiles/gp_kinematics.dir/performer.cpp.o.d"
  "CMakeFiles/gp_kinematics.dir/trajectory.cpp.o"
  "CMakeFiles/gp_kinematics.dir/trajectory.cpp.o.d"
  "libgp_kinematics.a"
  "libgp_kinematics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_kinematics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
