file(REMOVE_RECURSE
  "libgp_kinematics.a"
)
