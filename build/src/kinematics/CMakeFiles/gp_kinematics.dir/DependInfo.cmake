
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kinematics/body.cpp" "src/kinematics/CMakeFiles/gp_kinematics.dir/body.cpp.o" "gcc" "src/kinematics/CMakeFiles/gp_kinematics.dir/body.cpp.o.d"
  "/root/repo/src/kinematics/gesture_spec.cpp" "src/kinematics/CMakeFiles/gp_kinematics.dir/gesture_spec.cpp.o" "gcc" "src/kinematics/CMakeFiles/gp_kinematics.dir/gesture_spec.cpp.o.d"
  "/root/repo/src/kinematics/performer.cpp" "src/kinematics/CMakeFiles/gp_kinematics.dir/performer.cpp.o" "gcc" "src/kinematics/CMakeFiles/gp_kinematics.dir/performer.cpp.o.d"
  "/root/repo/src/kinematics/trajectory.cpp" "src/kinematics/CMakeFiles/gp_kinematics.dir/trajectory.cpp.o" "gcc" "src/kinematics/CMakeFiles/gp_kinematics.dir/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
