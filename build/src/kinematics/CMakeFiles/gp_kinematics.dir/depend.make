# Empty dependencies file for gp_kinematics.
# This may be replaced when dependencies are built.
