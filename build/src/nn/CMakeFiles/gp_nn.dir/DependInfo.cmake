
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/grad_check.cpp" "src/nn/CMakeFiles/gp_nn.dir/grad_check.cpp.o" "gcc" "src/nn/CMakeFiles/gp_nn.dir/grad_check.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/gp_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/gp_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/gp_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/gp_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/gp_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/gp_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/serialize_nn.cpp" "src/nn/CMakeFiles/gp_nn.dir/serialize_nn.cpp.o" "gcc" "src/nn/CMakeFiles/gp_nn.dir/serialize_nn.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/gp_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/gp_nn.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
