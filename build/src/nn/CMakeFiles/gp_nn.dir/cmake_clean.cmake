file(REMOVE_RECURSE
  "CMakeFiles/gp_nn.dir/grad_check.cpp.o"
  "CMakeFiles/gp_nn.dir/grad_check.cpp.o.d"
  "CMakeFiles/gp_nn.dir/layers.cpp.o"
  "CMakeFiles/gp_nn.dir/layers.cpp.o.d"
  "CMakeFiles/gp_nn.dir/loss.cpp.o"
  "CMakeFiles/gp_nn.dir/loss.cpp.o.d"
  "CMakeFiles/gp_nn.dir/optimizer.cpp.o"
  "CMakeFiles/gp_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/gp_nn.dir/serialize_nn.cpp.o"
  "CMakeFiles/gp_nn.dir/serialize_nn.cpp.o.d"
  "CMakeFiles/gp_nn.dir/tensor.cpp.o"
  "CMakeFiles/gp_nn.dir/tensor.cpp.o.d"
  "libgp_nn.a"
  "libgp_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
