# Empty dependencies file for gp_nn.
# This may be replaced when dependencies are built.
