file(REMOVE_RECURSE
  "libgp_nn.a"
)
