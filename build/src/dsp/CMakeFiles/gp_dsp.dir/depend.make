# Empty dependencies file for gp_dsp.
# This may be replaced when dependencies are built.
