file(REMOVE_RECURSE
  "libgp_dsp.a"
)
