file(REMOVE_RECURSE
  "CMakeFiles/gp_dsp.dir/angle.cpp.o"
  "CMakeFiles/gp_dsp.dir/angle.cpp.o.d"
  "CMakeFiles/gp_dsp.dir/cfar.cpp.o"
  "CMakeFiles/gp_dsp.dir/cfar.cpp.o.d"
  "CMakeFiles/gp_dsp.dir/drai.cpp.o"
  "CMakeFiles/gp_dsp.dir/drai.cpp.o.d"
  "CMakeFiles/gp_dsp.dir/fft.cpp.o"
  "CMakeFiles/gp_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/gp_dsp.dir/range_doppler.cpp.o"
  "CMakeFiles/gp_dsp.dir/range_doppler.cpp.o.d"
  "CMakeFiles/gp_dsp.dir/window.cpp.o"
  "CMakeFiles/gp_dsp.dir/window.cpp.o.d"
  "libgp_dsp.a"
  "libgp_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
