
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/angle.cpp" "src/dsp/CMakeFiles/gp_dsp.dir/angle.cpp.o" "gcc" "src/dsp/CMakeFiles/gp_dsp.dir/angle.cpp.o.d"
  "/root/repo/src/dsp/cfar.cpp" "src/dsp/CMakeFiles/gp_dsp.dir/cfar.cpp.o" "gcc" "src/dsp/CMakeFiles/gp_dsp.dir/cfar.cpp.o.d"
  "/root/repo/src/dsp/drai.cpp" "src/dsp/CMakeFiles/gp_dsp.dir/drai.cpp.o" "gcc" "src/dsp/CMakeFiles/gp_dsp.dir/drai.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/gp_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/gp_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/range_doppler.cpp" "src/dsp/CMakeFiles/gp_dsp.dir/range_doppler.cpp.o" "gcc" "src/dsp/CMakeFiles/gp_dsp.dir/range_doppler.cpp.o.d"
  "/root/repo/src/dsp/window.cpp" "src/dsp/CMakeFiles/gp_dsp.dir/window.cpp.o" "gcc" "src/dsp/CMakeFiles/gp_dsp.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
