
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dtw_knn.cpp" "src/baselines/CMakeFiles/gp_baselines.dir/dtw_knn.cpp.o" "gcc" "src/baselines/CMakeFiles/gp_baselines.dir/dtw_knn.cpp.o.d"
  "/root/repo/src/baselines/edgeconv.cpp" "src/baselines/CMakeFiles/gp_baselines.dir/edgeconv.cpp.o" "gcc" "src/baselines/CMakeFiles/gp_baselines.dir/edgeconv.cpp.o.d"
  "/root/repo/src/baselines/pointnet.cpp" "src/baselines/CMakeFiles/gp_baselines.dir/pointnet.cpp.o" "gcc" "src/baselines/CMakeFiles/gp_baselines.dir/pointnet.cpp.o.d"
  "/root/repo/src/baselines/profile_net.cpp" "src/baselines/CMakeFiles/gp_baselines.dir/profile_net.cpp.o" "gcc" "src/baselines/CMakeFiles/gp_baselines.dir/profile_net.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/gp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/gesidnet/CMakeFiles/gp_gesidnet.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/gp_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/pointcloud/CMakeFiles/gp_pointcloud.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
