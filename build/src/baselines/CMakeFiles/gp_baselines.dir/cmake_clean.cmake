file(REMOVE_RECURSE
  "CMakeFiles/gp_baselines.dir/dtw_knn.cpp.o"
  "CMakeFiles/gp_baselines.dir/dtw_knn.cpp.o.d"
  "CMakeFiles/gp_baselines.dir/edgeconv.cpp.o"
  "CMakeFiles/gp_baselines.dir/edgeconv.cpp.o.d"
  "CMakeFiles/gp_baselines.dir/pointnet.cpp.o"
  "CMakeFiles/gp_baselines.dir/pointnet.cpp.o.d"
  "CMakeFiles/gp_baselines.dir/profile_net.cpp.o"
  "CMakeFiles/gp_baselines.dir/profile_net.cpp.o.d"
  "libgp_baselines.a"
  "libgp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
