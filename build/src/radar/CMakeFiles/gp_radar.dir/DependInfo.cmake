
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/radar/config.cpp" "src/radar/CMakeFiles/gp_radar.dir/config.cpp.o" "gcc" "src/radar/CMakeFiles/gp_radar.dir/config.cpp.o.d"
  "/root/repo/src/radar/fast_backend.cpp" "src/radar/CMakeFiles/gp_radar.dir/fast_backend.cpp.o" "gcc" "src/radar/CMakeFiles/gp_radar.dir/fast_backend.cpp.o.d"
  "/root/repo/src/radar/fmcw.cpp" "src/radar/CMakeFiles/gp_radar.dir/fmcw.cpp.o" "gcc" "src/radar/CMakeFiles/gp_radar.dir/fmcw.cpp.o.d"
  "/root/repo/src/radar/frontend.cpp" "src/radar/CMakeFiles/gp_radar.dir/frontend.cpp.o" "gcc" "src/radar/CMakeFiles/gp_radar.dir/frontend.cpp.o.d"
  "/root/repo/src/radar/link_budget.cpp" "src/radar/CMakeFiles/gp_radar.dir/link_budget.cpp.o" "gcc" "src/radar/CMakeFiles/gp_radar.dir/link_budget.cpp.o.d"
  "/root/repo/src/radar/sensor.cpp" "src/radar/CMakeFiles/gp_radar.dir/sensor.cpp.o" "gcc" "src/radar/CMakeFiles/gp_radar.dir/sensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/gp_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/pointcloud/CMakeFiles/gp_pointcloud.dir/DependInfo.cmake"
  "/root/repo/build/src/kinematics/CMakeFiles/gp_kinematics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
