file(REMOVE_RECURSE
  "libgp_radar.a"
)
