file(REMOVE_RECURSE
  "CMakeFiles/gp_radar.dir/config.cpp.o"
  "CMakeFiles/gp_radar.dir/config.cpp.o.d"
  "CMakeFiles/gp_radar.dir/fast_backend.cpp.o"
  "CMakeFiles/gp_radar.dir/fast_backend.cpp.o.d"
  "CMakeFiles/gp_radar.dir/fmcw.cpp.o"
  "CMakeFiles/gp_radar.dir/fmcw.cpp.o.d"
  "CMakeFiles/gp_radar.dir/frontend.cpp.o"
  "CMakeFiles/gp_radar.dir/frontend.cpp.o.d"
  "CMakeFiles/gp_radar.dir/link_budget.cpp.o"
  "CMakeFiles/gp_radar.dir/link_budget.cpp.o.d"
  "CMakeFiles/gp_radar.dir/sensor.cpp.o"
  "CMakeFiles/gp_radar.dir/sensor.cpp.o.d"
  "libgp_radar.a"
  "libgp_radar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_radar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
