# Empty compiler generated dependencies file for gp_radar.
# This may be replaced when dependencies are built.
