# Empty dependencies file for gp_common.
# This may be replaced when dependencies are built.
