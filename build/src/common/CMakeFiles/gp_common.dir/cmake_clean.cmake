file(REMOVE_RECURSE
  "CMakeFiles/gp_common.dir/config.cpp.o"
  "CMakeFiles/gp_common.dir/config.cpp.o.d"
  "CMakeFiles/gp_common.dir/csv.cpp.o"
  "CMakeFiles/gp_common.dir/csv.cpp.o.d"
  "CMakeFiles/gp_common.dir/logging.cpp.o"
  "CMakeFiles/gp_common.dir/logging.cpp.o.d"
  "CMakeFiles/gp_common.dir/rng.cpp.o"
  "CMakeFiles/gp_common.dir/rng.cpp.o.d"
  "CMakeFiles/gp_common.dir/serialize.cpp.o"
  "CMakeFiles/gp_common.dir/serialize.cpp.o.d"
  "CMakeFiles/gp_common.dir/table.cpp.o"
  "CMakeFiles/gp_common.dir/table.cpp.o.d"
  "libgp_common.a"
  "libgp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
