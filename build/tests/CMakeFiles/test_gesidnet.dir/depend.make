# Empty dependencies file for test_gesidnet.
# This may be replaced when dependencies are built.
