file(REMOVE_RECURSE
  "CMakeFiles/test_gesidnet.dir/test_gesidnet.cpp.o"
  "CMakeFiles/test_gesidnet.dir/test_gesidnet.cpp.o.d"
  "test_gesidnet"
  "test_gesidnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gesidnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
