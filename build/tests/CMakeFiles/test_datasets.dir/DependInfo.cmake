
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_datasets.cpp" "tests/CMakeFiles/test_datasets.dir/test_datasets.cpp.o" "gcc" "tests/CMakeFiles/test_datasets.dir/test_datasets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/gp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/gp_system.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/gp_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/gp_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/radar/CMakeFiles/gp_radar.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/gp_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/kinematics/CMakeFiles/gp_kinematics.dir/DependInfo.cmake"
  "/root/repo/build/src/gesidnet/CMakeFiles/gp_gesidnet.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/gp_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/pointcloud/CMakeFiles/gp_pointcloud.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/gp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
