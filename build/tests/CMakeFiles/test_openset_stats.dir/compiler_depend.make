# Empty compiler generated dependencies file for test_openset_stats.
# This may be replaced when dependencies are built.
