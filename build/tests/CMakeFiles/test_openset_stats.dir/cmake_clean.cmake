file(REMOVE_RECURSE
  "CMakeFiles/test_openset_stats.dir/test_openset_stats.cpp.o"
  "CMakeFiles/test_openset_stats.dir/test_openset_stats.cpp.o.d"
  "test_openset_stats"
  "test_openset_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_openset_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
