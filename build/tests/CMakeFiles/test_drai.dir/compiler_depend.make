# Empty compiler generated dependencies file for test_drai.
# This may be replaced when dependencies are built.
