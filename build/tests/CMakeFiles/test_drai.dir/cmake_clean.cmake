file(REMOVE_RECURSE
  "CMakeFiles/test_drai.dir/test_drai.cpp.o"
  "CMakeFiles/test_drai.dir/test_drai.cpp.o.d"
  "test_drai"
  "test_drai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
