file(REMOVE_RECURSE
  "CMakeFiles/test_io_budget.dir/test_io_budget.cpp.o"
  "CMakeFiles/test_io_budget.dir/test_io_budget.cpp.o.d"
  "test_io_budget"
  "test_io_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
