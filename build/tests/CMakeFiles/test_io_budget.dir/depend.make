# Empty dependencies file for test_io_budget.
# This may be replaced when dependencies are built.
