file(REMOVE_RECURSE
  "CMakeFiles/test_kinematics.dir/test_kinematics.cpp.o"
  "CMakeFiles/test_kinematics.dir/test_kinematics.cpp.o.d"
  "test_kinematics"
  "test_kinematics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kinematics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
