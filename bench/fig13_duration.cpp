// Fig. 13 reproduction: lasting time (frame count) of gesture motions
// repeated by the same user — users unconsciously vary their motion speed,
// so repetitions of one gesture show a spread of durations, and different
// users centre at different durations.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/math_utils.hpp"
#include "kinematics/performer.hpp"

int main() {
  using namespace gp;
  bench::banner("gesture duration variability", "Fig. 13");

  Rng user_rng(1001, 0x5bd1e995ULL);
  const auto gestures = asl_gesture_set();
  const int reps = scale_pick(15, 30, 60);

  Table table({"user", "gesture", "mean frames", "min", "max", "stddev"});
  CsvWriter csv(output_dir() + "/fig13_duration.csv",
                {"user", "gesture", "rep", "frames", "duration_s"});

  std::vector<double> user_means;
  Rng rep_rng(7, 3);
  for (int u = 0; u < 4; ++u) {
    const UserProfile user = UserProfile::sample(u, user_rng);
    PerformanceConfig perf;
    perf.idle_frames_before = 0;
    perf.idle_frames_after = 0;
    const GesturePerformer performer(user, perf);

    for (const char* name : {"push", "zigzag"}) {
      const GestureSpec& spec = find_gesture(gestures, name);
      std::vector<double> frames;
      for (int r = 0; r < reps; ++r) {
        const SceneSequence scene = performer.perform(spec, rep_rng);
        frames.push_back(static_cast<double>(scene.size()));
        csv.write_row({std::to_string(u), name, std::to_string(r),
                       std::to_string(scene.size()), Table::num(scene.size() * 0.1, 2)});
      }
      const double lo = *std::min_element(frames.begin(), frames.end());
      const double hi = *std::max_element(frames.begin(), frames.end());
      table.add_row({std::to_string(u), name, Table::num(mean(frames), 1), Table::num(lo, 0),
                     Table::num(hi, 0), Table::num(stddev(frames), 2)});
      if (std::string(name) == "push") user_means.push_back(mean(frames));
    }
  }

  table.print();

  // Shape checks: per-user repetition spread exists (max > min), and user
  // means differ (habitual pace is an identity signal).
  double mean_lo = user_means[0];
  double mean_hi = user_means[0];
  for (double m : user_means) {
    mean_lo = std::min(mean_lo, m);
    mean_hi = std::max(mean_hi, m);
  }
  std::cout << "\nPaper shape: repetitions of the same gesture vary in lasting time, and\n"
               "habitual pace separates users (push mean frames span "
            << Table::num(mean_lo, 1) << " - " << Table::num(mean_hi, 1)
            << " across users; paper's Fig. 13 shows ~20-35 frame spreads).\nCSV: "
            << csv.path() << "\n";
  return 0;
}
