// Fig. 11 reproduction: impact of the radar-user distance on GRA and UIA,
// across the mTransSee anchor positions (1.2–4.8 m).
//
// Expected shape (paper): reliable performance (>= ~94% GRA, >= ~93% UIA)
// up to 3.6 m, visible degradation beyond 3.9 m, yet still usable at 4.8 m
// (paper: 86.9% GRA / 81.2% UIA) — driven by the rapidly shrinking
// per-frame point count at long range.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "datasets/cache.hpp"

int main() {
  using namespace gp;
  bench::banner("impact of distance (mTransSee anchors)", "Fig. 11");

  const DatasetScale scale = DatasetScale::from_run_scale();
  // Anchor subset at reduced scales; all 13 at full scale.
  std::vector<double> anchors;
  switch (run_scale()) {
    case RunScale::kSmall: anchors = {1.2, 2.4, 3.6, 4.8}; break;
    case RunScale::kDefault: anchors = {1.2, 1.8, 2.4, 3.0, 3.6, 4.2, 4.8}; break;
    case RunScale::kFull: anchors = mtranssee_anchors(); break;
  }

  Table table({"anchor (m)", "GRA ours", "UIA ours", "mean pts/sample"});
  CsvWriter csv(output_dir() + "/fig11_distance.csv",
                {"distance", "gra", "uia", "mean_points"});

  double gra_near = 0.0;
  double gra_far = 0.0;
  double uia_near = 0.0;
  double uia_far = 0.0;
  for (double anchor : anchors) {
    const DatasetSpec spec = mtranssee_spec({anchor}, scale);
    const Dataset dataset = generate_dataset_cached(spec);
    if (dataset.samples.size() < dataset.num_users() * dataset.num_gestures() * 2) {
      // Radar saw too little at this range to train at all.
      table.add_row({Table::num(anchor, 2), "insufficient data", "/", "/"});
      csv.write_row({Table::num(anchor, 2), "nan", "nan", "0"});
      continue;
    }
    double mean_points = 0.0;
    for (const auto& s : dataset.samples) {
      mean_points += static_cast<double>(s.cloud.points.size());
    }
    mean_points /= static_cast<double>(dataset.samples.size());

    const SystemEvaluation eval =
        bench::run_system(dataset, bench::default_system_config());
    table.add_row({Table::num(anchor, 2), bench::cell(eval.gra), bench::cell(eval.uia),
                   Table::num(mean_points, 1)});
    csv.write_row({Table::num(anchor, 2), bench::cell(eval.gra), bench::cell(eval.uia),
                   Table::num(mean_points, 1)});
    std::cout << "[" << anchor << " m: GRA=" << Table::pct(eval.gra)
              << " UIA=" << Table::pct(eval.uia) << " pts=" << Table::num(mean_points, 1)
              << "]\n";
    if (anchor <= 2.45) {
      gra_near = std::max(gra_near, eval.gra);
      uia_near = std::max(uia_near, eval.uia);
    }
    if (anchor >= 4.15) {
      gra_far = std::max(gra_far, eval.gra);
      uia_far = std::max(uia_far, eval.uia);
    }
  }

  std::cout << '\n';
  table.print();
  std::cout << "\nPaper shape: both metrics high at near anchors, monotonic-ish degradation\n"
               "with range as the cloud thins (near GRA "
            << Table::pct(gra_near) << " vs far " << Table::pct(gra_far) << "; near UIA "
            << Table::pct(uia_near) << " vs far " << Table::pct(uia_far) << ").\nCSV: "
            << csv.path() << "\n";
  return 0;
}
