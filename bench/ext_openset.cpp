// Extension bench (beyond the paper's tables): open-set user
// identification. §IV-C argues the serialized mode can handle unauthorized
// people; this bench quantifies it. Enrolled users' gestures should be
// accepted and identified; gestures from people outside the cohort should
// be rejected by the confidence threshold.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "datasets/cache.hpp"
#include "system/open_set.hpp"

int main() {
  using namespace gp;
  bench::banner("open-set identification (extension)", "Sec. IV-C discussion");

  DatasetScale scale = DatasetScale::from_run_scale();
  DatasetSpec enrolled_spec = gestureprint_spec(1, scale);
  enrolled_spec.gestures.resize(scale_pick<std::size_t>(3, 5, 8));
  const Dataset enrolled = generate_dataset_cached(enrolled_spec);

  // Impostors: a disjoint cohort performing the same gestures in the same
  // room (different user_seed => different bodies and habits).
  DatasetSpec impostor_spec = enrolled_spec;
  impostor_spec.user_seed = 987654;
  impostor_spec.seed += 17;
  impostor_spec.reps_per_gesture = 4;
  const Dataset impostors_ds = generate_dataset_cached(impostor_spec);
  std::vector<GestureCloud> impostor_clouds;
  for (const auto& s : impostors_ds.samples) impostor_clouds.push_back(s.cloud);

  const Split split = bench::split_dataset(enrolled);
  GesturePrintSystem system(bench::default_system_config());
  system.fit(enrolled, split.train);

  Table table({"target FRR", "threshold", "genuine accept", "impostor reject",
               "UIA among accepted"});
  CsvWriter csv(output_dir() + "/ext_openset.csv",
                {"target_frr", "threshold", "genuine_accept", "impostor_reject",
                 "accepted_uia"});

  bool tradeoff_ok = true;
  double prev_reject = -1.0;
  for (double target : {0.02, 0.05, 0.10, 0.20}) {
    OpenSetConfig config;
    config.target_false_rejection = target;
    OpenSetIdentifier open_set(system, config);
    open_set.calibrate(enrolled, split.train);
    const OpenSetEvaluation eval = open_set.evaluate(enrolled, split.test, impostor_clouds);

    table.add_row({Table::pct(target), Table::num(open_set.threshold(), 3),
                   Table::pct(eval.genuine_accept_rate), Table::pct(eval.impostor_reject_rate),
                   Table::pct(eval.accepted_uia)});
    csv.write_row({Table::num(target, 3), Table::num(open_set.threshold(), 4),
                   bench::cell(eval.genuine_accept_rate),
                   bench::cell(eval.impostor_reject_rate), bench::cell(eval.accepted_uia)});
    if (eval.impostor_reject_rate < prev_reject - 0.05) tradeoff_ok = false;
    prev_reject = eval.impostor_reject_rate;  // stricter FRR => more rejection
  }

  std::cout << '\n';
  table.print();
  std::cout << "\nExpected shape: raising the target FRR tightens the threshold, trading\n"
               "genuine acceptance for impostor rejection; accepted decisions identify at\n"
               "least as accurately as unconditional ID. Monotone trade-off "
            << (tradeoff_ok ? "holds" : "VIOLATED") << ".\nCSV: " << csv.path() << "\n";
  return 0;
}
