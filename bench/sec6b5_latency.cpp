// §VI-B5 reproduction: time consumption per gesture sample, split into
// preprocessing and classification inference, measured with
// google-benchmark (the paper averages 500 runs).
//
// Paper reference points (laptop CPU): preprocessing 405.93 ms, inference
// (recognition + identification) 677.14 ms, total 936.92 ms — well under
// the 2.43 s average gesture duration. Absolute numbers here differ (their
// pipeline runs Python/PyTorch; ours is native C++, typically much faster);
// the reproduced *shape* is the budget argument: total processing time per
// sample must sit comfortably below the gesture duration.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "datasets/cache.hpp"
#include "pipeline/preprocessor.hpp"

namespace {

using namespace gp;

struct LatencyFixture {
  Dataset dataset;
  std::unique_ptr<GesturePrintSystem> system;
  FrameSequence raw_recording;

  static LatencyFixture& instance() {
    static LatencyFixture fixture = [] {
      LatencyFixture f;
      DatasetScale scale;
      scale.max_users = 4;
      scale.reps = 6;
      DatasetSpec spec = gestureprint_spec(1, scale);
      spec.gestures.resize(5);
      f.dataset = generate_dataset_cached(spec);

      GesturePrintConfig config = bench::default_system_config();
      config.training.epochs = 4;  // latency is inference-time only
      f.system = std::make_unique<GesturePrintSystem>(config);
      const Split split = bench::split_dataset(f.dataset);
      f.system->fit(f.dataset, split.train);

      f.raw_recording = generate_recording(spec, 0, {0, 1, 2}, 31).frames;
      return f;
    }();
    return fixture;
  }
};

void BM_Preprocessing(benchmark::State& state) {
  LatencyFixture& f = LatencyFixture::instance();
  const Preprocessor preprocessor;
  for (auto _ : state) {
    const auto clouds = preprocessor.process(f.raw_recording);
    benchmark::DoNotOptimize(clouds);
  }
}
BENCHMARK(BM_Preprocessing)->Unit(benchmark::kMillisecond);

void BM_ClassificationInference(benchmark::State& state) {
  LatencyFixture& f = LatencyFixture::instance();
  const GestureCloud& cloud = f.dataset.samples.front().cloud;
  for (auto _ : state) {
    const InferenceResult result = f.system->classify(cloud);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ClassificationInference)->Unit(benchmark::kMillisecond);

void BM_EndToEndSingleGesture(benchmark::State& state) {
  LatencyFixture& f = LatencyFixture::instance();
  const Preprocessor preprocessor;
  for (auto _ : state) {
    const auto clouds = preprocessor.process(f.raw_recording);
    for (const auto& cloud : clouds) {
      const InferenceResult result = f.system->classify(cloud);
      benchmark::DoNotOptimize(result);
    }
  }
}
BENCHMARK(BM_EndToEndSingleGesture)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace gp;
  bench::banner("time consumption per gesture sample", "Sec. VI-B5");
  std::cout << "paper (laptop CPU): preprocessing 405.93 ms, inference 677.14 ms,\n"
               "total 936.92 ms vs 2.43 s mean gesture duration. Shape to verify:\n"
               "total per-sample processing well below the gesture duration.\n\n";
  LatencyFixture::instance();  // train outside the measured region
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
