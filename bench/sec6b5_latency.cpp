// §VI-B5 reproduction: time consumption per gesture sample, split into
// preprocessing and classification inference, measured with
// google-benchmark (the paper averages 500 runs).
//
// Paper reference points (laptop CPU): preprocessing 405.93 ms, inference
// (recognition + identification) 677.14 ms, total 936.92 ms — well under
// the 2.43 s average gesture duration. Absolute numbers here differ (their
// pipeline runs Python/PyTorch; ours is native C++, typically much faster);
// the reproduced *shape* is the budget argument: total processing time per
// sample must sit comfortably below the gesture duration.
//
// The binary also runs a parallel-scaling sweep over GP thread counts
// {1, 2, 4, hardware} for three representative stages (matmul kernel, one
// training epoch, dataset synthesis) and writes the measured speedups to
// <output_dir>/BENCH_parallel.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/mem.hpp"
#include "datasets/cache.hpp"
#include "datasets/prep.hpp"
#include "exec/exec.hpp"
#include "gesidnet/gesidnet.hpp"
#include "gesidnet/trainer.hpp"
#include "nn/tensor.hpp"
#include "obs/bench_json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "pipeline/preprocessor.hpp"
#include "serve/server.hpp"

namespace {

using namespace gp;

struct LatencyFixture {
  Dataset dataset;
  std::unique_ptr<GesturePrintSystem> system;
  FrameSequence raw_recording;

  static LatencyFixture& instance() {
    static LatencyFixture fixture = [] {
      LatencyFixture f;
      DatasetScale scale;
      scale.max_users = 4;
      scale.reps = 6;
      DatasetSpec spec = gestureprint_spec(1, scale);
      spec.gestures.resize(5);
      f.dataset = generate_dataset_cached(spec);

      GesturePrintConfig config = bench::default_system_config();
      config.training.epochs = 4;  // latency is inference-time only
      f.system = std::make_unique<GesturePrintSystem>(config);
      const Split split = bench::split_dataset(f.dataset);
      f.system->fit(f.dataset, split.train);

      f.raw_recording = generate_recording(spec, 0, {0, 1, 2}, 31).frames;
      return f;
    }();
    return fixture;
  }
};

void BM_Preprocessing(benchmark::State& state) {
  LatencyFixture& f = LatencyFixture::instance();
  const Preprocessor preprocessor;
  for (auto _ : state) {
    const auto clouds = preprocessor.process(f.raw_recording);
    benchmark::DoNotOptimize(clouds);
  }
}
BENCHMARK(BM_Preprocessing)->Unit(benchmark::kMillisecond);

void BM_ClassificationInference(benchmark::State& state) {
  LatencyFixture& f = LatencyFixture::instance();
  const GestureCloud& cloud = f.dataset.samples.front().cloud;
  for (auto _ : state) {
    const InferenceResult result = f.system->classify(cloud);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ClassificationInference)->Unit(benchmark::kMillisecond);

void BM_EndToEndSingleGesture(benchmark::State& state) {
  LatencyFixture& f = LatencyFixture::instance();
  const Preprocessor preprocessor;
  for (auto _ : state) {
    const auto clouds = preprocessor.process(f.raw_recording);
    for (const auto& cloud : clouds) {
      const InferenceResult result = f.system->classify(cloud);
      benchmark::DoNotOptimize(result);
    }
  }
}
BENCHMARK(BM_EndToEndSingleGesture)->Unit(benchmark::kMillisecond);

// --------------------------------------------------- per-stage latency profile

/// Re-measures the three latency paths outside google-benchmark, feeding
/// every iteration into obs histograms so the report carries p50/p95/p99
/// (google-benchmark's default counters only expose the mean). The GP_SPAN
/// instrumentation inside the stack fills in the per-stage breakdown
/// (pipeline.segment, gesidnet.predict, ...) over the same iterations,
/// which lands in BENCH_latency_stages.json next to the top-level numbers.
void run_latency_quantiles(const std::vector<obs::ServeTickProfile>& serve_tick) {
  using clock = std::chrono::steady_clock;
  LatencyFixture& f = LatencyFixture::instance();
  const Preprocessor preprocessor;
  const GestureCloud& sample_cloud = f.dataset.samples.front().cloud;

  obs::set_metrics_enabled(true);
  obs::Registry::global().reset_all();  // profile only the measured region

  obs::Histogram& pre_ms = obs::histogram("gp.bench.preprocess_ms");
  obs::Histogram& infer_ms = obs::histogram("gp.bench.classify_ms");
  obs::Histogram& total_ms = obs::histogram("gp.bench.end_to_end_ms");

  constexpr int kIters = 30;
  for (int i = 0; i < kIters; ++i) {
    const auto t0 = clock::now();
    const auto clouds = preprocessor.process(f.raw_recording);
    const auto t1 = clock::now();
    const InferenceResult result = f.system->classify(sample_cloud);
    const auto t2 = clock::now();
    benchmark::DoNotOptimize(clouds);
    benchmark::DoNotOptimize(result);
    pre_ms.observe(std::chrono::duration<double, std::milli>(t1 - t0).count());
    infer_ms.observe(std::chrono::duration<double, std::milli>(t2 - t1).count());
    total_ms.observe(std::chrono::duration<double, std::milli>(t2 - t0).count());
  }

  const auto row = [](const char* name, const obs::HistogramSnapshot& h) {
    std::cout << "  " << name << ": p50 " << bench::cell(h.quantile(0.5)) << "ms  p95 "
              << bench::cell(h.quantile(0.95)) << "ms  p99 " << bench::cell(h.quantile(0.99))
              << "ms  mean " << bench::cell(h.mean()) << "ms\n";
  };
  std::cout << "\nlatency quantiles over " << kIters << " runs (obs histograms)\n";
  row("preprocessing ", pre_ms.snapshot());
  row("classification", infer_ms.snapshot());
  row("end-to-end    ", total_ms.snapshot());

  // BENCH_latency_stages.json: top-level quantiles + GP_SPAN breakdown,
  // emitted through the canonical builder whose schema the golden tests pin.
  const std::string doc = obs::latency_stages_json(
      kIters,
      {{"preprocessing", pre_ms.snapshot()},
       {"classification_inference", infer_ms.snapshot()},
       {"end_to_end", total_ms.snapshot()}},
      obs::stage_snapshots(), serve_tick);

  const std::string path = output_dir() + "/BENCH_latency_stages.json";
  std::ofstream out(path);
  out << doc;
  std::cout << "wrote " << path << "\n";
}

// ------------------------------------------------------ serve tick profile

/// Exact interpolated quantile over a sorted sample vector.
double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// Streams the fixture recording into a serve::Server from kSessions
/// concurrent sessions, timing each engine tick (one frame per session +
/// one pump) and counting heap allocations per tick via mem::AllocCounter.
/// Two passes over the same server: "cold" (pools and arenas still
/// growing) and "steady" (everything warm — this is the gp::mem
/// before/after evidence for DESIGN.md §9). The zero-alloc *assertion*
/// lives in tests/test_mem.cpp; here we record the measured rates.
std::vector<obs::ServeTickProfile> run_serve_tick_profile() {
  LatencyFixture& f = LatencyFixture::instance();

  GesturePrintConfig config = bench::default_system_config();
  config.training.epochs = 4;  // must match the fixture's published model

  const std::string model_path = output_dir() + "/latency_serve_model.gpsy";
  f.system->save(model_path);
  serve::ModelRegistry registry(config);
  if (!registry.publish_file(model_path)) {
    std::cout << "serve tick profile skipped: could not publish " << model_path << "\n";
    return {};
  }

  serve::ServeConfig serve_config;
  serve_config.system = config;
  serve_config.batch_wait_us = 0;  // flush on every pump: latency-greedy
  serve::Server server(serve_config, registry);

  constexpr std::uint64_t kSessions = 4;
  const auto pass = [&](const char* phase) {
    obs::ServeTickProfile profile;
    profile.phase = phase;
    std::vector<double> tick_ms;
    tick_ms.reserve(f.raw_recording.size());
    mem::AllocCounter allocs;
    for (const FrameCloud& frame : f.raw_recording) {
      const auto t0 = std::chrono::steady_clock::now();
      for (std::uint64_t s = 1; s <= kSessions; ++s) (void)server.push_frame(s, frame);
      const auto results = server.pump();
      const auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(results);
      tick_ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    profile.ticks = tick_ms.size();
    profile.allocs_per_tick =
        profile.ticks > 0
            ? static_cast<double>(allocs.allocations()) / static_cast<double>(profile.ticks)
            : 0.0;
    std::sort(tick_ms.begin(), tick_ms.end());
    profile.p50_ms = sorted_quantile(tick_ms, 0.5);
    profile.p95_ms = sorted_quantile(tick_ms, 0.95);
    profile.p99_ms = sorted_quantile(tick_ms, 0.99);
    return profile;
  };

  // The second pass keeps the same server: sessions, pools, and shard
  // arenas enter it warm, so the delta isolates the allocator tax.
  std::vector<obs::ServeTickProfile> profiles;
  profiles.push_back(pass("cold"));
  profiles.push_back(pass("steady"));

  std::cout << "\nserve tick profile (" << kSessions << " sessions, "
            << f.raw_recording.size() << " ticks/pass)\n";
  for (const obs::ServeTickProfile& p : profiles) {
    std::cout << "  " << p.phase << ": p50 " << bench::cell(p.p50_ms) << "ms  p95 "
              << bench::cell(p.p95_ms) << "ms  p99 " << bench::cell(p.p99_ms) << "ms  "
              << bench::cell(p.allocs_per_tick) << " allocs/tick\n";
  }
  return profiles;
}

// ------------------------------------------------------ parallel scaling sweep

/// Best-of-`reps` wall time of `stage(ctx)` in milliseconds.
template <typename Fn>
double time_stage_ms(gp::exec::ExecContext& ctx, const Fn& stage, int reps = 3) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    stage(ctx);
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

using SweepStage = obs::SweepStageSeries;

/// Sweeps GP thread counts over three representative stages and writes
/// BENCH_parallel.json. Every stage produces bitwise-identical results at
/// each thread count (the gp::exec contract), so only time varies.
void run_parallel_sweep() {
  using namespace gp;
  std::vector<std::size_t> threads{1, 2, 4};
  const std::size_t hw = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  threads.push_back(hw);
  std::sort(threads.begin(), threads.end());
  threads.erase(std::unique(threads.begin(), threads.end()), threads.end());

  // Stage inputs, prepared once outside the timed region.
  Rng mat_rng(2024);
  nn::Tensor ma(384, 256);
  ma.randn(mat_rng, 1.0);
  nn::Tensor mb(256, 320);
  mb.randn(mat_rng, 1.0);

  DatasetScale scale;
  scale.max_users = 3;
  scale.reps = 4;
  DatasetSpec spec = gestureprint_spec(0, scale);
  spec.gestures.resize(4);

  exec::ExecContext prep_ctx(1);
  const Dataset train_data = generate_dataset(spec, prep_ctx);
  const std::vector<std::size_t> idx = all_indices(train_data);
  Rng prep_rng(7);
  const LabeledSamples labeled =
      prepare_subset(train_data, idx, LabelKind::kGesture, PrepConfig{}, prep_rng);
  TrainConfig train_config;
  train_config.epochs = 1;
  train_config.batch_size = 16;

  std::vector<SweepStage> stages{{"gemm_kernel", {}}, {"train_epoch", {}}, {"dataset_synthesis", {}}};
  for (const std::size_t t : threads) {
    exec::ExecContext ctx(t);
    stages[0].ms.push_back(time_stage_ms(ctx, [&](exec::ExecContext& c) {
      nn::Tensor out;
      for (int i = 0; i < 16; ++i) {
        nn::matmul(ma, mb, out, c);
        benchmark::DoNotOptimize(out);
      }
    }));
    stages[1].ms.push_back(time_stage_ms(
        ctx,
        [&](exec::ExecContext& c) {
          Rng rng(51);
          GesIDNetConfig net_config;
          net_config.num_classes = train_data.num_gestures();
          GesIDNet model(net_config, rng);
          const TrainStats stats = train_classifier(model, labeled, train_config, c);
          benchmark::DoNotOptimize(stats);
        },
        /*reps=*/2));
    stages[2].ms.push_back(time_stage_ms(
        ctx,
        [&](exec::ExecContext& c) {
          const Dataset d = generate_dataset(spec, c);
          benchmark::DoNotOptimize(d);
        },
        /*reps=*/2));
  }

  std::cout << "\nparallel scaling (best-of wall time, ms; speedup vs 1 thread)\n";
  for (const SweepStage& stage : stages) {
    std::cout << "  " << stage.name << ":";
    for (std::size_t i = 0; i < threads.size(); ++i) {
      const double speedup = stage.ms[0] / stage.ms[i];
      std::cout << "  " << threads[i] << "t " << bench::cell(stage.ms[i]) << "ms (x"
                << bench::cell(speedup) << ")";
    }
    std::cout << "\n";
  }

  const std::string path = output_dir() + "/BENCH_parallel.json";
  std::ofstream out(path);
  out << obs::parallel_sweep_json(hw, threads, stages);
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gp;
  bench::banner("time consumption per gesture sample", "Sec. VI-B5");
  std::cout << "paper (laptop CPU): preprocessing 405.93 ms, inference 677.14 ms,\n"
               "total 936.92 ms vs 2.43 s mean gesture duration. Shape to verify:\n"
               "total per-sample processing well below the gesture duration.\n\n";
  LatencyFixture::instance();  // train outside the measured region
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const std::vector<obs::ServeTickProfile> serve_tick = run_serve_tick_profile();
  run_latency_quantiles(serve_tick);
  run_parallel_sweep();
  obs::write_run_report("sec6b5_latency");
  return 0;
}
