// Blocked-GEMM + int8 kernel evidence (DESIGN.md §11, ROADMAP item 1).
//
// Times the cache-blocked/register-tiled kernels in src/nn/tensor.cpp
// against the retained naive references (src/nn/gemm_ref.hpp) across the
// layer shapes the GesIDNet forward/backward actually runs, plus one int8
// fused-layer row (FusedLinear kInt8 vs the f32 fused kernel). Every f32
// row re-runs the differential check inline — matmul/matmul_at bitwise,
// matmul_bt band-checked (see gemm_ref.hpp for why) — so a speedup number
// can never be reported for a kernel that drifted.
//
// Emits <output_dir>/BENCH_gemm.json (schema pinned by the
// `bench_gemm_schema` golden) and self-checks on the exit code:
//  1. every differential check passes;
//  2. the blocked kernels are not slower than the naive references overall
//     (geometric-mean speedup >= 1.0 across the swept shapes).
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "exec/exec.hpp"
#include "nn/fused.hpp"
#include "nn/gemm_ref.hpp"
#include "nn/layers.hpp"
#include "nn/tensor.hpp"
#include "obs/bench_json.hpp"

namespace {

using namespace gp;
using Clock = std::chrono::steady_clock;

struct Shape {
  std::size_t m, k, n;
};

/// Fills `t` with a mix of ReLU-style zeros and finite values — the
/// activation distribution the zero-skip fast paths actually see.
void fill(nn::Tensor& t, Rng& rng, double zero_fraction) {
  for (float& v : t.vec()) {
    v = rng.uniform(0.0, 1.0) < zero_fraction
            ? 0.0f
            : static_cast<float>(rng.uniform(-1.5, 1.5));
  }
}

double time_ms(const std::function<void()>& fn, int reps) {
  fn();  // warm
  const Clock::time_point t0 = Clock::now();
  for (int r = 0; r < reps; ++r) fn();
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count() /
         static_cast<double>(reps);
}

bool bitwise_equal(const nn::Tensor& a, const nn::Tensor& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.vec().data(), b.vec().data(), a.vec().size() * sizeof(float)) == 0;
}

/// Band check for matmul_bt: per element within a few ulps of the reference
/// (the contraction-mix tolerance documented in gemm_ref.hpp).
bool band_equal(const nn::Tensor& a, const nn::Tensor& b, std::size_t k_terms) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const double tol_scale = 8.0 * static_cast<double>(k_terms) *
                           static_cast<double>(std::numeric_limits<float>::epsilon());
  for (std::size_t i = 0; i < a.vec().size(); ++i) {
    const double x = a.vec()[i];
    const double y = b.vec()[i];
    const double mag = std::max({std::fabs(x), std::fabs(y), 1.0});
    if (std::fabs(x - y) > tol_scale * mag) return false;
  }
  return true;
}

}  // namespace

int main() {
  using namespace gp;
  bench::banner("gemm_bench", "DESIGN.md §11 (kernel evidence; not in the paper)");

  exec::ExecContext ctx;  // honors GP_THREADS like the real stack
  Rng rng(0xBE5C, 1);
  std::vector<obs::GemmBenchRow> rows;
  bool checks_ok = true;

  // Layer shapes from the GesIDNet MLP stacks and heads plus two larger
  // panels that exercise the k-tiling; batch dimension = micro-batch sizes.
  const std::vector<Shape> shapes{
      {32, 24, 32}, {64, 48, 64}, {64, 64, 96}, {64, 96, 128},
      {128, 128, 128}, {256, 64, 96},
  };

  for (const Shape& s : shapes) {
    nn::Tensor a(s.m, s.k), b(s.k, s.n), bt(s.n, s.k), at(s.k, s.m);
    fill(a, rng, 0.45);
    fill(b, rng, 0.0);
    fill(bt, rng, 0.0);
    fill(at, rng, 0.45);
    const double flops = 2.0 * static_cast<double>(s.m) * static_cast<double>(s.k) *
                         static_cast<double>(s.n);
    const int reps = std::max(4, static_cast<int>(4.0e7 / flops));

    struct Variant {
      const char* name;
      std::function<void(nn::Tensor&)> ref;
      std::function<void(nn::Tensor&)> opt;
      bool bitwise;
    };
    const std::vector<Variant> variants{
        {"matmul", [&](nn::Tensor& o) { nn::matmul_ref(a, b, o); },
         [&](nn::Tensor& o) { nn::matmul(a, b, o, ctx); }, true},
        {"matmul_bt", [&](nn::Tensor& o) { nn::matmul_bt_ref(a, bt, o); },
         [&](nn::Tensor& o) { nn::matmul_bt(a, bt, o, ctx); }, false},
        {"matmul_at", [&](nn::Tensor& o) { nn::matmul_at_ref(at, b, o); },
         [&](nn::Tensor& o) { nn::matmul_at(at, b, o, ctx); }, true},
    };
    for (const Variant& v : variants) {
      nn::Tensor ref_out, opt_out;
      v.ref(ref_out);
      v.opt(opt_out);
      const bool ok = v.bitwise ? bitwise_equal(ref_out, opt_out)
                                : band_equal(ref_out, opt_out, s.k);
      if (!ok) {
        std::cout << "FAIL: " << v.name << " m=" << s.m << " k=" << s.k << " n=" << s.n
                  << " diverged from the naive reference\n";
        checks_ok = false;
      }
      obs::GemmBenchRow row;
      row.kernel = v.name;
      row.m = s.m;
      row.k = s.k;
      row.n = s.n;
      row.ref_ms = time_ms([&] { v.ref(ref_out); }, reps);
      row.opt_ms = time_ms([&] { v.opt(opt_out); }, reps);
      row.speedup = row.opt_ms > 0.0 ? row.ref_ms / row.opt_ms : 0.0;
      row.gflops = row.opt_ms > 0.0 ? flops / (row.opt_ms * 1.0e6) : 0.0;
      row.check = v.bitwise ? "bitwise" : "band";
      rows.push_back(row);
      std::cout << "  " << row.kernel << " " << s.m << "x" << s.k << "x" << s.n << ": ref "
                << row.ref_ms << " ms, opt " << row.opt_ms << " ms (" << row.speedup
                << "x, " << row.gflops << " GFLOP/s, " << row.check << ")\n";
    }
  }

  // int8 fused-layer row: FusedLinear kInt8 vs the f32 fused kernel on a
  // representative (in, out) with ReLU-sparse activations. ref here is the
  // f32 fused forward, check is the band the quantization error allows.
  {
    const std::size_t in = 96, out = 128, batch = 64;
    Rng lrng(0xBE5C, 2);
    nn::Linear lin(in, out, lrng);
    nn::Tensor x(batch, in);
    fill(x, rng, 0.45);
    nn::FusedLinear f32(lin, nullptr, true);
    nn::FusedLinear i8(lin, nullptr, true, nn::QuantMode::kInt8);
    nn::Tensor y32, y8;
    const int reps = 200;
    obs::GemmBenchRow row;
    row.kernel = "fused_int8";
    row.m = batch;
    row.k = in;
    row.n = out;
    row.ref_ms = time_ms([&] { y32 = f32.forward(x, false); }, reps);
    row.opt_ms = time_ms([&] { y8 = i8.forward(x, false); }, reps);
    row.speedup = row.opt_ms > 0.0 ? row.ref_ms / row.opt_ms : 0.0;
    row.gflops = row.opt_ms > 0.0
                     ? 2.0 * static_cast<double>(batch * in * out) / (row.opt_ms * 1.0e6)
                     : 0.0;
    row.check = "band";
    rows.push_back(row);
    std::cout << "  fused_int8 " << batch << "x" << in << "x" << out << ": f32 "
              << row.ref_ms << " ms, int8 " << row.opt_ms << " ms (" << row.speedup
              << "x)\n";
  }

  const std::string json = obs::gemm_bench_json(ctx.threads(), rows);
  const std::string path = output_dir() + "/BENCH_gemm.json";
  std::ofstream(path) << json;
  std::cout << "\nWrote " << path << "\n";

  double log_sum = 0.0;
  std::size_t counted = 0;
  for (const obs::GemmBenchRow& r : rows) {
    if (r.kernel == "fused_int8" || r.speedup <= 0.0) continue;
    log_sum += std::log(r.speedup);
    ++counted;
  }
  const double geomean = counted > 0 ? std::exp(log_sum / static_cast<double>(counted)) : 0.0;
  std::cout << "Geomean blocked-vs-naive speedup: " << geomean << "x\n";
  bool ok = checks_ok;
  if (geomean < 1.0) {
    std::cout << "FAIL: blocked kernels slower than the naive reference overall\n";
    ok = false;
  }
  std::cout << (ok ? "GEMM invariants hold.\n" : "Invariants VIOLATED.\n");
  return ok ? 0 : 1;
}
