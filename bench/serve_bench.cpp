// gp::serve throughput sweep (DESIGN.md §8): N concurrent client sessions
// stream continuous multi-gesture recordings into the serving layer, which
// runs segmentation/featurization in the parallel shard drain and answers
// completed segments through fused, cross-session micro-batched GesIDNet
// forwards. The sequential baseline classifies the *same* segments one at a
// time through the offline GesturePrintSystem::classify() path (unfused,
// per-segment forward) — exactly what a caller without gp::serve would run.
//
// The sweep runs every (sessions, batch_max) cell twice — once with the f32
// fused snapshot (GP_QUANT off) and once with the int8 snapshot (DESIGN.md
// §11) — and adds a forward-isolated f32-vs-int8 head-to-head (the part of
// the serve tick quantization can actually touch; end-to-end serve time is
// diluted by segmentation/featurization, which the `quant` summary records
// honestly).
//
// Emits <output_dir>/BENCH_serve.json and self-checks the headline
// acceptance invariants on the exit code: at >= 8 concurrent sessions the
// best f32 serve cell must be >= 2x the sequential baseline, and the best
// int8 cell >= 3x (the ROADMAP-item-1 single-core throughput target).
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/config.hpp"
#include "datasets/catalog.hpp"
#include "eval/splits.hpp"
#include "gesidnet/trainer.hpp"
#include "obs/bench_json.hpp"
#include "obs/metrics.hpp"
#include "pipeline/preprocessor.hpp"
#include "serve/server.hpp"
#include "system/gestureprint.hpp"

namespace {

using namespace gp;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Sequential per-segment baseline: segment + preprocess each recording
/// (same pipeline work serve does), then classify() every segment one at a
/// time on the unfused system. Returns (segments, ms).
obs::ServeBaselineRow run_baseline(const std::vector<ContinuousRecording>& recordings,
                                   const GesturePrintConfig& config,
                                   const std::string& model_path) {
  obs::ServeBaselineRow row;
  row.sessions = recordings.size();
  GesturePrintSystem system(config);
  system.load(model_path);  // unfused: the offline classify() path

  const Clock::time_point start = Clock::now();
  const Preprocessor preprocessor;
  for (const ContinuousRecording& recording : recordings) {
    GestureSegmenter segmenter;
    auto consume = [&](const GestureSegment& segment) {
      const GestureCloud cloud = preprocessor.process_segment(segment.frames);
      ++row.segments;
      (void)system.classify(cloud);
    };
    for (const FrameCloud& frame : recording.frames) {
      segmenter.push(frame);
      for (const GestureSegment& s : segmenter.take_segments()) consume(s);
    }
    segmenter.finish();
    for (const GestureSegment& s : segmenter.take_segments()) consume(s);
  }
  row.ms = ms_since(start);
  return row;
}

/// One serve cell: round-robin interleaved streaming of every session's
/// frames with a pump per frame round, then a final drain. The per-cell
/// MetricsDelta baseline isolates this cell's gp.serve.* counter movement
/// from every previous cell's, so the cross-check against MicroBatcher
/// stats stays exact across the whole sweep.
obs::ServeSweepCell run_serve_cell(const std::vector<ContinuousRecording>& recordings,
                                   const serve::ServeConfig& serve_config,
                                   serve::ModelRegistry& registry, bool& counters_ok) {
  obs::ServeSweepCell cell;
  cell.sessions = recordings.size();
  cell.batch_max = serve_config.batch_max;
  cell.quant = nn::quant_mode_name(serve_config.quant);

  const obs::MetricsDelta delta;
  const Clock::time_point start = Clock::now();
  serve::Server server(serve_config, registry);
  std::size_t max_frames = 0;
  for (const ContinuousRecording& r : recordings) {
    max_frames = std::max(max_frames, r.frames.size());
  }
  std::vector<serve::ServeResult> results;
  for (std::size_t f = 0; f < max_frames; ++f) {
    for (std::size_t s = 0; s < recordings.size(); ++s) {
      if (f >= recordings[s].frames.size()) continue;
      (void)server.push_frame(static_cast<std::uint64_t>(s + 1), recordings[s].frames[f]);
    }
    for (serve::ServeResult& r : server.pump()) results.push_back(std::move(r));
  }
  for (serve::ServeResult& r : server.drain()) results.push_back(std::move(r));
  cell.ms = ms_since(start);

  const serve::MicroBatcher::Stats stats = server.batch_stats();
  cell.segments = stats.segments;
  cell.results = results.size();
  cell.batches = stats.batches;
  cell.abstained = stats.abstained;

  // Cross-check: this cell's counter deltas must agree with the batcher's
  // own tallies (catches double counting and cross-cell accumulation).
  if (obs::metrics_enabled()) {
    const std::uint64_t d_batches = delta.counter_delta("gp.serve.batches");
    const std::uint64_t d_segments = delta.counter_delta("gp.serve.segments");
    if (d_batches != stats.batches || d_segments != stats.segments) {
      std::cout << "FAIL: sessions=" << cell.sessions << " batch_max=" << cell.batch_max
                << " counter deltas (batches " << d_batches << ", segments " << d_segments
                << ") disagree with batcher stats (" << stats.batches << ", "
                << stats.segments << ")\n";
      counters_ok = false;
    }
    // Every batch answered by an int8 snapshot must be attributed to the
    // quantized-batch counter — and none when serving the f32 snapshot.
    const std::uint64_t d_quant = delta.counter_delta("gp.serve.batches.quant");
    const std::uint64_t want_quant =
        serve_config.quant == nn::QuantMode::kInt8 ? stats.batches : 0;
    if (d_quant != want_quant) {
      std::cout << "FAIL: sessions=" << cell.sessions << " batch_max=" << cell.batch_max
                << " quant=" << cell.quant << " gp.serve.batches.quant moved " << d_quant
                << " (want " << want_quant << ")\n";
      counters_ok = false;
    }
  }
  return cell;
}

/// Forward-isolated f32-vs-int8 head-to-head: the same featurized segments
/// through both fused gesture models, plus argmax agreement across both
/// classification heads' logits.
obs::ServeQuantSummary run_quant_head_to_head(const Dataset& dataset,
                                              const GesturePrintConfig& config,
                                              const std::string& model_path) {
  obs::ServeQuantSummary summary;
  GesturePrintSystem f32(config), i8(config);
  f32.load(model_path);
  i8.load(model_path);
  f32.fuse_for_inference(nn::QuantMode::kOff);
  i8.fuse_for_inference(nn::QuantMode::kInt8);

  Rng frng(0x5E12, 3);
  std::vector<FeaturizedSample> batch;
  for (std::size_t i = 0; i < 32; ++i) {
    batch.push_back(featurize(dataset.samples[i % dataset.samples.size()].cloud,
                              config.prep.features, frng));
  }

  const auto time_forward = [&](GesIDNet& model, int reps) {
    nn::Tensor out;
    (void)predict_logits(model, batch);  // warm
    const Clock::time_point start = Clock::now();
    for (int r = 0; r < reps; ++r) out = predict_logits(model, batch);
    return ms_since(start) / static_cast<double>(reps);
  };
  const int reps = 20;
  summary.measured = true;
  summary.f32_forward_ms = time_forward(f32.gesture_model(), reps);
  summary.int8_forward_ms = time_forward(i8.gesture_model(), reps);
  summary.forward_speedup = summary.int8_forward_ms > 0.0
                                ? summary.f32_forward_ms / summary.int8_forward_ms
                                : 0.0;

  const nn::Tensor l32 = predict_logits(f32.gesture_model(), batch);
  const nn::Tensor l8 = predict_logits(i8.gesture_model(), batch);
  for (std::size_t i = 0; i < l32.rows(); ++i) {
    std::size_t a32 = 0, a8 = 0;
    for (std::size_t c = 1; c < l32.cols(); ++c) {
      if (l32.at(i, c) > l32.at(i, a32)) a32 = c;
      if (l8.at(i, c) > l8.at(i, a8)) a8 = c;
    }
    if (a32 != a8) ++summary.argmax_mismatches;
  }
  return summary;
}

}  // namespace

int main() {
  using namespace gp;
  bench::banner("serve_bench", "DESIGN.md §8 (serving layer; not in the paper)");

  DatasetScale scale;
  scale.max_users = 3;
  scale.reps = 10;
  DatasetSpec spec = gestureprint_spec(1, scale);
  spec.gestures.resize(5);

  std::cout << "Training on " << spec.num_users << " users x " << spec.gestures.size()
            << " gestures...\n";
  const Dataset dataset = generate_dataset(spec);
  GesturePrintConfig config;
  config.training.epochs = 8;
  config.prep.augmentation.copies = 2;
  config.abstain_margin = 0.10;

  const std::string model_path = output_dir() + "/serve_bench_model.gpsy";
  {
    GesturePrintSystem trainer(config);
    Rng split_rng(3, 1);
    trainer.fit(dataset, stratified_split(dataset.gesture_labels(), 0.2, split_rng).train);
    trainer.save(model_path);
  }

  // One registry per quant mode (fused snapshot) shared by every serve cell
  // of that mode.
  serve::ModelRegistry registry_f32(config);
  serve::ModelRegistry registry_i8(config);
  if (!registry_f32.publish_file(model_path, nn::QuantMode::kOff) ||
      !registry_i8.publish_file(model_path, nn::QuantMode::kInt8)) {
    std::cout << "FAIL: could not publish " << model_path << "\n";
    return 1;
  }

  const std::vector<int> script{0, 3, 1, 4, 2, 0};
  const std::vector<std::size_t> sessions_swept{1, 4, 8, 16};
  const std::vector<std::size_t> batch_max_swept{1, 8, 32};

  // Pre-generate per-session recordings once: session s streams user
  // (s % users) performing the script, each from its own seed.
  std::vector<ContinuousRecording> all_recordings;
  for (std::size_t s = 0; s < sessions_swept.back(); ++s) {
    all_recordings.push_back(
        generate_recording(spec, s % spec.num_users, script, 20260806 + s));
  }

  std::vector<obs::ServeBaselineRow> baseline;
  std::vector<obs::ServeSweepCell> cells;
  bool counters_ok = true;
  for (std::size_t n : sessions_swept) {
    const std::vector<ContinuousRecording> recordings(all_recordings.begin(),
                                                      all_recordings.begin() + n);
    baseline.push_back(run_baseline(recordings, config, model_path));
    const obs::ServeBaselineRow& b = baseline.back();
    std::cout << "  sessions=" << n << " sequential: " << b.segments << " segments in "
              << b.ms << " ms\n";
    for (std::size_t bm : batch_max_swept) {
      for (const nn::QuantMode mode : {nn::QuantMode::kOff, nn::QuantMode::kInt8}) {
        serve::ServeConfig serve_config;
        serve_config.system = config;
        serve_config.batch_max = bm;
        serve_config.batch_wait_us = 0;  // flush on every pump: latency-greedy
        serve_config.quant = mode;
        serve::ModelRegistry& registry =
            mode == nn::QuantMode::kInt8 ? registry_i8 : registry_f32;
        cells.push_back(run_serve_cell(recordings, serve_config, registry, counters_ok));
        obs::ServeSweepCell& cell = cells.back();
        cell.speedup = cell.ms > 0.0 ? b.ms / cell.ms : 0.0;
        std::cout << "  sessions=" << n << " batch_max=" << bm << " quant=" << cell.quant
                  << " serve: " << cell.segments << " segments, " << cell.batches
                  << " batches, " << cell.ms << " ms (speedup " << cell.speedup << "x)\n";
      }
    }
  }

  obs::ServeQuantSummary quant = run_quant_head_to_head(dataset, config, model_path);
  {
    // End-to-end serve ratio at the largest session count: best f32 cell
    // over best int8 cell (Amdahl-honest next to forward_speedup).
    double best_f32 = 0.0, best_i8 = 0.0;
    for (const obs::ServeSweepCell& cell : cells) {
      if (cell.sessions != sessions_swept.back()) continue;
      double& best = cell.quant == "int8" ? best_i8 : best_f32;
      if (cell.ms > 0.0) best = best == 0.0 ? cell.ms : std::min(best, cell.ms);
    }
    quant.serve_speedup = best_i8 > 0.0 ? best_f32 / best_i8 : 0.0;
  }
  std::cout << "  quant head-to-head: f32 forward " << quant.f32_forward_ms
            << " ms, int8 " << quant.int8_forward_ms << " ms (forward "
            << quant.forward_speedup << "x, serve " << quant.serve_speedup
            << "x, argmax mismatches " << quant.argmax_mismatches << "/32)\n";

  const std::string json =
      obs::serve_bench_json(sessions_swept, batch_max_swept, baseline, cells, quant);
  const std::string path = output_dir() + "/BENCH_serve.json";
  std::ofstream(path) << json;
  std::cout << "\nWrote " << path << "\n";

  // Self-check (CI gates on the exit code, no artifact parsing needed):
  //  1. every serve cell answered every segment it admitted;
  //  2. per-cell gp.serve.* counter deltas matched the batcher stats
  //     (including exact gp.serve.batches.quant attribution);
  //  3. at >= 8 sessions, the best f32 cell is >= 2x the sequential
  //     baseline and the best int8 cell is >= 3x (throughput-per-core,
  //     DESIGN.md §11).
  bool ok = counters_ok;
  double best_f32_8plus = 0.0;
  double best_i8_8plus = 0.0;
  for (const obs::ServeSweepCell& cell : cells) {
    if (cell.results != cell.segments) {
      std::cout << "FAIL: sessions=" << cell.sessions << " batch_max=" << cell.batch_max
                << " quant=" << cell.quant << " answered " << cell.results << "/"
                << cell.segments << " segments\n";
      ok = false;
    }
    if (cell.sessions >= 8) {
      double& best = cell.quant == "int8" ? best_i8_8plus : best_f32_8plus;
      best = std::max(best, cell.speedup);
    }
  }
  if (best_f32_8plus < 2.0) {
    std::cout << "FAIL: best f32 speedup at >= 8 sessions is " << best_f32_8plus
              << "x (< 2x)\n";
    ok = false;
  } else {
    std::cout << "Best f32 speedup at >= 8 sessions: " << best_f32_8plus << "x (>= 2x)\n";
  }
  if (best_i8_8plus < 3.0) {
    std::cout << "FAIL: best int8 speedup at >= 8 sessions is " << best_i8_8plus
              << "x (< 3x)\n";
    ok = false;
  } else {
    std::cout << "Best int8 speedup at >= 8 sessions: " << best_i8_8plus << "x (>= 3x)\n";
  }
  std::cout << (ok ? "Serving invariants hold.\n" : "Invariants VIOLATED.\n");
  return ok ? 0 : 1;
}
