// gp::serve throughput sweep (DESIGN.md §8): N concurrent client sessions
// stream continuous multi-gesture recordings into the serving layer, which
// runs segmentation/featurization in the parallel shard drain and answers
// completed segments through fused, cross-session micro-batched GesIDNet
// forwards. The sequential baseline classifies the *same* segments one at a
// time through the offline GesturePrintSystem::classify() path (unfused,
// per-segment forward) — exactly what a caller without gp::serve would run.
//
// Emits <output_dir>/BENCH_serve.json and self-checks the headline
// acceptance invariant on the exit code: at >= 8 concurrent sessions the
// best serve cell must be >= 2x the sequential baseline.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/config.hpp"
#include "datasets/catalog.hpp"
#include "eval/splits.hpp"
#include "obs/bench_json.hpp"
#include "obs/metrics.hpp"
#include "pipeline/preprocessor.hpp"
#include "serve/server.hpp"
#include "system/gestureprint.hpp"

namespace {

using namespace gp;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Sequential per-segment baseline: segment + preprocess each recording
/// (same pipeline work serve does), then classify() every segment one at a
/// time on the unfused system. Returns (segments, ms).
obs::ServeBaselineRow run_baseline(const std::vector<ContinuousRecording>& recordings,
                                   const GesturePrintConfig& config,
                                   const std::string& model_path) {
  obs::ServeBaselineRow row;
  row.sessions = recordings.size();
  GesturePrintSystem system(config);
  system.load(model_path);  // unfused: the offline classify() path

  const Clock::time_point start = Clock::now();
  const Preprocessor preprocessor;
  for (const ContinuousRecording& recording : recordings) {
    GestureSegmenter segmenter;
    auto consume = [&](const GestureSegment& segment) {
      const GestureCloud cloud = preprocessor.process_segment(segment.frames);
      ++row.segments;
      (void)system.classify(cloud);
    };
    for (const FrameCloud& frame : recording.frames) {
      segmenter.push(frame);
      for (const GestureSegment& s : segmenter.take_segments()) consume(s);
    }
    segmenter.finish();
    for (const GestureSegment& s : segmenter.take_segments()) consume(s);
  }
  row.ms = ms_since(start);
  return row;
}

/// One serve cell: round-robin interleaved streaming of every session's
/// frames with a pump per frame round, then a final drain. The per-cell
/// MetricsDelta baseline isolates this cell's gp.serve.* counter movement
/// from every previous cell's, so the cross-check against MicroBatcher
/// stats stays exact across the whole sweep.
obs::ServeSweepCell run_serve_cell(const std::vector<ContinuousRecording>& recordings,
                                   const serve::ServeConfig& serve_config,
                                   serve::ModelRegistry& registry, bool& counters_ok) {
  obs::ServeSweepCell cell;
  cell.sessions = recordings.size();
  cell.batch_max = serve_config.batch_max;

  const obs::MetricsDelta delta;
  const Clock::time_point start = Clock::now();
  serve::Server server(serve_config, registry);
  std::size_t max_frames = 0;
  for (const ContinuousRecording& r : recordings) {
    max_frames = std::max(max_frames, r.frames.size());
  }
  std::vector<serve::ServeResult> results;
  for (std::size_t f = 0; f < max_frames; ++f) {
    for (std::size_t s = 0; s < recordings.size(); ++s) {
      if (f >= recordings[s].frames.size()) continue;
      (void)server.push_frame(static_cast<std::uint64_t>(s + 1), recordings[s].frames[f]);
    }
    for (serve::ServeResult& r : server.pump()) results.push_back(std::move(r));
  }
  for (serve::ServeResult& r : server.drain()) results.push_back(std::move(r));
  cell.ms = ms_since(start);

  const serve::MicroBatcher::Stats stats = server.batch_stats();
  cell.segments = stats.segments;
  cell.results = results.size();
  cell.batches = stats.batches;
  cell.abstained = stats.abstained;

  // Cross-check: this cell's counter deltas must agree with the batcher's
  // own tallies (catches double counting and cross-cell accumulation).
  if (obs::metrics_enabled()) {
    const std::uint64_t d_batches = delta.counter_delta("gp.serve.batches");
    const std::uint64_t d_segments = delta.counter_delta("gp.serve.segments");
    if (d_batches != stats.batches || d_segments != stats.segments) {
      std::cout << "FAIL: sessions=" << cell.sessions << " batch_max=" << cell.batch_max
                << " counter deltas (batches " << d_batches << ", segments " << d_segments
                << ") disagree with batcher stats (" << stats.batches << ", "
                << stats.segments << ")\n";
      counters_ok = false;
    }
  }
  return cell;
}

}  // namespace

int main() {
  using namespace gp;
  bench::banner("serve_bench", "DESIGN.md §8 (serving layer; not in the paper)");

  DatasetScale scale;
  scale.max_users = 3;
  scale.reps = 10;
  DatasetSpec spec = gestureprint_spec(1, scale);
  spec.gestures.resize(5);

  std::cout << "Training on " << spec.num_users << " users x " << spec.gestures.size()
            << " gestures...\n";
  const Dataset dataset = generate_dataset(spec);
  GesturePrintConfig config;
  config.training.epochs = 8;
  config.prep.augmentation.copies = 2;
  config.abstain_margin = 0.10;

  const std::string model_path = output_dir() + "/serve_bench_model.gpsy";
  {
    GesturePrintSystem trainer(config);
    Rng split_rng(3, 1);
    trainer.fit(dataset, stratified_split(dataset.gesture_labels(), 0.2, split_rng).train);
    trainer.save(model_path);
  }

  // One registry (fused snapshot) shared by every serve cell.
  serve::ModelRegistry registry(config);
  if (!registry.publish_file(model_path)) {
    std::cout << "FAIL: could not publish " << model_path << "\n";
    return 1;
  }

  const std::vector<int> script{0, 3, 1, 4, 2, 0};
  const std::vector<std::size_t> sessions_swept{1, 4, 8, 16};
  const std::vector<std::size_t> batch_max_swept{1, 8, 32};

  // Pre-generate per-session recordings once: session s streams user
  // (s % users) performing the script, each from its own seed.
  std::vector<ContinuousRecording> all_recordings;
  for (std::size_t s = 0; s < sessions_swept.back(); ++s) {
    all_recordings.push_back(
        generate_recording(spec, s % spec.num_users, script, 20260806 + s));
  }

  std::vector<obs::ServeBaselineRow> baseline;
  std::vector<obs::ServeSweepCell> cells;
  bool counters_ok = true;
  for (std::size_t n : sessions_swept) {
    const std::vector<ContinuousRecording> recordings(all_recordings.begin(),
                                                      all_recordings.begin() + n);
    baseline.push_back(run_baseline(recordings, config, model_path));
    const obs::ServeBaselineRow& b = baseline.back();
    std::cout << "  sessions=" << n << " sequential: " << b.segments << " segments in "
              << b.ms << " ms\n";
    for (std::size_t bm : batch_max_swept) {
      serve::ServeConfig serve_config;
      serve_config.system = config;
      serve_config.batch_max = bm;
      serve_config.batch_wait_us = 0;  // flush on every pump: latency-greedy
      cells.push_back(run_serve_cell(recordings, serve_config, registry, counters_ok));
      obs::ServeSweepCell& cell = cells.back();
      cell.speedup = cell.ms > 0.0 ? b.ms / cell.ms : 0.0;
      std::cout << "  sessions=" << n << " batch_max=" << bm << " serve: "
                << cell.segments << " segments, " << cell.batches << " batches, "
                << cell.ms << " ms (speedup " << cell.speedup << "x)\n";
    }
  }

  const std::string json =
      obs::serve_bench_json(sessions_swept, batch_max_swept, baseline, cells);
  const std::string path = output_dir() + "/BENCH_serve.json";
  std::ofstream(path) << json;
  std::cout << "\nWrote " << path << "\n";

  // Self-check (CI gates on the exit code, no artifact parsing needed):
  //  1. every serve cell answered every segment it admitted;
  //  2. per-cell gp.serve.* counter deltas matched the batcher stats;
  //  3. at >= 8 sessions, the best cell is >= 2x the sequential baseline.
  bool ok = counters_ok;
  double best_speedup_8plus = 0.0;
  for (const obs::ServeSweepCell& cell : cells) {
    if (cell.results != cell.segments) {
      std::cout << "FAIL: sessions=" << cell.sessions << " batch_max=" << cell.batch_max
                << " answered " << cell.results << "/" << cell.segments << " segments\n";
      ok = false;
    }
    if (cell.sessions >= 8) best_speedup_8plus = std::max(best_speedup_8plus, cell.speedup);
  }
  if (best_speedup_8plus < 2.0) {
    std::cout << "FAIL: best speedup at >= 8 sessions is " << best_speedup_8plus
              << "x (< 2x)\n";
    ok = false;
  } else {
    std::cout << "Best speedup at >= 8 sessions: " << best_speedup_8plus << "x (>= 2x)\n";
  }
  std::cout << (ok ? "Serving invariants hold.\n" : "Invariants VIOLATED.\n");
  return ok ? 0 : 1;
}
