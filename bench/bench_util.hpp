// Shared helpers for the bench harness binaries.
#pragma once

#include <string>

#include "common/config.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "datasets/catalog.hpp"
#include "eval/splits.hpp"
#include "system/gestureprint.hpp"

namespace gp::bench {

/// Prints the standard bench banner (experiment id + active scale).
void banner(const std::string& experiment, const std::string& paper_ref);

/// Training setup used by most benches at the active scale.
GesturePrintConfig default_system_config();

/// Stratified 8:2 split of a dataset (the paper's protocol).
Split split_dataset(const Dataset& dataset, double test_fraction = 0.2,
                    std::uint64_t seed = 1234);

/// Fits + evaluates one system on one dataset with the default protocol.
SystemEvaluation run_system(const Dataset& dataset, const GesturePrintConfig& config,
                            std::uint64_t seed = 1234);

/// "0.9887" style short formatting for table cells; "/" for NaN.
std::string cell(double value);

}  // namespace gp::bench
