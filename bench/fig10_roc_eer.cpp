// Fig. 10 reproduction: ROC curves and EER of user identification per
// dataset. The paper reports an average EER of 0.75% with no dataset
// exceeding 1.6%.
//
// To keep this bench self-contained (it does not depend on table2 having
// run) it trains on a reduced gesture subset per dataset — EER measures the
// genuine/impostor score separation of the ID models, which a subset
// exercises just as well.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "datasets/cache.hpp"

int main() {
  using namespace gp;
  bench::banner("user-identification ROC / EER", "Fig. 10");

  const DatasetScale scale = DatasetScale::from_run_scale();
  struct Entry {
    std::string label;
    DatasetSpec spec;
    std::size_t gesture_subset;
    double paper_eer;
  };
  std::vector<Entry> entries{
      {"GesturePrint/Office", gestureprint_spec(0, scale), 5, 0.008},
      {"GesturePrint/Meeting", gestureprint_spec(1, scale), 5, 0.004},
      {"mHomeGes/Home", mhomeges_spec({1.2}, scale), 5, 0.007},
      {"mTransSee/Home", mtranssee_spec({1.2}, scale), 5, 0.016},
  };

  Table table({"dataset", "EER paper", "EER ours", "UIAUC ours"});
  CsvWriter roc_csv(output_dir() + "/fig10_roc.csv", {"dataset", "threshold", "fpr", "tpr"});
  CsvWriter eer_csv(output_dir() + "/fig10_eer.csv", {"dataset", "eer", "auc"});

  double eer_sum = 0.0;
  double eer_worst = 0.0;
  for (auto& entry : entries) {
    entry.spec.gestures.resize(std::min(entry.spec.gestures.size(), entry.gesture_subset));
    const Dataset dataset = generate_dataset_cached(entry.spec);
    const Split split = bench::split_dataset(dataset);
    GesturePrintSystem system(bench::default_system_config());
    system.fit(dataset, split.train);
    const SystemEvaluation eval = system.evaluate(dataset, split.test);

    const double eer = eval.user_roc.eer();
    eer_sum += eer;
    eer_worst = std::max(eer_worst, eer);
    table.add_row({entry.label, Table::pct(entry.paper_eer), Table::pct(eer),
                   bench::cell(eval.uiauc)});
    eer_csv.write_row({entry.label, bench::cell(eer), bench::cell(eval.user_roc.auc)});

    // Thin the curve for plotting (<= 200 points).
    const auto& points = eval.user_roc.points;
    const std::size_t stride = std::max<std::size_t>(1, points.size() / 200);
    for (std::size_t i = 0; i < points.size(); i += stride) {
      roc_csv.write_row({entry.label, bench::cell(points[i].threshold),
                         bench::cell(points[i].fpr), bench::cell(points[i].tpr)});
    }
    std::cout << "[" << entry.label << ": EER=" << Table::pct(eer) << "]\n";
  }

  std::cout << '\n';
  table.print();
  std::cout << "\nPaper shape: average EER well below ~2% (paper: 0.75%), none far above;\n"
               "measured average "
            << Table::pct(eer_sum / static_cast<double>(entries.size())) << ", worst "
            << Table::pct(eer_worst) << ".\nCSV: " << roc_csv.path() << ", " << eer_csv.path()
            << "\n";
  return 0;
}
