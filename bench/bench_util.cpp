#include "bench_util.hpp"

#include <cmath>
#include <cstdio>
#include <iostream>

#include "eval/splits.hpp"

namespace gp::bench {

void banner(const std::string& experiment, const std::string& paper_ref) {
  std::cout << "\n=== GesturePrint reproduction: " << experiment << " (" << paper_ref << ")"
            << " | scale=" << run_scale_name() << " ===\n";
}

GesturePrintConfig default_system_config() {
  GesturePrintConfig config;
  config.training.epochs = scale_pick<std::size_t>(5, 8, 14);
  config.training.batch_size = 32;
  config.training.lr = 2e-3;
  config.prep.augmentation.copies = scale_pick(1, 2, 3);
  config.prep.augment = true;
  return config;
}

Split split_dataset(const Dataset& dataset, double test_fraction, std::uint64_t seed) {
  Rng rng(seed, 0xABCDEF12345ULL);
  // Stratify on the (gesture, user) pair so every pair appears in train and
  // test whenever it has enough repetitions.
  std::vector<int> strata;
  strata.reserve(dataset.samples.size());
  const int num_users = static_cast<int>(dataset.num_users());
  for (const auto& s : dataset.samples) strata.push_back(s.gesture * num_users + s.user);
  return stratified_split(strata, test_fraction, rng);
}

SystemEvaluation run_system(const Dataset& dataset, const GesturePrintConfig& config,
                            std::uint64_t seed) {
  const Split split = split_dataset(dataset, 0.2, seed);
  GesturePrintSystem system(config);
  system.fit(dataset, split.train);
  return system.evaluate(dataset, split.test);
}

std::string cell(double value) {
  if (std::isnan(value)) return "/";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", value);
  return buf;
}

}  // namespace gp::bench
