// Robustness sweep (DESIGN.md §7): streams one continuous recording through
// the FaultInjector at increasing severity for every fault family, runs the
// full streaming runtime (segmentation -> preprocessing -> classification
// with the abstention gate armed), and emits the graceful-degradation
// evidence to <output_dir>/BENCH_faults.json.
//
// Invariants this artifact demonstrates:
//  * severity 0 of every family is bitwise the clean baseline (the off path
//    of the injector is free);
//  * at maximum severity the runtime still completes with zero uncaught
//    exceptions — degraded captures become typed rejections or kAbstain
//    answers, never crashes or silent garbage.
#include <exception>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/config.hpp"
#include "datasets/catalog.hpp"
#include "eval/splits.hpp"
#include "faults/faults.hpp"
#include "obs/bench_json.hpp"
#include "obs/metrics.hpp"
#include "pipeline/preprocessor.hpp"
#include "system/gestureprint.hpp"

namespace {

using namespace gp;

struct StreamOutcome {
  obs::FaultSweepRow row;
};

/// Streams `recording` through an injector configured by `config` and the
/// freshly-loaded system at `model_path`. Per-frame and per-segment work is
/// fenced so a fault can only ever produce a counted exception, never kill
/// the sweep.
obs::FaultSweepRow run_cell(const ContinuousRecording& recording,
                            const std::vector<int>& script,
                            const GesturePrintConfig& system_config,
                            const std::string& model_path,
                            const faults::FaultConfig& fault_config,
                            double severity, bool& counters_ok) {
  obs::FaultSweepRow row;
  row.severity = severity;
  row.frames_in = recording.frames.size();

  // Per-cell counter baseline: gp.faults.* counters are process-global and
  // keep accumulating across the sweep; the delta isolates this cell.
  const obs::MetricsDelta delta;

  // Fresh system per cell: construction reseeds the internal RNG, load()
  // restores the exact trained weights, so classification is a pure
  // function of the delivered cloud sequence (severity 0 == clean run).
  GesturePrintSystem system(system_config);
  system.load(model_path);

  faults::FaultInjector injector(fault_config);
  GestureSegmenter segmenter;
  const Preprocessor preprocessor;
  std::size_t detected = 0;

  auto consume = [&](const GestureSegment& segment) {
    try {
      const GestureCloud cloud = preprocessor.process_segment(segment.frames);
      ++row.segments;
      const InferenceResult result = system.classify(cloud);
      const int truth = detected < script.size() ? script[detected] : -1;
      ++detected;
      if (result.abstained) {
        ++row.abstained;
        return;
      }
      ++row.classified;
      if (truth >= 0 && result.gesture == truth) ++row.correct;
    } catch (const std::exception&) {
      ++row.uncaught_exceptions;
    }
  };

  for (const auto& frame : recording.frames) {
    try {
      const std::optional<FrameCloud> delivered = injector.apply(frame);
      if (!delivered) continue;
      ++row.frames_delivered;  // counted here: the off-path injector keeps no tally
      segmenter.push(*delivered);
    } catch (const std::exception&) {
      ++row.uncaught_exceptions;
      continue;
    }
    for (const GestureSegment& segment : segmenter.take_segments()) consume(segment);
  }
  segmenter.finish();
  for (const GestureSegment& segment : segmenter.take_segments()) consume(segment);

  const faults::FaultInjector::Counts& counts = injector.counts();
  row.frames_dropped = counts.frames_dropped;
  row.ghost_points = counts.ghost_points;
  row.points_removed = counts.points_removed;

  // Cross-check: this cell's gp.faults.* counter deltas must equal the
  // injector's own tallies (catches cross-cell accumulation bleeding into
  // the artifact and double counting inside the injector).
  if (obs::metrics_enabled()) {
    const std::uint64_t d_dropped = delta.counter_delta("gp.faults.frames_dropped");
    const std::uint64_t d_ghost = delta.counter_delta("gp.faults.ghost_points");
    if (d_dropped != counts.frames_dropped || d_ghost != counts.ghost_points) {
      std::cout << "FAIL: severity=" << severity << " counter deltas (dropped " << d_dropped
                << ", ghost " << d_ghost << ") disagree with injector counts ("
                << counts.frames_dropped << ", " << counts.ghost_points << ")\n";
      counters_ok = false;
    }
  }
  return row;
}

}  // namespace

int main() {
  using namespace gp;
  bench::banner("fault_sweep", "DESIGN.md §7 (robustness; not in the paper)");

  DatasetScale scale;
  scale.max_users = 3;
  scale.reps = 10;
  DatasetSpec spec = gestureprint_spec(1, scale);
  spec.gestures.resize(5);

  std::cout << "Training on " << spec.num_users << " users x " << spec.gestures.size()
            << " gestures...\n";
  const Dataset dataset = generate_dataset(spec);
  GesturePrintConfig config;
  config.training.epochs = 8;
  config.prep.augmentation.copies = 2;
  config.abstain_margin = 0.10;  // arm the gate: refuse ambiguous captures

  const std::string model_path = output_dir() + "/fault_sweep_model.gpsy";
  {
    GesturePrintSystem trainer(config);
    Rng split_rng(3, 1);
    trainer.fit(dataset, stratified_split(dataset.gesture_labels(), 0.2, split_rng).train);
    trainer.save(model_path);
  }

  // One continuous recording reused across every cell: user 1 performs 12
  // gestures with natural pauses.
  const std::vector<int> script{0, 3, 1, 4, 2, 0, 2, 4, 1, 3, 0, 1};
  const ContinuousRecording recording = generate_recording(spec, 1, script, 20260704);
  std::cout << "Streaming " << recording.frames.size() << " frames ("
            << script.size() << " gestures) per cell...\n\n";

  const std::vector<double> severities{0.0, 0.25, 0.5, 1.0};
  std::vector<obs::FaultFamilySeries> families;
  bool counters_ok = true;

  auto sweep = [&](const std::string& kind_name,
                   auto&& make_config) {
    obs::FaultFamilySeries series;
    series.kind = kind_name;
    for (double severity : severities) {
      series.rows.push_back(run_cell(recording, script, config, model_path,
                                     make_config(severity), severity, counters_ok));
      const obs::FaultSweepRow& r = series.rows.back();
      std::cout << "  " << kind_name << " s=" << severity << ": " << r.frames_delivered
                << "/" << r.frames_in << " frames, " << r.segments << " segments, "
                << r.classified << " classified, " << r.abstained << " abstained, "
                << r.correct << " correct, " << r.uncaught_exceptions << " exceptions\n";
    }
    families.push_back(std::move(series));
  };

  for (faults::FaultKind kind : faults::all_fault_kinds()) {
    sweep(faults::fault_kind_name(kind), [&](double s) {
      return faults::FaultConfig::preset(kind, s);
    });
  }
  sweep("mixed", [&](double s) { return faults::FaultConfig::mixed(s); });

  const std::string json =
      obs::fault_sweep_json(config.abstain_margin, severities, families);
  const std::string path = output_dir() + "/BENCH_faults.json";
  std::ofstream(path) << json;
  std::cout << "\nWrote " << path << "\n";

  // Self-check the degradation invariants (plus the per-cell counter
  // cross-check above) so CI can gate on the exit code without parsing the
  // artifact.
  bool ok = counters_ok;
  std::uint64_t worst_abstained = 0;
  for (const auto& family : families) {
    const auto& clean = families.front().rows.front();
    const auto& zero = family.rows.front();
    if (zero.segments != clean.segments || zero.classified != clean.classified ||
        zero.correct != clean.correct) {
      std::cout << "FAIL: " << family.kind << " severity 0 deviates from clean baseline\n";
      ok = false;
    }
    for (const auto& row : family.rows) {
      if (row.uncaught_exceptions != 0) {
        std::cout << "FAIL: " << family.kind << " s=" << row.severity
                  << " had uncaught exceptions\n";
        ok = false;
      }
    }
    worst_abstained += family.rows.back().abstained;
  }
  if (worst_abstained == 0) {
    std::cout << "FAIL: no abstentions at maximum severity (gate never fired)\n";
    ok = false;
  }
  std::cout << (ok ? "Graceful degradation invariants hold.\n" : "Invariants VIOLATED.\n");
  return ok ? 0 : 1;
}
