// Fig. 14 reproduction: ablation of data augmentation and the attention-
// based multilevel feature fusion, on both tasks.
//
// Expected shape (paper): both components improve GRA and UIA; the fusion
// module contributes the most, especially at large user scale (the 'Home'
// scenario from mTransSee).
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "datasets/cache.hpp"

int main() {
  using namespace gp;
  bench::banner("ablation: data augmentation & multilevel fusion", "Fig. 14");

  const DatasetScale scale = DatasetScale::from_run_scale();
  struct Entry {
    std::string label;
    DatasetSpec spec;
    std::size_t gesture_subset;
  };
  std::vector<Entry> entries{
      {"Office", gestureprint_spec(0, scale), 6},
      {"Meeting Room", gestureprint_spec(1, scale), 6},
      {"Home (mTransSee)", mtranssee_spec({1.2}, scale), 5},
  };
  // The full three-scenario sweep belongs to full scale; default keeps the
  // small-user Office and large-user Home scenarios (the contrast Fig. 14
  // highlights), small keeps one.
  if (run_scale() == RunScale::kSmall) {
    entries.resize(1);
  } else if (run_scale() == RunScale::kDefault) {
    entries.erase(entries.begin() + 1);  // drop Meeting Room
  }

  struct Variant {
    std::string label;
    bool augment;
    bool fusion;
  };
  const std::vector<Variant> variants{
      {"full", true, true},
      {"w/o DA", false, true},
      {"w/o fusion", true, false},
      {"w/o both", false, false},
  };

  Table table({"scenario", "variant", "GRA", "UIA"});
  CsvWriter csv(output_dir() + "/fig14_ablation.csv",
                {"scenario", "variant", "gra", "uia"});

  for (auto& entry : entries) {
    entry.spec.gestures.resize(std::min(entry.spec.gestures.size(), entry.gesture_subset));
    const Dataset dataset = generate_dataset_cached(entry.spec);
    const Split split = bench::split_dataset(dataset);

    double full_gra = 0.0;
    double full_uia = 0.0;
    double nofusion_uia = 0.0;
    for (const auto& variant : variants) {
      GesturePrintConfig config = bench::default_system_config();
      config.prep.augment = variant.augment;
      config.network.enable_fusion = variant.fusion;
      GesturePrintSystem system(config);
      system.fit(dataset, split.train);
      const SystemEvaluation eval = system.evaluate(dataset, split.test);

      table.add_row({entry.label, variant.label, bench::cell(eval.gra), bench::cell(eval.uia)});
      csv.write_row({entry.label, variant.label, bench::cell(eval.gra), bench::cell(eval.uia)});
      std::cout << "[" << entry.label << " / " << variant.label
                << ": GRA=" << Table::pct(eval.gra) << " UIA=" << Table::pct(eval.uia) << "]\n";
      if (variant.label == "full") {
        full_gra = eval.gra;
        full_uia = eval.uia;
      }
      if (variant.label == "w/o fusion") nofusion_uia = eval.uia;
    }
    std::cout << "[" << entry.label << ": fusion contributes "
              << Table::num(100.0 * (full_uia - nofusion_uia), 2) << " UIA points; full GRA "
              << Table::pct(full_gra) << "]\n";
  }

  std::cout << '\n';
  table.print();
  std::cout << "\nPaper shape: 'full' >= every ablated variant on both tasks; the fusion\n"
               "module's UIA contribution is largest on the large-user-scale Home scenario.\n"
               "CSV: " << csv.path() << "\n";
  return 0;
}
