// gp::enroll end-to-end evidence (DESIGN.md §13): open-set EER before vs
// after enrollment, plus the live serve-path story — an unknown performer's
// segments are novelty-rejected, buffered into a candidate, head-only
// fine-tuned into a widened user head, and hot-swap published with zero
// dropped results. Emits <output_dir>/BENCH_enroll.json and self-checks the
// headline invariants on the exit code:
//   1. the swap is lossless: the enrollment run produces exactly as many
//      results as an enrollment-free reference run of the same streams;
//   2. at least one user is enrolled and the registry version advances;
//   3. open-set EER does not get worse after enrollment (the newcomer's
//      held-out samples move from impostor-like to genuine).
#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/config.hpp"
#include "datasets/catalog.hpp"
#include "enroll/enroll.hpp"
#include "eval/splits.hpp"
#include "obs/bench_json.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "system/gestureprint.hpp"
#include "system/open_set.hpp"

namespace {

using namespace gp;

/// Equal-error rate of a genuine/impostor novelty-score separation: sweep
/// the threshold over the pooled scores and report the point where the
/// false-rejection and false-acceptance rates cross.
double equal_error_rate(const std::vector<double>& genuine,
                        const std::vector<double>& impostor) {
  if (genuine.empty() || impostor.empty()) return 1.0;
  std::vector<double> thresholds = genuine;
  thresholds.insert(thresholds.end(), impostor.begin(), impostor.end());
  std::sort(thresholds.begin(), thresholds.end());
  double best_gap = 2.0;
  double eer = 1.0;
  for (const double t : thresholds) {
    std::size_t fr = 0;
    for (const double g : genuine) fr += g > t ? 1 : 0;
    std::size_t fa = 0;
    for (const double i : impostor) fa += i <= t ? 1 : 0;
    const double frr = static_cast<double>(fr) / static_cast<double>(genuine.size());
    const double far = static_cast<double>(fa) / static_cast<double>(impostor.size());
    const double gap = std::abs(frr - far);
    if (gap < best_gap || (gap == best_gap && (frr + far) / 2.0 < eer)) {
      best_gap = gap;
      eer = (frr + far) / 2.0;
    }
  }
  return eer;
}

/// Novelty scores of every sample in `dataset` (restricted to `indices`, or
/// all samples when empty) under `gallery`.
std::vector<double> novelty_scores(const BiometricGallery& gallery, const Dataset& dataset,
                                   const std::vector<std::size_t>& indices) {
  std::vector<double> scores;
  const auto score_one = [&](const GestureSample& s) {
    scores.push_back(gallery.novelty(s.gesture, biometric_stats(s.cloud)));
  };
  if (indices.empty()) {
    for (const GestureSample& s : dataset.samples) score_one(s);
  } else {
    for (const std::size_t i : indices) score_one(dataset.samples[i]);
  }
  return scores;
}

double accept_rate(const BiometricGallery& gallery, const std::vector<double>& scores) {
  if (scores.empty()) return 0.0;
  std::size_t accepted = 0;
  for (const double s : scores) accepted += gallery.accepts(s) ? 1 : 0;
  return static_cast<double>(accepted) / static_cast<double>(scores.size());
}

obs::EnrollOpenSetRow open_set_row(const std::string& phase, const BiometricGallery& gallery,
                                   const Dataset& enrolled_test,
                                   const std::vector<std::size_t>& test_idx,
                                   const Dataset& newcomer_heldout,
                                   const Dataset& stranger) {
  const std::vector<double> genuine_enrolled =
      novelty_scores(gallery, enrolled_test, test_idx);
  const std::vector<double> genuine_newcomer = novelty_scores(gallery, newcomer_heldout, {});
  const std::vector<double> impostor = novelty_scores(gallery, stranger, {});
  std::vector<double> genuine = genuine_enrolled;
  genuine.insert(genuine.end(), genuine_newcomer.begin(), genuine_newcomer.end());

  obs::EnrollOpenSetRow row;
  row.phase = phase;
  // The EER enrollment targets: can novelty scoring separate the (to-be-)
  // enrolled newcomer from people who stay strangers? Before enrollment both
  // cohorts are unseen, so this sits near chance; gallery anchors gained
  // during enrollment are what pull it down.
  row.eer = equal_error_rate(genuine_newcomer, impostor);
  row.threshold = gallery.threshold();
  row.genuine_accept = accept_rate(gallery, genuine);
  row.newcomer_reject = 1.0 - accept_rate(gallery, genuine_newcomer);
  std::cout << "  open-set[" << phase << "]: newcomer-vs-stranger EER=" << row.eer
            << " genuine_accept=" << row.genuine_accept
            << " newcomer_reject=" << row.newcomer_reject << " (threshold "
            << row.threshold << ")\n";
  return row;
}

}  // namespace

int main() {
  using namespace gp;
  bench::banner("enroll_bench", "DESIGN.md §13 (open-set enrollment; extends §IV-C)");

  // ---- world: enrolled cohort, a newcomer, and an always-stranger ---------
  DatasetScale scale;
  scale.max_users = 3;
  scale.reps = 8;
  DatasetSpec spec = gestureprint_spec(1, scale);
  spec.gestures.resize(3);
  const Dataset dataset = generate_dataset(spec);

  GesturePrintConfig config;
  config.training.epochs = 6;
  config.training.batch_size = 16;
  config.prep.augmentation.copies = 2;
  config.abstain_margin = 0.0;

  std::cout << "Training on " << spec.num_users << " users x " << spec.gestures.size()
            << " gestures...\n";
  Rng split_rng(3, 1);
  const Split split = stratified_split(dataset.gesture_labels(), 0.2, split_rng);
  const std::string model_path = output_dir() + "/enroll_bench_model.gpsy";
  {
    GesturePrintSystem system(config);
    system.fit(dataset, split.train);
    system.save(model_path);
  }

  // The newcomer: a body the system never saw (user 0 of a different-seed
  // cohort), later enrolled live. The stranger cohort stays unauthorized
  // throughout. Held-out newcomer samples are restricted to user 0 — the
  // person whose recording streams below.
  const auto cohort_user0 = [](DatasetSpec cohort_spec) {
    cohort_spec.reps_per_gesture = 6;
    Dataset all = generate_dataset(cohort_spec);
    Dataset out;
    out.spec = all.spec;
    out.users = all.users;
    for (GestureSample& s : all.samples) {
      if (s.user == 0) out.samples.push_back(std::move(s));
    }
    return out;
  };
  DatasetSpec newcomer_spec = spec;
  newcomer_spec.user_seed = 987654;
  const Dataset newcomer_heldout = cohort_user0(newcomer_spec);
  // All three bodies of the stranger cohort stay impostors — more samples
  // give the EER sweep finer granularity.
  DatasetSpec stranger_spec = spec;
  stranger_spec.user_seed = 5551212;
  stranger_spec.reps_per_gesture = 6;
  const Dataset stranger = generate_dataset(stranger_spec);

  // ---- serve + enrollment setup -------------------------------------------
  serve::ServeConfig sc;
  sc.system = config;
  sc.shards = 2;
  sc.batch_wait_us = 0;
  sc.enroll.enabled = true;
  sc.enroll.k_segments = 6;
  // One unknown person streams at a time here; biometric descriptors are
  // gesture-dependent, so a wide radius folds their segments together.
  sc.enroll.candidate_radius = 1e6;

  serve::ModelRegistry registry(sc.system);
  if (!registry.publish_file(model_path).has_value()) {
    std::cout << "FAIL: could not publish the base model\n";
    return 1;
  }

  enroll::EnrollmentServiceConfig ec;
  ec.admission = sc.enroll;
  ec.base_model_path = model_path;
  ec.publish_dir = output_dir();
  ec.fine_tune_epochs = 2;
  enroll::EnrollmentService service(ec, registry);
  service.calibrate(dataset, split.train);

  std::vector<obs::EnrollOpenSetRow> rows;
  rows.push_back(
      open_set_row("before", service.gallery(), dataset, split.test, newcomer_heldout,
                   stranger));

  // ---- streams: two enrolled performers + the newcomer --------------------
  const std::vector<std::vector<int>> scripts{{0, 2, 1}, {1, 0, 2}};
  std::vector<ContinuousRecording> streams;
  for (std::size_t s = 0; s < scripts.size(); ++s) {
    streams.push_back(generate_recording(spec, s % spec.num_users, scripts[s], 0xE9E11 + s));
  }
  DatasetSpec newcomer_stream_spec = spec;
  newcomer_stream_spec.user_seed = 987654;
  streams.push_back(
      generate_recording(newcomer_stream_spec, 0, {0, 1, 2, 0, 2, 1, 0, 1, 2, 0, 1, 2}, 0x57A6E));

  const auto run = [&](serve::EnrollmentHook* hook, const serve::ServeConfig& run_sc,
                       std::uint64_t* ticks) {
    exec::ExecContext ctx(2);
    serve::Server server(run_sc, registry, ctx);
    if (hook != nullptr) server.set_enrollment_hook(hook);
    std::size_t max_frames = 0;
    for (const auto& s : streams) max_frames = std::max(max_frames, s.frames.size());
    std::vector<serve::ServeResult> results;
    for (std::size_t f = 0; f < max_frames; ++f) {
      for (std::size_t i = 0; i < streams.size(); ++i) {
        if (f >= streams[i].frames.size()) continue;
        (void)server.push_frame(i + 1, streams[i].frames[f]);
      }
      for (serve::ServeResult& r : server.pump()) results.push_back(std::move(r));
    }
    for (serve::ServeResult& r : server.drain()) results.push_back(std::move(r));
    if (ticks != nullptr) *ticks = server.ticks();
    return results;
  };

  // Reference run without enrollment pins the lossless-swap expectation.
  serve::ServeConfig off = sc;
  off.enroll.enabled = false;
  const std::size_t expected = run(nullptr, off, nullptr).size();

  obs::MetricsDelta delta;  // isolate this run's gp.enroll.* counter movement
  std::uint64_t ticks = 0;
  std::cout << "Streaming " << streams.size() << " sessions (newcomer last)...\n";
  const std::vector<serve::ServeResult> results = run(&service, sc, &ticks);

  const enroll::EnrollmentService::Stats stats = service.stats();
  obs::EnrollServeSummary serve_summary;
  serve_summary.ticks = ticks;
  serve_summary.results = results.size();
  serve_summary.expected_results = expected;
  serve_summary.novelty_rejections = stats.novelty_rejections;
  serve_summary.candidates_founded = delta.counter_delta("gp.enroll.candidates.founded");
  serve_summary.fine_tunes = stats.fine_tunes_started;
  serve_summary.users_enrolled = stats.users_enrolled;
  serve_summary.published_version = registry.version();
  std::cout << "  serve: " << serve_summary.results << "/" << serve_summary.expected_results
            << " results over " << serve_summary.ticks << " ticks, "
            << serve_summary.novelty_rejections << " novelty rejections, "
            << serve_summary.fine_tunes << " fine-tunes, " << serve_summary.users_enrolled
            << " users enrolled (registry v" << serve_summary.published_version << ")\n";

  rows.push_back(open_set_row("after", service.gallery(), dataset, split.test,
                              newcomer_heldout, stranger));

  const obs::HistogramSnapshot to_live = obs::histogram("gp.enroll.to_live_ms").snapshot();
  obs::EnrollLatencySummary latency;
  latency.count = to_live.count;
  latency.p50_ms = to_live.quantile(0.5);
  latency.p95_ms = to_live.quantile(0.95);
  latency.p99_ms = to_live.quantile(0.99);
  std::cout << "  enrollment-to-live: p50=" << latency.p50_ms << " ms p95=" << latency.p95_ms
            << " ms (" << latency.count << " enrollments)\n";

  const std::string json = obs::enroll_bench_json(sc.enroll.k_segments,
                                                  sc.enroll.max_candidates, rows,
                                                  serve_summary, latency);
  const std::string path = output_dir() + "/BENCH_enroll.json";
  std::ofstream(path) << json;
  std::cout << "\nWrote " << path << "\n";

  bool ok = true;
  if (serve_summary.results != serve_summary.expected_results) {
    std::cout << "FAIL: enrollment run dropped results (" << serve_summary.results << " vs "
              << serve_summary.expected_results << ")\n";
    ok = false;
  }
  if (serve_summary.users_enrolled < 1 || serve_summary.published_version < 2) {
    std::cout << "FAIL: nobody was enrolled\n";
    ok = false;
  }
  if (rows[1].eer > rows[0].eer + 1e-12) {
    std::cout << "FAIL: open-set EER got worse after enrollment (" << rows[0].eer << " -> "
              << rows[1].eer << ")\n";
    ok = false;
  }
  std::cout << (ok ? "Enrollment invariants hold.\n" : "Invariants VIOLATED.\n");
  return ok ? 0 : 1;
}
