// §VII-2 reproduction: cross-environment generalisation. Models trained on
// Office are tested on Meeting Room and vice versa.
//
// Expected shape (paper): over 90% GRA and about 75% UIA under both
// cross-environment directions — recognition transfers well, identification
// degrades visibly (RF sensing picks up the environment too), and in-env
// numbers stay far higher than cross-env ones.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "datasets/cache.hpp"

int main() {
  using namespace gp;
  bench::banner("cross-environment train/test", "Sec. VII-2");

  const DatasetScale scale = DatasetScale::from_run_scale();
  DatasetSpec office_spec = gestureprint_spec(0, scale);
  DatasetSpec meeting_spec = gestureprint_spec(1, scale);
  const std::size_t gesture_subset = scale_pick<std::size_t>(5, 8, 15);
  office_spec.gestures.resize(gesture_subset);
  meeting_spec.gestures.resize(gesture_subset);

  const Dataset office = generate_dataset_cached(office_spec);
  const Dataset meeting = generate_dataset_cached(meeting_spec);

  Table table({"train", "test", "GRA", "UIA"});
  CsvWriter csv(output_dir() + "/sec7_cross_env.csv", {"train", "test", "gra", "uia"});

  double in_env_gra = 0.0;
  double in_env_uia = 0.0;
  double cross_gra = 0.0;
  double cross_uia = 0.0;

  const auto run_direction = [&](const Dataset& train_set, const Dataset& test_set,
                                 const std::string& train_label,
                                 const std::string& test_label) {
    const Split split = bench::split_dataset(train_set);
    GesturePrintSystem system(bench::default_system_config());
    system.fit(train_set, split.train);

    const SystemEvaluation in_env = system.evaluate(train_set, split.test);
    table.add_row({train_label, train_label + " (held out)", bench::cell(in_env.gra),
                   bench::cell(in_env.uia)});
    csv.write_row({train_label, train_label, bench::cell(in_env.gra), bench::cell(in_env.uia)});

    const SystemEvaluation cross = system.evaluate_dataset(test_set);
    table.add_row({train_label, test_label, bench::cell(cross.gra), bench::cell(cross.uia)});
    csv.write_row({train_label, test_label, bench::cell(cross.gra), bench::cell(cross.uia)});

    // §VII-2's mitigation: fine-tune with a few target-environment
    // recordings, then re-test on the rest of the target environment.
    const Split adapt_split = bench::split_dataset(test_set, 0.5, 4321);
    system.fine_tune(test_set, adapt_split.test, /*epochs=*/3);
    const SystemEvaluation tuned = system.evaluate(test_set, adapt_split.train);
    table.add_row({train_label + " +finetune", test_label, bench::cell(tuned.gra),
                   bench::cell(tuned.uia)});
    csv.write_row({train_label + "+ft", test_label, bench::cell(tuned.gra),
                   bench::cell(tuned.uia)});

    in_env_gra += in_env.gra / 2.0;
    in_env_uia += in_env.uia / 2.0;
    cross_gra += cross.gra / 2.0;
    cross_uia += cross.uia / 2.0;
    std::cout << "[" << train_label << " -> " << test_label << ": GRA="
              << Table::pct(cross.gra) << " UIA=" << Table::pct(cross.uia) << "]\n";
  };

  run_direction(office, meeting, "Office", "Meeting Room");
  run_direction(meeting, office, "Meeting Room", "Office");

  std::cout << '\n';
  table.print();
  std::cout << "\nPaper shape: cross-env GRA stays high (paper: >90%) while cross-env UIA\n"
               "drops well below in-env UIA (paper: ~75%). Measured means: in-env GRA "
            << Table::pct(in_env_gra) << " / UIA " << Table::pct(in_env_uia) << "; cross-env GRA "
            << Table::pct(cross_gra) << " / UIA " << Table::pct(cross_uia) << ".\nCSV: "
            << csv.path() << "\n";
  return 0;
}
