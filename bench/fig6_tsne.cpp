// Fig. 6 reproduction: t-SNE visualisation of the features GesIDNet
// extracts — low-level, high-level, and fused — for both tasks.
//
// Expected shape (paper): for gesture recognition, fused features form the
// clearest per-gesture clusters; for user identification, low/high-level
// features cluster weakly but the fused features form clear per-user
// clusters. We quantify "clear clusters" with the silhouette score.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "datasets/cache.hpp"
#include "eval/tsne.hpp"

namespace {

using namespace gp;

// Extracts the three feature levels for every sample and reports their
// t-SNE silhouettes w.r.t. the given labels.
struct LevelSilhouettes {
  double low = 0.0;
  double high = 0.0;
  double fused = 0.0;
};

LevelSilhouettes embed_and_score(GesIDNet& model, const std::vector<FeaturizedSample>& samples,
                                 const std::vector<int>& labels, const std::string& task,
                                 CsvWriter& csv, Rng& rng) {
  // Batched feature extraction.
  nn::Tensor low;
  nn::Tensor high;
  nn::Tensor fused;
  const std::size_t batch_size = 64;
  for (std::size_t begin = 0; begin < samples.size(); begin += batch_size) {
    const std::size_t count = std::min(batch_size, samples.size() - begin);
    const GesIDNet::Features f = model.extract_features(make_batch(samples, begin, count));
    if (low.empty()) {
      low = nn::Tensor(samples.size(), f.low.cols());
      high = nn::Tensor(samples.size(), f.high.cols());
      fused = nn::Tensor(samples.size(), f.fused_low.cols());
    }
    for (std::size_t i = 0; i < count; ++i) {
      for (std::size_t c = 0; c < f.low.cols(); ++c) low.at(begin + i, c) = f.low.at(i, c);
      for (std::size_t c = 0; c < f.high.cols(); ++c) high.at(begin + i, c) = f.high.at(i, c);
      for (std::size_t c = 0; c < f.fused_low.cols(); ++c) {
        fused.at(begin + i, c) = f.fused_low.at(i, c);
      }
    }
  }

  TsneConfig config;
  config.iterations = scale_pick<std::size_t>(200, 300, 500);
  LevelSilhouettes scores;
  const struct {
    const char* level;
    const nn::Tensor* features;
    double* score;
  } levels[] = {{"low", &low, &scores.low},
                {"high", &high, &scores.high},
                {"fused", &fused, &scores.fused}};
  for (const auto& [level, features, score] : levels) {
    const nn::Tensor embedding = tsne(*features, config, rng);
    *score = silhouette_score(embedding, labels);
    for (std::size_t i = 0; i < embedding.rows(); ++i) {
      csv.write_row({task, level, std::to_string(labels[i]),
                     Table::num(embedding.at(i, 0), 4), Table::num(embedding.at(i, 1), 4)});
    }
  }
  return scores;
}

}  // namespace

int main() {
  using namespace gp;
  bench::banner("t-SNE of GesIDNet feature levels", "Fig. 6");

  DatasetScale scale;
  scale.max_users = 6;
  scale.reps = scale_pick(4, 8, 12);
  DatasetSpec spec = gestureprint_spec(1, scale);
  spec.gestures.resize(5);
  const Dataset dataset = generate_dataset_cached(spec);
  const Split split = bench::split_dataset(dataset);
  const GesturePrintConfig config = bench::default_system_config();

  CsvWriter csv(output_dir() + "/fig6_tsne.csv", {"task", "level", "label", "x", "y"});
  Rng rng(2024, 6);

  // ---- gesture recognition features ----
  GesIDNetConfig gnet = config.network;
  gnet.num_classes = dataset.num_gestures();
  Rng ginit(1, 2);
  GesIDNet gesture_model(gnet, ginit);
  {
    Rng prep_rng(3, 4);
    const LabeledSamples train =
        prepare_subset(dataset, split.train, LabelKind::kGesture, config.prep, prep_rng);
    train_classifier(gesture_model, train, config.training);
  }

  // ---- user identification features (parallel-style, all gestures) ----
  GesIDNetConfig unet = config.network;
  unet.num_classes = dataset.num_users();
  Rng uinit(5, 6);
  GesIDNet user_model(unet, uinit);
  {
    Rng prep_rng(7, 8);
    const LabeledSamples train =
        prepare_subset(dataset, split.train, LabelKind::kUser, config.prep, prep_rng);
    train_classifier(user_model, train, config.training);
  }

  // Embed the held-out samples.
  PrepConfig test_prep = config.prep;
  test_prep.augment = false;
  Rng prep_rng(9, 10);
  const LabeledSamples gesture_test =
      prepare_subset(dataset, split.test, LabelKind::kGesture, test_prep, prep_rng);
  const LabeledSamples user_test =
      prepare_subset(dataset, split.test, LabelKind::kUser, test_prep, prep_rng);

  const LevelSilhouettes g = embed_and_score(gesture_model, gesture_test.samples,
                                             gesture_test.labels, "gesture", csv, rng);
  const LevelSilhouettes u =
      embed_and_score(user_model, user_test.samples, user_test.labels, "user", csv, rng);

  Table table({"task", "silhouette low", "silhouette high", "silhouette fused"});
  table.add_row({"gesture recognition", Table::num(g.low, 3), Table::num(g.high, 3),
                 Table::num(g.fused, 3)});
  table.add_row({"user identification", Table::num(u.low, 3), Table::num(u.high, 3),
                 Table::num(u.fused, 3)});
  table.print();

  const bool gesture_shape = g.fused >= std::min(g.low, g.high);
  const bool user_shape = u.fused >= std::min(u.low, u.high);
  std::cout << "\nPaper shape: fused features cluster at least as well as the weaker single\n"
               "level on both tasks, and user-ID single-level features cluster worse than\n"
               "gesture single-level features. Checks: gesture "
            << (gesture_shape ? "ok" : "VIOLATED") << ", user "
            << (user_shape ? "ok" : "VIOLATED") << ".\nCSV: " << csv.path() << "\n";
  return 0;
}
