// gp::health overhead sweep (DESIGN.md §10): the same 8-session serve load
// runs with health monitoring fully off and fully on (tracing + SLO window
// + flight recorder), measuring the per-tick latency of the serve loop in
// both modes. Emits <output_dir>/BENCH_health.json and self-checks the two
// headline invariants on the exit code:
//   1. every ServeResult is bitwise identical between the two modes —
//      health observes the serve stack, it never feeds results;
//   2. the health-on p50 tick cost is within 2% of health-off, with a 1 µs
//      absolute floor. Reps interleave the modes and the verdict reads the
//      minimum of per-rep paired p50 deltas — noise only ever adds time, so
//      the cleanest pair upper-bounds the true overhead while a real hot-path
//      regression inflates every pair and cannot hide in the minimum.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/config.hpp"
#include "datasets/catalog.hpp"
#include "eval/splits.hpp"
#include "health/slo.hpp"
#include "obs/bench_json.hpp"
#include "serve/server.hpp"
#include "system/gestureprint.hpp"

namespace {

using namespace gp;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kSessions = 8;
constexpr std::size_t kReps = 9;
/// Frames each session pushes per pump: a pump cadence slower than the
/// radar frame rate, so the measured tick carries the steady per-tick load
/// (admission + shard drain + segmentation) rather than being mostly empty.
constexpr std::size_t kFramesPerTick = 4;

struct RunOutcome {
  std::vector<double> tick_us;  ///< one entry per frame round (push + pump)
  std::vector<serve::ServeResult> results;
};

double quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// One full pass of the interleaved streams through a fresh server. The
/// measured tick is one frame round: push every session's frame, pump once.
RunOutcome run_once(const std::vector<ContinuousRecording>& recordings,
                    const serve::ServeConfig& serve_config,
                    serve::ModelRegistry& registry) {
  RunOutcome outcome;
  serve::Server server(serve_config, registry);
  std::size_t max_frames = 0;
  for (const ContinuousRecording& r : recordings) {
    max_frames = std::max(max_frames, r.frames.size());
  }
  outcome.tick_us.reserve(max_frames / kFramesPerTick + 1);
  for (std::size_t f = 0; f < max_frames; f += kFramesPerTick) {
    const Clock::time_point start = Clock::now();
    for (std::size_t s = 0; s < recordings.size(); ++s) {
      const std::size_t end = std::min(f + kFramesPerTick, recordings[s].frames.size());
      for (std::size_t k = f; k < end; ++k) {
        (void)server.push_frame(static_cast<std::uint64_t>(s + 1), recordings[s].frames[k]);
      }
    }
    for (serve::ServeResult& r : server.pump()) outcome.results.push_back(std::move(r));
    outcome.tick_us.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() - start).count());
  }
  for (serve::ServeResult& r : server.drain()) outcome.results.push_back(std::move(r));
  return outcome;
}

bool results_bitwise_equal(const std::vector<serve::ServeResult>& a,
                           const std::vector<serve::ServeResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const serve::ServeResult& x = a[i];
    const serve::ServeResult& y = b[i];
    if (x.session_id != y.session_id || x.segment_ordinal != y.segment_ordinal ||
        x.request_id != y.request_id || x.gesture != y.gesture || x.user != y.user ||
        x.abstained != y.abstained || x.quality_rejected != y.quality_rejected ||
        x.gesture_margin != y.gesture_margin || x.user_margin != y.user_margin ||
        x.model_version != y.model_version) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace gp;
  bench::banner("health_bench", "DESIGN.md §10 (health/SLO overhead; not in the paper)");

  DatasetScale scale;
  scale.max_users = 3;
  scale.reps = 10;
  DatasetSpec spec = gestureprint_spec(1, scale);
  spec.gestures.resize(5);

  std::cout << "Training on " << spec.num_users << " users x " << spec.gestures.size()
            << " gestures...\n";
  const Dataset dataset = generate_dataset(spec);
  GesturePrintConfig config;
  config.training.epochs = 8;
  config.prep.augmentation.copies = 2;
  config.abstain_margin = 0.10;

  serve::ModelRegistry registry(config);
  {
    auto system = std::make_unique<GesturePrintSystem>(config);
    Rng split_rng(3, 1);
    system->fit(dataset, stratified_split(dataset.gesture_labels(), 0.2, split_rng).train);
    registry.publish(std::move(system));
  }

  const std::vector<int> script{0, 3, 1, 4, 2, 0};
  std::vector<ContinuousRecording> recordings;
  for (std::size_t s = 0; s < kSessions; ++s) {
    recordings.push_back(generate_recording(spec, s % spec.num_users, script, 20260807 + s));
  }

  // Two fully-programmatic configs (no env coupling): "off" disables every
  // health surface; "on" arms the SLO evaluator and the flight recorder on
  // top of the always-on tracing, so the measured overhead is the worst
  // case of the whole subsystem.
  serve::ServeConfig config_off;
  config_off.system = config;
  config_off.batch_wait_us = 0;
  config_off.health.enabled = false;
  config_off.health.flightrec = false;

  serve::ServeConfig config_on = config_off;
  config_on.health.enabled = true;
  config_on.health.flightrec = true;
  config_on.health.slo = health::SloSpec::parse("p99_ms<1000,shed_rate<0.5,window=64t");

  std::size_t ticks_per_rep = 0;
  std::vector<obs::HealthBenchRow> rows(2);
  rows[0].mode = "off";
  rows[1].mode = "on";
  for (auto& row : rows) row.p50_us = -1.0;
  std::vector<serve::ServeResult> results_off;
  std::vector<serve::ServeResult> results_on;
  const std::pair<const char*, const serve::ServeConfig*> modes[] = {{"off", &config_off},
                                                                     {"on", &config_on}};
  // Reps interleave the two modes (off, on, off, on, ...) instead of running
  // all off-reps first: host-load drift across the bench then hits both
  // modes alike. The overhead verdict uses the *minimum of per-rep paired
  // deltas* (p50_on - p50_off within the same rep): scheduler noise only
  // ever adds time, so the cleanest pair bounds the true overhead from
  // above, while a real hot-path regression inflates every pair and cannot
  // hide in the minimum. The reported rows keep best-of-reps quantiles.
  std::vector<double> paired_delta_us;
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    double rep_p50[2] = {0.0, 0.0};
    for (std::size_t m = 0; m < 2; ++m) {
      obs::HealthBenchRow& row = rows[m];
      RunOutcome outcome = run_once(recordings, *modes[m].second, registry);
      ticks_per_rep = outcome.tick_us.size();
      std::vector<double> sorted = outcome.tick_us;
      std::sort(sorted.begin(), sorted.end());
      const double p50 = quantile(sorted, 0.5);
      rep_p50[m] = p50;
      if (row.p50_us < 0.0 || p50 < row.p50_us) {
        row.ticks = outcome.tick_us.size();
        row.results = outcome.results.size();
        row.p50_us = p50;
        row.p95_us = quantile(sorted, 0.95);
        row.p99_us = quantile(sorted, 0.99);
      }
      if (rep == 0) {
        (m == 0 ? results_off : results_on) = std::move(outcome.results);
      }
    }
    paired_delta_us.push_back(rep_p50[1] - rep_p50[0]);
  }
  std::sort(paired_delta_us.begin(), paired_delta_us.end());
  const double min_delta_us = paired_delta_us.front();
  for (const auto& row : rows) {
    std::cout << "  health=" << row.mode << ": " << row.results << " results, tick p50="
              << row.p50_us << " us, p95=" << row.p95_us << " us, p99=" << row.p99_us
              << " us (best of " << kReps << " reps)\n";
  }

  const double p50_off = rows[0].p50_us;
  const double overhead_pct = p50_off > 0.0 ? 100.0 * min_delta_us / p50_off : 0.0;
  const bool bitwise = results_bitwise_equal(results_off, results_on);

  // Verdict evidence comes from one final health-on pass whose server we
  // keep alive long enough to snapshot.
  health::HealthSnapshot snap;
  {
    serve::Server server(config_on, registry);
    for (std::size_t f = 0; f < recordings[0].frames.size(); ++f) {
      for (std::size_t s = 0; s < recordings.size(); ++s) {
        if (f >= recordings[s].frames.size()) continue;
        (void)server.push_frame(static_cast<std::uint64_t>(s + 1), recordings[s].frames[f]);
      }
      (void)server.pump();
    }
    (void)server.drain();
    snap = server.health_snapshot();
  }

  const std::string json = obs::health_bench_json(
      kReps, ticks_per_rep, rows, overhead_pct, bitwise,
      health::verdict_name(snap.verdict), snap.verdict_flips, snap.flightrec_events);
  const std::string path = output_dir() + "/BENCH_health.json";
  std::ofstream(path) << json;
  std::cout << "\nWrote " << path << "\n";

  bool ok = true;
  if (!bitwise) {
    std::cout << "FAIL: serve results differ between health on and off\n";
    ok = false;
  }
  // 2% relative, with a 1 µs absolute floor: on sub-50 µs quiet ticks the
  // relative bound alone drops below scheduler jitter and flakes on loaded
  // single-core hosts. Real regressions (a syscall or a per-frame record on
  // the hot path) cost several µs and clear both bars.
  const double overhead_us = min_delta_us;
  if (overhead_pct > 2.0 && overhead_us > 1.0) {
    std::cout << "FAIL: health-on p50 tick overhead is " << overhead_pct << "% ("
              << overhead_us << " us; > 2% and > 1 us)\n";
    ok = false;
  } else {
    std::cout << "Health-on p50 tick overhead: " << overhead_pct << "% (" << overhead_us
              << " us; within 2% or 1 us)\n";
  }
  std::cout << (ok ? "Health overhead invariants hold.\n" : "Invariants VIOLATED.\n");
  return ok ? 0 : 1;
}
