// §VI-B3 reproduction: impact of motion speed. The Pantomime dataset
// contains three articulation speeds; training across them, GesturePrint
// still reaches high accuracy on deliberately speed-changed gestures
// (paper: 97.73% GRA, 98.81% UIA).
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "datasets/cache.hpp"
#include "datasets/prep.hpp"

int main() {
  using namespace gp;
  bench::banner("impact of deliberate motion-speed changes", "Sec. VI-B3");

  const DatasetScale scale = DatasetScale::from_run_scale();
  DatasetSpec spec = pantomime_spec(0, scale);
  spec.gestures.resize(scale_pick<std::size_t>(5, 8, 21));
  spec.speeds = {0.7, 1.0, 1.4};  // slow / normal / fast articulation
  spec.reps_per_gesture = std::max<std::size_t>(3, scale.reps / 2);
  const Dataset dataset = generate_dataset_cached(spec);

  const Split split = bench::split_dataset(dataset);
  GesturePrintSystem system(bench::default_system_config());
  system.fit(dataset, split.train);

  // Overall + per-speed breakdown of the held-out set.
  Table table({"test subset", "GRA", "UIA"});
  CsvWriter csv(output_dir() + "/sec6b3_speed.csv", {"subset", "gra", "uia"});

  const SystemEvaluation overall = system.evaluate(dataset, split.test);
  table.add_row({"all speeds", bench::cell(overall.gra), bench::cell(overall.uia)});
  csv.write_row({"all", bench::cell(overall.gra), bench::cell(overall.uia)});

  for (double speed : spec.speeds) {
    std::vector<std::size_t> subset;
    for (std::size_t idx : split.test) {
      if (dataset.samples[idx].speed == speed) subset.push_back(idx);
    }
    if (subset.empty()) continue;
    const SystemEvaluation eval = system.evaluate(dataset, subset);
    const std::string label = speed < 1.0 ? "slow (x0.7)" : speed > 1.0 ? "fast (x1.4)"
                                                                        : "normal (x1.0)";
    table.add_row({label, bench::cell(eval.gra), bench::cell(eval.uia)});
    csv.write_row({label, bench::cell(eval.gra), bench::cell(eval.uia)});
  }

  std::cout << '\n';
  table.print();
  std::cout << "\nPaper shape: accuracy remains high despite deliberate speed changes\n"
               "(paper: 97.73% GRA / 98.81% UIA on the three-speed Pantomime subset);\n"
               "no speed subset collapses.\nCSV: " << csv.path() << "\n";
  return 0;
}
