// Table II reproduction: overall gesture recognition (GRA/GRF1/GRAUC) and
// user identification (UIA/UIF1/UIAUC) across all four datasets, comparing
// GesturePrint (serialized + parallel modes) against baseline recognisers
// (PanArch/Tesla/mGesNet/mSeeNet stand-ins).
//
// Expected shape (paper):
//  * GRA >= 96% everywhere, GP comparable to or better than the baselines;
//  * serialized-mode UIA >= 97% everywhere; parallel mode within ~4% below;
//  * metrics stay high as the user scale grows (32 users on mTransSee).
#include <cmath>
#include <iostream>
#include <memory>

#include "baselines/edgeconv.hpp"
#include "baselines/pointnet.hpp"
#include "baselines/profile_net.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stopwatch.hpp"
#include "datasets/cache.hpp"
#include "nn/loss.hpp"

namespace {

using namespace gp;

struct Scenario {
  std::string label;
  DatasetSpec spec;
  double paper_gra;
  double paper_uia_s;  ///< serialized mode
  double paper_uia_p;  ///< parallel mode
  const char* baseline_name;  ///< the paper's SOTA comparator, if any
  double paper_sota_gra;
};

struct BaselineResult {
  std::string name;
  double gra = 0.0;
};

// Trains one baseline network on the gesture-recognition task only (the
// paper compares SOTA methods on recognition; they have no ID capability).
BaselineResult run_baseline(const std::string& name, const Dataset& dataset,
                            const Split& split, const GesturePrintConfig& config) {
  Rng rng(4242, 99);
  std::unique_ptr<PointCloudClassifier> model;
  const auto classes = dataset.num_gestures();
  if (name == "PanArch" || name == "mGesNet") {
    // PanArch: PointNet++-style global encoder. mGesNet: per-frame profile
    // CNN — but mHomeGes clouds carry the profile in the time channel, so
    // the profile network is the faithful stand-in.
    if (name == "PanArch") {
      PointNetConfig c;
      c.num_classes = classes;
      model = std::make_unique<PointNetBaseline>(c, rng);
    } else {
      ProfileNetConfig c;
      c.num_classes = classes;
      model = std::make_unique<ProfileNetBaseline>(c, rng);
    }
  } else if (name == "Tesla") {
    EdgeConvConfig c;
    c.num_classes = classes;
    model = std::make_unique<EdgeConvBaseline>(c, rng);
  } else {  // mSeeNet
    ProfileNetConfig c;
    c.num_classes = classes;
    model = std::make_unique<ProfileNetBaseline>(c, rng);
  }

  PrepConfig prep = config.prep;
  Rng prep_rng(17, 3);
  const LabeledSamples train =
      prepare_subset(dataset, split.train, LabelKind::kGesture, prep, prep_rng);
  TrainConfig tc = config.training;
  train_classifier(*model, train, tc);

  PrepConfig test_prep = config.prep;
  test_prep.augment = false;
  const LabeledSamples test =
      prepare_subset(dataset, split.test, LabelKind::kGesture, test_prep, prep_rng);
  const nn::Tensor logits = predict_logits(*model, test.samples);
  return {name, nn::accuracy(logits, test.labels)};
}

}  // namespace

int main() {
  using namespace gp;
  bench::banner("overall recognition + identification", "Table II");

  const DatasetScale scale = DatasetScale::from_run_scale();
  // Pantomime's 21-gesture catalogue dominates the compute budget; at
  // non-full scales trim its repetitions slightly (structure preserved).
  DatasetScale pantomime_scale = scale;
  if (run_scale() != RunScale::kFull) {
    pantomime_scale.reps = std::max<std::size_t>(4, scale.reps - 2);
  }
  std::vector<Scenario> scenarios{
      {"GesturePrint/Office", gestureprint_spec(0, scale), 0.9822, 0.9926, 0.9926 - 0.02,
       nullptr, 0.0},
      {"GesturePrint/Meeting", gestureprint_spec(1, scale), 0.9887, 0.9978, 0.9978 - 0.02,
       nullptr, 0.0},
      {"Pantomime/Office", pantomime_spec(0, pantomime_scale), 0.9854, 0.99, 0.97, "Tesla",
       0.9714},
      {"Pantomime/Open", pantomime_spec(1, pantomime_scale), 0.9662, 0.9931, 0.9865, "PanArch",
       0.9612},
      {"mHomeGes/Home", mhomeges_spec({1.2}, scale), 0.9960, 0.9933, 0.9897, "mGesNet", 0.9800},
      {"mTransSee/Home", mtranssee_spec({1.2}, scale), 0.9988, 0.9760, 0.9398, "mSeeNet",
       0.9800},
  };

  Table table({"dataset", "GRA paper", "GRA ours", "GRF1", "GRAUC", "UIA-S paper", "UIA-S ours",
               "UIA-P ours", "UIF1", "UIAUC", "SOTA GRA paper", "SOTA GRA ours"});
  CsvWriter csv(output_dir() + "/table2_overall.csv",
                {"dataset", "gra", "grf1", "grauc", "uia_serialized", "uia_parallel", "uif1",
                 "uiauc", "eer", "baseline", "baseline_gra"});

  Stopwatch total;
  for (const auto& scenario : scenarios) {
    Stopwatch sw;
    const Dataset dataset = generate_dataset_cached(scenario.spec);
    const Split split = bench::split_dataset(dataset);
    const GesturePrintConfig config = bench::default_system_config();

    // Serialized mode (default).
    GesturePrintSystem serialized(config);
    serialized.fit(dataset, split.train);
    const SystemEvaluation eval_s = serialized.evaluate(dataset, split.test);

    // Parallel mode trains one extra full ID model; at non-full scales skip
    // it on the compute-heavy 21-gesture Pantomime scenarios (the
    // serialized-vs-parallel contrast is covered by the other four).
    const bool run_parallel =
        run_scale() == RunScale::kFull || scenario.spec.gestures.size() <= 15;
    SystemEvaluation eval_p;
    if (run_parallel) {
      GesturePrintConfig parallel_config = config;
      parallel_config.mode = IdentificationMode::kParallel;
      GesturePrintSystem parallel(parallel_config);
      parallel.fit(dataset, split.train);
      eval_p = parallel.evaluate(dataset, split.test);
    } else {
      eval_p.uia = std::nan("");
    }

    BaselineResult baseline{"/", std::nan("")};
    if (scenario.baseline_name != nullptr) {
      baseline = run_baseline(scenario.baseline_name, dataset, split, config);
    }

    table.add_row({scenario.label, Table::num(scenario.paper_gra, 4),
                   bench::cell(eval_s.gra), bench::cell(eval_s.grf1), bench::cell(eval_s.grauc),
                   Table::num(scenario.paper_uia_s, 4), bench::cell(eval_s.uia),
                   bench::cell(eval_p.uia), bench::cell(eval_s.uif1), bench::cell(eval_s.uiauc),
                   scenario.baseline_name != nullptr ? Table::num(scenario.paper_sota_gra, 4)
                                                     : "/",
                   bench::cell(baseline.gra)});
    csv.write_row({scenario.label, bench::cell(eval_s.gra), bench::cell(eval_s.grf1),
                   bench::cell(eval_s.grauc), bench::cell(eval_s.uia), bench::cell(eval_p.uia),
                   bench::cell(eval_s.uif1), bench::cell(eval_s.uiauc),
                   bench::cell(eval_s.user_roc.eer()), baseline.name,
                   bench::cell(baseline.gra)});
    std::cout << "[" << scenario.label << " done in " << Table::num(sw.elapsed_seconds(), 1)
              << "s: GRA=" << Table::pct(eval_s.gra) << " UIA-S=" << Table::pct(eval_s.uia)
              << " UIA-P=" << Table::pct(eval_p.uia) << "]\n";
  }

  std::cout << '\n';
  table.print();
  std::cout << "\nPaper shape to verify: GP GRA comparable to SOTA baselines; serialized UIA\n"
               "high across all datasets and >= parallel UIA; metrics survive the 32-user\n"
               "scale (mTransSee). Total "
            << Table::num(total.elapsed_seconds(), 1) << "s. CSV: " << csv.path() << "\n";
  return 0;
}
