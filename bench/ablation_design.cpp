// Design-choice ablations beyond the paper's Fig. 14 (DESIGN.md §4):
//  * input resolution: how many points the cloud is resampled to;
//  * feature channels: dropping Doppler velocity / the duration channel;
//  * auxiliary-loss weight: 0 (no aux loss) vs the default vs 1.0.
// Run on one scenario (meeting room, 5-gesture subset) for both tasks.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "datasets/cache.hpp"

namespace {

using namespace gp;

// Zeroes a feature channel in every sample (post-featurization ablation).
void zero_channel(LabeledSamples& data, std::size_t channel) {
  for (auto& sample : data.samples) {
    for (std::size_t i = 0; i < sample.num_points; ++i) {
      sample.features[i * sample.dims + channel] = 0.0f;
    }
  }
}

struct RowResult {
  double gra = 0.0;
  double uia = 0.0;
};

RowResult run_variant(const Dataset& dataset, const Split& split,
                      const GesturePrintConfig& base, std::size_t num_points,
                      int zeroed_channel, double aux_weight) {
  GesturePrintConfig config = base;
  config.prep.features.num_points = num_points;
  config.network.aux_loss_weight = aux_weight;

  if (zeroed_channel < 0) {
    GesturePrintSystem system(config);
    system.fit(dataset, split.train);
    const SystemEvaluation eval = system.evaluate(dataset, split.test);
    return {eval.gra, eval.uia};
  }

  // Channel ablation needs custom featurization, so train the two models
  // directly (recognition + parallel-mode identification).
  RowResult result;
  Rng prep_rng(41, 2);
  for (int task = 0; task < 2; ++task) {
    const LabelKind kind = task == 0 ? LabelKind::kGesture : LabelKind::kUser;
    LabeledSamples train = prepare_subset(dataset, split.train, kind, config.prep, prep_rng);
    PrepConfig test_prep = config.prep;
    test_prep.augment = false;
    LabeledSamples test = prepare_subset(dataset, split.test, kind, test_prep, prep_rng);
    zero_channel(train, static_cast<std::size_t>(zeroed_channel));
    zero_channel(test, static_cast<std::size_t>(zeroed_channel));

    GesIDNetConfig net = config.network;
    net.num_classes = task == 0 ? dataset.num_gestures() : dataset.num_users();
    Rng init(7 + task, 3);
    GesIDNet model(net, init);
    train_classifier(model, train, config.training);
    const nn::Tensor logits = predict_logits(model, test.samples);
    const double acc = nn::accuracy(logits, test.labels);
    (task == 0 ? result.gra : result.uia) = acc;
  }
  return result;
}

}  // namespace

int main() {
  using namespace gp;
  bench::banner("design-choice ablations (extension)", "DESIGN.md Sec. 4");

  DatasetScale scale = DatasetScale::from_run_scale();
  DatasetSpec spec = gestureprint_spec(1, scale);
  spec.gestures.resize(scale_pick<std::size_t>(3, 5, 8));
  const Dataset dataset = generate_dataset_cached(spec);
  const Split split = bench::split_dataset(dataset);
  const GesturePrintConfig base = bench::default_system_config();

  Table table({"axis", "variant", "GRA", "UIA"});
  CsvWriter csv(output_dir() + "/ablation_design.csv", {"axis", "variant", "gra", "uia"});

  const auto emit = [&](const std::string& axis, const std::string& variant,
                        const RowResult& r) {
    table.add_row({axis, variant, bench::cell(r.gra), bench::cell(r.uia)});
    csv.write_row({axis, variant, bench::cell(r.gra), bench::cell(r.uia)});
    std::cout << "[" << axis << "/" << variant << ": GRA=" << Table::pct(r.gra)
              << " UIA=" << Table::pct(r.uia) << "]\n";
  };

  // Input resolution sweep (the 160-point arm only at full scale).
  std::vector<std::size_t> point_counts{48, 96};
  if (run_scale() == RunScale::kFull) point_counts.push_back(160);
  for (std::size_t points : point_counts) {
    emit("num_points", std::to_string(points),
         run_variant(dataset, split, base, points, -1, base.network.aux_loss_weight));
  }
  // Feature-channel ablations (channel 3 = Doppler, 6 = duration).
  emit("channels", "full",
       run_variant(dataset, split, base, base.prep.features.num_points, -1,
                   base.network.aux_loss_weight));
  emit("channels", "no velocity",
       run_variant(dataset, split, base, base.prep.features.num_points, 3,
                   base.network.aux_loss_weight));
  emit("channels", "no duration",
       run_variant(dataset, split, base, base.prep.features.num_points, 6,
                   base.network.aux_loss_weight));
  // Auxiliary-loss weight (0.5 is the default; 0 disables the aux head's
  // contribution; 1.0 only at full scale).
  std::vector<double> aux_weights{0.0, 0.5};
  if (run_scale() == RunScale::kFull) aux_weights.push_back(1.0);
  for (double aux : aux_weights) {
    emit("aux_loss", Table::num(aux, 1),
         run_variant(dataset, split, base, base.prep.features.num_points, -1, aux));
  }

  std::cout << '\n';
  table.print();
  std::cout << "\nExpected shapes: moderate point counts suffice (sparse clouds saturate);\n"
               "velocity and duration channels matter more for identification than for\n"
               "recognition; a non-zero auxiliary loss helps both tasks.\nCSV: "
            << csv.path() << "\n";
  return 0;
}
