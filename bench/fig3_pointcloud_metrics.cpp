// Fig. 3 reproduction: HD / CD / JSD between gesture point clouds of the
// same user vs different users, for three ASL gestures ('away', 'push',
// 'front'), 10 repetitions each — the preliminary feasibility study (§III).
//
// Expected shape (paper): for every gesture and every metric, the
// different-user distance exceeds the same-user distance.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/rng.hpp"
#include "kinematics/performer.hpp"
#include "pipeline/noise_cancel.hpp"
#include "pointcloud/metrics.hpp"
#include "radar/sensor.hpp"

namespace {

using namespace gp;

// Collects `reps` cleaned gesture clouds for one user performing `spec`.
std::vector<PointCloud> collect_clouds(const UserProfile& user, const GestureSpec& spec,
                                       int reps, Rng& rng) {
  const RadarSensor sensor;
  PerformanceConfig perf;
  perf.idle_frames_before = 4;
  perf.idle_frames_after = 4;
  const GesturePerformer performer(user, perf);

  std::vector<PointCloud> clouds;
  clouds.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    const SceneSequence scene = performer.perform(spec, rng);
    const FrameSequence frames = sensor.observe(scene, rng);
    const NoiseCancelResult cleaned = cancel_noise(frames);
    if (cleaned.main_cluster.size() >= 8) clouds.push_back(cleaned.main_cluster);
  }
  return clouds;
}

// Mean pairwise metric per Eq. 1 between two cloud collections.
double mean_metric(const std::vector<PointCloud>& a, const std::vector<PointCloud>& b,
                   double (*metric)(const PointCloud&, const PointCloud&), bool same_set) {
  double acc = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (same_set && i == j) continue;
      acc += metric(a[i], b[j]);
      ++count;
    }
  }
  return count > 0 ? acc / static_cast<double>(count) : 0.0;
}

double jsd16(const PointCloud& a, const PointCloud& b) {
  return jensen_shannon_divergence(a, b, 16);
}

}  // namespace

int main() {
  using namespace gp;
  bench::banner("point-cloud dissimilarity, same vs different user", "Fig. 3");

  Rng user_rng(1001, 0x5bd1e995ULL);
  // Users A and B mirror the paper's setup: similar body shape.
  UserProfile user_a = UserProfile::sample(0, user_rng);
  UserProfile user_b = UserProfile::sample(1, user_rng);
  user_b.height = user_a.height + 0.01;  // similar stature, like the paper's pair

  const auto gestures = asl_gesture_set();
  const int reps = scale_pick(6, 10, 10);

  Table table({"gesture", "metric", "same user", "diff users", "diff > same"});
  CsvWriter csv(output_dir() + "/fig3_metrics.csv",
                {"gesture", "metric", "same_user", "diff_user"});

  int violations = 0;
  int hd_violations = 0;
  Rng rng(42, 0x2545F4914F6CDD1DULL);
  for (const char* name : {"away", "push", "front"}) {
    const GestureSpec& spec = find_gesture(gestures, name);
    const auto clouds_a = collect_clouds(user_a, spec, reps, rng);
    const auto clouds_b = collect_clouds(user_b, spec, reps, rng);
    if (clouds_a.size() < 2 || clouds_b.size() < 2) {
      std::cout << "insufficient clouds for " << name << "\n";
      continue;
    }

    struct MetricDef {
      const char* label;
      double (*fn)(const PointCloud&, const PointCloud&);
    };
    for (const MetricDef& m : {MetricDef{"HD", hausdorff_distance},
                               MetricDef{"CD", chamfer_distance}, MetricDef{"JSD", jsd16}}) {
      const double same = 0.5 * (mean_metric(clouds_a, clouds_a, m.fn, true) +
                                 mean_metric(clouds_b, clouds_b, m.fn, true));
      const double diff = mean_metric(clouds_a, clouds_b, m.fn, false);
      if (diff <= same) {
        ++violations;
        if (std::string(m.label) == "HD") ++hd_violations;
      }
      table.add_row({name, m.label, Table::num(same, 4), Table::num(diff, 4),
                     diff > same ? "yes" : "NO"});
      csv.write_row({name, m.label, Table::num(same, 6), Table::num(diff, 6)});
    }
  }

  table.print();
  std::cout << "paper shape: different-user > same-user for all 9 cells; violations here: "
            << violations << " (of which HD: " << hd_violations << ")\n"
            << "CSV: " << csv.path() << "\n"
            << "note: CD/JSD are averaged metrics and must hold strictly; HD takes the\n"
               "single worst point pair, so one residual ghost point can flip a cell.\n";
  // Pass criterion: every averaged-metric cell holds; a fragile HD cell or
  // two may flip (more slack at small scale, where reps are few).
  const int hd_allowed = scale_pick(2, 1, 1);
  return (violations - hd_violations) == 0 && hd_violations <= hd_allowed ? 0 : 1;
}
