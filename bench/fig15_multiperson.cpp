// Fig. 15 / §VII-1 reproduction: multi-person scenarios. Someone else (a)
// walks past behind the user or (b) performs gestures nearby while the
// target user interacts. The preprocessing stage must isolate the user's
// point cluster.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "kinematics/performer.hpp"
#include "pointcloud/point.hpp"
#include "radar/sensor.hpp"
#include "system/multi_person.hpp"

int main() {
  using namespace gp;
  bench::banner("multi-person cluster separation", "Fig. 15");

  const int trials = scale_pick(10, 30, 60);
  Rng rng(77, 5);
  Rng user_rng(1001, 0x5bd1e995ULL);
  const UserProfile user = UserProfile::sample(0, user_rng);
  const UserProfile other = UserProfile::sample(1, user_rng);
  const auto gestures = asl_gesture_set();
  const RadarSensor sensor;
  const Vec3 user_position(0.0, 1.2, 0.0);

  Table table({"case", "separated (>=2 clusters)", "zone policy finds user",
               "size policy finds user", "mean centroid gap (m)"});
  CsvWriter csv(output_dir() + "/fig15_multiperson.csv",
                {"case", "trial", "num_clusters", "zone_ok", "size_ok", "centroid_gap"});

  struct CaseStats {
    int separated = 0;
    int zone_ok = 0;
    int size_ok = 0;
    double gap_sum = 0.0;
  };

  const auto run_case = [&](const std::string& label, auto make_interferer) {
    CaseStats stats;
    for (int t = 0; t < trials; ++t) {
      PerformanceConfig perf;
      const GesturePerformer performer(user, perf);
      const GestureSpec& spec = gestures[rng.index(gestures.size())];
      SceneSequence scene = performer.perform(spec, rng);
      scene = merge_scenes(scene, make_interferer(scene.size(), t));

      const FrameSequence frames = sensor.observe(scene, rng);
      const SeparationResult result = analyze_separation(aggregate(frames), user_position);

      const bool separated = result.num_clusters >= 2;
      const bool zone_ok = result.zone_cluster_distance < 0.8 && result.zone_cluster_size > 20;
      stats.separated += separated ? 1 : 0;
      stats.zone_ok += zone_ok ? 1 : 0;
      stats.size_ok += result.main_cluster_is_user ? 1 : 0;
      stats.gap_sum += result.centroid_gap;
      csv.write_row({label, std::to_string(t), std::to_string(result.num_clusters),
                     zone_ok ? "1" : "0", result.main_cluster_is_user ? "1" : "0",
                     Table::num(result.centroid_gap, 3)});
    }
    const double n = static_cast<double>(trials);
    table.add_row({label, Table::pct(stats.separated / n), Table::pct(stats.zone_ok / n),
                   Table::pct(stats.size_ok / n), Table::num(stats.gap_sum / n, 2)});
    return stats;
  };

  // Case (a): a walker passing behind the user, 2.5-3.5 m away.
  const CaseStats walker_stats =
      run_case("walker behind user", [&](std::size_t frames, int t) {
        WalkerConfig config;
        config.start = Vec3(2.2 + 0.1 * (t % 5), 3.1 + 0.15 * (t % 4), 0.0);
        config.velocity = Vec3(-0.6 - 0.05 * (t % 3), 0.0, 0.0);
        config.num_frames = static_cast<int>(frames);
        return make_walker_scene(config, rng);
      });

  // Case (b): a second person gesturing ~2.5 m to the side.
  const CaseStats gesturer_stats =
      run_case("second gesturer aside", [&](std::size_t /*frames*/, int t) {
        PerformanceConfig perf;
        perf.lateral = 2.3 + 0.1 * (t % 4);
        perf.distance = 1.4 + 0.1 * (t % 3);
        const GesturePerformer interferer(other, perf);
        return interferer.perform(gestures[rng.index(gestures.size())], rng);
      });

  std::cout << '\n';
  table.print();
  const double n = static_cast<double>(trials);
  // Small-sample slack: at 10 trials one unlucky draw is 10 percentage points.
  const double bar = scale_pick(0.75, 0.85, 0.88);
  const bool shape_ok = walker_stats.zone_ok / n > bar && gesturer_stats.zone_ok / n > bar;
  std::cout << "\nPaper shape: GesturePrint separates the user's cluster from bystanders in\n"
               "both cases (Fig. 15); with the predefined work zone (Sec. VII-1) the user\n"
               "cluster is recovered reliably. Shape "
            << (shape_ok ? "holds" : "VIOLATED") << ".\nCSV: " << csv.path() << "\n";
  return shape_ok ? 0 : 1;
}
