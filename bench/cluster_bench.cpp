// gp::cluster crash-tolerance sweep (DESIGN.md §12): the same interleaved
// session streams served by 1, 2 and 3 forked worker replicas, then a
// kill-and-recover scenario that SIGKILLs one worker mid-stream and lets the
// supervisor migrate its sessions onto survivors. Emits
// <output_dir>/BENCH_cluster.json and self-checks the two headline
// invariants on the exit code:
//   1. per-session results are bitwise identical across worker counts —
//      distribution is a deployment knob, never a numerics knob;
//   2. the failover run loses nothing: zero shed frames, >= 1 eviction +
//      migration + respawn, and results bitwise identical to the
//      undisturbed single-worker run.
#include <signal.h>
#include <sys/types.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "common/config.hpp"
#include "datasets/catalog.hpp"
#include "eval/splits.hpp"
#include "obs/bench_json.hpp"
#include "system/gestureprint.hpp"

namespace {

using namespace gp;
using Clock = std::chrono::steady_clock;

const std::vector<std::uint64_t> kSessions{7, 1001, 424242};

struct RunOutcome {
  std::vector<serve::ServeResult> results;  ///< sorted by (session, ordinal)
  cluster::Cluster::Stats stats;
  double ms = 0.0;
  bool pushes_ok = true;  ///< every push_frame came back kAccepted
};

/// Streams every recording frame-by-frame (interleaved) through a Cluster,
/// optionally SIGKILLing the owner of kSessions[0] at frame `kill_at`.
RunOutcome run_cluster(cluster::Cluster& cluster,
                       const std::vector<ContinuousRecording>& streams,
                       std::size_t kill_at = SIZE_MAX) {
  RunOutcome out;
  std::size_t max_frames = 0;
  for (const auto& s : streams) max_frames = std::max(max_frames, s.frames.size());
  const Clock::time_point start = Clock::now();
  for (std::size_t f = 0; f < max_frames; ++f) {
    if (f == kill_at) {
      const std::size_t owner = cluster.owner_slot(kSessions[0]);
      const pid_t pid =
          owner == static_cast<std::size_t>(-1) ? -1 : cluster.worker_pid(owner);
      if (pid > 0) (void)::kill(pid, SIGKILL);
    }
    for (std::size_t i = 0; i < kSessions.size(); ++i) {
      if (f >= streams[i].frames.size()) continue;
      if (cluster.push_frame(kSessions[i], streams[i].frames[f]) !=
          serve::Admission::kAccepted) {
        out.pushes_ok = false;
      }
    }
    for (serve::ServeResult& r : cluster.pump()) out.results.push_back(std::move(r));
  }
  for (serve::ServeResult& r : cluster.drain()) out.results.push_back(std::move(r));
  out.ms = std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  std::sort(out.results.begin(), out.results.end(), [](const auto& a, const auto& b) {
    return a.session_id != b.session_id ? a.session_id < b.session_id
                                        : a.segment_ordinal < b.segment_ordinal;
  });
  out.stats = cluster.stats();
  return out;
}

bool results_bitwise_equal(const std::vector<serve::ServeResult>& a,
                           const std::vector<serve::ServeResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const serve::ServeResult& x = a[i];
    const serve::ServeResult& y = b[i];
    if (x.session_id != y.session_id || x.segment_ordinal != y.segment_ordinal ||
        x.request_id != y.request_id || x.gesture != y.gesture || x.user != y.user ||
        x.abstained != y.abstained || x.quality_rejected != y.quality_rejected ||
        x.gesture_margin != y.gesture_margin || x.user_margin != y.user_margin ||
        x.model_version != y.model_version) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace gp;
  bench::banner("cluster_bench", "DESIGN.md §12 (crash-tolerant serving; not in the paper)");

  DatasetScale scale;
  scale.max_users = 3;
  scale.reps = 8;
  DatasetSpec spec = gestureprint_spec(1, scale);
  spec.gestures.resize(3);

  GesturePrintConfig config;
  config.training.epochs = 6;
  config.training.batch_size = 16;
  config.prep.augmentation.copies = 2;
  config.abstain_margin = 0.05;

  std::cout << "Training on " << spec.num_users << " users x " << spec.gestures.size()
            << " gestures...\n";
  const Dataset dataset = generate_dataset(spec);
  const std::string model_path = output_dir() + "/cluster_bench_model.gpsy";
  {
    GesturePrintSystem system(config);
    Rng split_rng(3, 1);
    system.fit(dataset, stratified_split(dataset.gesture_labels(), 0.2, split_rng).train);
    system.save(model_path);
  }

  const std::vector<std::vector<int>> scripts{{0, 2, 1}, {1, 0, 2}, {2, 1, 0}};
  std::vector<ContinuousRecording> streams;
  for (std::size_t s = 0; s < scripts.size(); ++s) {
    streams.push_back(
        generate_recording(spec, s % spec.num_users, scripts[s], 0xC105 + s));
  }

  const auto base_config = [&](std::size_t workers) {
    cluster::ClusterConfig cc;
    cc.workers = workers;
    cc.model_path = model_path;
    cc.serve.system = config;
    cc.serve.shards = 1;
    cc.checkpoint_every = 8;
    return cc;
  };

  bool ok = true;

  // ---- worker-count sweep: distribution must not change a single bit ----
  const std::vector<std::size_t> workers_swept{1, 2, 3};
  std::vector<obs::ClusterSweepCell> cells;
  std::vector<serve::ServeResult> reference;
  for (const std::size_t workers : workers_swept) {
    cluster::Cluster c(base_config(workers));
    const RunOutcome outcome = run_cluster(c, streams);
    if (workers == 1) reference = outcome.results;
    obs::ClusterSweepCell cell;
    cell.workers = workers;
    cell.frames = outcome.stats.frames_accepted;
    cell.results = outcome.stats.results;
    cell.rpc_calls = outcome.stats.rpc_calls;
    cell.rpc_attempts = outcome.stats.rpc_attempts;
    cell.checkpoints = outcome.stats.checkpoints;
    cell.ms = outcome.ms;
    cell.bitwise_vs_single = results_bitwise_equal(outcome.results, reference);
    cells.push_back(cell);
    std::cout << "  workers=" << workers << ": " << cell.results << " results in "
              << cell.ms << " ms (" << cell.rpc_attempts << " wire attempts / "
              << cell.rpc_calls << " RPCs, " << cell.checkpoints << " checkpoints), "
              << (cell.bitwise_vs_single ? "bitwise == 1-worker" : "DIVERGED") << "\n";
    if (!cell.bitwise_vs_single || !outcome.pushes_ok) ok = false;
    if (outcome.stats.workers_evicted != 0) {
      std::cout << "FAIL: fault-free sweep evicted a worker\n";
      ok = false;
    }
  }

  // ---- kill-and-recover: SIGKILL one worker mid-stream -------------------
  std::size_t max_frames = 0;
  for (const auto& s : streams) max_frames = std::max(max_frames, s.frames.size());
  obs::ClusterFailoverSummary failover;
  {
    cluster::Cluster c(base_config(2));
    const RunOutcome outcome = run_cluster(c, streams, max_frames / 2);
    failover.measured = true;
    failover.workers = 2;
    failover.evictions = outcome.stats.workers_evicted;
    failover.migrations = outcome.stats.sessions_migrated;
    failover.respawns = outcome.stats.workers_respawned;
    failover.results = outcome.stats.results;
    failover.shed = outcome.stats.frames_shed_no_worker;
    failover.ms = outcome.ms;
    failover.bitwise_identical = results_bitwise_equal(outcome.results, reference);
    std::cout << "  failover(workers=2, kill@" << max_frames / 2
              << "): " << failover.evictions << " evicted, " << failover.migrations
              << " sessions migrated, " << failover.respawns << " respawned, "
              << failover.shed << " shed, "
              << (failover.bitwise_identical ? "bitwise == undisturbed" : "DIVERGED")
              << "\n";
    if (!failover.bitwise_identical || !outcome.pushes_ok) ok = false;
    if (failover.evictions < 1 || failover.migrations < 1 || failover.respawns < 1) {
      std::cout << "FAIL: the kill scenario exercised no failover\n";
      ok = false;
    }
    if (failover.shed != 0) {
      std::cout << "FAIL: failover shed " << failover.shed << " frames\n";
      ok = false;
    }
  }

  const std::string json =
      obs::cluster_bench_json(kSessions.size(), workers_swept, cells, failover);
  const std::string path = output_dir() + "/BENCH_cluster.json";
  std::ofstream(path) << json;
  std::cout << "\nWrote " << path << "\n";
  std::cout << (ok ? "Cluster crash-tolerance invariants hold.\n"
                   : "Invariants VIOLATED.\n");
  return ok ? 0 : 1;
}
