// Fig. 12 reproduction: distance robustness on three mHomeGes anchors
// (1.35 / 1.5 / 1.65 m) — train on one anchor, test on the others, with and
// without data augmentation.
//
// Expected shape (paper): performance at unseen anchors stays reliable, and
// removing data augmentation visibly hurts the unseen-distance cells.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "datasets/cache.hpp"
#include "datasets/prep.hpp"

int main() {
  using namespace gp;
  bench::banner("cross-distance robustness +/- augmentation", "Fig. 12");

  DatasetScale scale = DatasetScale::from_run_scale();
  if (run_scale() == RunScale::kDefault) scale.max_users = 6;  // 6 trainings ahead
  const std::vector<double> anchors{1.35, 1.5, 1.65};
  const DatasetSpec spec = mhomeges_spec(anchors, scale);
  const Dataset dataset = generate_dataset_cached(spec);

  Table table({"train anchor", "test anchor", "GRA +DA", "UIA +DA", "GRA -DA", "UIA -DA"});
  CsvWriter csv(output_dir() + "/fig12_cross_distance.csv",
                {"train_anchor", "test_anchor", "augment", "gra", "uia"});

  double seen_gra_da = 0.0;
  std::size_t seen_cells = 0;
  double unseen_gra_da = 0.0;
  double unseen_uia_da = 0.0;
  double unseen_gra_noda = 0.0;
  double unseen_uia_noda = 0.0;
  std::size_t unseen_cells = 0;

  for (double train_anchor : anchors) {
    const auto train_pool = indices_where_distance(dataset, train_anchor);

    // Carve a stratified 8:2 split inside the training anchor so the "same
    // anchor" cell is measured on held-out repetitions.
    Rng split_rng(99, 7);
    std::vector<int> strata;
    for (std::size_t idx : train_pool) {
      strata.push_back(dataset.samples[idx].gesture * 64 + dataset.samples[idx].user);
    }
    const Split inner = stratified_split(strata, 0.2, split_rng);
    std::vector<std::size_t> train_idx;
    std::vector<std::size_t> heldout_idx;
    for (std::size_t i : inner.train) train_idx.push_back(train_pool[i]);
    for (std::size_t i : inner.test) heldout_idx.push_back(train_pool[i]);

    struct ModeResult {
      std::vector<double> gra;
      std::vector<double> uia;
    };
    ModeResult with_da;
    ModeResult without_da;

    for (bool augment : {true, false}) {
      GesturePrintConfig config = bench::default_system_config();
      config.prep.augment = augment;
      GesturePrintSystem system(config);
      system.fit(dataset, train_idx);

      ModeResult& result = augment ? with_da : without_da;
      for (double test_anchor : anchors) {
        std::vector<std::size_t> test_idx;
        if (test_anchor == train_anchor) {
          test_idx = heldout_idx;
        } else {
          test_idx = indices_where_distance(dataset, test_anchor);
        }
        const SystemEvaluation eval = system.evaluate(dataset, test_idx);
        result.gra.push_back(eval.gra);
        result.uia.push_back(eval.uia);
        csv.write_row({Table::num(train_anchor, 2), Table::num(test_anchor, 2),
                       augment ? "yes" : "no", bench::cell(eval.gra), bench::cell(eval.uia)});
      }
    }

    for (std::size_t t = 0; t < anchors.size(); ++t) {
      table.add_row({Table::num(train_anchor, 2), Table::num(anchors[t], 2),
                     bench::cell(with_da.gra[t]), bench::cell(with_da.uia[t]),
                     bench::cell(without_da.gra[t]), bench::cell(without_da.uia[t])});
      if (anchors[t] == train_anchor) {
        seen_gra_da += with_da.gra[t];
        ++seen_cells;
      } else {
        unseen_gra_da += with_da.gra[t];
        unseen_uia_da += with_da.uia[t];
        unseen_gra_noda += without_da.gra[t];
        unseen_uia_noda += without_da.uia[t];
        ++unseen_cells;
      }
    }
    std::cout << "[train@" << train_anchor << " done]\n";
  }

  std::cout << '\n';
  table.print();
  const double n = static_cast<double>(unseen_cells);
  std::cout << "\nPaper shape: unseen-anchor cells stay reliable with DA and drop without it.\n"
            << "Measured (unseen-anchor means): GRA +DA " << Table::pct(unseen_gra_da / n)
            << " vs -DA " << Table::pct(unseen_gra_noda / n) << "; UIA +DA "
            << Table::pct(unseen_uia_da / n) << " vs -DA " << Table::pct(unseen_uia_noda / n)
            << "; seen-anchor GRA +DA "
            << Table::pct(seen_gra_da / static_cast<double>(seen_cells)) << ".\nCSV: "
            << csv.path() << "\n";
  return 0;
}
