#include "dsp/cfar.hpp"

#include <cmath>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace gp::dsp {

double cfar_alpha(std::size_t num_training, double probability_false_alarm) {
  check_arg(num_training > 0, "CFAR requires at least one training cell");
  check_arg(probability_false_alarm > 0.0 && probability_false_alarm < 1.0,
            "Pfa must lie in (0,1)");
  const double n = static_cast<double>(num_training);
  return n * (std::pow(probability_false_alarm, -1.0 / n) - 1.0);
}

namespace {

// Local noise estimate around index i using up to `training` cells per side,
// skipping `guard` cells. Returns {noise_power, cells_used}.
std::pair<double, std::size_t> noise_around(const std::vector<double>& power, std::size_t i,
                                            std::size_t guard, std::size_t training) {
  double acc = 0.0;
  std::size_t used = 0;
  // Left side.
  for (std::size_t k = 1; k <= training; ++k) {
    const std::size_t offset = guard + k;
    if (i >= offset) {
      acc += power[i - offset];
      ++used;
    }
  }
  // Right side.
  for (std::size_t k = 1; k <= training; ++k) {
    const std::size_t j = i + guard + k;
    if (j < power.size()) {
      acc += power[j];
      ++used;
    }
  }
  return {used > 0 ? acc / static_cast<double>(used) : 0.0, used};
}

}  // namespace

std::vector<std::size_t> cfar_1d(const std::vector<double>& power, const CfarConfig& config) {
  check_arg(config.training_cells > 0, "CFAR requires training cells");
  std::vector<std::size_t> detections;
  if (power.size() < 2 * (config.guard_cells + 1)) return detections;

  for (std::size_t i = 0; i < power.size(); ++i) {
    const auto [noise, used] = noise_around(power, i, config.guard_cells, config.training_cells);
    if (used == 0 || noise <= 0.0) continue;
    const double alpha = cfar_alpha(used, config.probability_false_alarm);
    if (power[i] > alpha * noise) detections.push_back(i);
  }
  return detections;
}

double Detection2d::snr_db() const {
  if (noise <= 0.0 || power <= 0.0) return 0.0;
  return 10.0 * std::log10(power / noise);
}

std::vector<Detection2d> cfar_2d(const PowerMap& map, const CfarConfig& range_config,
                                 const CfarConfig& doppler_config) {
  GP_SPAN("dsp.cfar");
  check_arg(map.data.size() == map.rows * map.cols, "PowerMap shape mismatch");
  std::vector<Detection2d> detections;
  if (map.rows == 0 || map.cols == 0) return detections;

  // Pass 1: CFAR along range (columns fixed).
  std::vector<char> range_pass(map.rows * map.cols, 0);
  std::vector<double> column(map.rows);
  std::vector<double> noise_est(map.rows * map.cols, 0.0);
  for (std::size_t c = 0; c < map.cols; ++c) {
    for (std::size_t r = 0; r < map.rows; ++r) column[r] = map.at(r, c);
    for (std::size_t r = 0; r < map.rows; ++r) {
      const auto [noise, used] =
          noise_around(column, r, range_config.guard_cells, range_config.training_cells);
      noise_est[r * map.cols + c] = noise;
      if (used == 0 || noise <= 0.0) continue;
      const double alpha = cfar_alpha(used, range_config.probability_false_alarm);
      if (column[r] > alpha * noise) range_pass[r * map.cols + c] = 1;
    }
  }

  // Pass 2: confirm along Doppler (rows fixed).
  std::vector<double> row_buf(map.cols);
  for (std::size_t r = 0; r < map.rows; ++r) {
    for (std::size_t c = 0; c < map.cols; ++c) row_buf[c] = map.at(r, c);
    for (std::size_t c = 0; c < map.cols; ++c) {
      if (!range_pass[r * map.cols + c]) continue;
      const auto [noise, used] =
          noise_around(row_buf, c, doppler_config.guard_cells, doppler_config.training_cells);
      if (used == 0 || noise <= 0.0) continue;
      const double alpha = cfar_alpha(used, doppler_config.probability_false_alarm);
      if (row_buf[c] > alpha * noise) {
        Detection2d det;
        det.row = r;
        det.col = c;
        det.power = map.at(r, c);
        det.noise = 0.5 * (noise + noise_est[r * map.cols + c]);
        detections.push_back(det);
      }
    }
  }
  return detections;
}

}  // namespace gp::dsp
