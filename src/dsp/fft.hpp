// Fast Fourier Transform.
//
// Power-of-two sizes use an iterative radix-2 Cooley–Tukey; arbitrary sizes
// fall back to Bluestein's chirp-z algorithm (itself built on the radix-2
// kernel), so fft() works for any length >= 1. Normalisation convention:
// fft() is unnormalised, ifft() divides by N — matching NumPy/Matlab so the
// radar chain's magnitudes are directly comparable to reference values.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace gp::dsp {

using cplx = std::complex<double>;

/// In-place radix-2 FFT. Requires size to be a power of two (and >= 1).
void fft_pow2_inplace(std::vector<cplx>& data, bool inverse);

/// Forward DFT of arbitrary length (Bluestein fallback for non-pow2).
std::vector<cplx> fft(const std::vector<cplx>& input);

/// Inverse DFT of arbitrary length; ifft(fft(x)) == x.
std::vector<cplx> ifft(const std::vector<cplx>& input);

/// Forward DFT of a real signal; returns all N complex bins.
std::vector<cplx> rfft(const std::vector<double>& input);

/// True iff n is a power of two (n >= 1).
bool is_pow2(std::size_t n);

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n);

/// |X[k]| for each bin.
std::vector<double> magnitude(const std::vector<cplx>& spectrum);

/// |X[k]|^2 for each bin.
std::vector<double> power(const std::vector<cplx>& spectrum);

/// Rotates the spectrum so the zero-frequency bin sits at the centre
/// (index N/2), like numpy.fft.fftshift.
template <typename T>
std::vector<T> fftshift(const std::vector<T>& v) {
  const std::size_t n = v.size();
  std::vector<T> out(n);
  const std::size_t half = (n + 1) / 2;  // first element that moves to front
  for (std::size_t i = 0; i < n; ++i) out[i] = v[(i + half) % n];
  return out;
}

}  // namespace gp::dsp
