#include "dsp/fft.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace gp::dsp {

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_pow2_inplace(std::vector<cplx>& data, bool inverse) {
  const std::size_t n = data.size();
  check_arg(is_pow2(n), "fft_pow2_inplace requires a power-of-two size");
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const cplx wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = data[i + k];
        const cplx v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

namespace {

// Bluestein's algorithm: expresses an arbitrary-length DFT as a convolution,
// evaluated with zero-padded power-of-two FFTs.
std::vector<cplx> bluestein(const std::vector<cplx>& input, bool inverse) {
  const std::size_t n = input.size();
  const double sign = inverse ? 1.0 : -1.0;

  // Chirp c[k] = exp(sign * i*pi*k^2/n). k^2 mod 2n avoids precision loss
  // for large k.
  std::vector<cplx> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle = sign * kPi * static_cast<double>(k2) / static_cast<double>(n);
    chirp[k] = cplx(std::cos(angle), std::sin(angle));
  }

  const std::size_t m = next_pow2(2 * n - 1);
  std::vector<cplx> a(m, cplx(0, 0));
  std::vector<cplx> b(m, cplx(0, 0));
  for (std::size_t k = 0; k < n; ++k) a[k] = input[k] * chirp[k];
  for (std::size_t k = 0; k < n; ++k) {
    b[k] = std::conj(chirp[k]);
    if (k != 0) b[m - k] = std::conj(chirp[k]);
  }

  fft_pow2_inplace(a, /*inverse=*/false);
  fft_pow2_inplace(b, /*inverse=*/false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_pow2_inplace(a, /*inverse=*/true);

  std::vector<cplx> out(n);
  const double scale = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * scale * chirp[k];
  return out;
}

}  // namespace

std::vector<cplx> fft(const std::vector<cplx>& input) {
  check_arg(!input.empty(), "fft of empty signal");
  if (is_pow2(input.size())) {
    std::vector<cplx> data = input;
    fft_pow2_inplace(data, /*inverse=*/false);
    return data;
  }
  return bluestein(input, /*inverse=*/false);
}

std::vector<cplx> ifft(const std::vector<cplx>& input) {
  check_arg(!input.empty(), "ifft of empty signal");
  std::vector<cplx> out;
  if (is_pow2(input.size())) {
    out = input;
    fft_pow2_inplace(out, /*inverse=*/true);
  } else {
    out = bluestein(input, /*inverse=*/true);
  }
  const double scale = 1.0 / static_cast<double>(out.size());
  for (auto& v : out) v *= scale;
  return out;
}

std::vector<cplx> rfft(const std::vector<double>& input) {
  std::vector<cplx> c(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) c[i] = cplx(input[i], 0.0);
  return fft(c);
}

std::vector<double> magnitude(const std::vector<cplx>& spectrum) {
  std::vector<double> out(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i) out[i] = std::abs(spectrum[i]);
  return out;
}

std::vector<double> power(const std::vector<cplx>& spectrum) {
  std::vector<double> out(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i) out[i] = std::norm(spectrum[i]);
  return out;
}

}  // namespace gp::dsp
