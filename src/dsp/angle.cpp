#include "dsp/angle.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace gp::dsp {

double spatial_bin_to_angle(std::size_t shifted_bin, std::size_t fft_size) {
  check_arg(fft_size > 0 && shifted_bin < fft_size, "bad spatial bin");
  // After fftshift, bin fft_size/2 is zero spatial frequency.
  const double f =
      (static_cast<double>(shifted_bin) - static_cast<double>(fft_size) / 2.0) /
      static_cast<double>(fft_size);
  // d = lambda/2  =>  sin(theta) = 2 f. Clamp for safety at the band edge.
  const double s = std::clamp(2.0 * f, -1.0, 1.0);
  return std::asin(s);
}

AngleEstimate estimate_angle(const std::vector<cplx>& snapshots, std::size_t fft_size) {
  check_arg(!snapshots.empty(), "estimate_angle requires snapshots");
  check_arg(is_pow2(fft_size) && fft_size >= snapshots.size(),
            "fft_size must be pow2 and >= number of antennas");

  std::vector<cplx> padded(fft_size, cplx(0, 0));
  std::copy(snapshots.begin(), snapshots.end(), padded.begin());
  fft_pow2_inplace(padded, /*inverse=*/false);
  const auto shifted = fftshift(padded);

  std::size_t best = 0;
  double best_power = -1.0;
  for (std::size_t i = 0; i < shifted.size(); ++i) {
    const double p = std::norm(shifted[i]);
    if (p > best_power) {
      best_power = p;
      best = i;
    }
  }

  AngleEstimate est;
  est.angle_rad = spatial_bin_to_angle(best, fft_size);
  est.peak_power = best_power;
  return est;
}

}  // namespace gp::dsp
