// Dynamic Range-Angle Image (DRAI) computation.
//
// DI-Gesture (the paper's segmentation comparison point, §IV-B) segments
// gestures from DRAIs: per-frame range-azimuth heatmaps of *moving* energy.
// We provide the same representation, computed from the range-Doppler cube
// by beamforming each range bin's azimuth snapshots and integrating power
// over the non-zero Doppler bins. GesturePrint's point-count segmentation
// is compared against a DRAI-energy segmenter in pipeline/energy_segmentation.
#pragma once

#include "dsp/range_doppler.hpp"

namespace gp::dsp {

/// Dense range-angle heatmap (rows = range bins, cols = angle bins; angle
/// axis fftshifted so boresight sits at cols/2).
struct RangeAngleImage {
  std::size_t num_range_bins = 0;
  std::size_t num_angle_bins = 0;
  std::vector<double> data;

  double at(std::size_t r, std::size_t a) const { return data[r * num_angle_bins + a]; }
  double& at(std::size_t r, std::size_t a) { return data[r * num_angle_bins + a]; }

  /// Total energy (the per-frame motion indicator DI-Gesture thresholds).
  double total_energy() const;
  /// Location of the strongest cell.
  std::pair<std::size_t, std::size_t> argmax() const;
};

/// Computes the DRAI of one frame from its range-Doppler cube, using the
/// first `num_azimuth` antennas as the azimuth ULA. Zero-Doppler energy is
/// excluded (the "dynamic" in DRAI), so static scenes produce ~zero energy.
RangeAngleImage compute_drai(const RangeDopplerCube& cube, std::size_t num_azimuth,
                             std::size_t angle_fft_size = 64,
                             bool exclude_zero_doppler = true);

}  // namespace gp::dsp
