// Window functions applied before the range/Doppler FFTs to control
// spectral leakage (the TI mmWave SDK applies a Hann window by default).
#pragma once

#include <cstddef>
#include <vector>

namespace gp::dsp {

enum class WindowKind { kRect, kHann, kHamming, kBlackman };

/// Window coefficients of length n (periodic form, suited for FFT use).
std::vector<double> make_window(WindowKind kind, std::size_t n);

/// Multiplies `signal` element-wise by the window. Sizes must match.
void apply_window(std::vector<double>& signal, const std::vector<double>& window);

/// Coherent gain: mean of the window (used to renormalise magnitudes).
double coherent_gain(const std::vector<double>& window);

}  // namespace gp::dsp
