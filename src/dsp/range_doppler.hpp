// Range–Doppler processing for one FMCW frame.
//
// Input: a radar data cube (virtual antenna x chirp x ADC sample) of complex
// IF samples. Processing follows the standard TI mmWave chain:
//   1. window + range FFT along samples        (per chirp, per antenna)
//   2. optional static clutter removal          (subtract per-bin chirp mean)
//   3. window + Doppler FFT along chirps        (per range bin, per antenna)
//   4. non-coherent integration across antennas (power sum)
// yielding a PowerMap for CFAR, while the per-antenna complex range–Doppler
// cube is retained for angle estimation.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "dsp/cfar.hpp"
#include "dsp/fft.hpp"
#include "dsp/window.hpp"

namespace gp::dsp {

/// Raw IF samples for one frame: cube[antenna][chirp][sample].
struct DataCube {
  std::size_t num_antennas = 0;
  std::size_t num_chirps = 0;
  std::size_t num_samples = 0;
  std::vector<cplx> data;  ///< antenna-major, then chirp, then sample

  const cplx& at(std::size_t a, std::size_t c, std::size_t s) const {
    return data[(a * num_chirps + c) * num_samples + s];
  }
  cplx& at(std::size_t a, std::size_t c, std::size_t s) {
    return data[(a * num_chirps + c) * num_samples + s];
  }
};

/// Complex range–Doppler cube: rd[antenna][range_bin][doppler_bin], Doppler
/// axis fftshifted so bin cols/2 is zero velocity.
struct RangeDopplerCube {
  std::size_t num_antennas = 0;
  std::size_t num_range_bins = 0;
  std::size_t num_doppler_bins = 0;
  std::vector<cplx> data;

  const cplx& at(std::size_t a, std::size_t r, std::size_t d) const {
    return data[(a * num_range_bins + r) * num_doppler_bins + d];
  }
  cplx& at(std::size_t a, std::size_t r, std::size_t d) {
    return data[(a * num_range_bins + r) * num_doppler_bins + d];
  }
};

struct RangeDopplerConfig {
  WindowKind range_window = WindowKind::kHann;
  WindowKind doppler_window = WindowKind::kHann;
  /// Removes zero-Doppler energy before the Doppler FFT; mirrors the
  /// "static clutter removal" switch GesturePrint enables on the device.
  bool static_clutter_removal = true;
};

/// Runs steps 1–3; range bins = num_samples/2 (positive beat frequencies
/// only), Doppler bins = num_chirps (fftshifted).
RangeDopplerCube range_doppler_transform(const DataCube& cube, const RangeDopplerConfig& config);

/// Step 4: non-coherent integration across antennas -> power map
/// (rows = range bins, cols = Doppler bins).
PowerMap integrate_power(const RangeDopplerCube& cube);

}  // namespace gp::dsp
