// Angle-of-arrival estimation across the virtual antenna array.
//
// The IWR6843AOP's 3TX x 4RX MIMO forms a 12-element virtual array; we model
// it as two uniform linear arrays at half-wavelength spacing (azimuth and
// elevation rows), the standard simplification for FFT beamforming. A
// zero-padded FFT over antenna snapshots gives the spatial spectrum; the
// peak bin maps to sin(theta).
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "dsp/fft.hpp"

namespace gp::dsp {

struct AngleEstimate {
  double angle_rad = 0.0;  ///< estimated arrival angle, in (-pi/2, pi/2)
  double peak_power = 0.0;
};

/// FFT beamforming over per-antenna complex snapshots at one range–Doppler
/// bin. `fft_size` controls interpolation (must be >= snapshots.size(),
/// power of two).
AngleEstimate estimate_angle(const std::vector<cplx>& snapshots, std::size_t fft_size = 64);

/// Converts a (shifted) spatial-FFT bin index to an angle for a ULA with
/// half-wavelength spacing: sin(theta) = 2 * f where f in [-0.5, 0.5).
double spatial_bin_to_angle(std::size_t shifted_bin, std::size_t fft_size);

}  // namespace gp::dsp
