#include "dsp/range_doppler.hpp"

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace gp::dsp {

// The transform runs stage-major (all antennas through the range FFT, then
// clutter removal, then the Doppler FFT) so each DSP stage is individually
// observable via GP_SPAN. Every array element sees exactly the same
// floating-point operation sequence as a fused per-antenna loop would
// apply, so the restructuring is bitwise-neutral.
RangeDopplerCube range_doppler_transform(const DataCube& cube, const RangeDopplerConfig& config) {
  GP_SPAN("dsp.range_doppler");
  check_arg(cube.num_antennas > 0 && cube.num_chirps > 0 && cube.num_samples > 0,
            "empty data cube");
  check_arg(cube.data.size() == cube.num_antennas * cube.num_chirps * cube.num_samples,
            "data cube shape mismatch");
  check_arg(is_pow2(cube.num_samples) && is_pow2(cube.num_chirps),
            "range_doppler_transform requires pow2 chirps/samples");

  const std::size_t num_range_bins = cube.num_samples / 2;
  const auto range_win = make_window(config.range_window, cube.num_samples);
  const auto doppler_win = make_window(config.doppler_window, cube.num_chirps);

  RangeDopplerCube out;
  out.num_antennas = cube.num_antennas;
  out.num_range_bins = num_range_bins;
  out.num_doppler_bins = cube.num_chirps;
  out.data.assign(cube.num_antennas * num_range_bins * cube.num_chirps, cplx(0, 0));

  // range_spectra[antenna][chirp][range_bin] (positive bins only).
  std::vector<cplx> range_spectra(cube.num_antennas * cube.num_chirps * num_range_bins);
  const auto spectra_at = [&](std::size_t a, std::size_t c, std::size_t r) -> cplx& {
    return range_spectra[(a * cube.num_chirps + c) * num_range_bins + r];
  };

  // 1. Range FFT per chirp.
  {
    GP_SPAN("dsp.range_fft");
    std::vector<cplx> chirp(cube.num_samples);
    for (std::size_t a = 0; a < cube.num_antennas; ++a) {
      for (std::size_t c = 0; c < cube.num_chirps; ++c) {
        for (std::size_t s = 0; s < cube.num_samples; ++s) {
          chirp[s] = cube.at(a, c, s) * range_win[s];
        }
        fft_pow2_inplace(chirp, /*inverse=*/false);
        for (std::size_t r = 0; r < num_range_bins; ++r) spectra_at(a, c, r) = chirp[r];
      }
    }
  }

  // 2. Static clutter removal: subtract the chirp-mean per range bin.
  if (config.static_clutter_removal) {
    GP_SPAN("dsp.clutter_removal");
    for (std::size_t a = 0; a < cube.num_antennas; ++a) {
      for (std::size_t r = 0; r < num_range_bins; ++r) {
        cplx mean(0, 0);
        for (std::size_t c = 0; c < cube.num_chirps; ++c) mean += spectra_at(a, c, r);
        mean /= static_cast<double>(cube.num_chirps);
        for (std::size_t c = 0; c < cube.num_chirps; ++c) spectra_at(a, c, r) -= mean;
      }
    }
  }

  // 3. Doppler FFT across chirps, fftshifted so zero velocity is centred.
  {
    GP_SPAN("dsp.doppler_fft");
    std::vector<cplx> doppler(cube.num_chirps);
    for (std::size_t a = 0; a < cube.num_antennas; ++a) {
      for (std::size_t r = 0; r < num_range_bins; ++r) {
        for (std::size_t c = 0; c < cube.num_chirps; ++c) {
          doppler[c] = spectra_at(a, c, r) * doppler_win[c];
        }
        fft_pow2_inplace(doppler, /*inverse=*/false);
        const auto shifted = fftshift(doppler);
        for (std::size_t d = 0; d < cube.num_chirps; ++d) out.at(a, r, d) = shifted[d];
      }
    }
  }
  return out;
}

PowerMap integrate_power(const RangeDopplerCube& cube) {
  PowerMap map;
  map.rows = cube.num_range_bins;
  map.cols = cube.num_doppler_bins;
  map.data.assign(map.rows * map.cols, 0.0);
  for (std::size_t a = 0; a < cube.num_antennas; ++a) {
    for (std::size_t r = 0; r < cube.num_range_bins; ++r) {
      for (std::size_t d = 0; d < cube.num_doppler_bins; ++d) {
        map.at(r, d) += std::norm(cube.at(a, r, d));
      }
    }
  }
  return map;
}

}  // namespace gp::dsp
