#include "dsp/range_doppler.hpp"

#include "common/error.hpp"

namespace gp::dsp {

RangeDopplerCube range_doppler_transform(const DataCube& cube, const RangeDopplerConfig& config) {
  check_arg(cube.num_antennas > 0 && cube.num_chirps > 0 && cube.num_samples > 0,
            "empty data cube");
  check_arg(cube.data.size() == cube.num_antennas * cube.num_chirps * cube.num_samples,
            "data cube shape mismatch");
  check_arg(is_pow2(cube.num_samples) && is_pow2(cube.num_chirps),
            "range_doppler_transform requires pow2 chirps/samples");

  const std::size_t num_range_bins = cube.num_samples / 2;
  const auto range_win = make_window(config.range_window, cube.num_samples);
  const auto doppler_win = make_window(config.doppler_window, cube.num_chirps);

  // Intermediate: per antenna, per chirp, range spectrum (positive bins).
  RangeDopplerCube out;
  out.num_antennas = cube.num_antennas;
  out.num_range_bins = num_range_bins;
  out.num_doppler_bins = cube.num_chirps;
  out.data.assign(cube.num_antennas * num_range_bins * cube.num_chirps, cplx(0, 0));

  std::vector<cplx> chirp(cube.num_samples);
  // range_spectra[chirp][range_bin] for the current antenna.
  std::vector<cplx> range_spectra(cube.num_chirps * num_range_bins);

  for (std::size_t a = 0; a < cube.num_antennas; ++a) {
    // 1. Range FFT per chirp.
    for (std::size_t c = 0; c < cube.num_chirps; ++c) {
      for (std::size_t s = 0; s < cube.num_samples; ++s) {
        chirp[s] = cube.at(a, c, s) * range_win[s];
      }
      fft_pow2_inplace(chirp, /*inverse=*/false);
      for (std::size_t r = 0; r < num_range_bins; ++r) {
        range_spectra[c * num_range_bins + r] = chirp[r];
      }
    }

    // 2. Static clutter removal: subtract the chirp-mean per range bin.
    if (config.static_clutter_removal) {
      for (std::size_t r = 0; r < num_range_bins; ++r) {
        cplx mean(0, 0);
        for (std::size_t c = 0; c < cube.num_chirps; ++c) {
          mean += range_spectra[c * num_range_bins + r];
        }
        mean /= static_cast<double>(cube.num_chirps);
        for (std::size_t c = 0; c < cube.num_chirps; ++c) {
          range_spectra[c * num_range_bins + r] -= mean;
        }
      }
    }

    // 3. Doppler FFT across chirps, fftshifted so zero velocity is centred.
    std::vector<cplx> doppler(cube.num_chirps);
    for (std::size_t r = 0; r < num_range_bins; ++r) {
      for (std::size_t c = 0; c < cube.num_chirps; ++c) {
        doppler[c] = range_spectra[c * num_range_bins + r] * doppler_win[c];
      }
      fft_pow2_inplace(doppler, /*inverse=*/false);
      const auto shifted = fftshift(doppler);
      for (std::size_t d = 0; d < cube.num_chirps; ++d) out.at(a, r, d) = shifted[d];
    }
  }
  return out;
}

PowerMap integrate_power(const RangeDopplerCube& cube) {
  PowerMap map;
  map.rows = cube.num_range_bins;
  map.cols = cube.num_doppler_bins;
  map.data.assign(map.rows * map.cols, 0.0);
  for (std::size_t a = 0; a < cube.num_antennas; ++a) {
    for (std::size_t r = 0; r < cube.num_range_bins; ++r) {
      for (std::size_t d = 0; d < cube.num_doppler_bins; ++d) {
        map.at(r, d) += std::norm(cube.at(a, r, d));
      }
    }
  }
  return map;
}

}  // namespace gp::dsp
