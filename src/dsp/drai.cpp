#include "dsp/drai.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gp::dsp {

double RangeAngleImage::total_energy() const {
  double acc = 0.0;
  for (double v : data) acc += v;
  return acc;
}

std::pair<std::size_t, std::size_t> RangeAngleImage::argmax() const {
  check(!data.empty(), "argmax of empty DRAI");
  std::size_t best = 0;
  for (std::size_t i = 1; i < data.size(); ++i) {
    if (data[i] > data[best]) best = i;
  }
  return {best / num_angle_bins, best % num_angle_bins};
}

RangeAngleImage compute_drai(const RangeDopplerCube& cube, std::size_t num_azimuth,
                             std::size_t angle_fft_size, bool exclude_zero_doppler) {
  check_arg(num_azimuth >= 2 && num_azimuth <= cube.num_antennas,
            "bad azimuth antenna count");
  check_arg(is_pow2(angle_fft_size) && angle_fft_size >= num_azimuth,
            "angle_fft_size must be pow2 and >= antennas");

  RangeAngleImage image;
  image.num_range_bins = cube.num_range_bins;
  image.num_angle_bins = angle_fft_size;
  image.data.assign(cube.num_range_bins * angle_fft_size, 0.0);

  const std::size_t zero_doppler = cube.num_doppler_bins / 2;
  std::vector<cplx> snapshot(angle_fft_size);

  for (std::size_t r = 0; r < cube.num_range_bins; ++r) {
    for (std::size_t d = 0; d < cube.num_doppler_bins; ++d) {
      if (exclude_zero_doppler && d == zero_doppler) continue;

      std::fill(snapshot.begin(), snapshot.end(), cplx(0, 0));
      for (std::size_t a = 0; a < num_azimuth; ++a) snapshot[a] = cube.at(a, r, d);
      fft_pow2_inplace(snapshot, /*inverse=*/false);
      const auto shifted = fftshift(snapshot);
      for (std::size_t k = 0; k < angle_fft_size; ++k) {
        image.at(r, k) += std::norm(shifted[k]);
      }
    }
  }
  return image;
}

}  // namespace gp::dsp
