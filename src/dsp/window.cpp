#include "dsp/window.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace gp::dsp {

std::vector<double> make_window(WindowKind kind, std::size_t n) {
  check_arg(n >= 1, "window length must be >= 1");
  std::vector<double> w(n, 1.0);
  const double denom = static_cast<double>(n);  // periodic form
  switch (kind) {
    case WindowKind::kRect:
      break;
    case WindowKind::kHann:
      for (std::size_t i = 0; i < n; ++i) {
        w[i] = 0.5 - 0.5 * std::cos(2.0 * kPi * static_cast<double>(i) / denom);
      }
      break;
    case WindowKind::kHamming:
      for (std::size_t i = 0; i < n; ++i) {
        w[i] = 0.54 - 0.46 * std::cos(2.0 * kPi * static_cast<double>(i) / denom);
      }
      break;
    case WindowKind::kBlackman:
      for (std::size_t i = 0; i < n; ++i) {
        const double t = 2.0 * kPi * static_cast<double>(i) / denom;
        w[i] = 0.42 - 0.5 * std::cos(t) + 0.08 * std::cos(2.0 * t);
      }
      break;
  }
  return w;
}

void apply_window(std::vector<double>& signal, const std::vector<double>& window) {
  check_arg(signal.size() == window.size(), "window/signal size mismatch");
  for (std::size_t i = 0; i < signal.size(); ++i) signal[i] *= window[i];
}

double coherent_gain(const std::vector<double>& window) {
  check_arg(!window.empty(), "coherent gain of empty window");
  double acc = 0.0;
  for (double v : window) acc += v;
  return acc / static_cast<double>(window.size());
}

}  // namespace gp::dsp
