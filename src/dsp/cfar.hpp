// Constant False Alarm Rate (CFAR) detection.
//
// Cell-Averaging CFAR estimates local noise power from training cells around
// a cell under test (skipping guard cells) and declares a detection when the
// cell's power exceeds alpha * noise_estimate. The threshold factor alpha is
// derived from the desired false-alarm probability, matching the classic
// CA-CFAR analysis for exponentially distributed noise power.
#pragma once

#include <cstddef>
#include <vector>

namespace gp::dsp {

struct CfarConfig {
  std::size_t guard_cells = 2;     ///< cells skipped on each side of the CUT
  std::size_t training_cells = 8;  ///< noise-estimation cells on each side
  double probability_false_alarm = 1e-4;
};

/// Derives the CA-CFAR scaling factor alpha for `num_training` total training
/// cells: alpha = N * (Pfa^(-1/N) - 1).
double cfar_alpha(std::size_t num_training, double probability_false_alarm);

/// 1-D CA-CFAR over a power signal. Returns indices of detected cells.
/// Edges use the available (possibly one-sided) training cells.
std::vector<std::size_t> cfar_1d(const std::vector<double>& power, const CfarConfig& config);

/// Dense 2-D map stored row-major: rows = range bins, cols = Doppler bins.
struct PowerMap {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<double> data;  ///< rows * cols values

  double at(std::size_t r, std::size_t c) const { return data[r * cols + c]; }
  double& at(std::size_t r, std::size_t c) { return data[r * cols + c]; }
};

struct Detection2d {
  std::size_t row = 0;
  std::size_t col = 0;
  double power = 0.0;
  double noise = 0.0;  ///< estimated local noise power
  double snr_db() const;
};

/// 2-D CA-CFAR applied separably (cross-shaped training region, the scheme
/// the TI mmWave SDK uses: CFAR along range confirmed along Doppler).
std::vector<Detection2d> cfar_2d(const PowerMap& map, const CfarConfig& range_config,
                                 const CfarConfig& doppler_config);

}  // namespace gp::dsp
