#include "baselines/profile_net.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gp {

ProfileNetBaseline::ProfileNetBaseline(ProfileNetConfig config, Rng& rng)
    : config_(std::move(config)) {
  check_arg(config_.time_bins >= 2, "ProfileNet needs >= 2 time bins");
  const std::size_t in_dim = config_.time_bins * 6;
  net_ = std::make_unique<nn::Sequential>();
  std::size_t prev = in_dim;
  for (std::size_t i = 0; i < config_.hidden.size(); ++i) {
    net_->emplace<nn::Linear>(prev, config_.hidden[i], rng, "profile.fc" + std::to_string(i));
    net_->emplace<nn::BatchNorm1d>(config_.hidden[i], rng, 0.1, 1e-5,
                                   "profile.bn" + std::to_string(i));
    net_->emplace<nn::ReLU>();
    prev = config_.hidden[i];
  }
  net_->emplace<nn::Dropout>(config_.dropout, rng);
  net_->emplace<nn::Linear>(prev, config_.num_classes, rng, "profile.out");
}

nn::Tensor ProfileNetBaseline::extract_profiles(const BatchedCloud& batch) const {
  check_arg(config_.time_channel < batch.channels(), "bad time channel");
  const std::size_t t_bins = config_.time_bins;
  nn::Tensor profiles(batch.batch, t_bins * 6);

  for (std::size_t b = 0; b < batch.batch; ++b) {
    std::vector<double> sum_x(t_bins, 0.0);
    std::vector<double> sum_y(t_bins, 0.0);
    std::vector<double> sum_z(t_bins, 0.0);
    std::vector<double> sum_v(t_bins, 0.0);
    std::vector<double> sum_s(t_bins, 0.0);
    std::vector<double> count(t_bins, 0.0);

    const std::size_t base = b * batch.num_points;
    for (std::size_t i = 0; i < batch.num_points; ++i) {
      const double t = std::clamp(
          static_cast<double>(batch.features.at(base + i, config_.time_channel)), 0.0, 1.0);
      const auto bin = std::min(static_cast<std::size_t>(t * static_cast<double>(t_bins)),
                                t_bins - 1);
      sum_x[bin] += batch.positions.at(base + i, 0);
      sum_y[bin] += batch.positions.at(base + i, 1);
      sum_z[bin] += batch.positions.at(base + i, 2);
      sum_v[bin] += batch.features.at(base + i, 3);
      sum_s[bin] += batch.features.at(base + i, 4);
      count[bin] += 1.0;
    }
    for (std::size_t t = 0; t < t_bins; ++t) {
      const double n = std::max(count[t], 1.0);
      float* row = profiles.row(b);
      row[t * 6 + 0] = static_cast<float>(sum_x[t] / n);
      row[t * 6 + 1] = static_cast<float>(sum_y[t] / n);
      row[t * 6 + 2] = static_cast<float>(sum_z[t] / n);
      row[t * 6 + 3] = static_cast<float>(sum_v[t] / n);
      row[t * 6 + 4] = static_cast<float>(sum_s[t] / n);
      row[t * 6 + 5] = static_cast<float>(count[t] / static_cast<double>(batch.num_points));
    }
  }
  return profiles;
}

nn::Tensor ProfileNetBaseline::infer(const BatchedCloud& batch) {
  return net_->forward(extract_profiles(batch), /*training=*/false);
}

double ProfileNetBaseline::train_step(const BatchedCloud& batch, const std::vector<int>& labels) {
  const nn::Tensor logits = net_->forward(extract_profiles(batch), /*training=*/true);
  const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
  (void)net_->backward(loss.grad);
  return loss.loss;
}

std::vector<nn::Parameter*> ProfileNetBaseline::parameters() { return net_->parameters(); }

}  // namespace gp
