// Temporal-kNN EdgeConv network: the Tesla-Rapture stand-in.
//
// Tesla builds a graph over points with a temporal K-NN (neighbours chosen
// in space-time) and applies graph convolution. We reproduce that shape:
// each point's neighbours are its k nearest in [x, y, z, beta * t] space;
// edge features [feat_i, feat_j - feat_i] pass through a shared MLP and are
// max-aggregated per point, then a global max pool and an FC head classify.
#pragma once

#include <memory>

#include "gesidnet/model_api.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"

namespace gp {

struct EdgeConvConfig {
  std::size_t num_classes = 2;
  std::size_t in_channels = 7;
  std::size_t k = 8;                 ///< temporal-kNN neighbourhood size
  double time_scale = 0.5;           ///< beta: weight of the t channel in kNN
  std::size_t time_channel = 5;      ///< feature index of the temporal channel
  std::vector<std::size_t> edge_mlp{32, 48};
  std::vector<std::size_t> global_mlp{96};
  std::size_t head_hidden = 48;
  double dropout = 0.3;
};

class EdgeConvBaseline : public PointCloudClassifier {
 public:
  EdgeConvBaseline(EdgeConvConfig config, Rng& rng);

  nn::Tensor infer(const BatchedCloud& batch) override;
  double train_step(const BatchedCloud& batch, const std::vector<int>& labels) override;
  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override { return "EdgeConv"; }

 private:
  nn::Tensor forward_internal(const BatchedCloud& batch, bool training);
  void backward_internal(const nn::Tensor& dlogits);

  EdgeConvConfig config_;
  std::unique_ptr<nn::Sequential> edge_mlp_;
  std::unique_ptr<nn::Sequential> global_mlp_;
  std::unique_ptr<nn::Sequential> head_;

  // Forward caches.
  std::vector<std::size_t> neighbours_;      ///< (B*N*k) source rows
  std::vector<std::size_t> edge_argmax_;     ///< per (point,channel) edge row
  std::vector<std::size_t> global_argmax_;   ///< per (sample,channel) point row
  std::size_t batch_ = 0;
  std::size_t num_points_ = 0;
};

}  // namespace gp
