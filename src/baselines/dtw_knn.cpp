#include "baselines/dtw_knn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/error.hpp"

namespace gp {

Trajectory extract_trajectory(const FeaturizedSample& sample, const DtwKnnConfig& config) {
  check_arg(config.time_bins >= 2, "DTW needs >= 2 time bins");
  check_arg(config.time_channel < sample.dims, "bad time channel");

  Trajectory traj(config.time_bins, {0.0, 0.0, 0.0, 0.0});
  std::vector<double> counts(config.time_bins, 0.0);
  for (std::size_t i = 0; i < sample.num_points; ++i) {
    const double t = std::clamp(
        static_cast<double>(sample.features[i * sample.dims + config.time_channel]), 0.0, 1.0);
    const auto bin = std::min(
        static_cast<std::size_t>(t * static_cast<double>(config.time_bins)),
        config.time_bins - 1);
    traj[bin][0] += sample.positions[i * 3 + 0];
    traj[bin][1] += sample.positions[i * 3 + 1];
    traj[bin][2] += sample.positions[i * 3 + 2];
    traj[bin][3] += sample.features[i * sample.dims + 3];
    counts[bin] += 1.0;
  }
  for (std::size_t t = 0; t < config.time_bins; ++t) {
    const double n = std::max(counts[t], 1.0);
    for (auto& v : traj[t]) v /= n;
  }
  return traj;
}

double dtw_distance(const Trajectory& a, const Trajectory& b) {
  check_arg(!a.empty() && !b.empty(), "DTW of empty trajectory");
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  constexpr double inf = std::numeric_limits<double>::infinity();

  const auto cost = [&](std::size_t i, std::size_t j) {
    double acc = 0.0;
    for (std::size_t c = 0; c < 4; ++c) {
      const double d = a[i][c] - b[j][c];
      acc += d * d;
    }
    return std::sqrt(acc);
  };

  std::vector<double> prev(m + 1, inf);
  std::vector<double> curr(m + 1, inf);
  prev[0] = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    curr[0] = inf;
    for (std::size_t j = 1; j <= m; ++j) {
      curr[j] = cost(i - 1, j - 1) + std::min({prev[j], curr[j - 1], prev[j - 1]});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

DtwKnnClassifier::DtwKnnClassifier(DtwKnnConfig config) : config_(config) {}

void DtwKnnClassifier::fit(const LabeledSamples& data) {
  check_arg(data.samples.size() == data.labels.size(), "sample/label mismatch");
  check_arg(!data.samples.empty(), "empty DTW training set");
  train_trajectories_.clear();
  train_labels_ = data.labels;
  train_trajectories_.reserve(data.samples.size());
  for (const auto& s : data.samples) train_trajectories_.push_back(extract_trajectory(s, config_));
}

int DtwKnnClassifier::predict(const FeaturizedSample& sample) const {
  check(!train_trajectories_.empty(), "DTW classifier not fitted");
  const Trajectory query = extract_trajectory(sample, config_);

  std::vector<std::pair<double, int>> scored;
  scored.reserve(train_trajectories_.size());
  for (std::size_t i = 0; i < train_trajectories_.size(); ++i) {
    scored.emplace_back(dtw_distance(query, train_trajectories_[i]), train_labels_[i]);
  }
  const std::size_t k = std::min<std::size_t>(config_.k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(k),
                    scored.end());

  std::map<int, std::size_t> votes;
  for (std::size_t i = 0; i < k; ++i) ++votes[scored[i].second];
  int best_label = scored.front().second;
  std::size_t best_votes = 0;
  for (const auto& [label, count] : votes) {
    if (count > best_votes) {
      best_votes = count;
      best_label = label;
    }
  }
  return best_label;
}

std::vector<int> DtwKnnClassifier::predict(const std::vector<FeaturizedSample>& samples) const {
  std::vector<int> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(predict(s));
  return out;
}

}  // namespace gp
