// Concentrated position–Doppler profile network: the mGesNet / mSeeNet
// stand-in. mHomeGes and mTransSee convert point clouds into per-frame
// position-Doppler profiles and run convolutional nets over the profile
// sequence. We reproduce that pipeline: points are bucketed into T time
// slices; each slice yields [centroid xyz, mean Doppler, mean SNR, count];
// the T x 6 profile is flattened and classified by an MLP (the 1-D CNN's
// receptive-field structure matters little at T = 16).
//
// The profile extraction is a fixed (non-learned) transform, so gradients
// stop at the MLP input — exactly like the handcrafted profile stage of the
// original systems.
#pragma once

#include <memory>

#include "gesidnet/model_api.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"

namespace gp {

struct ProfileNetConfig {
  std::size_t num_classes = 2;
  std::size_t in_channels = 7;
  std::size_t time_bins = 16;
  std::size_t time_channel = 5;
  std::vector<std::size_t> hidden{96, 64};
  double dropout = 0.3;
};

class ProfileNetBaseline : public PointCloudClassifier {
 public:
  ProfileNetBaseline(ProfileNetConfig config, Rng& rng);

  nn::Tensor infer(const BatchedCloud& batch) override;
  double train_step(const BatchedCloud& batch, const std::vector<int>& labels) override;
  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override { return "ProfileNet"; }

  /// Exposed for tests: the (B x T*6) profile matrix.
  nn::Tensor extract_profiles(const BatchedCloud& batch) const;

 private:
  ProfileNetConfig config_;
  std::unique_ptr<nn::Sequential> net_;
};

}  // namespace gp
