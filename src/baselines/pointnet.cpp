#include "baselines/pointnet.hpp"

namespace gp {

PointNetBaseline::PointNetBaseline(PointNetConfig config, Rng& rng) : config_(std::move(config)) {
  encoder_ = std::make_unique<GroupAll>(config_.in_channels, config_.point_mlp, rng, "pointnet");
  head_ = std::make_unique<nn::Sequential>();
  head_->emplace<nn::Linear>(encoder_->out_channels(), config_.head_hidden, rng, "pointnet.fc0");
  head_->emplace<nn::ReLU>();
  head_->emplace<nn::Dropout>(config_.dropout, rng);
  head_->emplace<nn::Linear>(config_.head_hidden, config_.num_classes, rng, "pointnet.fc1");
}

nn::Tensor PointNetBaseline::forward_internal(const BatchedCloud& batch, bool training) {
  const nn::Tensor global = encoder_->forward(batch, training);
  return head_->forward(global, training);
}

nn::Tensor PointNetBaseline::infer(const BatchedCloud& batch) {
  return forward_internal(batch, /*training=*/false);
}

double PointNetBaseline::train_step(const BatchedCloud& batch, const std::vector<int>& labels) {
  const nn::Tensor logits = forward_internal(batch, /*training=*/true);
  const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
  const nn::Tensor dglobal = head_->backward(loss.grad);
  (void)encoder_->backward(dglobal);
  return loss.loss;
}

std::vector<nn::Parameter*> PointNetBaseline::parameters() {
  auto out = encoder_->parameters();
  const auto head_params = head_->parameters();
  out.insert(out.end(), head_params.begin(), head_params.end());
  return out;
}

}  // namespace gp
