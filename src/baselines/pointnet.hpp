// Vanilla PointNet classifier: shared per-point MLP + global max pool +
// fully connected head. Serves as the PanArch (Pantomime) stand-in for the
// gesture-recognition comparison rows of Table II: Pantomime's core is
// PointNet++ feature extraction whose aggregate behaviour on sparse clouds
// this captures, without the multilevel fusion GesturePrint adds.
#pragma once

#include <memory>

#include "gesidnet/model_api.hpp"
#include "gesidnet/set_abstraction.hpp"
#include "nn/loss.hpp"

namespace gp {

struct PointNetConfig {
  std::size_t num_classes = 2;
  std::size_t in_channels = 7;
  std::vector<std::size_t> point_mlp{32, 64, 128};
  std::size_t head_hidden = 64;
  double dropout = 0.3;
};

class PointNetBaseline : public PointCloudClassifier {
 public:
  PointNetBaseline(PointNetConfig config, Rng& rng);

  nn::Tensor infer(const BatchedCloud& batch) override;
  double train_step(const BatchedCloud& batch, const std::vector<int>& labels) override;
  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override { return "PointNet"; }

 private:
  nn::Tensor forward_internal(const BatchedCloud& batch, bool training);

  PointNetConfig config_;
  std::unique_ptr<GroupAll> encoder_;  ///< shared MLP + max pool
  std::unique_ptr<nn::Sequential> head_;
};

}  // namespace gp
