#include "baselines/edgeconv.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace gp {

EdgeConvBaseline::EdgeConvBaseline(EdgeConvConfig config, Rng& rng) : config_(std::move(config)) {
  check_arg(config_.k >= 1, "EdgeConv needs k >= 1");
  edge_mlp_ = nn::make_mlp(2 * config_.in_channels, config_.edge_mlp, rng, true, "edge");
  global_mlp_ = nn::make_mlp(config_.edge_mlp.back(), config_.global_mlp, rng, true, "edge.g");
  head_ = std::make_unique<nn::Sequential>();
  head_->emplace<nn::Linear>(config_.global_mlp.back(), config_.head_hidden, rng, "edge.fc0");
  head_->emplace<nn::ReLU>();
  head_->emplace<nn::Dropout>(config_.dropout, rng);
  head_->emplace<nn::Linear>(config_.head_hidden, config_.num_classes, rng, "edge.fc1");
}

nn::Tensor EdgeConvBaseline::forward_internal(const BatchedCloud& batch, bool training) {
  check_arg(batch.channels() == config_.in_channels, "EdgeConv channel mismatch");
  check_arg(config_.time_channel < batch.channels(), "bad time channel index");
  batch_ = batch.batch;
  num_points_ = batch.num_points;
  const std::size_t k = std::min(config_.k, num_points_);

  // Temporal kNN per sample (space-time metric).
  neighbours_.assign(batch_ * num_points_ * k, 0);
  for (std::size_t b = 0; b < batch_; ++b) {
    const std::size_t base = b * num_points_;
    for (std::size_t i = 0; i < num_points_; ++i) {
      std::vector<std::pair<double, std::size_t>> dist;
      dist.reserve(num_points_);
      const float* pi = batch.positions.row(base + i);
      const double ti = batch.features.at(base + i, config_.time_channel);
      for (std::size_t j = 0; j < num_points_; ++j) {
        const float* pj = batch.positions.row(base + j);
        const double dt = (batch.features.at(base + j, config_.time_channel) - ti) *
                          config_.time_scale;
        const double dx = pj[0] - pi[0];
        const double dy = pj[1] - pi[1];
        const double dz = pj[2] - pi[2];
        dist.emplace_back(dx * dx + dy * dy + dz * dz + dt * dt, base + j);
      }
      std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k), dist.end());
      for (std::size_t n = 0; n < k; ++n) {
        neighbours_[(base + i) * k + n] = dist[n].second;
      }
    }
  }

  // Edge rows: [feat_i | feat_j - feat_i].
  const std::size_t c_in = config_.in_channels;
  nn::Tensor edges(batch_ * num_points_ * k, 2 * c_in);
  for (std::size_t r = 0; r < batch_ * num_points_; ++r) {
    const float* fi = batch.features.row(r);
    for (std::size_t n = 0; n < k; ++n) {
      const float* fj = batch.features.row(neighbours_[r * k + n]);
      float* dst = edges.row(r * k + n);
      for (std::size_t c = 0; c < c_in; ++c) {
        dst[c] = fi[c];
        dst[c_in + c] = fj[c] - fi[c];
      }
    }
  }

  // Shared edge MLP + max over the k edges per point.
  const nn::Tensor edge_act = edge_mlp_->forward(edges, training);
  const std::size_t ce = config_.edge_mlp.back();
  nn::Tensor point_features(batch_ * num_points_, ce);
  edge_argmax_.assign(batch_ * num_points_ * ce, 0);
  for (std::size_t r = 0; r < batch_ * num_points_; ++r) {
    float* dst = point_features.row(r);
    for (std::size_t c = 0; c < ce; ++c) {
      std::size_t best = r * k;
      float best_v = edge_act.at(best, c);
      for (std::size_t n = 1; n < k; ++n) {
        const float v = edge_act.at(r * k + n, c);
        if (v > best_v) {
          best_v = v;
          best = r * k + n;
        }
      }
      dst[c] = best_v;
      edge_argmax_[r * ce + c] = best;
    }
  }

  // Global MLP on per-point features + max pool over each sample.
  const nn::Tensor global_act = global_mlp_->forward(point_features, training);
  const std::size_t cg = config_.global_mlp.back();
  nn::Tensor global(batch_, cg);
  global_argmax_.assign(batch_ * cg, 0);
  for (std::size_t b = 0; b < batch_; ++b) {
    float* dst = global.row(b);
    for (std::size_t c = 0; c < cg; ++c) {
      std::size_t best = b * num_points_;
      float best_v = global_act.at(best, c);
      for (std::size_t i = 1; i < num_points_; ++i) {
        const float v = global_act.at(b * num_points_ + i, c);
        if (v > best_v) {
          best_v = v;
          best = b * num_points_ + i;
        }
      }
      dst[c] = best_v;
      global_argmax_[b * cg + c] = best;
    }
  }

  return head_->forward(global, training);
}

void EdgeConvBaseline::backward_internal(const nn::Tensor& dlogits) {
  const nn::Tensor dglobal = head_->backward(dlogits);
  const std::size_t cg = config_.global_mlp.back();
  nn::Tensor dglobal_act(batch_ * num_points_, cg);
  for (std::size_t b = 0; b < batch_; ++b) {
    const float* src = dglobal.row(b);
    for (std::size_t c = 0; c < cg; ++c) {
      dglobal_act.at(global_argmax_[b * cg + c], c) += src[c];
    }
  }
  const nn::Tensor dpoint = global_mlp_->backward(dglobal_act);

  const std::size_t ce = config_.edge_mlp.back();
  const std::size_t k = std::min(config_.k, num_points_);
  nn::Tensor dedge_act(batch_ * num_points_ * k, ce);
  for (std::size_t r = 0; r < batch_ * num_points_; ++r) {
    const float* src = dpoint.row(r);
    for (std::size_t c = 0; c < ce; ++c) {
      dedge_act.at(edge_argmax_[r * ce + c], c) += src[c];
    }
  }
  (void)edge_mlp_->backward(dedge_act);  // input features are leaves
}

nn::Tensor EdgeConvBaseline::infer(const BatchedCloud& batch) {
  return forward_internal(batch, /*training=*/false);
}

double EdgeConvBaseline::train_step(const BatchedCloud& batch, const std::vector<int>& labels) {
  const nn::Tensor logits = forward_internal(batch, /*training=*/true);
  const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
  backward_internal(loss.grad);
  return loss.loss;
}

std::vector<nn::Parameter*> EdgeConvBaseline::parameters() {
  auto out = edge_mlp_->parameters();
  for (nn::Parameter* p : global_mlp_->parameters()) out.push_back(p);
  for (nn::Parameter* p : head_->parameters()) out.push_back(p);
  return out;
}

}  // namespace gp
