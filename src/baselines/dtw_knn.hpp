// Classical non-neural baseline: 1-NN over Dynamic Time Warping distance
// between per-time-bin centroid trajectories. Useful as a sanity floor —
// any learned model should comfortably beat it — and as an ablation anchor
// showing the neural pipeline is doing real work.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "gesidnet/batch.hpp"
#include "gesidnet/trainer.hpp"

namespace gp {

struct DtwKnnConfig {
  std::size_t time_bins = 12;
  std::size_t time_channel = 5;
  std::size_t k = 1;
};

/// A trajectory sequence: per-time-bin [x, y, z, v] centroids.
using Trajectory = std::vector<std::array<double, 4>>;

/// Extracts the trajectory of one sample.
Trajectory extract_trajectory(const FeaturizedSample& sample, const DtwKnnConfig& config);

/// DTW distance between two trajectories (Euclidean local cost).
double dtw_distance(const Trajectory& a, const Trajectory& b);

/// Instance-based classifier (stores its training set).
class DtwKnnClassifier {
 public:
  explicit DtwKnnClassifier(DtwKnnConfig config = {});

  void fit(const LabeledSamples& data);
  int predict(const FeaturizedSample& sample) const;
  std::vector<int> predict(const std::vector<FeaturizedSample>& samples) const;

 private:
  DtwKnnConfig config_;
  std::vector<Trajectory> train_trajectories_;
  std::vector<int> train_labels_;
};

}  // namespace gp
