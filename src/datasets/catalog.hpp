// Dataset catalogue: regenerator specs for the four datasets of Table I.
//
// Each factory mirrors the published structure of its dataset (gesture
// count, user count, environments, anchor distances, articulation speeds).
// The `scale` divisors let benches shrink user/rep counts uniformly while
// preserving that structure (GESTUREPRINT_SCALE).
#pragma once

#include "datasets/dataset.hpp"

namespace gp {

/// Uniform scaling knobs applied to a catalogue spec.
struct DatasetScale {
  std::size_t max_users = 1000;
  std::size_t reps = 10;

  /// Pulls the defaults for the active GESTUREPRINT_SCALE.
  static DatasetScale from_run_scale();
};

/// Self-collected GesturePrint dataset: 15 ASL gestures, 17 users,
/// office (env 0) / meeting room (env 1), 1.2 m.
DatasetSpec gestureprint_spec(int environment_id, const DatasetScale& scale);

/// Pantomime: 21 self-defined gestures, office (26 users) / open space
/// (14 users, different cohort), 1 m, three articulation speeds available.
DatasetSpec pantomime_spec(int environment_id, const DatasetScale& scale);

/// mHomeGes: 10 large arm gestures, up to 14 users, home, anchors
/// 1.2–3.0 m at 0.15 m steps.
DatasetSpec mhomeges_spec(const std::vector<double>& anchors, const DatasetScale& scale);

/// mTransSee: 5 arm gestures, 32 users, home, anchors 1.2–4.8 m (13).
DatasetSpec mtranssee_spec(const std::vector<double>& anchors, const DatasetScale& scale);

/// All 13 mTransSee anchor distances.
std::vector<double> mtranssee_anchors();
/// All 13 mHomeGes anchor distances (1.2–3.0 m).
std::vector<double> mhomeges_anchors();

}  // namespace gp
