#include "datasets/prep.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gp {

LabeledSamples prepare_subset(const Dataset& dataset, std::span<const std::size_t> indices,
                              LabelKind kind, const PrepConfig& config, Rng& rng) {
  check_arg(!indices.empty(), "prepare_subset with no indices");
  LabeledSamples out;

  for (std::size_t idx : indices) {
    check_arg(idx < dataset.samples.size(), "sample index out of range");
    const GestureSample& sample = dataset.samples[idx];
    const int label = kind == LabelKind::kGesture ? sample.gesture : sample.user;

    out.push(featurize(sample.cloud, config.features, rng), label);
    if (config.augment) {
      for (int copy = 0; copy < config.augmentation.copies; ++copy) {
        GestureCloud jittered = sample.cloud;
        jittered.points = jitter_cloud(sample.cloud.points, config.augmentation.sigma, rng);
        out.push(featurize(jittered, config.features, rng), label);
      }
    }
  }
  return out;
}

std::vector<std::size_t> indices_where_gesture(const Dataset& dataset, int gesture) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < dataset.samples.size(); ++i) {
    if (dataset.samples[i].gesture == gesture) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> indices_where_distance(const Dataset& dataset, double distance,
                                                double tolerance) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < dataset.samples.size(); ++i) {
    if (std::fabs(dataset.samples[i].distance - distance) <= tolerance) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> indices_where_speed(const Dataset& dataset, double speed,
                                             double tolerance) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < dataset.samples.size(); ++i) {
    if (std::fabs(dataset.samples[i].speed - speed) <= tolerance) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> all_indices(const Dataset& dataset) {
  std::vector<std::size_t> out(dataset.samples.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = i;
  return out;
}

}  // namespace gp
