#include "datasets/cache.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/config.hpp"
#include "common/logging.hpp"
#include "common/serialize.hpp"
#include "faults/selfheal.hpp"
#include "kinematics/performer.hpp"
#include "obs/metrics.hpp"

namespace gp {

namespace {
constexpr const char* kTag = "GPDS";

// Format version written into every .gpds right after the tag. Bumped when
// the generator's sampling scheme or the record layout changes. A version
// mismatch is *reported* before the dataset is regenerated, never silently
// swallowed, so stale caches are visible in the logs.
//   v3: version field embedded in the file instead of the cache filename.
constexpr std::uint64_t kDatasetSchemaVersion = 3;

/// Process-lifetime cache tallies. Mirrored into the obs registry as
/// gp.dataset.cache.* counters; kept locally as well so the teardown
/// summary does not depend on registry destruction order.
struct CacheStats {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> bytes_read{0};
  std::atomic<std::uint64_t> bytes_written{0};

  ~CacheStats() {
    if (hits.load() == 0 && misses.load() == 0) return;
    if (log_level() > LogLevel::kInfo) return;
    // Written straight to stderr as one assembled line: this destructor may
    // run after the logging mutex (another function-local static) has been
    // destroyed, so log_info() is off-limits here. std::cerr itself is kept
    // alive by ios_base::Init.
    char line[192];
    std::snprintf(line, sizeof(line),
                  "[gp INFO  +%.3fs t%02d] dataset cache: %llu hits, %llu misses, "
                  "%.1f MiB read, %.1f MiB written\n",
                  uptime_seconds(), thread_ordinal(),
                  static_cast<unsigned long long>(hits.load()),
                  static_cast<unsigned long long>(misses.load()),
                  static_cast<double>(bytes_read.load()) / (1024.0 * 1024.0),
                  static_cast<double>(bytes_written.load()) / (1024.0 * 1024.0));
    std::cerr << line;
  }
};

CacheStats& cache_stats() {
  static CacheStats stats;
  return stats;
}

std::uint64_t file_size_or_zero(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

void write_cloud(BinaryWriter& writer, const GestureCloud& cloud) {
  writer.write_u64(cloud.points.size());
  for (const auto& p : cloud.points) {
    writer.write_f64(p.position.x);
    writer.write_f64(p.position.y);
    writer.write_f64(p.position.z);
    writer.write_f64(p.velocity);
    writer.write_f64(p.snr_db);
    writer.write_i32(p.frame);
  }
  writer.write_u64(cloud.num_frames);
  writer.write_i32(cloud.first_frame);
  writer.write_f64(cloud.duration_s);
}

// Minimum on-stream bytes per serialized RadarPoint (5 x f64 + 1 x i32).
constexpr std::size_t kBytesPerPoint = 5 * sizeof(double) + sizeof(std::int32_t);
// Minimum on-stream bytes per GestureSample: an empty cloud (u64 count +
// u64 num_frames + i32 first_frame + f64 duration) plus the label block
// (3 x i32 + 2 x f64 + u64).
constexpr std::size_t kBytesPerSample =
    (8 + 8 + 4 + 8) + (3 * sizeof(std::int32_t) + 2 * sizeof(double) + 8);

GestureCloud read_cloud(BinaryReader& reader) {
  GestureCloud cloud;
  const std::uint64_t n = reader.read_count(kBytesPerPoint, "gesture cloud point");
  cloud.points.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    RadarPoint p;
    p.position.x = reader.read_f64();
    p.position.y = reader.read_f64();
    p.position.z = reader.read_f64();
    p.velocity = reader.read_f64();
    p.snr_db = reader.read_f64();
    p.frame = reader.read_i32();
    cloud.points.push_back(p);
  }
  cloud.num_frames = reader.read_u64();
  cloud.first_frame = reader.read_i32();
  cloud.duration_s = reader.read_f64();
  return cloud;
}

}  // namespace

void write_dataset(std::ostream& out, const Dataset& dataset) {
  BinaryWriter writer(out, kTag);
  writer.write_u64(kDatasetSchemaVersion);

  writer.write_string(dataset.spec.name);
  writer.write_u64(dataset.users.size());
  writer.write_u64(dataset.spec.gestures.size());
  writer.write_u64(dataset.samples.size());
  for (const auto& sample : dataset.samples) {
    write_cloud(writer, sample.cloud);
    writer.write_i32(sample.gesture);
    writer.write_i32(sample.user);
    writer.write_i32(sample.environment);
    writer.write_f64(sample.distance);
    writer.write_f64(sample.speed);
    writer.write_u64(sample.active_frames);
  }
}

std::optional<Dataset> read_dataset(std::istream& in, const std::string& source) {
  BinaryReader reader(in, kTag);
  const std::uint64_t version = reader.read_u64();
  if (version != kDatasetSchemaVersion) {
    log_warn() << "dataset cache schema mismatch at " << source << ": file has v" << version
               << ", generator expects v" << kDatasetSchemaVersion
               << "; the dataset will be regenerated";
    return std::nullopt;
  }

  Dataset dataset;
  dataset.spec.name = reader.read_string();
  // Population counts carry no per-element payload in the stream, so the
  // remaining-bytes check cannot bound them; apply an explicit sanity cap.
  constexpr std::uint64_t kMaxPopulation = 1'000'000;
  const std::uint64_t num_users = reader.read_u64();
  const std::uint64_t num_gestures = reader.read_u64();
  if (num_users > kMaxPopulation || num_gestures > kMaxPopulation) {
    throw SerializationError("implausible dataset population in " + source + ": " +
                             std::to_string(num_users) + " users, " +
                             std::to_string(num_gestures) + " gestures");
  }
  dataset.spec.num_users = num_users;
  dataset.users.resize(num_users);  // biometrics not needed post-generation
  for (std::uint64_t u = 0; u < num_users; ++u) dataset.users[u].id = static_cast<int>(u);
  dataset.spec.gestures.resize(num_gestures);

  const std::uint64_t count = reader.read_count(kBytesPerSample, "dataset sample");
  dataset.samples.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    GestureSample sample;
    sample.cloud = read_cloud(reader);
    sample.gesture = reader.read_i32();
    sample.user = reader.read_i32();
    sample.environment = reader.read_i32();
    sample.distance = reader.read_f64();
    sample.speed = reader.read_f64();
    sample.active_frames = reader.read_u64();
    dataset.samples.push_back(std::move(sample));
  }
  return dataset;
}

void save_dataset(const std::string& path, const Dataset& dataset) {
  {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw Error("cannot open dataset cache for writing: " + path);
    write_dataset(out, dataset);
  }
  const std::uint64_t bytes = file_size_or_zero(path);
  cache_stats().bytes_written.fetch_add(bytes, std::memory_order_relaxed);
  GP_COUNTER_ADD("gp.dataset.cache.bytes_written", bytes);
}

std::optional<Dataset> load_dataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::optional<Dataset> dataset = read_dataset(in, path);
  if (!dataset) return std::nullopt;
  const std::uint64_t bytes = file_size_or_zero(path);
  cache_stats().bytes_read.fetch_add(bytes, std::memory_order_relaxed);
  GP_COUNTER_ADD("gp.dataset.cache.bytes_read", bytes);
  return dataset;
}

std::string dataset_cache_key(const DatasetSpec& spec) {
  // The key hashes only the *spec*; the generator schema version lives
  // inside the file so a version bump produces a visible mismatch warning
  // instead of an unexplained silent regeneration under a new name.
  std::ostringstream key;
  key << spec.name << "_u" << spec.num_users << "_r" << spec.reps_per_gesture << "_g"
      << spec.gestures.size();
  std::uint64_t h = fnv1a(spec.name) ^ spec.seed ^ (spec.user_seed << 1);
  h = h * 1099511628211ULL;
  for (double d : spec.distances) h = h * 31 + static_cast<std::uint64_t>(d * 1000.0);
  for (double s : spec.speeds) h = h * 37 + static_cast<std::uint64_t>(s * 1000.0);
  h ^= static_cast<std::uint64_t>(spec.environment.clutter_rate * 1e6);
  h ^= static_cast<std::uint64_t>(spec.backend == RadarBackend::kGeometric ? 1 : 2) << 60;
  key << "_" << std::hex << h;
  return key.str();
}

Dataset generate_dataset_cached(const DatasetSpec& spec, const std::string& cache_dir,
                                exec::ExecContext& ctx) {
  const std::string dir = cache_dir.empty() ? output_dir() : cache_dir;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + dataset_cache_key(spec) + ".gpds";

  try {
    if (auto cached = load_dataset(path)) {
      cache_stats().hits.fetch_add(1, std::memory_order_relaxed);
      GP_COUNTER_ADD("gp.dataset.cache.hits", 1);
      log_debug() << "dataset cache hit: " << path;
      return std::move(*cached);
    }
  } catch (const SerializationError& e) {
    // Corrupt cache entry: quarantine-and-regenerate (DESIGN.md §7). The
    // bad bytes are renamed aside — never overwritten — so the corruption
    // stays available for a post-mortem, then the dataset is rebuilt from
    // its spec and re-saved under the original name. Exactly one warning.
    const std::string moved = faults::quarantine_file(path);
    GP_COUNTER_ADD("gp.dataset.cache.quarantined", 1);
    log_warn() << "dataset cache unreadable at " << path << " (" << e.what()
               << "); quarantined to "
               << (moved.empty() ? std::string("<rename failed>") : moved)
               << " and regenerating";
  }
  cache_stats().misses.fetch_add(1, std::memory_order_relaxed);
  GP_COUNTER_ADD("gp.dataset.cache.misses", 1);
  Dataset dataset = generate_dataset(spec, ctx);
  try {
    // Transient write failures (flaky storage) retry with backoff before
    // the uncached fallback kicks in.
    faults::with_retries(faults::RetryPolicy{}, [&] {
      save_dataset(path, dataset);
      return true;
    });
  } catch (const Error& e) {
    log_warn() << "dataset cache write failed (" << e.what() << "); continuing uncached";
  }
  return dataset;
}

}  // namespace gp
