#include "datasets/dataset.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gp {

std::vector<int> Dataset::gesture_labels() const {
  std::vector<int> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s.gesture);
  return out;
}

std::vector<int> Dataset::user_labels() const {
  std::vector<int> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s.user);
  return out;
}

namespace {

std::vector<UserProfile> make_cohort(const DatasetSpec& spec) {
  Rng user_rng(spec.user_seed, 0x5bd1e995ULL);
  std::vector<UserProfile> users;
  users.reserve(spec.num_users);
  for (std::size_t u = 0; u < spec.num_users; ++u) {
    users.push_back(UserProfile::sample(static_cast<int>(u), user_rng));
  }
  return users;
}

// Session drift: the same user on a different day / in a different room
// behaves slightly differently (paper: environments were recorded on
// different days). Deterministic per (user, environment).
UserProfile with_session_drift(const UserProfile& user, const EnvironmentSpec& env,
                               std::uint64_t env_key) {
  Rng drift_rng(user.habit_seed ^ env_key, 0x2545F4914F6CDD1DULL);
  UserProfile drifted = user;
  drifted.habit_offset += Vec3(drift_rng.gaussian(0.0, env.session_offset_sigma),
                               drift_rng.gaussian(0.0, env.session_offset_sigma * 0.6),
                               drift_rng.gaussian(0.0, env.session_offset_sigma));
  drifted.speed_factor *= std::exp(drift_rng.gaussian(0.0, env.session_pace_sigma));
  return drifted;
}

FastBackendConfig fast_config_for(const EnvironmentSpec& env) {
  FastBackendConfig config;
  config.clutter_rate = env.clutter_rate;
  config.ghost_prob = env.ghost_prob;
  return config;
}

}  // namespace

Dataset generate_dataset(const DatasetSpec& spec, exec::ExecContext& ctx) {
  GP_SPAN("dataset.synthesis");
  check_arg(!spec.gestures.empty(), "dataset needs gestures");
  check_arg(spec.num_users >= 2, "dataset needs >= 2 users");
  check_arg(!spec.distances.empty() && !spec.speeds.empty(), "dataset needs anchors/speeds");

  Dataset dataset;
  dataset.spec = spec;
  dataset.users = make_cohort(spec);

  const RadarSensor sensor(RadarConfig{}, spec.backend, fast_config_for(spec.environment));
  const Preprocessor preprocessor;

  const std::uint64_t env_key =
      fnv1a(spec.environment.name) ^ static_cast<std::uint64_t>(spec.environment_id);

  // Session-drifted profiles are deterministic per (user, environment) and
  // cheap; compute them once up front.
  std::vector<UserProfile> drifted;
  drifted.reserve(spec.num_users);
  for (std::size_t u = 0; u < spec.num_users; ++u) {
    drifted.push_back(with_session_drift(dataset.users[u], spec.environment, env_key));
  }

  // Flatten the spec grid into one task per potential sample. Every sample
  // draws from its own child RNG stream keyed by its grid position, which is
  // what makes per-sample parallel synthesis order-independent: the result
  // (and the bytes of a cached .gpds) is the same for 1 thread or 64.
  struct SampleTask {
    std::size_t user;
    std::size_t gesture;
    double distance;
    double speed;
  };
  std::vector<SampleTask> tasks;
  tasks.reserve(spec.num_users * spec.gestures.size() * spec.distances.size() *
                spec.speeds.size() * spec.reps_per_gesture);
  for (std::size_t u = 0; u < spec.num_users; ++u) {
    for (std::size_t g = 0; g < spec.gestures.size(); ++g) {
      for (double distance : spec.distances) {
        for (double speed : spec.speeds) {
          for (std::size_t rep = 0; rep < spec.reps_per_gesture; ++rep) {
            tasks.push_back({u, g, distance, speed});
          }
        }
      }
    }
  }

  std::vector<GestureSample> slots(tasks.size());
  ctx.parallel_for(0, tasks.size(), /*grain=*/1, [&](std::size_t t) {
    const SampleTask& task = tasks[t];
    Rng sample_rng = exec::child_rng(spec.seed, t);

    PerformanceConfig perf;
    perf.distance = task.distance;
    perf.lateral = sample_rng.gaussian(0.0, 0.04);
    perf.speed_multiplier = task.speed;
    perf.idle_frames_before = 6;
    perf.idle_frames_after = 6;

    const GesturePerformer performer(drifted[task.user], perf);
    const SceneSequence scene = performer.perform(spec.gestures[task.gesture], sample_rng);
    const FrameSequence frames = sensor.observe(scene, sample_rng);

    // Ground-truth motion span is known from the performance config.
    const std::size_t begin = static_cast<std::size_t>(perf.idle_frames_before);
    const std::size_t end = frames.size() - static_cast<std::size_t>(perf.idle_frames_after);
    const FrameSequence active(frames.begin() + static_cast<std::ptrdiff_t>(begin),
                               frames.begin() + static_cast<std::ptrdiff_t>(end));

    GestureSample& sample = slots[t];
    sample.cloud = preprocessor.process_segment(active);
    sample.gesture = static_cast<int>(task.gesture);
    sample.user = static_cast<int>(task.user);
    sample.environment = spec.environment_id;
    sample.distance = task.distance;
    sample.speed = task.speed;
    sample.active_frames = active.size();
  });

  // Compact in task order so sample ordering matches the serial path.
  dataset.samples.reserve(tasks.size());
  for (auto& sample : slots) {
    if (sample.cloud.points.size() < 4) continue;  // radar saw nothing usable
    dataset.samples.push_back(std::move(sample));
  }
  GP_COUNTER_ADD("gp.dataset.samples_generated", dataset.samples.size());
  GP_COUNTER_ADD("gp.dataset.samples_dropped", tasks.size() - dataset.samples.size());
  log_debug() << "generated dataset '" << spec.name << "': " << dataset.samples.size()
              << " samples, " << spec.num_users << " users, " << spec.gestures.size()
              << " gestures";
  return dataset;
}

ContinuousRecording generate_recording(const DatasetSpec& spec, std::size_t user_index,
                                       const std::vector<int>& gesture_sequence,
                                       std::uint64_t seed) {
  GP_SPAN("dataset.recording");
  check_arg(user_index < spec.num_users, "user index out of range");
  const auto users = make_cohort(spec);
  const std::uint64_t env_key =
      fnv1a(spec.environment.name) ^ static_cast<std::uint64_t>(spec.environment_id);
  const UserProfile user = with_session_drift(users[user_index], spec.environment, env_key);

  const RadarSensor sensor(RadarConfig{}, spec.backend, fast_config_for(spec.environment));
  Rng rng(seed, 0x9E3779B97F4A7C15ULL);

  ContinuousRecording recording;
  recording.gestures = gesture_sequence;
  int frame_cursor = 0;

  for (std::size_t k = 0; k < gesture_sequence.size(); ++k) {
    const int g = gesture_sequence[k];
    check_arg(g >= 0 && static_cast<std::size_t>(g) < spec.gestures.size(),
              "gesture index out of range");

    PerformanceConfig perf;
    perf.distance = spec.distances.front();
    perf.lateral = rng.gaussian(0.0, 0.04);
    // Paper: 2–4 s pause between gestures at 10 fps => 20–40 idle frames,
    // split between the tail of one gesture and the head of the next.
    perf.idle_frames_before = rng.uniform_int(10, 20);
    perf.idle_frames_after = rng.uniform_int(10, 20);

    const GesturePerformer performer(user, perf);
    const SceneSequence scene = performer.perform(spec.gestures[static_cast<std::size_t>(g)], rng);
    FrameSequence frames = sensor.observe(scene, rng);

    const std::size_t begin = static_cast<std::size_t>(frame_cursor + perf.idle_frames_before);
    const std::size_t end = static_cast<std::size_t>(frame_cursor) + frames.size() -
                            static_cast<std::size_t>(perf.idle_frames_after) - 1;
    recording.truth_spans.emplace_back(begin, end);

    for (auto& frame : frames) {
      frame.frame_index = frame_cursor;
      frame.timestamp = frame_cursor * 0.1;
      for (auto& p : frame.points) p.frame = frame_cursor;
      ++frame_cursor;
      recording.frames.push_back(std::move(frame));
    }
  }
  return recording;
}

}  // namespace gp
