// Featurization + augmentation of dataset subsets into trainer-ready
// LabeledSamples.
#pragma once

#include <span>

#include "datasets/dataset.hpp"
#include "gesidnet/trainer.hpp"
#include "pipeline/augmentation.hpp"

namespace gp {

enum class LabelKind { kGesture, kUser };

struct PrepConfig {
  FeatureConfig features;
  AugmentationParams augmentation{0.02, 3};
  bool augment = false;  ///< enable for training subsets only
};

/// Featurizes the samples selected by `indices` and labels them with the
/// chosen label kind. With augment=true, each sample also contributes
/// `augmentation.copies` jittered clones (§IV-B).
LabeledSamples prepare_subset(const Dataset& dataset, std::span<const std::size_t> indices,
                              LabelKind kind, const PrepConfig& config, Rng& rng);

/// Filters sample indices by predicate helpers used across benches.
std::vector<std::size_t> indices_where_gesture(const Dataset& dataset, int gesture);
std::vector<std::size_t> indices_where_distance(const Dataset& dataset, double distance,
                                                double tolerance = 1e-6);
std::vector<std::size_t> indices_where_speed(const Dataset& dataset, double speed,
                                             double tolerance = 1e-6);
std::vector<std::size_t> all_indices(const Dataset& dataset);

}  // namespace gp
