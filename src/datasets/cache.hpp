// Dataset caching: serialises generated datasets so repeated bench runs
// skip regeneration (only the preprocessed clouds and labels are stored).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "datasets/dataset.hpp"

namespace gp {

/// Serialises the dataset's samples and labels (not the raw frames).
void save_dataset(const std::string& path, const Dataset& dataset);

/// Loads a cached dataset; returns nullopt if the file is missing. Throws
/// SerializationError on malformed content.
std::optional<Dataset> load_dataset(const std::string& path);

/// Stream variant of save_dataset (same GPDS container, no file involved).
/// Used by in-memory round-trip tests and the fuzz corpus builders.
void write_dataset(std::ostream& out, const Dataset& dataset);

/// Stream variant of load_dataset. Returns nullopt on a schema-version
/// mismatch (after logging a warning, mirroring load_dataset); throws
/// SerializationError on malformed content. `source` labels log messages.
std::optional<Dataset> read_dataset(std::istream& in, const std::string& source = "<stream>");

/// generate_dataset with a transparent file cache under `cache_dir`
/// (defaults to gp::output_dir()). Cache key = spec name + a content hash
/// of the generation parameters (including the generator schema version),
/// so changed specs never collide. Generation runs on `ctx`.
Dataset generate_dataset_cached(const DatasetSpec& spec, const std::string& cache_dir = "",
                                exec::ExecContext& ctx = exec::ExecContext::global());

/// The cache key used by generate_dataset_cached (exposed for tests).
std::string dataset_cache_key(const DatasetSpec& spec);

}  // namespace gp
