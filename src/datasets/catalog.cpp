#include "datasets/catalog.hpp"

#include <algorithm>

#include "common/config.hpp"
#include "common/error.hpp"

namespace gp {

DatasetScale DatasetScale::from_run_scale() {
  DatasetScale scale;
  switch (run_scale()) {
    case RunScale::kSmall:
      scale.max_users = 5;
      scale.reps = 6;
      break;
    case RunScale::kDefault:
      scale.max_users = 8;
      scale.reps = 8;
      break;
    case RunScale::kFull:
      scale.max_users = 1000;
      scale.reps = 12;
      break;
  }
  return scale;
}

namespace {
std::size_t capped(std::size_t paper_users, const DatasetScale& scale) {
  return std::min(paper_users, scale.max_users);
}
}  // namespace

DatasetSpec gestureprint_spec(int environment_id, const DatasetScale& scale) {
  check_arg(environment_id == 0 || environment_id == 1, "gestureprint env is 0/1");
  DatasetSpec spec;
  spec.gestures = asl_gesture_set();
  spec.num_users = capped(17, scale);
  spec.reps_per_gesture = scale.reps;
  spec.environment_id = environment_id;
  spec.distances = {1.2};
  spec.user_seed = 1001;  // same 17 participants in both environments
  if (environment_id == 0) {
    spec.name = "gestureprint_office";
    spec.environment = {"office", 0.55, 0.045, 0.012, 0.04};
    spec.seed = 20240;
  } else {
    spec.name = "gestureprint_meeting";
    spec.environment = {"meeting_room", 0.25, 0.02, 0.012, 0.04};
    spec.seed = 20241;
  }
  return spec;
}

DatasetSpec pantomime_spec(int environment_id, const DatasetScale& scale) {
  check_arg(environment_id == 0 || environment_id == 1, "pantomime env is 0/1");
  DatasetSpec spec;
  spec.gestures = pantomime_gesture_set();
  spec.reps_per_gesture = scale.reps;
  spec.environment_id = environment_id;
  spec.distances = {1.0};
  if (environment_id == 0) {
    spec.name = "pantomime_office";
    spec.num_users = capped(26, scale);
    spec.environment = {"office", 0.50, 0.04, 0.012, 0.04};
    spec.seed = 30240;
    spec.user_seed = 2001;  // office cohort
  } else {
    spec.name = "pantomime_open";
    spec.num_users = capped(14, scale);
    spec.environment = {"open_space", 0.10, 0.01, 0.012, 0.04};
    spec.seed = 30241;
    spec.user_seed = 2002;  // different participants in the open hall
  }
  return spec;
}

DatasetSpec mhomeges_spec(const std::vector<double>& anchors, const DatasetScale& scale) {
  check_arg(!anchors.empty(), "mhomeges needs anchors");
  DatasetSpec spec;
  spec.name = "mhomeges_home";
  spec.gestures = mhomeges_gesture_set();
  spec.num_users = capped(12, scale);
  spec.reps_per_gesture = scale.reps;
  spec.environment = {"home", 0.35, 0.03, 0.012, 0.04};
  spec.environment_id = 2;
  spec.distances = anchors;
  spec.seed = 40240;
  spec.user_seed = 3001;
  return spec;
}

DatasetSpec mtranssee_spec(const std::vector<double>& anchors, const DatasetScale& scale) {
  check_arg(!anchors.empty(), "mtranssee needs anchors");
  DatasetSpec spec;
  spec.name = "mtranssee_home";
  spec.gestures = mtranssee_gesture_set();
  spec.num_users = capped(32, scale);
  spec.reps_per_gesture = scale.reps;
  spec.environment = {"home", 0.35, 0.03, 0.012, 0.04};
  spec.environment_id = 2;
  spec.distances = anchors;
  spec.seed = 50240;
  spec.user_seed = 4001;
  return spec;
}

std::vector<double> mtranssee_anchors() {
  std::vector<double> anchors;
  for (double d = 1.2; d <= 4.8 + 1e-9; d += 0.3) anchors.push_back(d);
  return anchors;
}

std::vector<double> mhomeges_anchors() {
  std::vector<double> anchors;
  for (double d = 1.2; d <= 3.0 + 1e-9; d += 0.15) anchors.push_back(d);
  return anchors;
}

}  // namespace gp
