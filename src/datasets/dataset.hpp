// Synthetic gesture dataset generation.
//
// A Dataset is a list of preprocessed gesture samples with gesture/user/
// environment labels, produced by running the kinematic performer through
// the radar sensor and the preprocessing pipeline — the same code path a
// live deployment uses. Environments differ in clutter statistics and
// per-session behavioural drift, which is what makes the paper's
// cross-environment experiment (§VII-2) non-trivial.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "exec/exec.hpp"
#include "kinematics/gesture_spec.hpp"
#include "kinematics/performer.hpp"
#include "pipeline/preprocessor.hpp"
#include "radar/sensor.hpp"

namespace gp {

/// One labelled, preprocessed gesture recording.
struct GestureSample {
  GestureCloud cloud;
  int gesture = 0;
  int user = 0;
  int environment = 0;
  double distance = 1.2;
  double speed = 1.0;        ///< deliberate articulation-speed multiplier
  std::size_t active_frames = 0;  ///< ground-truth motion length
};

/// Environment profile: clutter statistics the radar sees there.
struct EnvironmentSpec {
  std::string name = "office";
  double clutter_rate = 0.5;  ///< residual moving-clutter points per frame
  double ghost_prob = 0.04;   ///< multipath ghost probability
  /// Per-(user, session) behavioural drift: users came on different days
  /// per environment (§VI-A1), so their habits shift slightly.
  double session_offset_sigma = 0.012;   ///< m, habit offset drift
  double session_pace_sigma = 0.04;      ///< lognormal pace drift
};

struct DatasetSpec {
  std::string name = "dataset";
  std::vector<GestureSpec> gestures;
  std::size_t num_users = 8;
  std::size_t reps_per_gesture = 10;
  EnvironmentSpec environment;
  int environment_id = 0;
  std::vector<double> distances{1.2};   ///< anchors; samples cycle over them
  std::vector<double> speeds{1.0};      ///< articulation speeds; cycled
  std::uint64_t seed = 42;              ///< drives radar noise + repetitions
  std::uint64_t user_seed = 7;          ///< drives user biometrics (share to
                                        ///< reuse the same cohort elsewhere)
  RadarBackend backend = RadarBackend::kGeometric;
};

struct Dataset {
  DatasetSpec spec;
  std::vector<UserProfile> users;
  std::vector<GestureSample> samples;

  std::size_t num_gestures() const { return spec.gestures.size(); }
  std::size_t num_users() const { return users.size(); }

  std::vector<int> gesture_labels() const;
  std::vector<int> user_labels() const;
};

/// Generates the full dataset. Samples are synthesised in parallel on `ctx`,
/// each from its own child RNG stream (exec::child_rng keyed by the sample's
/// position in the spec grid), so the result — including the bytes of a
/// saved `.gpds` cache — is identical for every thread count.
Dataset generate_dataset(const DatasetSpec& spec,
                         exec::ExecContext& ctx = exec::ExecContext::global());

/// Generates a continuous multi-gesture recording for one user (idle gaps
/// between gestures), for exercising the streaming segmenter the way the
/// paper's live system does. Returns the recording plus ground-truth
/// [start, end] frame ranges of each gesture.
struct ContinuousRecording {
  FrameSequence frames;
  std::vector<std::pair<std::size_t, std::size_t>> truth_spans;
  std::vector<int> gestures;
};
ContinuousRecording generate_recording(const DatasetSpec& spec, std::size_t user_index,
                                       const std::vector<int>& gesture_sequence,
                                       std::uint64_t seed);

}  // namespace gp
