// Synthetic user biometrics.
//
// This file is the heart of the hardware/participant substitution (see
// DESIGN.md §1): the paper's identifiability signal is "individual
// variations in arm length, motion speed, range of motion, and even implicit
// motion habits" (§III), so each synthetic user carries exactly those
// parameters. Segment lengths follow standard anthropometric ratios
// (Drillis & Contini): upper arm 0.186 h, forearm+hand 0.146 h + 0.108 h,
// shoulder height 0.818 h.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/vec3.hpp"

namespace gp {

/// Biometric and behavioural parameters of one synthetic user. All the
/// fields marked "habit" are fixed per user and constitute the identity
/// signal; per-repetition variability is injected separately at perform time.
struct UserProfile {
  int id = 0;
  double height = 1.70;          ///< m; paper cohort spans 1.55–1.80
  double upper_arm = 0.316;      ///< shoulder->elbow, m
  double forearm = 0.248;        ///< elbow->wrist, m
  double hand = 0.18;            ///< wrist->fingertips, m
  double shoulder_height = 1.39; ///< ground->shoulder, m
  double shoulder_width = 0.39;  ///< m

  double speed_factor = 1.0;     ///< habitual pace multiplier (0.75–1.30)
  Vec3 rom_scale{1.0, 1.0, 1.0}; ///< habit: per-axis range-of-motion scaling
  double tremor_sigma = 0.005;   ///< m, physiological tremor amplitude
  double elbow_swivel = 0.0;     ///< habit: preferred elbow swivel angle, rad
  Vec3 habit_offset{};           ///< habit: systematic wrist offset, m
  double pace_jitter = 0.08;     ///< lognormal sigma of per-rep pace change
  double rep_jitter = 0.015;     ///< m, per-repetition keyframe variability
  double habit_warp = 0.03;      ///< m, magnitude of fixed keyframe warps
  std::uint64_t habit_seed = 0;  ///< seeds the per-gesture keyframe warps

  /// Draws a plausible user. Deterministic for a given (id, rng state).
  static UserProfile sample(int id, Rng& rng);
};

/// Two-link arm inverse kinematics: elbow position for a given shoulder,
/// wrist target, segment lengths, and swivel angle phi around the
/// shoulder–wrist axis. If the target is out of reach the wrist is pulled
/// onto the reachable sphere first.
struct ArmPose {
  Vec3 shoulder;
  Vec3 elbow;
  Vec3 wrist;
};
ArmPose solve_arm(const Vec3& shoulder, const Vec3& wrist_target, double upper_arm,
                  double forearm, double swivel);

}  // namespace gp
