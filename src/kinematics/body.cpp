#include "kinematics/body.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace gp {

UserProfile UserProfile::sample(int id, Rng& rng) {
  UserProfile u;
  u.id = id;
  u.height = rng.uniform(1.55, 1.80);
  u.upper_arm = 0.186 * u.height * rng.uniform(0.96, 1.04);
  u.forearm = 0.146 * u.height * rng.uniform(0.96, 1.04);
  u.hand = 0.108 * u.height * rng.uniform(0.95, 1.05);
  u.shoulder_height = 0.818 * u.height * rng.uniform(0.99, 1.01);
  u.shoulder_width = 0.230 * u.height * rng.uniform(0.95, 1.05);

  u.speed_factor = rng.uniform(0.75, 1.30);
  u.rom_scale = Vec3(rng.uniform(0.82, 1.15), rng.uniform(0.85, 1.12), rng.uniform(0.82, 1.15));
  u.tremor_sigma = rng.uniform(0.002, 0.009);
  u.elbow_swivel = rng.uniform(-0.6, 0.6);
  u.habit_offset = Vec3(rng.gaussian(0.0, 0.03), rng.gaussian(0.0, 0.02), rng.gaussian(0.0, 0.03));
  u.pace_jitter = rng.uniform(0.04, 0.09);
  u.rep_jitter = rng.uniform(0.006, 0.013);
  u.habit_warp = rng.uniform(0.035, 0.075);
  u.habit_seed = (static_cast<std::uint64_t>(rng()) << 32) | rng();
  return u;
}

ArmPose solve_arm(const Vec3& shoulder, const Vec3& wrist_target, double upper_arm,
                  double forearm, double swivel) {
  check_arg(upper_arm > 0.0 && forearm > 0.0, "arm segments must be positive");

  Vec3 to_wrist = wrist_target - shoulder;
  double d = to_wrist.norm();
  const double reach = upper_arm + forearm;
  constexpr double kMinExtension = 1e-4;

  Vec3 wrist = wrist_target;
  if (d > reach * 0.999) {
    // Out of reach: clamp onto the (slightly contracted) reachable sphere.
    const Vec3 dir = d > kMinExtension ? to_wrist / d : Vec3(0.0, 1.0, 0.0);
    wrist = shoulder + dir * (reach * 0.999);
    to_wrist = wrist - shoulder;
    d = to_wrist.norm();
  } else if (d < std::abs(upper_arm - forearm) * 1.001 + kMinExtension) {
    // Too close to the shoulder: push out to the inner workspace boundary.
    const Vec3 dir = d > kMinExtension ? to_wrist / d : Vec3(0.0, 1.0, 0.0);
    wrist = shoulder + dir * (std::abs(upper_arm - forearm) * 1.001 + kMinExtension);
    to_wrist = wrist - shoulder;
    d = to_wrist.norm();
  }

  // Law of cosines: distance from shoulder to the elbow-circle centre.
  const double a = (upper_arm * upper_arm - forearm * forearm + d * d) / (2.0 * d);
  const double r2 = upper_arm * upper_arm - a * a;
  const double r = std::sqrt(std::max(r2, 0.0));

  const Vec3 axis = to_wrist / d;
  // Orthonormal basis perpendicular to the shoulder->wrist axis. Reference
  // "down" keeps the elbow naturally below the arm for swivel = 0.
  Vec3 ref(0.0, 0.0, -1.0);
  if (std::abs(axis.dot(ref)) > 0.98) ref = Vec3(1.0, 0.0, 0.0);
  const Vec3 u = (ref - axis * axis.dot(ref)).normalized();
  const Vec3 v = axis.cross(u);

  ArmPose pose;
  pose.shoulder = shoulder;
  pose.wrist = wrist;
  pose.elbow = shoulder + axis * a + (u * std::cos(swivel) + v * std::sin(swivel)) * r;
  return pose;
}

}  // namespace gp
