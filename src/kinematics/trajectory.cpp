#include "kinematics/trajectory.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gp {

Vec3 catmull_rom(const std::vector<Vec3>& points, double u) {
  check_arg(!points.empty(), "catmull_rom over empty control points");
  if (points.size() == 1) return points[0];
  u = std::clamp(u, 0.0, 1.0);

  const std::size_t segments = points.size() - 1;
  const double scaled = u * static_cast<double>(segments);
  std::size_t seg = std::min(static_cast<std::size_t>(scaled), segments - 1);
  const double t = scaled - static_cast<double>(seg);

  // Clamped end tangents: duplicate boundary points.
  const Vec3& p1 = points[seg];
  const Vec3& p2 = points[seg + 1];
  const Vec3& p0 = seg > 0 ? points[seg - 1] : p1;
  const Vec3& p3 = seg + 2 < points.size() ? points[seg + 2] : p2;

  const double t2 = t * t;
  const double t3 = t2 * t;
  return 0.5 * ((2.0 * p1) + (p2 - p0) * t + (2.0 * p0 - 5.0 * p1 + 4.0 * p2 - p3) * t2 +
                (3.0 * p1 - 3.0 * p2 + p3 - p0) * t3);
}

double ease_phase(double t) {
  t = std::clamp(t, 0.0, 1.0);
  return t * t * (3.0 - 2.0 * t);  // smoothstep: zero end velocities
}

ArmTrack sample_tracks(const GestureSpec& spec, std::size_t num_samples) {
  check_arg(num_samples >= 2, "sample_tracks needs >= 2 samples");
  check_arg(spec.keyframes.size() >= 2, "gesture needs >= 2 keyframes");

  // Keyframe phases are non-uniform; build control sequences by resampling
  // the keyframe timeline at a fine uniform grid, then spline through the
  // keyframe positions directly with per-segment phase mapping.
  std::vector<Vec3> right_pts;
  std::vector<Vec3> left_pts;
  std::vector<double> phases;
  right_pts.reserve(spec.keyframes.size());
  for (const auto& kf : spec.keyframes) {
    right_pts.push_back(kf.right);
    left_pts.push_back(kf.left);
    phases.push_back(kf.t);
  }

  // Maps global phase to spline parameter using the keyframe phase table.
  const auto phase_to_u = [&](double phase) {
    phase = std::clamp(phase, phases.front(), phases.back());
    std::size_t seg = 0;
    while (seg + 2 < phases.size() && phase > phases[seg + 1]) ++seg;
    const double span = phases[seg + 1] - phases[seg];
    const double local = span > 0.0 ? (phase - phases[seg]) / span : 0.0;
    return (static_cast<double>(seg) + local) / static_cast<double>(phases.size() - 1);
  };

  ArmTrack track;
  track.right.reserve(num_samples);
  track.left.reserve(num_samples);
  for (std::size_t i = 0; i < num_samples; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(num_samples - 1);
    const double u = phase_to_u(ease_phase(t));
    track.right.push_back(catmull_rom(right_pts, u));
    track.left.push_back(catmull_rom(left_pts, u));
  }
  return track;
}

}  // namespace gp
