// Parametric gesture definitions.
//
// A gesture is a sequence of wrist keyframes in *reach units*: coordinates
// relative to the acting shoulder, scaled so 1.0 equals the user's full arm
// reach (upper arm + forearm). Defining gestures this way bakes the paper's
// identity signal in naturally — two users executing the same spec trace
// different absolute trajectories because their reach, range-of-motion
// scaling and habit warps differ.
//
// Axes: +x right (from the user's perspective facing the radar), +y forward
// toward the radar, +z up. The left arm mirrors x.
//
// Four gesture sets mirror the four evaluated datasets (§VI-A1):
//   asl_gesture_set()       15 ASL signs  (self-collected GesturePrint set)
//   pantomime_gesture_set() 21 self-defined (9 single-arm + 12 bimanual)
//   mhomeges_gesture_set()  10 large arm movements
//   mtranssee_gesture_set()  5 arm motions
#pragma once

#include <string>
#include <vector>

#include "common/vec3.hpp"

namespace gp {

/// One wrist keyframe. `t` is normalised phase in [0, 1].
struct Keyframe {
  double t = 0.0;
  Vec3 right;  ///< right wrist, reach units, relative to right shoulder
  Vec3 left;   ///< left wrist, reach units, relative to left shoulder
};

struct GestureSpec {
  std::string name;
  bool bimanual = false;
  double duration_s = 2.4;  ///< nominal duration at pace 1.0 (paper mean 2.43 s)
  std::vector<Keyframe> keyframes;
};

std::vector<GestureSpec> asl_gesture_set();
std::vector<GestureSpec> pantomime_gesture_set();
std::vector<GestureSpec> mhomeges_gesture_set();
std::vector<GestureSpec> mtranssee_gesture_set();

/// Looks a gesture up by name within a set; throws InvalidArgument if absent.
const GestureSpec& find_gesture(const std::vector<GestureSpec>& set, const std::string& name);

/// Resting wrist position (arm hanging beside the torso), reach units.
Vec3 rest_wrist();

}  // namespace gp
