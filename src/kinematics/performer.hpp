// Gesture performance synthesis: turns (user, gesture, repetition) into a
// time-sampled scene of radar reflectors.
//
// Identity signal composition (per DESIGN.md §1):
//  * fixed per user:            arm lengths, shoulder geometry, habitual
//                               pace, per-axis range-of-motion scaling,
//                               elbow swivel preference, systematic wrist
//                               offset, per-gesture keyframe "habit warps"
//                               (seeded by UserProfile::habit_seed)
//  * varies per repetition:     pace jitter (lognormal), keyframe jitter,
//                               physiological tremor
// so repeated executions by one user cluster tightly while different users
// differ systematically — the regime Fig. 2/3 of the paper documents.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/vec3.hpp"
#include "kinematics/body.hpp"
#include "kinematics/gesture_spec.hpp"

namespace gp {

/// One physical scattering centre at an instant.
struct Reflector {
  Vec3 position;       ///< radar frame, metres
  Vec3 velocity;       ///< metres/second
  double rcs = 1.0;    ///< relative radar cross-section (linear)
};

/// All reflectors visible during one radar frame interval.
struct SceneFrame {
  int frame_index = 0;
  double timestamp = 0.0;
  std::vector<Reflector> reflectors;
};

using SceneSequence = std::vector<SceneFrame>;

/// Where and how the gesture is performed relative to the radar.
struct PerformanceConfig {
  double distance = 1.2;        ///< radar->user along +y, metres
  double lateral = 0.0;         ///< sideways offset, metres
  double frame_rate = 10.0;     ///< radar frames per second (paper: 10 fps)
  double radar_height = 1.25;   ///< radar mount height, metres (paper: 1.25)
  double speed_multiplier = 1.0;///< deliberate articulation-speed change
  int idle_frames_before = 10;  ///< static frames preceding the motion
  int idle_frames_after = 10;   ///< static frames following the motion
  bool include_torso = true;    ///< emit torso/head reflectors
};

/// Synthesises reflector scenes for gestures performed by one user.
class GesturePerformer {
 public:
  GesturePerformer(UserProfile user, PerformanceConfig config);

  /// One repetition of `spec`; `rng` drives per-repetition variability.
  SceneSequence perform(const GestureSpec& spec, Rng& rng) const;

  /// Nominal duration of `spec` for this user at pace multiplier 1 (no
  /// per-rep jitter); used by the duration study (Fig. 13).
  double nominal_duration_s(const GestureSpec& spec) const;

  const UserProfile& user() const { return user_; }
  const PerformanceConfig& config() const { return config_; }

 private:
  UserProfile user_;
  PerformanceConfig config_;
};

/// Stable 64-bit FNV-1a hash (used to derive per-gesture habit streams).
std::uint64_t fnv1a(const std::string& s);

}  // namespace gp
