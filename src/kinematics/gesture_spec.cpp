#include "kinematics/gesture_spec.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace gp {

Vec3 rest_wrist() { return {0.08, 0.12, -0.82}; }

namespace {

// ---- keyframe construction helpers -------------------------------------

// Single-arm gesture through the given right-wrist waypoints; phases are
// spread uniformly and the arm starts/ends at rest.
GestureSpec single(std::string name, double duration, std::vector<Vec3> waypoints) {
  GestureSpec g;
  g.name = std::move(name);
  g.bimanual = false;
  g.duration_s = duration;
  const std::size_t n = waypoints.size();
  gp::check(n >= 2, "gesture needs at least two waypoints");
  g.keyframes.push_back({0.0, rest_wrist(), rest_wrist()});
  for (std::size_t i = 0; i < n; ++i) {
    const double t = 0.12 + 0.76 * static_cast<double>(i) / static_cast<double>(n - 1);
    g.keyframes.push_back({t, waypoints[i], rest_wrist()});
  }
  g.keyframes.push_back({1.0, rest_wrist(), rest_wrist()});
  return g;
}

// Bimanual gesture; left waypoints are given in the *left* shoulder frame
// (x already mirrored by the caller when building symmetric motions).
GestureSpec bimanual(std::string name, double duration, std::vector<Vec3> right,
                     std::vector<Vec3> left) {
  gp::check(right.size() == left.size() && right.size() >= 2, "bimanual waypoint mismatch");
  GestureSpec g;
  g.name = std::move(name);
  g.bimanual = true;
  g.duration_s = duration;
  const std::size_t n = right.size();
  g.keyframes.push_back({0.0, rest_wrist(), rest_wrist()});
  for (std::size_t i = 0; i < n; ++i) {
    const double t = 0.12 + 0.76 * static_cast<double>(i) / static_cast<double>(n - 1);
    g.keyframes.push_back({t, right[i], left[i]});
  }
  g.keyframes.push_back({1.0, rest_wrist(), rest_wrist()});
  return g;
}

// Mirror a waypoint list across the body midline (negate x).
std::vector<Vec3> mirror(const std::vector<Vec3>& v) {
  std::vector<Vec3> out;
  out.reserve(v.size());
  for (const auto& p : v) out.push_back({-p.x, p.y, p.z});
  return out;
}

// Circle waypoints in the frontal (x–z) plane at forward depth y.
std::vector<Vec3> circle_xz(Vec3 center, double radius, bool clockwise, std::size_t segments = 8,
                            double start_angle = kPi / 2.0) {
  std::vector<Vec3> out;
  out.reserve(segments + 1);
  for (std::size_t i = 0; i <= segments; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(segments);
    const double a = start_angle + (clockwise ? -1.0 : 1.0) * 2.0 * kPi * frac;
    out.push_back({center.x + radius * std::cos(a), center.y, center.z + radius * std::sin(a)});
  }
  return out;
}

}  // namespace

std::vector<GestureSpec> asl_gesture_set() {
  std::vector<GestureSpec> set;
  set.reserve(15);

  // 9 single-arm ASL signs.
  set.push_back(single("ahead", 2.2, {{0.05, 0.35, 0.05}, {0.05, 0.78, 0.08}, {0.05, 0.82, 0.08}}));
  set.push_back(single("and", 2.3,
                       {{0.45, 0.50, 0.05}, {0.22, 0.55, 0.08}, {0.00, 0.52, 0.05}, {-0.10, 0.48, 0.02}}));
  set.push_back(single("another", 2.1, {{0.10, 0.42, -0.18}, {0.26, 0.46, 0.00}, {0.42, 0.44, 0.16}}));
  set.push_back(single("appoint", 2.6,
                       {{0.32, 0.60, 0.12}, {0.12, 0.52, 0.02}, {0.10, 0.60, -0.06}, {0.16, 0.66, -0.12}}));
  set.push_back(single("away", 2.2, {{0.02, 0.50, 0.10}, {0.30, 0.58, 0.18}, {0.58, 0.52, 0.22}, {0.72, 0.46, 0.12}}));
  set.push_back(single("face", 2.8, circle_xz({0.02, 0.42, 0.34}, 0.14, /*clockwise=*/false)));
  set.push_back(single("forget", 2.3,
                       {{-0.14, 0.40, 0.44}, {0.06, 0.42, 0.46}, {0.26, 0.42, 0.44}, {0.38, 0.38, 0.34}}));
  set.push_back(single("front", 2.0, {{0.02, 0.55, 0.30}, {0.02, 0.60, 0.08}, {0.02, 0.62, -0.12}}));
  set.push_back(single("zigzag", 2.9,
                       {{-0.22, 0.52, 0.32}, {0.30, 0.50, 0.30}, {-0.24, 0.54, 0.02}, {0.30, 0.52, -0.02},
                        {-0.20, 0.52, -0.26}}));

  // 6 bimanual ASL signs.
  {
    const std::vector<Vec3> r{{0.42, 0.50, 0.02}, {0.20, 0.54, 0.04}, {0.06, 0.56, 0.04}};
    set.push_back(bimanual("connect", 2.4, r, mirror(r)));
  }
  {
    const std::vector<Vec3> r{{0.34, 0.50, 0.10}, {0.04, 0.54, 0.14}, {-0.18, 0.56, 0.16}};
    set.push_back(bimanual("cross", 2.4, r, mirror(r)));
  }
  {
    // every Sunday: both hands sweep outward in horizontal arcs.
    const std::vector<Vec3> r{{0.08, 0.52, 0.12}, {0.30, 0.58, 0.14}, {0.52, 0.54, 0.12}, {0.62, 0.46, 0.08}};
    set.push_back(bimanual("every_sunday", 3.0, r, mirror(r)));
  }
  {
    // finish: hands rotate outward from centre, palms flipping.
    const std::vector<Vec3> r{{0.10, 0.50, 0.18}, {0.26, 0.52, 0.14}, {0.42, 0.50, 0.06}};
    set.push_back(bimanual("finish", 2.2, r, mirror(r)));
  }
  {
    // push: both palms drive forward from the chest.
    const std::vector<Vec3> r{{0.16, 0.35, 0.04}, {0.16, 0.62, 0.06}, {0.16, 0.80, 0.06}};
    set.push_back(bimanual("push", 2.1, r, mirror(r)));
  }
  {
    // table: forearms horizontal, double tap downward.
    const std::vector<Vec3> r{{0.28, 0.50, -0.02}, {0.28, 0.50, -0.14}, {0.28, 0.50, -0.04},
                              {0.28, 0.50, -0.16}};
    set.push_back(bimanual("table", 2.5, r, mirror(r)));
  }
  return set;
}

std::vector<GestureSpec> pantomime_gesture_set() {
  std::vector<GestureSpec> set;
  set.reserve(21);

  // 9 easy single-arm gestures.
  set.push_back(single("swipe_left", 1.9, {{0.50, 0.55, 0.10}, {0.05, 0.58, 0.12}, {-0.35, 0.55, 0.10}}));
  set.push_back(single("swipe_right", 1.9, {{-0.30, 0.55, 0.10}, {0.10, 0.58, 0.12}, {0.55, 0.55, 0.10}}));
  set.push_back(single("swipe_up", 1.9, {{0.08, 0.55, -0.25}, {0.08, 0.58, 0.10}, {0.08, 0.55, 0.45}}));
  set.push_back(single("swipe_down", 1.9, {{0.08, 0.55, 0.45}, {0.08, 0.58, 0.10}, {0.08, 0.55, -0.25}}));
  set.push_back(single("push_single", 2.0, {{0.05, 0.35, 0.05}, {0.05, 0.80, 0.08}}));
  set.push_back(single("pull_single", 2.0, {{0.05, 0.80, 0.08}, {0.05, 0.35, 0.05}}));
  set.push_back(single("circle_cw", 2.6, circle_xz({0.05, 0.55, 0.10}, 0.22, /*clockwise=*/true)));
  set.push_back(single("circle_ccw", 2.6, circle_xz({0.05, 0.55, 0.10}, 0.22, /*clockwise=*/false)));
  set.push_back(single("wave", 2.6,
                       {{0.15, 0.50, 0.35}, {-0.10, 0.52, 0.38}, {0.15, 0.50, 0.35}, {-0.10, 0.52, 0.38},
                        {0.15, 0.50, 0.35}}));

  // 12 bimanual complex gestures.
  {
    const std::vector<Vec3> r{{0.12, 0.55, 0.10}, {0.35, 0.55, 0.10}, {0.55, 0.52, 0.10}};
    set.push_back(bimanual("zoom_in", 2.3, r, mirror(r)));
  }
  {
    const std::vector<Vec3> r{{0.55, 0.52, 0.10}, {0.35, 0.55, 0.10}, {0.12, 0.55, 0.10}};
    set.push_back(bimanual("zoom_out", 2.3, r, mirror(r)));
  }
  {
    const auto r = circle_xz({0.25, 0.55, 0.10}, 0.16, /*clockwise=*/true, 6);
    set.push_back(bimanual("rotate_cw", 2.8, r, mirror(r)));
  }
  {
    const auto r = circle_xz({0.25, 0.55, 0.10}, 0.16, /*clockwise=*/false, 6);
    set.push_back(bimanual("rotate_ccw", 2.8, r, mirror(r)));
  }
  {
    const std::vector<Vec3> r{{0.18, 0.35, 0.05}, {0.18, 0.65, 0.07}, {0.18, 0.82, 0.07}};
    set.push_back(bimanual("push_both", 2.1, r, mirror(r)));
  }
  {
    const std::vector<Vec3> r{{0.18, 0.82, 0.07}, {0.18, 0.60, 0.07}, {0.18, 0.35, 0.05}};
    set.push_back(bimanual("pull_both", 2.1, r, mirror(r)));
  }
  {
    const std::vector<Vec3> r{{0.35, 0.55, 0.08}, {0.06, 0.58, 0.10}, {0.35, 0.55, 0.08},
                              {0.06, 0.58, 0.10}};
    set.push_back(bimanual("clap", 2.4, r, mirror(r)));
  }
  {
    const std::vector<Vec3> r{{0.30, 0.52, 0.10}, {-0.15, 0.56, 0.14}, {-0.25, 0.56, 0.16}};
    set.push_back(bimanual("cross_hands", 2.3, r, mirror(r)));
  }
  {
    const std::vector<Vec3> r{{0.10, 0.55, 0.10}, {0.40, 0.52, 0.15}, {0.62, 0.45, 0.18}};
    set.push_back(bimanual("open_arms", 2.5, r, mirror(r)));
  }
  {
    const std::vector<Vec3> r{{0.20, 0.55, -0.30}, {0.20, 0.58, 0.10}, {0.20, 0.55, 0.45}};
    set.push_back(bimanual("lift", 2.4, r, mirror(r)));
  }
  {
    const std::vector<Vec3> r{{0.20, 0.55, 0.45}, {0.20, 0.58, 0.10}, {0.20, 0.55, -0.30}};
    set.push_back(bimanual("drop", 2.4, r, mirror(r)));
  }
  {
    // Diagonal double swipe (complex): both arms trace opposing diagonals.
    const std::vector<Vec3> r{{0.45, 0.52, 0.40}, {0.10, 0.56, 0.05}, {-0.20, 0.52, -0.25}};
    const std::vector<Vec3> l{{-0.20, 0.52, -0.25}, {0.10, 0.56, 0.05}, {0.45, 0.52, 0.40}};
    set.push_back(bimanual("diagonal_swipe", 2.6, r, l));
  }
  return set;
}

std::vector<GestureSpec> mhomeges_gesture_set() {
  std::vector<GestureSpec> set;
  set.reserve(10);
  set.push_back(single("raise_arm", 2.0, {{0.10, 0.45, -0.40}, {0.10, 0.50, 0.10}, {0.10, 0.45, 0.60}}));
  set.push_back(single("lower_arm", 2.0, {{0.10, 0.45, 0.60}, {0.10, 0.50, 0.10}, {0.10, 0.45, -0.40}}));
  set.push_back(single("push_forward", 2.0, {{0.06, 0.35, 0.05}, {0.06, 0.82, 0.08}}));
  set.push_back(single("pull_back", 2.0, {{0.06, 0.82, 0.08}, {0.06, 0.35, 0.05}}));
  set.push_back(single("slide_left", 2.0, {{0.50, 0.55, 0.12}, {-0.35, 0.55, 0.12}}));
  set.push_back(single("slide_right", 2.0, {{-0.30, 0.55, 0.12}, {0.55, 0.55, 0.12}}));
  set.push_back(single("draw_circle", 2.8, circle_xz({0.05, 0.55, 0.12}, 0.25, /*clockwise=*/false)));
  set.push_back(single("wave_hand", 2.6,
                       {{0.18, 0.50, 0.38}, {-0.08, 0.52, 0.40}, {0.18, 0.50, 0.38}, {-0.08, 0.52, 0.40}}));
  set.push_back(single("beckon", 2.4,
                       {{0.08, 0.70, 0.15}, {0.08, 0.45, 0.02}, {0.08, 0.68, 0.14}, {0.08, 0.45, 0.02}}));
  set.push_back(single("throw", 2.2, {{0.05, 0.30, -0.10}, {0.15, 0.55, 0.30}, {0.30, 0.85, 0.25}}));
  return set;
}

std::vector<GestureSpec> mtranssee_gesture_set() {
  std::vector<GestureSpec> set;
  set.reserve(5);
  set.push_back(single("push", 2.0, {{0.06, 0.35, 0.05}, {0.06, 0.82, 0.08}}));
  set.push_back(single("pull", 2.0, {{0.06, 0.82, 0.08}, {0.06, 0.35, 0.05}}));
  set.push_back(single("swipe_left", 1.9, {{0.50, 0.55, 0.10}, {0.05, 0.58, 0.12}, {-0.35, 0.55, 0.10}}));
  set.push_back(single("swipe_right", 1.9, {{-0.30, 0.55, 0.10}, {0.10, 0.58, 0.12}, {0.55, 0.55, 0.10}}));
  set.push_back(single("circle", 2.7, circle_xz({0.05, 0.55, 0.10}, 0.24, /*clockwise=*/false)));
  return set;
}

const GestureSpec& find_gesture(const std::vector<GestureSpec>& set, const std::string& name) {
  for (const auto& g : set) {
    if (g.name == name) return g;
  }
  throw InvalidArgument("unknown gesture: " + name);
}

}  // namespace gp
