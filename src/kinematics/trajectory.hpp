// Smooth trajectory evaluation through gesture keyframes.
//
// Keyframes are interpolated with a centripetal-flavoured Catmull–Rom spline
// (C1 continuous, passes through every keyframe) and an ease-in/ease-out
// phase warp that mimics natural acceleration profiles of human reaching
// motions (minimum-jerk-like bell-shaped speed).
#pragma once

#include <vector>

#include "common/vec3.hpp"
#include "kinematics/gesture_spec.hpp"

namespace gp {

/// Evaluates a Catmull–Rom spline through `points` at parameter u in [0,1]
/// (uniform parameterisation across segments, clamped end tangents).
Vec3 catmull_rom(const std::vector<Vec3>& points, double u);

/// Smoothstep-style ease: bell-shaped speed profile over [0,1].
double ease_phase(double t);

/// Samples one arm's wrist path at `num_samples` uniformly spaced times.
/// Applies the phase ease so sampled speed follows a natural profile.
struct ArmTrack {
  std::vector<Vec3> right;  ///< per-sample right wrist (reach units)
  std::vector<Vec3> left;   ///< per-sample left wrist (reach units)
};
ArmTrack sample_tracks(const GestureSpec& spec, std::size_t num_samples);

}  // namespace gp
