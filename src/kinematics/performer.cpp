#include "kinematics/performer.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/fnv.hpp"
#include "common/math_utils.hpp"
#include "kinematics/trajectory.hpp"

namespace gp {

std::uint64_t fnv1a(const std::string& s) { return fnv::hash_string(s); }

GesturePerformer::GesturePerformer(UserProfile user, PerformanceConfig config)
    : user_(std::move(user)), config_(config) {
  check_arg(config_.distance > 0.2, "user must stand in front of the radar");
  check_arg(config_.frame_rate > 0.0, "frame rate must be positive");
}

double GesturePerformer::nominal_duration_s(const GestureSpec& spec) const {
  return spec.duration_s / (user_.speed_factor * config_.speed_multiplier);
}

namespace {

// Applies the user's fixed habits plus per-repetition jitter to the spec's
// keyframes, returning absolute wrist targets in metres relative to each
// shoulder.
struct WarpedKeyframes {
  std::vector<double> phases;
  std::vector<Vec3> right_m;
  std::vector<Vec3> left_m;
};

WarpedKeyframes warp_keyframes(const GestureSpec& spec, const UserProfile& user, Rng& rep_rng) {
  // Habit warps are drawn from a stream seeded by (user, gesture) only, so
  // they are identical across repetitions — they ARE the user's signature.
  Rng habit_rng(user.habit_seed ^ fnv1a(spec.name), 0x9e3779b97f4a7c15ULL);

  const double reach = user.upper_arm + user.forearm;
  WarpedKeyframes out;
  out.phases.reserve(spec.keyframes.size());
  out.right_m.reserve(spec.keyframes.size());
  out.left_m.reserve(spec.keyframes.size());

  const Vec3 rest = rest_wrist();
  for (const auto& kf : spec.keyframes) {
    out.phases.push_back(kf.t);
    for (int arm = 0; arm < 2; ++arm) {
      const Vec3& raw = arm == 0 ? kf.right : kf.left;
      const bool at_rest = (raw - rest).norm() < 1e-9;

      // Range-of-motion scaling about the rest pose (habit).
      Vec3 scaled{rest.x + (raw.x - rest.x) * user.rom_scale.x,
                  rest.y + (raw.y - rest.y) * user.rom_scale.y,
                  rest.z + (raw.z - rest.z) * user.rom_scale.z};
      Vec3 metres = scaled * reach;

      // Habit warp: fixed per (user, gesture, keyframe, arm).
      const Vec3 habit(habit_rng.gaussian(0.0, user.habit_warp),
                       habit_rng.gaussian(0.0, user.habit_warp * 0.6),
                       habit_rng.gaussian(0.0, user.habit_warp));
      // Per-repetition jitter: varies every call.
      const Vec3 jitter(rep_rng.gaussian(0.0, user.rep_jitter),
                        rep_rng.gaussian(0.0, user.rep_jitter * 0.7),
                        rep_rng.gaussian(0.0, user.rep_jitter));

      if (!at_rest) metres += habit + jitter + user.habit_offset;

      if (arm == 0) {
        out.right_m.push_back(metres);
      } else {
        out.left_m.push_back(metres);
      }
    }
  }
  return out;
}

// Evaluates the warped keyframe spline (metres, shoulder-relative) at eased
// phase t in [0,1].
Vec3 eval_track(const std::vector<Vec3>& points, const std::vector<double>& phases, double t) {
  const double eased = ease_phase(t);
  const double phase = std::clamp(eased, phases.front(), phases.back());
  std::size_t seg = 0;
  while (seg + 2 < phases.size() && phase > phases[seg + 1]) ++seg;
  const double span = phases[seg + 1] - phases[seg];
  const double local = span > 0.0 ? (phase - phases[seg]) / span : 0.0;
  const double u = (static_cast<double>(seg) + local) / static_cast<double>(phases.size() - 1);
  return catmull_rom(points, u);
}

// Emits reflectors along one arm's pose.
void emit_arm(const ArmPose& pose, const Vec3& hand_dir, double hand_len,
              std::vector<Reflector>& out, std::vector<Vec3>& tracked) {
  // Upper arm.
  for (double f : {0.35, 0.7}) {
    tracked.push_back(lerp(pose.shoulder, pose.elbow, f));
    out.push_back({tracked.back(), {}, 0.25});
  }
  // Forearm.
  for (double f : {0.25, 0.55, 0.85}) {
    tracked.push_back(lerp(pose.elbow, pose.wrist, f));
    out.push_back({tracked.back(), {}, 0.35});
  }
  // Hand: wrist plus two points continuing the forearm direction.
  tracked.push_back(pose.wrist);
  out.push_back({tracked.back(), {}, 0.8});
  tracked.push_back(pose.wrist + hand_dir * (hand_len * 0.5));
  out.push_back({tracked.back(), {}, 1.0});
  tracked.push_back(pose.wrist + hand_dir * (hand_len * 0.9));
  out.push_back({tracked.back(), {}, 0.9});
}

}  // namespace

SceneSequence GesturePerformer::perform(const GestureSpec& spec, Rng& rng) const {
  check_arg(spec.keyframes.size() >= 2, "gesture needs >= 2 keyframes");

  const double pace = user_.speed_factor * config_.speed_multiplier *
                      std::exp(rng.gaussian(0.0, user_.pace_jitter));
  const double duration = spec.duration_s / pace;
  const int active_frames =
      std::max(6, static_cast<int>(std::lround(duration * config_.frame_rate)));
  const int total_frames = config_.idle_frames_before + active_frames + config_.idle_frames_after;
  const double dt = 1.0 / config_.frame_rate;

  const auto warped = warp_keyframes(spec, user_, rng);

  // Shoulder anchors in the radar frame. The user faces the radar, so the
  // user's right shoulder appears at negative x from the radar's viewpoint.
  const double base_z = user_.shoulder_height - config_.radar_height;
  const Vec3 right_shoulder(-user_.shoulder_width / 2.0 + config_.lateral, config_.distance,
                            base_z);
  const Vec3 left_shoulder(user_.shoulder_width / 2.0 + config_.lateral, config_.distance, base_z);

  // Wrist target in the radar frame at active phase t. The keyframe frame
  // has +x to the user's right and +y toward the radar; facing the radar
  // flips both relative to radar axes.
  const auto wrist_at = [&](bool left_arm, double t) {
    const Vec3 rel = left_arm ? eval_track(warped.left_m, warped.phases, t)
                              : eval_track(warped.right_m, warped.phases, t);
    const Vec3& shoulder = left_arm ? left_shoulder : right_shoulder;
    const double mirror = left_arm ? 1.0 : -1.0;  // user-right -> radar -x
    return shoulder + Vec3(mirror * rel.x, -rel.y, rel.z);
  };

  // Static torso/head reflector anchors.
  std::vector<Reflector> torso;
  if (config_.include_torso) {
    const double torso_y = config_.distance + 0.10;
    for (double h : {0.55, 0.75, 0.95, 1.15, 1.35}) {
      const double z = h * user_.height - config_.radar_height;
      torso.push_back({{config_.lateral - 0.08, torso_y, z}, {}, 1.6});
      torso.push_back({{config_.lateral + 0.08, torso_y, z}, {}, 1.6});
    }
    // Head.
    torso.push_back(
        {{config_.lateral, torso_y, 0.94 * user_.height - config_.radar_height}, {}, 1.0});
  }

  const double eps = 1e-3;  // finite-difference step, seconds
  SceneSequence scene;
  scene.reserve(static_cast<std::size_t>(total_frames));

  for (int f = 0; f < total_frames; ++f) {
    SceneFrame frame;
    frame.frame_index = f;
    frame.timestamp = f * dt;

    // Active phase for this frame (clamped to rest outside the motion).
    const double active_t =
        (static_cast<double>(f - config_.idle_frames_before) * dt) / duration;
    const bool in_motion = active_t >= 0.0 && active_t <= 1.0;
    const double t0 = std::clamp(active_t, 0.0, 1.0);
    const double t1 = std::clamp(active_t + eps / duration, 0.0, 1.0);

    // Solve both arms at t0 and slightly later for velocities.
    for (int arm = 0; arm < 2; ++arm) {
      const bool left = arm == 1;
      const Vec3& shoulder = left ? left_shoulder : right_shoulder;
      const double swivel = left ? -user_.elbow_swivel : user_.elbow_swivel;

      const Vec3 w0 = wrist_at(left, t0);
      const Vec3 w1 = wrist_at(left, t1);
      const ArmPose p0 = solve_arm(shoulder, w0, user_.upper_arm, user_.forearm, swivel);
      const ArmPose p1 = solve_arm(shoulder, w1, user_.upper_arm, user_.forearm, swivel);

      const Vec3 hand_dir0 = (p0.wrist - p0.elbow).normalized();
      const Vec3 hand_dir1 = (p1.wrist - p1.elbow).normalized();

      std::vector<Reflector> refl0;
      std::vector<Vec3> pts0;
      emit_arm(p0, hand_dir0, user_.hand, refl0, pts0);
      std::vector<Reflector> refl1;
      std::vector<Vec3> pts1;
      emit_arm(p1, hand_dir1, user_.hand, refl1, pts1);

      // Tremor-induced micro-Doppler: a few-mm oscillation at muscle-tremor
      // frequencies produces instantaneous velocities of O(0.1 m/s), which
      // is why a real radar keeps seeing a "paused" arm mid-gesture. Only
      // applied while the arm is engaged in the motion.
      const double micro_doppler_sigma = in_motion ? 0.045 + 6.0 * user_.tremor_sigma : 0.0;
      for (std::size_t i = 0; i < refl0.size(); ++i) {
        Reflector r = refl0[i];
        r.velocity = in_motion ? (pts1[i] - pts0[i]) / eps : Vec3{};
        r.velocity += Vec3(rng.gaussian(0.0, micro_doppler_sigma),
                           rng.gaussian(0.0, micro_doppler_sigma),
                           rng.gaussian(0.0, micro_doppler_sigma));
        // Physiological tremor: small position noise every frame.
        r.position += Vec3(rng.gaussian(0.0, user_.tremor_sigma),
                           rng.gaussian(0.0, user_.tremor_sigma),
                           rng.gaussian(0.0, user_.tremor_sigma));
        frame.reflectors.push_back(r);
      }
    }

    // Torso with breathing micro-motion (sub-cm, near-zero Doppler).
    for (const auto& t : torso) {
      Reflector r = t;
      const double breath = 0.004 * std::sin(2.0 * kPi * 0.25 * frame.timestamp);
      r.position.y += breath;
      r.velocity = Vec3(0.0, 0.004 * 2.0 * kPi * 0.25 * std::cos(2.0 * kPi * 0.25 * frame.timestamp),
                        0.0);
      frame.reflectors.push_back(r);
    }

    scene.push_back(std::move(frame));
  }
  return scene;
}

}  // namespace gp
