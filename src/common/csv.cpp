#include "common/csv.hpp"

#include <sstream>

#include "common/error.hpp"

namespace gp {

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), path_(path), arity_(header.size()) {
  check_arg(!header.empty(), "CSV header must be non-empty");
  if (!out_) throw Error("cannot open CSV file for writing: " + path);
  emit(header);
}

void CsvWriter::emit(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  check_arg(cells.size() == arity_, "CSV row arity mismatch");
  emit(cells);
}

void CsvWriter::write_row(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream ss;
    ss.precision(6);
    ss << v;
    text.push_back(ss.str());
  }
  write_row(text);
}

}  // namespace gp
