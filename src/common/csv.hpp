// CSV emission for bench outputs (point clouds, ROC curves, t-SNE embeddings)
// so results can be plotted externally.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace gp {

/// Streams rows to a CSV file. Values containing commas/quotes are quoted.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row; must match the header arity.
  void write_row(const std::vector<std::string>& cells);
  /// Convenience overload formatting doubles with 6 significant digits.
  void write_row(const std::vector<double>& cells);

  const std::string& path() const { return path_; }

 private:
  void emit(const std::vector<std::string>& cells);
  std::ofstream out_;
  std::string path_;
  std::size_t arity_;
};

/// Escapes a single CSV cell per RFC 4180.
std::string csv_escape(const std::string& cell);

}  // namespace gp
