// Error handling primitives shared by every GesturePrint module.
//
// Library code reports contract violations and unrecoverable conditions by
// throwing gp::Error (C++ Core Guidelines E.2: throw to signal that a
// function can't perform its task). gp::check/gp::check_arg attach a short
// message describing the violated condition.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace gp {

/// Base exception for all GesturePrint errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a function argument violates its precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when serialized data is malformed or version-incompatible.
class SerializationError : public Error {
 public:
  explicit SerializationError(const std::string& what) : Error(what) {}
};

/// Thrown when an operation exhausts its wall-clock deadline (retry budgets
/// in gp::faults, deadline-bounded cluster RPCs). Deliberately a plain
/// gp::Error subclass: a timeout on one attempt *is* transient and may be
/// retried by an enclosing policy — only the enclosing policy's own total
/// deadline turns it terminal.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

/// Verifies an internal invariant; throws gp::Error when it does not hold.
inline void check(bool condition, std::string_view message) {
  if (!condition) throw Error(std::string(message));
}

/// Verifies a caller-supplied argument; throws gp::InvalidArgument otherwise.
inline void check_arg(bool condition, std::string_view message) {
  if (!condition) throw InvalidArgument(std::string(message));
}

}  // namespace gp
