#include "common/mem.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "common/error.hpp"

namespace gp::mem {

namespace {

// Process-global relaxed counters. Global (not thread_local) on purpose:
// the serve hot loop runs shard drains on gp::exec worker threads, and a
// per-thread counter read from the pump thread would miss them entirely.
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};
std::atomic<std::uint64_t> g_bytes{0};

std::atomic<std::uint64_t> g_pool_hits{0};
std::atomic<std::uint64_t> g_pool_misses{0};
std::atomic<std::uint64_t> g_arena_blocks{0};
std::atomic<std::uint64_t> g_arena_bytes_recycled{0};
std::atomic<std::uint64_t> g_arena_high_water{0};

void raise_max(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (value > cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

inline void count_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
}

inline void count_free() { g_frees.fetch_add(1, std::memory_order_relaxed); }

std::atomic<int> g_poison_resize{-1};  ///< -1 = read GP_POISON_RESIZE lazily

}  // namespace

AllocStats alloc_stats() {
  AllocStats s;
  s.allocs = g_allocs.load(std::memory_order_relaxed);
  s.frees = g_frees.load(std::memory_order_relaxed);
  s.bytes = g_bytes.load(std::memory_order_relaxed);
  return s;
}

ScopedNoAlloc::~ScopedNoAlloc() {
  const std::uint64_t n = counter_.allocations();
  if (n != 0) {
    std::fprintf(stderr,
                 "GP_ASSERT_NO_ALLOC violated in '%s': %llu heap allocation(s) "
                 "(%llu bytes) inside a zero-alloc scope\n",
                 what_, static_cast<unsigned long long>(n),
                 static_cast<unsigned long long>(counter_.bytes()));
    std::abort();
  }
}

// ------------------------------------------------------------------ arena

std::size_t default_arena_bytes() {
  static const std::size_t cached = [] {
    constexpr std::size_t kDefault = 256 * 1024;
    const char* env = std::getenv("GP_ARENA_BYTES");
    if (env == nullptr || *env == '\0') return kDefault;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end == env || v == 0) return kDefault;
    constexpr std::size_t kMin = 4 * 1024;
    constexpr std::size_t kMax = std::size_t{1} << 30;
    const auto bytes = static_cast<std::size_t>(v);
    return bytes < kMin ? kMin : (bytes > kMax ? kMax : bytes);
  }();
  return cached;
}

Arena::Arena(std::size_t block_bytes)
    : block_bytes_(block_bytes == 0 ? default_arena_bytes() : block_bytes) {}

Arena::Block& Arena::grow(std::size_t min_bytes) {
  Block block;
  block.size = min_bytes > block_bytes_ ? min_bytes : block_bytes_;
  block.data = std::make_unique<std::byte[]>(block.size);
  blocks_.push_back(std::move(block));
  g_arena_blocks.fetch_add(1, std::memory_order_relaxed);
  return blocks_.back();
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  check_arg(align != 0 && (align & (align - 1)) == 0,
            "Arena alignment must be a power of two");
  if (bytes == 0) bytes = 1;

  for (;;) {
    if (active_ < blocks_.size()) {
      Block& block = blocks_[active_];
      const auto base = reinterpret_cast<std::uintptr_t>(block.data.get());
      const std::uintptr_t aligned = (base + block.used + align - 1) & ~(align - 1);
      const std::size_t offset = static_cast<std::size_t>(aligned - base);
      if (offset + bytes <= block.size) {
        block.used = offset + bytes;
        used_ += bytes;
        if (used_ > high_water_) {
          high_water_ = used_;
          raise_max(g_arena_high_water, high_water_);
        }
        return block.data.get() + offset;
      }
      // Doesn't fit: seal this block and try the next (kept from an earlier
      // epoch) or grow the chain. Sealed slack is counted as used so the
      // high-water mark reflects real footprint.
      ++active_;
      continue;
    }
    grow(bytes + align);
    // Loop: the fresh block is blocks_[active_] and is guaranteed to fit.
  }
}

void Arena::reset() {
  g_arena_bytes_recycled.fetch_add(used_, std::memory_order_relaxed);
  for (Block& block : blocks_) block.used = 0;
  active_ = 0;
  used_ = 0;
}

// ------------------------------------------------------------------- pool

namespace detail {
void record_pool_hit() { g_pool_hits.fetch_add(1, std::memory_order_relaxed); }
void record_pool_miss() { g_pool_misses.fetch_add(1, std::memory_order_relaxed); }
}  // namespace detail

// -------------------------------------------------------- poison / stats

bool poison_resize_enabled() {
  int state = g_poison_resize.load(std::memory_order_relaxed);
  if (state < 0) {
    const char* env = std::getenv("GP_POISON_RESIZE");
    state = (env != nullptr && (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0))
                ? 1
                : 0;
    g_poison_resize.store(state, std::memory_order_relaxed);
  }
  return state == 1;
}

void set_poison_resize(bool enabled) {
  g_poison_resize.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

MemCounters mem_counters() {
  MemCounters c;
  c.pool_hits = g_pool_hits.load(std::memory_order_relaxed);
  c.pool_misses = g_pool_misses.load(std::memory_order_relaxed);
  c.arena_blocks = g_arena_blocks.load(std::memory_order_relaxed);
  c.arena_bytes_recycled = g_arena_bytes_recycled.load(std::memory_order_relaxed);
  c.arena_high_water = g_arena_high_water.load(std::memory_order_relaxed);
  return c;
}

}  // namespace gp::mem

// --------------------------------------------------- operator new/delete
//
// Counting replacements for the global allocation functions. Defined in
// exactly one TU; any binary that pulls mem.o (everything linking the
// pipeline/serve stack) gets counted allocation. The counters are two
// relaxed fetch_adds — noise-level next to the allocation itself — and
// malloc/free stay the backing store, so ASan/TSan interposition still
// sees every block.

namespace {

void* counted_alloc(std::size_t size) {
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  gp::mem::count_alloc(size);
  return p;
}

void* counted_alloc_nothrow(std::size_t size) noexcept {
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p != nullptr) gp::mem::count_alloc(size);
  return p;
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  void* p = nullptr;
  if (align < sizeof(void*)) align = sizeof(void*);
  if (posix_memalign(&p, align, size == 0 ? align : size) != 0) throw std::bad_alloc();
  gp::mem::count_alloc(size);
  return p;
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  gp::mem::count_free();
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc_nothrow(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc_nothrow(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
