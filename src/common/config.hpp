// Global experiment scaling knobs.
//
// Every bench regenerates a paper table/figure. At the paper's full dataset
// sizes a single bench would train for hours on CPU, so benches consult
// RunScale to pick dataset sizes / epochs that preserve the experimental
// *shape* while finishing in minutes. Set GESTUREPRINT_SCALE=full for
// paper-scale runs, =small for smoke runs; default is "default".
#pragma once

#include <cstddef>
#include <string>

namespace gp {

enum class RunScale { kSmall, kDefault, kFull };

/// Scale selected via the GESTUREPRINT_SCALE environment variable.
RunScale run_scale();

/// Human-readable name of the active scale.
std::string run_scale_name();

/// Picks one of three values according to the active scale.
template <typename T>
T scale_pick(T small, T def, T full) {
  switch (run_scale()) {
    case RunScale::kSmall: return small;
    case RunScale::kFull: return full;
    case RunScale::kDefault: break;
  }
  return def;
}

/// Directory for bench CSV artefacts (created on demand); honours GP_OUT_DIR,
/// defaults to "bench_out".
std::string output_dir();

}  // namespace gp
