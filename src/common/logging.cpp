#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace gp {

namespace {

LogLevel parse_level(const char* s) {
  if (s == nullptr) return LogLevel::kInfo;
  const std::string v(s);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (v == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

LogLevel& level_ref() {
  static LogLevel level = parse_level(std::getenv("GP_LOG"));
  return level;
}

std::atomic<bool>& json_mode_ref() {
  static std::atomic<bool> mode = [] {
    const char* v = std::getenv("GP_LOG_JSON");
    return v != nullptr && (std::string(v) == "1" || std::string(v) == "on" ||
                            std::string(v) == "true");
  }();
  return mode;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

const char* level_name_json(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}

/// Emitted-line tallies per level (debug..error). Plain atomics so the
/// counters work even before/after the obs registry exists.
std::atomic<std::uint64_t>& emit_count_ref(LogLevel level) {
  static std::atomic<std::uint64_t> counts[4] = {};
  std::size_t idx = static_cast<std::size_t>(level);
  if (idx > 3) idx = 3;
  return counts[idx];
}

/// Minimal JSON string escape (mirrors obs/json.cpp; kept local so
/// gp_common stays dependency-free).
void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::uint64_t monotonic_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - epoch).count());
}

double uptime_seconds() { return static_cast<double>(monotonic_ns()) * 1e-9; }

int thread_ordinal() {
  static std::atomic<int> next{0};
  thread_local const int ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

LogLevel log_level() { return level_ref(); }

void set_log_level(LogLevel level) { level_ref() = level; }

bool log_json_mode() { return json_mode_ref().load(std::memory_order_relaxed); }

void set_log_json_mode(bool enabled) {
  json_mode_ref().store(enabled, std::memory_order_relaxed);
}

std::uint64_t log_emit_count(LogLevel level) {
  return emit_count_ref(level).load(std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& message) {
  if (level < level_ref() || level_ref() == LogLevel::kOff) return;
  emit_count_ref(level).fetch_add(1, std::memory_order_relaxed);

  // Assemble the complete line up front; the lock only covers one write,
  // so lines from concurrent threads are atomic units, never interleaved.
  const double ts = uptime_seconds();
  const int tid = thread_ordinal();
  std::string line;
  line.reserve(message.size() + 64);
  char prefix[96];
  if (log_json_mode()) {
    std::snprintf(prefix, sizeof(prefix), "{\"ts_s\": %.6f, \"tid\": %d, \"level\": \"%s\", \"msg\": \"",
                  ts, tid, level_name_json(level));
    line += prefix;
    append_json_escaped(line, message);
    line += "\"}\n";
  } else {
    std::snprintf(prefix, sizeof(prefix), "[gp %s +%.3fs t%02d] ", level_name(level), ts, tid);
    line += prefix;
    line += message;
    line += '\n';
  }

  const std::lock_guard<std::mutex> lock(log_mutex());
  std::cerr << line;
}

}  // namespace gp
