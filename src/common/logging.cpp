#include "common/logging.hpp"

#include <cstdlib>
#include <iostream>
#include <mutex>

namespace gp {

namespace {

LogLevel parse_level(const char* s) {
  if (s == nullptr) return LogLevel::kInfo;
  const std::string v(s);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (v == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

LogLevel& level_ref() {
  static LogLevel level = parse_level(std::getenv("GP_LOG"));
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

LogLevel log_level() { return level_ref(); }

void set_log_level(LogLevel level) { level_ref() = level; }

void log_message(LogLevel level, const std::string& message) {
  if (level < level_ref() || level_ref() == LogLevel::kOff) return;
  const std::lock_guard<std::mutex> lock(log_mutex());
  std::cerr << "[gp " << level_name(level) << "] " << message << '\n';
}

}  // namespace gp
