// Wall-clock timing for the latency experiments (§VI-B5).
#pragma once

#include <chrono>

namespace gp {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace gp
