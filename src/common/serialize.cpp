#include "common/serialize.hpp"

#include <istream>
#include <limits>
#include <ostream>

namespace gp {

namespace {
constexpr std::uint8_t kFormatVersion = 1;

template <typename T>
void write_pod(std::ostream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
}  // namespace

BinaryWriter::BinaryWriter(std::ostream& out, const std::string& tag) : out_(out) {
  check_arg(tag.size() == 4, "BinaryWriter tag must be 4 bytes");
  out_.write(tag.data(), 4);
  write_u8(kFormatVersion);
}

void BinaryWriter::write_u8(std::uint8_t v) { write_pod(out_, v); }
void BinaryWriter::write_u32(std::uint32_t v) { write_pod(out_, v); }
void BinaryWriter::write_u64(std::uint64_t v) { write_pod(out_, v); }
void BinaryWriter::write_i32(std::int32_t v) { write_pod(out_, v); }
void BinaryWriter::write_f32(float v) { write_pod(out_, v); }
void BinaryWriter::write_f64(double v) { write_pod(out_, v); }

void BinaryWriter::write_string(const std::string& s) {
  check_arg(s.size() <= std::numeric_limits<std::uint32_t>::max(), "string too long");
  write_u32(static_cast<std::uint32_t>(s.size()));
  out_.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void BinaryWriter::write_f32_vector(const std::vector<float>& v) {
  write_u64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(float)));
}

void BinaryWriter::write_f64_vector(const std::vector<double>& v) {
  write_u64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(double)));
}

void BinaryWriter::write_i8_vector(const std::vector<std::int8_t>& v) {
  write_u64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(std::int8_t)));
}

void BinaryWriter::write_u32_vector(const std::vector<std::uint32_t>& v) {
  write_u64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(std::uint32_t)));
}

BinaryReader::BinaryReader(std::istream& in, const std::string& expected_tag) : in_(in) {
  check_arg(expected_tag.size() == 4, "BinaryReader tag must be 4 bytes");
  char tag[4];
  read_raw(tag, 4);
  if (std::string(tag, 4) != expected_tag) {
    throw SerializationError("binary stream tag mismatch: expected " + expected_tag);
  }
  const std::uint8_t version = read_u8();
  if (version != kFormatVersion) {
    throw SerializationError("unsupported gp binary format version " + std::to_string(version));
  }
}

void BinaryReader::read_raw(void* dst, std::size_t n) {
  in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(in_.gcount()) != n) {
    throw SerializationError("unexpected end of gp binary stream");
  }
}

std::size_t BinaryReader::remaining_bytes() {
  const std::streampos here = in_.tellg();
  if (here == std::streampos(-1)) return std::numeric_limits<std::size_t>::max();
  in_.seekg(0, std::ios::end);
  const std::streampos end = in_.tellg();
  in_.seekg(here);
  if (end == std::streampos(-1) || end < here) {
    return std::numeric_limits<std::size_t>::max();
  }
  return static_cast<std::size_t>(end - here);
}

std::uint64_t BinaryReader::read_count(std::size_t min_bytes_per_elem, const char* what) {
  const std::uint64_t n = read_u64();
  // Hard sanity cap even for non-seekable streams: no legitimate gp payload
  // holds anywhere near 2^40 elements of anything.
  constexpr std::uint64_t kHardCap = 1ULL << 40;
  if (n > kHardCap) {
    throw SerializationError(std::string("implausible ") + what + " count " +
                             std::to_string(n) + " in gp binary stream");
  }
  if (min_bytes_per_elem > 0) {
    const std::size_t left = remaining_bytes();
    if (left != std::numeric_limits<std::size_t>::max() &&
        n > static_cast<std::uint64_t>(left) / min_bytes_per_elem) {
      throw SerializationError(std::string(what) + " count " + std::to_string(n) +
                               " exceeds remaining stream bytes (" + std::to_string(left) +
                               " left, >= " + std::to_string(min_bytes_per_elem) +
                               " bytes/element)");
    }
  }
  return n;
}

std::uint8_t BinaryReader::read_u8() {
  std::uint8_t v = 0;
  read_raw(&v, sizeof(v));
  return v;
}
std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v = 0;
  read_raw(&v, sizeof(v));
  return v;
}
std::uint64_t BinaryReader::read_u64() {
  std::uint64_t v = 0;
  read_raw(&v, sizeof(v));
  return v;
}
std::int32_t BinaryReader::read_i32() {
  std::int32_t v = 0;
  read_raw(&v, sizeof(v));
  return v;
}
float BinaryReader::read_f32() {
  float v = 0;
  read_raw(&v, sizeof(v));
  return v;
}
double BinaryReader::read_f64() {
  double v = 0;
  read_raw(&v, sizeof(v));
  return v;
}

std::string BinaryReader::read_string() {
  const std::uint32_t n = read_u32();
  const std::size_t left = remaining_bytes();
  if (left != std::numeric_limits<std::size_t>::max() && n > left) {
    throw SerializationError("string length " + std::to_string(n) +
                             " exceeds remaining stream bytes (" + std::to_string(left) + ")");
  }
  std::string s(n, '\0');
  if (n > 0) read_raw(s.data(), n);
  return s;
}

std::vector<float> BinaryReader::read_f32_vector() {
  const std::uint64_t n = read_count(sizeof(float), "f32 vector");
  std::vector<float> v(static_cast<std::size_t>(n));
  if (n > 0) read_raw(v.data(), static_cast<std::size_t>(n) * sizeof(float));
  return v;
}

std::vector<double> BinaryReader::read_f64_vector() {
  const std::uint64_t n = read_count(sizeof(double), "f64 vector");
  std::vector<double> v(static_cast<std::size_t>(n));
  if (n > 0) read_raw(v.data(), static_cast<std::size_t>(n) * sizeof(double));
  return v;
}

std::vector<std::int8_t> BinaryReader::read_i8_vector() {
  const std::uint64_t n = read_count(sizeof(std::int8_t), "i8 vector");
  std::vector<std::int8_t> v(static_cast<std::size_t>(n));
  if (n > 0) read_raw(v.data(), static_cast<std::size_t>(n) * sizeof(std::int8_t));
  return v;
}

std::vector<std::uint32_t> BinaryReader::read_u32_vector() {
  const std::uint64_t n = read_count(sizeof(std::uint32_t), "u32 vector");
  std::vector<std::uint32_t> v(static_cast<std::size_t>(n));
  if (n > 0) read_raw(v.data(), static_cast<std::size_t>(n) * sizeof(std::uint32_t));
  return v;
}

}  // namespace gp
