#include "common/serialize.hpp"

#include <istream>
#include <limits>
#include <ostream>

namespace gp {

namespace {
constexpr std::uint8_t kFormatVersion = 1;

template <typename T>
void write_pod(std::ostream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
}  // namespace

BinaryWriter::BinaryWriter(std::ostream& out, const std::string& tag) : out_(out) {
  check_arg(tag.size() == 4, "BinaryWriter tag must be 4 bytes");
  out_.write(tag.data(), 4);
  write_u8(kFormatVersion);
}

void BinaryWriter::write_u8(std::uint8_t v) { write_pod(out_, v); }
void BinaryWriter::write_u32(std::uint32_t v) { write_pod(out_, v); }
void BinaryWriter::write_u64(std::uint64_t v) { write_pod(out_, v); }
void BinaryWriter::write_i32(std::int32_t v) { write_pod(out_, v); }
void BinaryWriter::write_f32(float v) { write_pod(out_, v); }
void BinaryWriter::write_f64(double v) { write_pod(out_, v); }

void BinaryWriter::write_string(const std::string& s) {
  check_arg(s.size() <= std::numeric_limits<std::uint32_t>::max(), "string too long");
  write_u32(static_cast<std::uint32_t>(s.size()));
  out_.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void BinaryWriter::write_f32_vector(const std::vector<float>& v) {
  write_u64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(float)));
}

void BinaryWriter::write_f64_vector(const std::vector<double>& v) {
  write_u64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(double)));
}

void BinaryWriter::write_u32_vector(const std::vector<std::uint32_t>& v) {
  write_u64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(std::uint32_t)));
}

BinaryReader::BinaryReader(std::istream& in, const std::string& expected_tag) : in_(in) {
  check_arg(expected_tag.size() == 4, "BinaryReader tag must be 4 bytes");
  char tag[4];
  read_raw(tag, 4);
  if (std::string(tag, 4) != expected_tag) {
    throw SerializationError("binary stream tag mismatch: expected " + expected_tag);
  }
  const std::uint8_t version = read_u8();
  if (version != kFormatVersion) {
    throw SerializationError("unsupported gp binary format version " + std::to_string(version));
  }
}

void BinaryReader::read_raw(void* dst, std::size_t n) {
  in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(in_.gcount()) != n) {
    throw SerializationError("unexpected end of gp binary stream");
  }
}

std::uint8_t BinaryReader::read_u8() {
  std::uint8_t v = 0;
  read_raw(&v, sizeof(v));
  return v;
}
std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v = 0;
  read_raw(&v, sizeof(v));
  return v;
}
std::uint64_t BinaryReader::read_u64() {
  std::uint64_t v = 0;
  read_raw(&v, sizeof(v));
  return v;
}
std::int32_t BinaryReader::read_i32() {
  std::int32_t v = 0;
  read_raw(&v, sizeof(v));
  return v;
}
float BinaryReader::read_f32() {
  float v = 0;
  read_raw(&v, sizeof(v));
  return v;
}
double BinaryReader::read_f64() {
  double v = 0;
  read_raw(&v, sizeof(v));
  return v;
}

std::string BinaryReader::read_string() {
  const std::uint32_t n = read_u32();
  std::string s(n, '\0');
  if (n > 0) read_raw(s.data(), n);
  return s;
}

std::vector<float> BinaryReader::read_f32_vector() {
  const std::uint64_t n = read_u64();
  std::vector<float> v(n);
  if (n > 0) read_raw(v.data(), n * sizeof(float));
  return v;
}

std::vector<double> BinaryReader::read_f64_vector() {
  const std::uint64_t n = read_u64();
  std::vector<double> v(n);
  if (n > 0) read_raw(v.data(), n * sizeof(double));
  return v;
}

std::vector<std::uint32_t> BinaryReader::read_u32_vector() {
  const std::uint64_t n = read_u64();
  std::vector<std::uint32_t> v(n);
  if (n > 0) read_raw(v.data(), n * sizeof(std::uint32_t));
  return v;
}

}  // namespace gp
