// Small numeric helpers shared across modules.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace gp {

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kSpeedOfLight = 299792458.0;  // m/s

inline double deg2rad(double deg) { return deg * kPi / 180.0; }
inline double rad2deg(double rad) { return rad * 180.0 / kPi; }

/// n evenly spaced values covering [lo, hi] inclusive. n >= 2.
inline std::vector<double> linspace(double lo, double hi, std::size_t n) {
  check_arg(n >= 2, "linspace requires n >= 2");
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;
  return out;
}

inline double mean(std::span<const double> v) {
  check_arg(!v.empty(), "mean of empty span");
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

inline double variance(std::span<const double> v) {
  check_arg(!v.empty(), "variance of empty span");
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size());
}

inline double stddev(std::span<const double> v) { return std::sqrt(variance(v)); }

inline double median(std::vector<double> v) {
  check_arg(!v.empty(), "median of empty vector");
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid) - 1, v.end());
  return 0.5 * (v[mid - 1] + hi);
}

/// Index of the largest element. Requires non-empty input.
template <typename T>
std::size_t argmax(std::span<const T> v) {
  check_arg(!v.empty(), "argmax of empty span");
  return static_cast<std::size_t>(std::distance(v.begin(), std::max_element(v.begin(), v.end())));
}

template <typename T>
std::size_t argmax(const std::vector<T>& v) {
  return argmax(std::span<const T>(v));
}

/// Quantile with linear interpolation, q in [0, 1]. Sorts `v` in place —
/// the allocation-free form hot loops call on reused scratch buffers.
inline double quantile_inplace(std::vector<double>& v, double q) {
  check_arg(!v.empty(), "quantile of empty vector");
  check_arg(q >= 0.0 && q <= 1.0, "quantile requires q in [0,1]");
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

/// Copying convenience overload.
inline double quantile(std::vector<double> v, double q) { return quantile_inplace(v, q); }

/// Wraps an angle to (-pi, pi].
inline double wrap_angle(double a) {
  while (a > kPi) a -= 2.0 * kPi;
  while (a <= -kPi) a += 2.0 * kPi;
  return a;
}

}  // namespace gp
