// gp::mem — arena/pool memory primitives for the zero-copy frame path
// (DESIGN.md §9).
//
// The serving hot loop (radar frame → shard ingress → segmentation →
// preprocess → featurize → micro-batch) must not pay allocator tax per
// tick: on the 1-core reference host malloc/free round-trips are pure
// latency, and deployed radar gesture stacks run in fixed memory
// footprints. Three primitives make a steady-state tick allocation-free:
//
//   * Arena       — bump allocator with epoch reset. Frame points are
//                   copied into the owning shard's arena at admission and
//                   handed to the pipeline as non-owning FrameView spans;
//                   the drain tick resets the arena instead of freeing.
//   * Pool<T>     — mutex-guarded freelist of reusable heap objects with a
//                   pool-returning smart-pointer deleter (PoolPtr<T>).
//                   Completed segments recycle through it across threads.
//   * SlotVector  — a logical-size prefix over persistent element slots:
//                   clear() forgets elements without destroying them, so
//                   nested vector capacities stay warm across reuse.
//
// Verification hooks: the translation unit replaces global operator
// new/delete with counting versions (process-global relaxed atomics — the
// hot loop spans gp::exec worker threads, so thread-local counters would
// miss shard-drain allocations). AllocCounter reads the counters;
// GP_ASSERT_NO_ALLOC aborts a scope that allocated. GP_POISON_RESIZE=1
// arms NaN poisoning of Tensor::resize (whose contents are documented as
// unspecified) to flush out callers relying on stale cells.
//
// Determinism: nothing here touches RNG streams or changes any
// floating-point computation — buffers are recycled, values are not.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

namespace gp::mem {

// ------------------------------------------------------------ alloc hooks

/// Snapshot of the process-global allocation counters maintained by the
/// replaced operator new/delete (monotonic; all threads).
struct AllocStats {
  std::uint64_t allocs = 0;  ///< operator new calls
  std::uint64_t frees = 0;   ///< operator delete calls
  std::uint64_t bytes = 0;   ///< cumulative bytes requested
};

AllocStats alloc_stats();

/// Counts allocations between construction (or the last reset()) and now.
/// Usage: AllocCounter c; hot_loop(); EXPECT_EQ(c.allocations(), 0u);
class AllocCounter {
 public:
  AllocCounter() : start_(alloc_stats()) {}
  void reset() { start_ = alloc_stats(); }
  std::uint64_t allocations() const { return alloc_stats().allocs - start_.allocs; }
  std::uint64_t frees() const { return alloc_stats().frees - start_.frees; }
  std::uint64_t bytes() const { return alloc_stats().bytes - start_.bytes; }

 private:
  AllocStats start_;
};

/// Scope guard that aborts (with a diagnostic naming the scope) if any
/// heap allocation happened while it was alive. The hard failure mode is
/// deliberate: a zero-alloc contract violated in a steady-state loop must
/// be impossible to ignore in CI.
class ScopedNoAlloc {
 public:
  explicit ScopedNoAlloc(const char* what) : what_(what) {}
  ~ScopedNoAlloc();
  ScopedNoAlloc(const ScopedNoAlloc&) = delete;
  ScopedNoAlloc& operator=(const ScopedNoAlloc&) = delete;

 private:
  const char* what_;
  AllocCounter counter_;
};

#define GP_MEM_CONCAT_IMPL(a, b) a##b
#define GP_MEM_CONCAT(a, b) GP_MEM_CONCAT_IMPL(a, b)
#define GP_ASSERT_NO_ALLOC(what_literal) \
  ::gp::mem::ScopedNoAlloc GP_MEM_CONCAT(gp_mem_no_alloc_guard_, __LINE__)(what_literal)

// ------------------------------------------------------------------ arena

/// Default arena block size: GP_ARENA_BYTES (clamped to [4 KiB, 1 GiB]),
/// else 256 KiB — comfortably above the largest per-tick frame burst the
/// serve layer sees, so steady state never grows a new block.
std::size_t default_arena_bytes();

/// Bump allocator over a chain of fixed-size blocks. allocate() is O(1);
/// reset() rewinds every block to empty without freeing, so the next epoch
/// reuses the same memory. Blocks are stable: growing the chain never
/// relocates previously returned spans, which is what lets producers keep
/// appending to an arena another thread is still reading (distinct spans).
///
/// Not internally synchronised — the owner provides exclusion (the serve
/// shards allocate under their ingress mutex and reset at a tick boundary
/// when no producer can hold a span; see sessions.cpp).
class Arena {
 public:
  /// `block_bytes` 0 means default_arena_bytes().
  explicit Arena(std::size_t block_bytes = 0);
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (a power of two). An
  /// oversized request gets a dedicated block of exactly its size.
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  /// Typed span of `n` default-uninitialised T slots (T must be trivially
  /// copyable + destructible: the arena never runs destructors).
  template <typename T>
  std::span<T> allocate_span(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T> && std::is_trivially_destructible_v<T>,
                  "Arena spans hold trivial types only (reset skips destructors)");
    if (n == 0) return {};
    return {static_cast<T*>(allocate(n * sizeof(T), alignof(T))), n};
  }

  /// Copies `src` into the arena and returns the stable copy.
  template <typename T>
  std::span<const T> copy_span(std::span<const T> src) {
    std::span<T> dst = allocate_span<T>(src.size());
    for (std::size_t i = 0; i < src.size(); ++i) dst[i] = src[i];
    return dst;
  }

  /// Epoch reset: every block rewinds to empty, nothing is freed. All
  /// previously returned spans are invalidated.
  void reset();

  std::size_t bytes_used() const { return used_; }
  std::size_t high_water() const { return high_water_; }
  std::size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  Block& grow(std::size_t min_bytes);

  std::vector<Block> blocks_;
  std::size_t active_ = 0;  ///< index of the block currently bumping
  std::size_t block_bytes_;
  std::size_t used_ = 0;        ///< bytes live since the last reset
  std::size_t high_water_ = 0;  ///< max bytes_used() ever observed
};

// ------------------------------------------------------------------- pool

namespace detail {
/// gp.mem.pool.* tallies (kept in mem.cpp so this header stays free of the
/// obs dependency; gp::obs publishes them — common sits below obs in the
/// library graph).
void record_pool_hit();
void record_pool_miss();
}  // namespace detail

template <typename T>
class Pool;

/// unique_ptr deleter that returns the object to its pool (or plain
/// deletes when detached). Default-constructible so PoolPtr composes with
/// containers.
template <typename T>
struct PoolDeleter {
  Pool<T>* pool = nullptr;
  void operator()(T* object) const;
};

/// Owning handle to a pooled object; destruction recycles instead of
/// freeing. The pool must outlive every handle it issued.
template <typename T>
using PoolPtr = std::unique_ptr<T, PoolDeleter<T>>;

/// Mutex-guarded freelist of default-constructed T. acquire() pops a warm
/// object (its internal buffers keep their capacity — callers reset
/// logical state, not storage) or constructs a fresh one on miss.
template <typename T>
class Pool {
 public:
  Pool() = default;
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  PoolPtr<T> acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        T* object = free_.back().release();
        free_.pop_back();
        detail::record_pool_hit();
        return PoolPtr<T>(object, PoolDeleter<T>{this});
      }
    }
    detail::record_pool_miss();
    return PoolPtr<T>(new T(), PoolDeleter<T>{this});
  }

  /// Deleter path; also usable directly to pre-warm the freelist.
  void put(std::unique_ptr<T> object) {
    if (object == nullptr) return;
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(object));
  }

  std::size_t idle() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<T>> free_;
};

template <typename T>
void PoolDeleter<T>::operator()(T* object) const {
  if (pool != nullptr) {
    pool->put(std::unique_ptr<T>(object));
  } else {
    delete object;
  }
}

// ------------------------------------------------------------ slot vector

/// A vector whose clear() keeps its elements alive: `size()` is a logical
/// prefix over persistent slots, so recycling a SlotVector<FrameCloud>
/// reuses every nested points-vector capacity instead of freeing it
/// (std::vector::clear() destroys elements, which for vectors-of-vectors
/// frees every nested buffer — the exact allocator traffic this type
/// exists to avoid). emplace_back() hands back a possibly-stale slot; the
/// caller overwrites it (copy-assignment into a warm slot reuses the
/// destination's capacity).
template <typename T>
class SlotVector {
 public:
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t slots() const { return slots_.size(); }

  T& operator[](std::size_t i) { return slots_[i]; }
  const T& operator[](std::size_t i) const { return slots_[i]; }
  T& back() { return slots_[size_ - 1]; }

  T* begin() { return slots_.data(); }
  T* end() { return slots_.data() + size_; }
  const T* begin() const { return slots_.data(); }
  const T* end() const { return slots_.data() + size_; }

  std::span<T> span() { return {slots_.data(), size_}; }
  std::span<const T> span() const { return {slots_.data(), size_}; }

  /// Next slot: a recycled one when available (stale contents — assign
  /// over it), else a fresh default-constructed element.
  T& emplace_back() {
    if (size_ == slots_.size()) slots_.emplace_back();
    return slots_[size_++];
  }

  /// Logical clear: slots (and their heap buffers) survive for reuse.
  void clear() { size_ = 0; }
  void pop_back() { --size_; }

 private:
  std::vector<T> slots_;
  std::size_t size_ = 0;
};

// -------------------------------------------------------- poison / stats

/// GP_POISON_RESIZE=1 arms NaN poison-filling of Tensor::resize (debug
/// mode: resize contents are documented unspecified; poisoning makes a
/// caller that reads stale cells fail loudly). Overridable for tests.
bool poison_resize_enabled();
void set_poison_resize(bool enabled);

/// Monotonic gp.mem.* tallies for the obs bridge (obs::publish_mem_metrics
/// turns them into counters/gauges; see obs/metrics.hpp).
struct MemCounters {
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  std::uint64_t arena_blocks = 0;          ///< arena blocks ever allocated
  std::uint64_t arena_bytes_recycled = 0;  ///< bytes rewound by reset()
  std::uint64_t arena_high_water = 0;      ///< max per-arena bytes_used()
};

MemCounters mem_counters();

}  // namespace gp::mem
