#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gp {

Rng::Rng(std::uint64_t seed, std::uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  (*this)();
  state_ += seed;
  (*this)();
}

std::uint32_t Rng::operator()() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

double Rng::uniform() {
  // 53-bit mantissa from two draws for full double resolution.
  const std::uint64_t hi = (*this)() >> 5;   // 27 bits
  const std::uint64_t lo = (*this)() >> 6;   // 26 bits
  return static_cast<double>((hi << 26) | lo) * (1.0 / 9007199254740992.0);
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::size_t Rng::index(std::size_t n) {
  check_arg(n > 0, "Rng::index requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t span = n;
  const std::uint64_t limit = (0x100000000ULL / span) * span;
  std::uint64_t draw = 0;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return static_cast<std::size_t>(draw % span);
}

int Rng::uniform_int(int lo, int hi) {
  check_arg(lo <= hi, "Rng::uniform_int requires lo <= hi");
  return lo + static_cast<int>(index(static_cast<std::size_t>(hi - lo) + 1));
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) { return mean + stddev * gaussian(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::fork() {
  const std::uint64_t seed = (static_cast<std::uint64_t>((*this)()) << 32) | (*this)();
  const std::uint64_t stream = (static_cast<std::uint64_t>((*this)()) << 32) | (*this)();
  return Rng(seed, stream);
}

}  // namespace gp
