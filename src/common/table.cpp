#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common/error.hpp"

namespace gp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  check_arg(!header_.empty(), "table header must be non-empty");
}

void Table::add_row(std::vector<std::string> cells) {
  check_arg(cells.size() == header_.size(), "table row arity mismatch");
  rows_.push_back(std::move(cells));
}

void Table::print() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  const auto print_row = [&](const std::vector<std::string>& row) {
    std::cout << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::cout << row[c] << std::string(widths[c] - row[c].size(), ' ');
      std::cout << (c + 1 == row.size() ? " |" : " | ");
    }
    std::cout << '\n';
  };

  print_row(header_);
  std::cout << "|";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    std::cout << std::string(widths[c] + 2, '-') << "|";
  }
  std::cout << '\n';
  for (const auto& row : rows_) print_row(row);
  std::cout.flush();
}

std::string Table::pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", fraction * 100.0);
  return buf;
}

std::string Table::num(double value, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace gp
