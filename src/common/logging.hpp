// Leveled logging to stderr.
//
// Default level is Info; set the environment variable GP_LOG=debug|info|warn|
// error|off to change it. Logging is intentionally simple (single process,
// no async sink) — benches and examples are short-lived CLI programs.
#pragma once

#include <sstream>
#include <string>

namespace gp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Currently active level (initialised from GP_LOG on first use).
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emits one formatted line to stderr if `level` is enabled.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace gp
