// Leveled logging to stderr.
//
// Default level is Info; set the environment variable GP_LOG=debug|info|warn|
// error|off to change it. Each line carries a monotonic timestamp (seconds
// since process start) and a small per-thread ordinal, and the full line is
// assembled *before* the locked write, so concurrent parallel_for workers
// can never interleave fragments.
//
// GP_LOG_JSON=1 switches to one structured JSON object per line:
//   {"ts_s": 12.345, "tid": 3, "level": "info", "msg": "..."}
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace gp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Currently active level (initialised from GP_LOG on first use).
LogLevel log_level();
void set_log_level(LogLevel level);

/// True when GP_LOG_JSON=1 structured-line mode is active.
bool log_json_mode();
void set_log_json_mode(bool enabled);

/// Emits one formatted line to stderr if `level` is enabled.
void log_message(LogLevel level, const std::string& message);

/// Number of lines actually emitted at `level` so far (lines filtered out
/// by the active log level are not counted). Lets tests assert "exactly
/// one warning was logged" without scraping stderr.
std::uint64_t log_emit_count(LogLevel level);

/// Nanoseconds on the steady clock since the process's logging/obs epoch
/// (the first call in the process). Shared by log timestamps and trace
/// spans so both timelines line up.
std::uint64_t monotonic_ns();

/// Seconds since the process epoch (monotonic_ns / 1e9).
double uptime_seconds();

/// Small dense id for the calling thread (main thread observes the first
/// id handed out, workers get successive ones). Used for log prefixes,
/// metric shard selection, and trace-event thread ids.
int thread_ordinal();

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace gp
