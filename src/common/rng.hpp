// Deterministic random number generation.
//
// All stochastic components (radar noise, user biometrics, augmentation,
// weight init, shuffling) draw from gp::Rng so that experiments are exactly
// reproducible from a single seed. The generator is PCG32 (O'Neill 2014):
// small state, excellent statistical quality, and trivially portable —
// unlike std::mt19937 its stream is identical across standard libraries.
#pragma once

#include <cstdint>
#include <vector>

namespace gp {

/// PCG32 pseudo-random generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint32_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Raw 32-bit draw (UniformRandomBitGenerator interface).
  std::uint32_t operator()();
  static constexpr std::uint32_t min() { return 0; }
  static constexpr std::uint32_t max() { return 0xffffffffu; }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);
  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);
  /// Standard normal via Box–Muller (cached second draw).
  double gaussian();
  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev);
  /// Bernoulli draw with success probability p.
  bool bernoulli(double p);

  /// Derives an independent child generator; used to give each user /
  /// sample / module its own stream so adding draws in one place does not
  /// perturb another.
  Rng fork();

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace gp
