// Binary serialization for datasets and model weights.
//
// Format: little-endian, length-prefixed containers, a 4-byte magic plus a
// version byte at stream start. The format is deliberately simple — it only
// needs to round-trip between builds of this library (dataset caching and
// trained-model persistence), not across languages.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace gp {

/// Writes primitives and containers to a std::ostream in gp binary format.
class BinaryWriter {
 public:
  /// `tag` identifies the payload kind (e.g. "GPDS" for datasets) and is
  /// validated on read.
  BinaryWriter(std::ostream& out, const std::string& tag);

  void write_u8(std::uint8_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i32(std::int32_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_f32_vector(const std::vector<float>& v);
  void write_f64_vector(const std::vector<double>& v);
  void write_i8_vector(const std::vector<std::int8_t>& v);
  void write_u32_vector(const std::vector<std::uint32_t>& v);

 private:
  std::ostream& out_;
};

/// Reads the gp binary format; throws SerializationError on any mismatch.
///
/// Hardened against corrupt and adversarial input: every length prefix is
/// validated against the number of bytes actually left in the stream before
/// any allocation happens, so a flipped length byte yields a typed
/// SerializationError instead of a multi-gigabyte allocation (std::bad_alloc
/// or an ASan allocator abort).
class BinaryReader {
 public:
  BinaryReader(std::istream& in, const std::string& expected_tag);

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int32_t read_i32();
  float read_f32();
  double read_f64();
  std::string read_string();
  std::vector<float> read_f32_vector();
  std::vector<double> read_f64_vector();
  std::vector<std::int8_t> read_i8_vector();
  std::vector<std::uint32_t> read_u32_vector();

  /// Reads a u64 element count and validates that `count * min_bytes_per_elem`
  /// bytes could still be present in the stream (plus a hard sanity cap for
  /// non-seekable streams). `what` names the container in the error message.
  /// Use this before reserving memory proportional to an untrusted count.
  std::uint64_t read_count(std::size_t min_bytes_per_elem, const char* what);

  /// Bytes left between the current read position and end-of-stream, or
  /// SIZE_MAX when the stream is not seekable (e.g. a pipe).
  std::size_t remaining_bytes();

 private:
  void read_raw(void* dst, std::size_t n);
  std::istream& in_;
};

}  // namespace gp
