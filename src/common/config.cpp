#include "common/config.hpp"

#include <cstdlib>
#include <filesystem>

namespace gp {

RunScale run_scale() {
  static const RunScale scale = [] {
    const char* env = std::getenv("GESTUREPRINT_SCALE");
    if (env == nullptr) return RunScale::kDefault;
    const std::string v(env);
    if (v == "small") return RunScale::kSmall;
    if (v == "full") return RunScale::kFull;
    return RunScale::kDefault;
  }();
  return scale;
}

std::string run_scale_name() {
  switch (run_scale()) {
    case RunScale::kSmall: return "small";
    case RunScale::kFull: return "full";
    case RunScale::kDefault: break;
  }
  return "default";
}

std::string output_dir() {
  static const std::string dir = [] {
    const char* env = std::getenv("GP_OUT_DIR");
    std::string d = env != nullptr ? env : "bench_out";
    std::error_code ec;
    std::filesystem::create_directories(d, ec);
    return d;
  }();
  return dir;
}

}  // namespace gp
