// Console table printer used by the bench harness to render rows in the
// shape of the paper's tables (paper value next to measured value).
#pragma once

#include <string>
#include <vector>

namespace gp {

/// Accumulates rows, then renders an aligned ASCII table to stdout.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Renders with a separator under the header; truncates nothing.
  void print() const;

  /// Formats a fraction as a percentage with two decimals, e.g. "98.87%".
  static std::string pct(double fraction);
  /// Fixed-point format with the given decimals.
  static std::string num(double value, int decimals = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gp
