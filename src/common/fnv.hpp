// Canonical FNV-1a-64 (gp::fnv) — the single home for the hash constants
// that were previously copy-pasted into gp::testkit::Digest, the model-file
// checksum trailer in src/system/gestureprint.cpp, the fault-schedule digest
// in src/faults/faults.cpp, and gp::fnv1a in src/kinematics/performer.cpp.
//
// Every consumer streams bytes through the same accumulate() loop, so a
// digest produced by one subsystem is bit-identical to a digest of the same
// payload produced by any other (pinned by FnvDedup.* in tests/test_common.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gp::fnv {

/// FNV-1a 64-bit offset basis (14695981039346656037).
inline constexpr std::uint64_t kOffsetBasis = 0xCBF29CE484222325ULL;
/// FNV-1a 64-bit prime (1099511628211).
inline constexpr std::uint64_t kPrime = 0x100000001B3ULL;

/// Folds `n` bytes into a running FNV-1a state `h` and returns the new state.
inline std::uint64_t accumulate(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kPrime;
  }
  return h;
}

/// One-shot digest of a byte buffer.
inline std::uint64_t hash_bytes(const void* data, std::size_t n) {
  return accumulate(kOffsetBasis, data, n);
}

/// One-shot digest of a string's bytes (no length prefix, no terminator).
inline std::uint64_t hash_string(std::string_view s) {
  return hash_bytes(s.data(), s.size());
}

/// Folds the raw object representation of a trivially-copyable value.
template <typename T>
inline std::uint64_t accumulate_value(std::uint64_t h, const T& v) {
  return accumulate(h, &v, sizeof(v));
}

}  // namespace gp::fnv
