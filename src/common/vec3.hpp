// Minimal 3-D vector type used by the kinematic model and point clouds.
#pragma once

#include <cmath>

namespace gp {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm() const { return std::sqrt(dot(*this)); }
  constexpr double norm2() const { return dot(*this); }
  Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? (*this) / n : Vec3{};
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

inline double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }

/// Linear interpolation: a at t=0, b at t=1.
constexpr Vec3 lerp(const Vec3& a, const Vec3& b, double t) { return a + (b - a) * t; }

}  // namespace gp
