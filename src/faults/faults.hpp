// gp::faults — seed-deterministic fault injection for the streaming radar
// path (DESIGN.md §7).
//
// The paper evaluates GesturePrint under clean capture conditions; a
// deployed continuously-streaming radar is not clean. This module models
// the failure taxonomy that actually sinks mmWave systems in the field —
// dropped frames over the serial link, bursty loss, duty-cycled sensor
// dropout, interference point storms, truncated point clouds, timestamp
// jitter/reorder, and bit-rot in serialized artifacts — as *injectable*,
// *replayable* faults so robustness can be measured instead of assumed.
//
// Determinism contract: a FaultPlan is a pure function of (FaultConfig,
// frame index). The schedule is materialised sequentially from the config
// seed; every per-frame decision additionally owns an independent child
// RNG stream (exec::child_seed keyed by the frame index) for point-level
// randomness, so the same plan replays bit-identically for any thread
// count and any consumption order. Severity scaling uses common random
// numbers: the per-frame uniforms are drawn unconditionally and compared
// against severity-scaled thresholds, so the set of frames dropped at
// severity s is a subset of the set dropped at severity s' > s.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "pointcloud/point.hpp"
#include "radar/sensor.hpp"

namespace gp::faults {

// ------------------------------------------------------------------ config

/// Fault families, one per injection mechanism. `preset()` builds a config
/// exercising exactly one family at a given severity.
enum class FaultKind {
  kFrameDrop,    ///< i.i.d. frame loss (UART frame drops)
  kBurstDrop,    ///< bursty loss via a Gilbert–Elliott two-state channel
  kDutyCycle,    ///< periodic sensor dropout (thermal duty cycling)
  kInterference, ///< ghost/clutter point storms (co-channel interference)
  kTruncation,   ///< point clouds truncated mid-frame (DMA underrun)
  kJitter,       ///< timestamp jitter + neighbour reordering
};

const char* fault_kind_name(FaultKind kind);
const std::vector<FaultKind>& all_fault_kinds();

/// All mechanisms in one config; a zeroed config is the identity (and the
/// injector's off path performs no work at all — see FaultInjector).
struct FaultConfig {
  std::uint64_t seed = 0xFA17u;  ///< schedule seed (drives every decision)

  // i.i.d. frame drops.
  double drop_prob = 0.0;  ///< per-frame loss probability

  // Gilbert–Elliott bursty channel: good->bad with prob burst_enter,
  // bad->good with prob burst_exit; in the bad state frames drop with
  // burst_drop_prob.
  double burst_enter = 0.0;
  double burst_exit = 0.25;
  double burst_drop_prob = 0.9;

  // Duty-cycle dropout: every `dutycycle_period` frames the sensor goes
  // dark for `dutycycle_off` frames (0 period disables).
  std::size_t dutycycle_period = 0;
  std::size_t dutycycle_off = 0;

  // Interference storms: with interference_prob a frame gains a storm of
  // ghost points (count ~ U[0.5, 1.5] * interference_points) scattered over
  // the sensing volume.
  double interference_prob = 0.0;
  std::size_t interference_points = 40;

  // Truncation: with truncation_prob a frame keeps only the first
  // truncation_keep fraction of its points.
  double truncation_prob = 0.0;
  double truncation_keep = 0.35;

  // Timing faults: Gaussian timestamp jitter (seconds) plus neighbour
  // swaps with reorder_prob (sequence mode only; a streaming consumer has
  // no lookahead to reorder with).
  double jitter_sigma_s = 0.0;
  double reorder_prob = 0.0;

  /// True when any mechanism can fire.
  bool enabled() const;

  /// Config exercising exactly one fault family, scaled by severity in
  /// [0, 1] (0 = identity, 1 = the family's worst case).
  static FaultConfig preset(FaultKind kind, double severity,
                            std::uint64_t seed = 0xFA17u);

  /// Every family at once, each scaled by `severity` (the live-demo mode).
  static FaultConfig mixed(double severity, std::uint64_t seed = 0xFA17u);

  /// Parses a "key=value,key=value" spec, e.g.
  ///   "drop=0.2,ghost=0.3,trunc=0.1,jitter=0.02,seed=7"
  /// Keys: drop, burst, burst_exit, burst_drop, duty_period, duty_off,
  /// ghost, ghost_points, trunc, trunc_keep, jitter, reorder, seed, and
  /// `mixed=<severity>` as shorthand for mixed(). Throws InvalidArgument on
  /// unknown keys or malformed numbers.
  static FaultConfig from_spec(const std::string& spec);

  /// Config from the GP_FAULTS environment variable (from_spec syntax);
  /// nullopt when unset or empty.
  static std::optional<FaultConfig> from_env();
};

// -------------------------------------------------------------------- plan

/// Per-frame fault decision, fully determined at plan time.
struct FrameFault {
  bool drop = false;             ///< frame never reaches the consumer
  bool truncate = false;
  double keep_fraction = 1.0;    ///< applied when truncate is set
  std::uint32_t ghost_points = 0;
  double jitter_s = 0.0;         ///< added to the timestamp
  bool swap_with_next = false;   ///< sequence mode: swap with successor
  std::uint64_t point_seed = 0;  ///< child stream for point-level noise
};

/// Materialised fault schedule over frame indices [0, horizon). The
/// schedule extends on demand (sequentially, so the Gilbert–Elliott chain
/// state is well-defined) and is bitwise identical for a given config.
class FaultPlan {
 public:
  explicit FaultPlan(FaultConfig config, std::size_t initial_horizon = 0);

  /// The decision for `frame_index`, extending the schedule if needed.
  const FrameFault& at(std::size_t frame_index);

  /// Extends the schedule to cover [0, n).
  void ensure(std::size_t n);
  std::size_t horizon() const { return frames_.size(); }
  const FaultConfig& config() const { return config_; }

  /// Plan-level tallies over [0, n) (extends if needed). Tests compare
  /// these against the gp::obs fault counters after a run.
  struct Totals {
    std::uint64_t drops = 0;
    std::uint64_t truncated = 0;
    std::uint64_t ghost_points = 0;
    std::uint64_t jittered = 0;
    std::uint64_t reordered = 0;
  };
  Totals totals(std::size_t n);

  /// FNV-1a digest of the schedule over [0, n) — the replay-determinism
  /// oracle: same config => same digest, on any thread count.
  std::uint64_t schedule_digest(std::size_t n);

 private:
  void extend_to(std::size_t n);

  FaultConfig config_;
  bool burst_bad_ = false;  ///< Gilbert–Elliott channel state
  std::vector<FrameFault> frames_;
};

// ---------------------------------------------------------------- injector

/// Applies a FaultPlan to a frame stream. Streaming consumers call
/// apply(frame); whole recordings go through apply_sequence(), which
/// additionally honours reordering (needs lookahead). Every injected fault
/// is counted through gp::obs (gp.faults.*) and tallied locally.
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config);

  /// nullopt when the frame is dropped; otherwise the (possibly corrupted)
  /// frame. Keyed by frame.frame_index, so gaps in the input indexing are
  /// handled consistently. With a disabled config this is a single branch
  /// and the frame is passed through untouched.
  std::optional<FrameCloud> apply(const FrameCloud& frame);

  /// Whole-recording application (drops removed, swaps applied).
  FrameSequence apply_sequence(const FrameSequence& frames);

  const FaultConfig& config() const { return plan_.config(); }
  FaultPlan& plan() { return plan_; }

  /// Local tallies of what was actually injected (independent of
  /// GP_METRICS, so tests can assert against plan totals cheaply).
  struct Counts {
    std::uint64_t frames_seen = 0;
    std::uint64_t frames_dropped = 0;
    std::uint64_t frames_truncated = 0;
    std::uint64_t ghost_points = 0;
    std::uint64_t frames_jittered = 0;
    std::uint64_t frames_reordered = 0;
    std::uint64_t points_removed = 0;
  };
  const Counts& counts() const { return counts_; }
  void reset_counts() { counts_ = Counts{}; }

 private:
  FrameCloud corrupt(const FrameCloud& frame, const FrameFault& fault);

  FaultPlan plan_;
  bool enabled_ = false;
  Counts counts_;
};

// -------------------------------------------------- radar sensor decorator

/// RadarSensor decorator: observes through the wrapped sensor, then runs
/// the result through a FaultInjector — the drop-in way to feed any
/// existing consumer a degraded stream. Keeps the RadarSensor interface
/// (observe / observe_frame) so call sites swap without restructuring.
class FaultyRadarSensor {
 public:
  FaultyRadarSensor(RadarSensor inner, FaultConfig faults);

  /// Faulty observation of a gesture performance: frames the plan drops
  /// are *removed* from the sequence (the consumer sees index gaps, as a
  /// real lossy link would deliver).
  FrameSequence observe(const SceneSequence& scene, Rng& rng);

  /// Single-frame path; nullopt when the plan drops the frame.
  std::optional<FrameCloud> observe_frame(const SceneFrame& frame, Rng& rng);

  const RadarSensor& inner() const { return inner_; }
  FaultInjector& injector() { return injector_; }

 private:
  RadarSensor inner_;
  FaultInjector injector_;
};

// ------------------------------------------------- artifact bit corruption

/// Flips `flips` pseudo-random bits (seed-deterministic positions) in
/// blob[offset, size). Offset defaults past a 4-byte tag + version byte so
/// corruption lands in the payload, exercising the hardened readers rather
/// than only the tag check. No-op on blobs shorter than offset + 1.
void flip_bits(std::string& blob, std::size_t flips, std::uint64_t seed,
               std::size_t offset = 5);

/// Reads the file, flips bits, writes it back. Returns false (leaving the
/// file untouched) when the file cannot be read or rewritten.
bool corrupt_file(const std::string& path, std::size_t flips, std::uint64_t seed);

}  // namespace gp::faults
