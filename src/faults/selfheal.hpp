// Self-healing IO primitives (gp::faults, DESIGN.md §7).
//
// Policy for corrupt on-disk artifacts (dataset caches, model files):
// *quarantine and regenerate, never abort, never destroy evidence*. A file
// that fails its typed decode is renamed aside with a ".quarantine" suffix
// (so the corrupt bytes stay available for a post-mortem), one warning is
// logged, and the caller rebuilds the artifact from source. Transient IO
// errors (EBUSY-style open failures, partial writes on flaky storage) are
// retried with exponential backoff before being treated as real.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>

#include "common/error.hpp"

namespace gp::faults {

/// Suffix appended to quarantined files.
inline constexpr const char* kQuarantineSuffix = ".quarantine";

/// Moves `path` to `path + ".quarantine"`, replacing any previous
/// quarantine of the same file (the newest corruption is the interesting
/// one). Returns the quarantine path, or an empty string when the rename
/// failed (e.g. the file vanished); never throws.
std::string quarantine_file(const std::string& path) noexcept;

/// Retry schedule for transient IO: `attempts` tries total, sleeping
/// base_backoff_ms * 2^k between consecutive tries. The defaults keep the
/// worst-case added latency to ~6 ms — cheap insurance on the cold path.
///
/// `deadline_ms` is an optional *total* wall-clock budget across all
/// attempts (0 = unlimited). The budget is checked before each retry —
/// once it is exhausted a gp::TimeoutError wrapping the last failure is
/// thrown instead of sleeping into another attempt, so a caller holding a
/// latency SLO (the cluster router's per-link RPCs) gets a typed, bounded
/// failure rather than the full exponential tail.
struct RetryPolicy {
  std::size_t attempts = 3;
  double base_backoff_ms = 2.0;
  std::uint64_t deadline_ms = 0;  ///< total budget across attempts; 0 = none
};

/// Runs `fn` under the retry policy. A gp::Error from `fn` triggers a
/// backoff and another attempt; the final attempt's error propagates.
/// Returns fn()'s value. Only gp::Error is retried — std::bad_alloc and
/// friends are not transient and escape immediately. SerializationError is
/// *also* not retried: corrupt bytes stay corrupt no matter how often they
/// are re-read, so it escapes at once for the caller to quarantine.
/// With a deadline budget, retries stop early with gp::TimeoutError once
/// elapsed + the next backoff would overrun `deadline_ms`.
template <typename Fn>
auto with_retries(const RetryPolicy& policy, Fn&& fn) -> decltype(fn()) {
  using Clock = std::chrono::steady_clock;
  const std::size_t attempts = policy.attempts == 0 ? 1 : policy.attempts;
  const Clock::time_point start = Clock::now();
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      return fn();
    } catch (const SerializationError&) {
      throw;  // corruption is deterministic, not transient
    } catch (const Error& e) {
      if (attempt + 1 >= attempts) throw;
      const double ms = policy.base_backoff_ms * static_cast<double>(1ULL << attempt);
      if (policy.deadline_ms > 0) {
        const double elapsed_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - start).count();
        if (elapsed_ms + ms > static_cast<double>(policy.deadline_ms)) {
          throw TimeoutError("retry deadline budget (" +
                             std::to_string(policy.deadline_ms) +
                             " ms) exhausted after " + std::to_string(attempt + 1) +
                             " attempt(s); last error: " + e.what());
        }
      }
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<long>(ms * 1000.0)));
    }
  }
}

}  // namespace gp::faults
