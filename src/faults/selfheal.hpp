// Self-healing IO primitives (gp::faults, DESIGN.md §7).
//
// Policy for corrupt on-disk artifacts (dataset caches, model files):
// *quarantine and regenerate, never abort, never destroy evidence*. A file
// that fails its typed decode is renamed aside with a ".quarantine" suffix
// (so the corrupt bytes stay available for a post-mortem), one warning is
// logged, and the caller rebuilds the artifact from source. Transient IO
// errors (EBUSY-style open failures, partial writes on flaky storage) are
// retried with exponential backoff before being treated as real.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <thread>

#include "common/error.hpp"

namespace gp::faults {

/// Suffix appended to quarantined files.
inline constexpr const char* kQuarantineSuffix = ".quarantine";

/// Moves `path` to `path + ".quarantine"`, replacing any previous
/// quarantine of the same file (the newest corruption is the interesting
/// one). Returns the quarantine path, or an empty string when the rename
/// failed (e.g. the file vanished); never throws.
std::string quarantine_file(const std::string& path) noexcept;

/// Retry schedule for transient IO: `attempts` tries total, sleeping
/// base_backoff_ms * 2^k between consecutive tries. The defaults keep the
/// worst-case added latency to ~6 ms — cheap insurance on the cold path.
struct RetryPolicy {
  std::size_t attempts = 3;
  double base_backoff_ms = 2.0;
};

/// Runs `fn` under the retry policy. A gp::Error from `fn` triggers a
/// backoff and another attempt; the final attempt's error propagates.
/// Returns fn()'s value. Only gp::Error is retried — std::bad_alloc and
/// friends are not transient and escape immediately. SerializationError is
/// *also* not retried: corrupt bytes stay corrupt no matter how often they
/// are re-read, so it escapes at once for the caller to quarantine.
template <typename Fn>
auto with_retries(const RetryPolicy& policy, Fn&& fn) -> decltype(fn()) {
  const std::size_t attempts = policy.attempts == 0 ? 1 : policy.attempts;
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      return fn();
    } catch (const SerializationError&) {
      throw;  // corruption is deterministic, not transient
    } catch (const Error&) {
      if (attempt + 1 >= attempts) throw;
      const double ms = policy.base_backoff_ms * static_cast<double>(1ULL << attempt);
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<long>(ms * 1000.0)));
    }
  }
}

}  // namespace gp::faults
