#include "faults/selfheal.hpp"

#include <filesystem>

#include "obs/metrics.hpp"

namespace gp::faults {

std::string quarantine_file(const std::string& path) noexcept {
  const std::string target = path + kQuarantineSuffix;
  std::error_code ec;
  std::filesystem::rename(path, target, ec);  // POSIX rename replaces target
  if (ec) {
    // Cross-device or exotic-filesystem fallback: copy + remove.
    std::filesystem::copy_file(path, target,
                               std::filesystem::copy_options::overwrite_existing, ec);
    if (ec) return {};
    std::filesystem::remove(path, ec);
  }
  GP_COUNTER_ADD("gp.faults.files_quarantined", 1);
  return target;
}

}  // namespace gp::faults
