#include "faults/faults.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/fnv.hpp"
#include "exec/exec.hpp"
#include "obs/metrics.hpp"

namespace gp::faults {

namespace {

double clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

/// Canonical FNV-1a (common/fnv.hpp); all schedule values are deterministic,
/// so raw IEEE bits are a stable digest basis.
struct Fnv {
  std::uint64_t h = fnv::kOffsetBasis;
  void bytes(const void* data, std::size_t n) { h = fnv::accumulate(h, data, n); }
  template <typename T>
  void value(const T& v) {
    h = fnv::accumulate_value(h, v);
  }
};

}  // namespace

// ------------------------------------------------------------------ config

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFrameDrop: return "frame_drop";
    case FaultKind::kBurstDrop: return "burst_drop";
    case FaultKind::kDutyCycle: return "duty_cycle";
    case FaultKind::kInterference: return "interference";
    case FaultKind::kTruncation: return "truncation";
    case FaultKind::kJitter: return "jitter";
  }
  return "?";
}

const std::vector<FaultKind>& all_fault_kinds() {
  static const std::vector<FaultKind> kinds{
      FaultKind::kFrameDrop,    FaultKind::kBurstDrop,  FaultKind::kDutyCycle,
      FaultKind::kInterference, FaultKind::kTruncation, FaultKind::kJitter,
  };
  return kinds;
}

bool FaultConfig::enabled() const {
  return drop_prob > 0.0 || burst_enter > 0.0 ||
         (dutycycle_period > 0 && dutycycle_off > 0) || interference_prob > 0.0 ||
         truncation_prob > 0.0 || jitter_sigma_s > 0.0 || reorder_prob > 0.0;
}

FaultConfig FaultConfig::preset(FaultKind kind, double severity, std::uint64_t seed) {
  const double s = clamp01(severity);
  FaultConfig config;
  config.seed = seed;
  switch (kind) {
    case FaultKind::kFrameDrop:
      config.drop_prob = 0.6 * s;
      break;
    case FaultKind::kBurstDrop:
      config.burst_enter = 0.10 * s;
      config.burst_exit = 0.25;
      config.burst_drop_prob = 0.9;
      break;
    case FaultKind::kDutyCycle:
      config.dutycycle_period = 40;
      config.dutycycle_off = static_cast<std::size_t>(std::lround(20.0 * s));
      break;
    case FaultKind::kInterference:
      config.interference_prob = 0.5 * s;
      config.interference_points = 50;
      break;
    case FaultKind::kTruncation:
      config.truncation_prob = 0.8 * s;
      config.truncation_keep = std::max(0.05, 1.0 - 0.75 * s);
      break;
    case FaultKind::kJitter:
      config.jitter_sigma_s = 0.05 * s;
      config.reorder_prob = 0.3 * s;
      break;
  }
  return config;
}

FaultConfig FaultConfig::mixed(double severity, std::uint64_t seed) {
  const double s = clamp01(severity);
  FaultConfig config;
  config.seed = seed;
  config.drop_prob = 0.25 * s;
  config.burst_enter = 0.04 * s;
  config.interference_prob = 0.2 * s;
  config.interference_points = 40;
  config.truncation_prob = 0.3 * s;
  config.truncation_keep = std::max(0.05, 1.0 - 0.6 * s);
  config.jitter_sigma_s = 0.02 * s;
  config.reorder_prob = 0.1 * s;
  return config;
}

FaultConfig FaultConfig::from_spec(const std::string& spec) {
  FaultConfig config;
  std::istringstream in(spec);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    const auto eq = token.find('=');
    check_arg(eq != std::string::npos && eq > 0,
              "GP_FAULTS token is not key=value: '" + token + "'");
    const std::string key = token.substr(0, eq);
    const std::string raw = token.substr(eq + 1);
    double value = 0.0;
    try {
      std::size_t used = 0;
      value = std::stod(raw, &used);
      check_arg(used == raw.size(), "trailing junk");
    } catch (const std::exception&) {
      throw InvalidArgument("GP_FAULTS value for '" + key + "' is not a number: '" + raw +
                            "'");
    }
    if (key == "seed") {
      config.seed = static_cast<std::uint64_t>(value);
    } else if (key == "mixed") {
      config = mixed(value, config.seed);
    } else if (key == "drop") {
      config.drop_prob = value;
    } else if (key == "burst") {
      config.burst_enter = value;
    } else if (key == "burst_exit") {
      config.burst_exit = value;
    } else if (key == "burst_drop") {
      config.burst_drop_prob = value;
    } else if (key == "duty_period") {
      config.dutycycle_period = static_cast<std::size_t>(value);
    } else if (key == "duty_off") {
      config.dutycycle_off = static_cast<std::size_t>(value);
    } else if (key == "ghost") {
      config.interference_prob = value;
    } else if (key == "ghost_points") {
      config.interference_points = static_cast<std::size_t>(value);
    } else if (key == "trunc") {
      config.truncation_prob = value;
    } else if (key == "trunc_keep") {
      config.truncation_keep = value;
    } else if (key == "jitter") {
      config.jitter_sigma_s = value;
    } else if (key == "reorder") {
      config.reorder_prob = value;
    } else {
      throw InvalidArgument("GP_FAULTS: unknown key '" + key + "'");
    }
  }
  return config;
}

std::optional<FaultConfig> FaultConfig::from_env() {
  const char* v = std::getenv("GP_FAULTS");
  if (v == nullptr || *v == '\0') return std::nullopt;
  const std::string s(v);
  if (s == "off" || s == "0") return std::nullopt;
  return from_spec(s);
}

// -------------------------------------------------------------------- plan

FaultPlan::FaultPlan(FaultConfig config, std::size_t initial_horizon)
    : config_(config) {
  ensure(initial_horizon);
}

void FaultPlan::ensure(std::size_t n) {
  if (n > frames_.size()) extend_to(n);
}

const FrameFault& FaultPlan::at(std::size_t frame_index) {
  ensure(frame_index + 1);
  return frames_[frame_index];
}

void FaultPlan::extend_to(std::size_t n) {
  frames_.reserve(n);
  for (std::size_t i = frames_.size(); i < n; ++i) {
    // One independent child stream per frame with a *fixed draw order*, so
    // every decision is a pure function of (seed, frame index) and the
    // uniforms are shared across severity levels (common random numbers).
    Rng rng(exec::child_seed(config_.seed, i), 0x9E3779B97F4A7C15ULL);
    const double u_drop = rng.uniform();
    const double u_burst_transition = rng.uniform();
    const double u_burst_drop = rng.uniform();
    const double u_truncate = rng.uniform();
    const double u_keep = rng.uniform();
    const double u_ghost = rng.uniform();
    const double u_ghost_count = rng.uniform();
    const double g_jitter = rng.gaussian();
    const double u_reorder = rng.uniform();

    // Gilbert–Elliott channel state marches sequentially over frames.
    if (burst_bad_) {
      if (u_burst_transition < config_.burst_exit) burst_bad_ = false;
    } else {
      if (u_burst_transition < config_.burst_enter) burst_bad_ = true;
    }

    FrameFault fault;
    fault.point_seed = exec::child_seed(config_.seed ^ 0xC0FFEEULL, i);
    bool drop = u_drop < config_.drop_prob;
    if (burst_bad_ && u_burst_drop < config_.burst_drop_prob) drop = true;
    if (config_.dutycycle_period > 0 && config_.dutycycle_off > 0 &&
        i % config_.dutycycle_period < config_.dutycycle_off) {
      drop = true;
    }
    fault.drop = drop;
    if (!drop) {
      if (u_truncate < config_.truncation_prob) {
        fault.truncate = true;
        fault.keep_fraction = std::min(
            1.0, std::max(0.05, config_.truncation_keep * (0.75 + 0.5 * u_keep)));
      }
      if (u_ghost < config_.interference_prob) {
        fault.ghost_points = static_cast<std::uint32_t>(std::lround(
            static_cast<double>(config_.interference_points) * (0.5 + u_ghost_count)));
      }
      if (config_.jitter_sigma_s > 0.0) fault.jitter_s = g_jitter * config_.jitter_sigma_s;
      fault.swap_with_next = u_reorder < config_.reorder_prob;
    }
    frames_.push_back(fault);
  }
}

FaultPlan::Totals FaultPlan::totals(std::size_t n) {
  ensure(n);
  Totals t;
  for (std::size_t i = 0; i < n; ++i) {
    const FrameFault& f = frames_[i];
    t.drops += f.drop ? 1 : 0;
    t.truncated += f.truncate ? 1 : 0;
    t.ghost_points += f.ghost_points;
    t.jittered += f.jitter_s != 0.0 ? 1 : 0;
    t.reordered += f.swap_with_next ? 1 : 0;
  }
  return t;
}

std::uint64_t FaultPlan::schedule_digest(std::size_t n) {
  ensure(n);
  Fnv fnv;
  for (std::size_t i = 0; i < n; ++i) {
    const FrameFault& f = frames_[i];
    fnv.value(f.drop);
    fnv.value(f.truncate);
    fnv.value(f.keep_fraction);
    fnv.value(f.ghost_points);
    fnv.value(f.jitter_s);
    fnv.value(f.swap_with_next);
    fnv.value(f.point_seed);
  }
  return fnv.h;
}

// ---------------------------------------------------------------- injector

FaultInjector::FaultInjector(FaultConfig config)
    : plan_(config), enabled_(config.enabled()) {}

FrameCloud FaultInjector::corrupt(const FrameCloud& frame, const FrameFault& fault) {
  FrameCloud out = frame;
  if (fault.truncate) {
    const auto keep = static_cast<std::size_t>(std::ceil(
        static_cast<double>(out.points.size()) * fault.keep_fraction));
    if (keep < out.points.size()) {
      counts_.points_removed += out.points.size() - keep;
      out.points.resize(keep);
    }
    ++counts_.frames_truncated;
    GP_COUNTER_ADD("gp.faults.frames_truncated", 1);
  }
  if (fault.ghost_points > 0) {
    Rng ghost_rng(fault.point_seed, 0xD15EA5EDULL);
    out.points.reserve(out.points.size() + fault.ghost_points);
    for (std::uint32_t g = 0; g < fault.ghost_points; ++g) {
      RadarPoint p;
      p.position.x = ghost_rng.uniform(-1.5, 1.5);
      p.position.y = ghost_rng.uniform(0.3, 4.0);
      p.position.z = ghost_rng.uniform(-0.5, 1.5);
      p.velocity = ghost_rng.uniform(-2.0, 2.0);
      p.snr_db = ghost_rng.uniform(5.0, 25.0);
      p.frame = out.frame_index;
      out.points.push_back(p);
    }
    counts_.ghost_points += fault.ghost_points;
    GP_COUNTER_ADD("gp.faults.ghost_points", fault.ghost_points);
  }
  if (fault.jitter_s != 0.0) {
    out.timestamp += fault.jitter_s;
    ++counts_.frames_jittered;
    GP_COUNTER_ADD("gp.faults.frames_jittered", 1);
  }
  return out;
}

std::optional<FrameCloud> FaultInjector::apply(const FrameCloud& frame) {
  if (!enabled_) return frame;  // zero-overhead off path: one branch, no plan
  ++counts_.frames_seen;
  const FrameFault& fault =
      plan_.at(static_cast<std::size_t>(std::max(0, frame.frame_index)));
  if (fault.drop) {
    ++counts_.frames_dropped;
    GP_COUNTER_ADD("gp.faults.frames_dropped", 1);
    return std::nullopt;
  }
  return corrupt(frame, fault);
}

FrameSequence FaultInjector::apply_sequence(const FrameSequence& frames) {
  if (!enabled_) return frames;
  FrameSequence out;
  out.reserve(frames.size());
  for (const FrameCloud& frame : frames) {
    if (auto survived = apply(frame)) out.push_back(std::move(*survived));
  }
  // Reordering pass over the *delivered* stream: a swap flagged on a
  // delivered frame exchanges it with its delivered successor. Flags are
  // resolved against the pre-swap order and the partner is skipped, so each
  // flag yields at most one adjacent transposition (no bubbling cascades).
  std::vector<char> swap_here(out.size(), 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const FrameFault& fault =
        plan_.at(static_cast<std::size_t>(std::max(0, out[i].frame_index)));
    swap_here[i] = fault.swap_with_next ? 1 : 0;
  }
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    if (swap_here[i]) {
      std::swap(out[i], out[i + 1]);
      ++counts_.frames_reordered;
      GP_COUNTER_ADD("gp.faults.frames_reordered", 1);
      ++i;  // the swapped-forward partner keeps its original position's fate
    }
  }
  return out;
}

// -------------------------------------------------- radar sensor decorator

FaultyRadarSensor::FaultyRadarSensor(RadarSensor inner, FaultConfig faults)
    : inner_(std::move(inner)), injector_(faults) {}

FrameSequence FaultyRadarSensor::observe(const SceneSequence& scene, Rng& rng) {
  return injector_.apply_sequence(inner_.observe(scene, rng));
}

std::optional<FrameCloud> FaultyRadarSensor::observe_frame(const SceneFrame& frame,
                                                           Rng& rng) {
  return injector_.apply(inner_.observe_frame(frame, rng));
}

// ------------------------------------------------- artifact bit corruption

void flip_bits(std::string& blob, std::size_t flips, std::uint64_t seed,
               std::size_t offset) {
  if (blob.size() <= offset) return;
  Rng rng(seed, 0xB17F11B5ULL);
  for (std::size_t i = 0; i < flips; ++i) {
    const std::size_t pos = offset + rng.index(blob.size() - offset);
    const auto bit = static_cast<unsigned char>(1u << rng.index(8));
    blob[pos] = static_cast<char>(static_cast<unsigned char>(blob[pos]) ^ bit);
  }
}

bool corrupt_file(const std::string& path, std::size_t flips, std::uint64_t seed) {
  std::string blob;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    blob = buf.str();
  }
  flip_bits(blob, flips, seed);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  return static_cast<bool>(out);
}

}  // namespace gp::faults
