// Exact t-SNE (van der Maaten & Hinton 2008) for the feature-space study
// (Fig. 6), plus the silhouette score used to quantify how cleanly the
// embedded classes cluster. O(n^2) — fine for the few hundred samples the
// figure uses.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "nn/tensor.hpp"

namespace gp {

struct TsneConfig {
  double perplexity = 20.0;
  std::size_t iterations = 400;
  double learning_rate = 100.0;
  double early_exaggeration = 4.0;
  std::size_t exaggeration_iters = 80;
  double momentum = 0.5;
  double final_momentum = 0.8;
  std::size_t momentum_switch = 120;
};

/// Embeds rows of `features` into 2-D. Returns an (n x 2) tensor.
nn::Tensor tsne(const nn::Tensor& features, const TsneConfig& config, Rng& rng);

/// Mean silhouette coefficient of a labelled embedding in [-1, 1];
/// higher = tighter, better-separated clusters.
double silhouette_score(const nn::Tensor& embedding, const std::vector<int>& labels);

}  // namespace gp
