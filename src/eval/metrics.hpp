// Classification evaluation metrics matching §VI-A3: accuracy, macro
// F1-score, macro one-vs-rest AUC, and the confusion matrix they derive
// from.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/tensor.hpp"

namespace gp {

/// Row-major confusion matrix: entry (truth, prediction).
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  void add(int truth, int prediction);
  std::size_t at(std::size_t truth, std::size_t prediction) const;
  std::size_t num_classes() const { return num_classes_; }
  std::size_t total() const { return total_; }

  double accuracy() const;
  /// Per-class F1; classes absent from truth and predictions score 0.
  std::vector<double> per_class_f1() const;
  /// Macro-averaged F1 over classes present in the truth labels.
  double macro_f1() const;

 private:
  std::size_t num_classes_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

ConfusionMatrix build_confusion(const std::vector<int>& truth,
                                const std::vector<int>& predictions,
                                std::size_t num_classes);

/// Macro one-vs-rest ROC AUC from class probability rows (Mann–Whitney /
/// rank formulation; ties counted half).
double macro_auc(const nn::Tensor& probabilities, const std::vector<int>& truth);

}  // namespace gp
