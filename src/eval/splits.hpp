// Train/test splitting and k-fold cross-validation (§V: 8:2 split with
// 5-fold cross-validation), stratified by label so every class appears in
// every fold.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace gp {

struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Stratified holdout: `test_fraction` of each class goes to the test set.
Split stratified_split(const std::vector<int>& labels, double test_fraction, Rng& rng);

/// Stratified k folds; fold i's indices are the test set of split i.
std::vector<Split> stratified_kfold(const std::vector<int>& labels, std::size_t k, Rng& rng);

}  // namespace gp
