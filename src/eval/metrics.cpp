#include "eval/metrics.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gp {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : num_classes_(num_classes), counts_(num_classes * num_classes, 0) {
  check_arg(num_classes >= 2, "confusion matrix needs >= 2 classes");
}

void ConfusionMatrix::add(int truth, int prediction) {
  check_arg(truth >= 0 && static_cast<std::size_t>(truth) < num_classes_, "truth out of range");
  check_arg(prediction >= 0 && static_cast<std::size_t>(prediction) < num_classes_,
            "prediction out of range");
  ++counts_[static_cast<std::size_t>(truth) * num_classes_ + static_cast<std::size_t>(prediction)];
  ++total_;
}

std::size_t ConfusionMatrix::at(std::size_t truth, std::size_t prediction) const {
  return counts_[truth * num_classes_ + prediction];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t c = 0; c < num_classes_; ++c) correct += at(c, c);
  return static_cast<double>(correct) / static_cast<double>(total_);
}

std::vector<double> ConfusionMatrix::per_class_f1() const {
  std::vector<double> f1(num_classes_, 0.0);
  for (std::size_t c = 0; c < num_classes_; ++c) {
    const double tp = static_cast<double>(at(c, c));
    double fp = 0.0;
    double fn = 0.0;
    for (std::size_t o = 0; o < num_classes_; ++o) {
      if (o == c) continue;
      fp += static_cast<double>(at(o, c));
      fn += static_cast<double>(at(c, o));
    }
    const double denom = 2.0 * tp + fp + fn;
    f1[c] = denom > 0.0 ? 2.0 * tp / denom : 0.0;
  }
  return f1;
}

double ConfusionMatrix::macro_f1() const {
  const auto f1 = per_class_f1();
  double acc = 0.0;
  std::size_t present = 0;
  for (std::size_t c = 0; c < num_classes_; ++c) {
    std::size_t support = 0;
    for (std::size_t o = 0; o < num_classes_; ++o) support += at(c, o);
    if (support > 0) {
      acc += f1[c];
      ++present;
    }
  }
  return present > 0 ? acc / static_cast<double>(present) : 0.0;
}

ConfusionMatrix build_confusion(const std::vector<int>& truth,
                                const std::vector<int>& predictions,
                                std::size_t num_classes) {
  check_arg(truth.size() == predictions.size(), "truth/prediction size mismatch");
  ConfusionMatrix cm(num_classes);
  for (std::size_t i = 0; i < truth.size(); ++i) cm.add(truth[i], predictions[i]);
  return cm;
}

double macro_auc(const nn::Tensor& probabilities, const std::vector<int>& truth) {
  check_arg(probabilities.rows() == truth.size(), "AUC size mismatch");
  const std::size_t classes = probabilities.cols();

  double acc = 0.0;
  std::size_t counted = 0;
  for (std::size_t c = 0; c < classes; ++c) {
    // Rank-based AUC for class c vs rest.
    std::vector<std::pair<double, int>> scored;  // (score, is_positive)
    std::size_t positives = 0;
    for (std::size_t i = 0; i < probabilities.rows(); ++i) {
      const bool pos = truth[i] == static_cast<int>(c);
      positives += pos ? 1 : 0;
      scored.emplace_back(probabilities.at(i, c), pos ? 1 : 0);
    }
    const std::size_t negatives = scored.size() - positives;
    if (positives == 0 || negatives == 0) continue;

    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    // Sum of positive ranks with tie handling (average ranks).
    double rank_sum = 0.0;
    std::size_t i = 0;
    while (i < scored.size()) {
      std::size_t j = i;
      while (j + 1 < scored.size() && scored[j + 1].first == scored[i].first) ++j;
      const double avg_rank = 0.5 * static_cast<double>(i + j) + 1.0;  // 1-based
      for (std::size_t k = i; k <= j; ++k) {
        if (scored[k].second == 1) rank_sum += avg_rank;
      }
      i = j + 1;
    }
    const double p = static_cast<double>(positives);
    const double n = static_cast<double>(negatives);
    acc += (rank_sum - p * (p + 1.0) / 2.0) / (p * n);
    ++counted;
  }
  return counted > 0 ? acc / static_cast<double>(counted) : 0.0;
}

}  // namespace gp
