#include "eval/roc.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gp {

double RocCurve::eer() const {
  check(!points.empty(), "EER of empty ROC curve");
  // Walk the curve looking for the sign change of (FNR - FPR); FNR = 1-TPR.
  double prev_diff = (1.0 - points.front().tpr) - points.front().fpr;
  for (std::size_t i = 1; i < points.size(); ++i) {
    const double diff = (1.0 - points[i].tpr) - points[i].fpr;
    if ((prev_diff >= 0.0 && diff <= 0.0) || (prev_diff <= 0.0 && diff >= 0.0)) {
      const double denom = prev_diff - diff;
      const double t = std::abs(denom) > 1e-12 ? prev_diff / denom : 0.5;
      const double fpr =
          points[i - 1].fpr + t * (points[i].fpr - points[i - 1].fpr);
      const double fnr = (1.0 - points[i - 1].tpr) +
                         t * ((1.0 - points[i].tpr) - (1.0 - points[i - 1].tpr));
      return 0.5 * (fpr + fnr);
    }
    prev_diff = diff;
  }
  // No crossing: report the closest approach.
  double best = 1.0;
  for (const auto& p : points) {
    best = std::min(best, 0.5 * std::abs((1.0 - p.tpr) + p.fpr));
  }
  return best;
}

RocCurve roc_from_scores(const std::vector<double>& genuine,
                         const std::vector<double>& impostor) {
  check_arg(!genuine.empty() && !impostor.empty(), "ROC needs both score sets");

  // Candidate thresholds: every distinct score, processed high -> low.
  std::vector<double> thresholds = genuine;
  thresholds.insert(thresholds.end(), impostor.begin(), impostor.end());
  std::sort(thresholds.begin(), thresholds.end(), std::greater<>());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()), thresholds.end());

  std::vector<double> sorted_genuine = genuine;
  std::vector<double> sorted_impostor = impostor;
  std::sort(sorted_genuine.begin(), sorted_genuine.end(), std::greater<>());
  std::sort(sorted_impostor.begin(), sorted_impostor.end(), std::greater<>());

  RocCurve curve;
  curve.points.reserve(thresholds.size() + 2);
  curve.points.push_back({thresholds.front() + 1.0, 0.0, 0.0});

  std::size_t gi = 0;
  std::size_t ii = 0;
  for (double thr : thresholds) {
    while (gi < sorted_genuine.size() && sorted_genuine[gi] >= thr) ++gi;
    while (ii < sorted_impostor.size() && sorted_impostor[ii] >= thr) ++ii;
    RocPoint p;
    p.threshold = thr;
    p.tpr = static_cast<double>(gi) / static_cast<double>(sorted_genuine.size());
    p.fpr = static_cast<double>(ii) / static_cast<double>(sorted_impostor.size());
    curve.points.push_back(p);
  }
  curve.points.push_back({thresholds.back() - 1.0, 1.0, 1.0});

  // Trapezoidal AUC over the (fpr, tpr) polyline.
  double auc = 0.0;
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    const double dx = curve.points[i].fpr - curve.points[i - 1].fpr;
    auc += dx * 0.5 * (curve.points[i].tpr + curve.points[i - 1].tpr);
  }
  curve.auc = auc;
  return curve;
}

RocCurve roc_from_probabilities(const nn::Tensor& probabilities, const std::vector<int>& truth) {
  check_arg(probabilities.rows() == truth.size(), "ROC probability size mismatch");
  std::vector<double> genuine;
  std::vector<double> impostor;
  for (std::size_t i = 0; i < probabilities.rows(); ++i) {
    for (std::size_t c = 0; c < probabilities.cols(); ++c) {
      const double score = probabilities.at(i, c);
      if (static_cast<int>(c) == truth[i]) {
        genuine.push_back(score);
      } else {
        impostor.push_back(score);
      }
    }
  }
  return roc_from_scores(genuine, impostor);
}

}  // namespace gp
