#include "eval/splits.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace gp {

namespace {

std::map<int, std::vector<std::size_t>> by_class(const std::vector<int>& labels, Rng& rng) {
  std::map<int, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < labels.size(); ++i) groups[labels[i]].push_back(i);
  for (auto& [label, indices] : groups) rng.shuffle(indices);
  return groups;
}

}  // namespace

Split stratified_split(const std::vector<int>& labels, double test_fraction, Rng& rng) {
  check_arg(!labels.empty(), "split of empty label list");
  check_arg(test_fraction > 0.0 && test_fraction < 1.0, "test fraction must be in (0,1)");

  Split split;
  for (auto& [label, indices] : by_class(labels, rng)) {
    const auto test_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(test_fraction * static_cast<double>(indices.size())));
    check(test_count < indices.size(), "class too small to split");
    for (std::size_t i = 0; i < indices.size(); ++i) {
      (i < test_count ? split.test : split.train).push_back(indices[i]);
    }
  }
  rng.shuffle(split.train);
  rng.shuffle(split.test);
  return split;
}

std::vector<Split> stratified_kfold(const std::vector<int>& labels, std::size_t k, Rng& rng) {
  check_arg(k >= 2, "k-fold needs k >= 2");
  check_arg(!labels.empty(), "k-fold of empty label list");

  std::vector<std::vector<std::size_t>> folds(k);
  for (auto& [label, indices] : by_class(labels, rng)) {
    check(indices.size() >= k, "class smaller than fold count");
    for (std::size_t i = 0; i < indices.size(); ++i) folds[i % k].push_back(indices[i]);
  }

  std::vector<Split> splits(k);
  for (std::size_t f = 0; f < k; ++f) {
    splits[f].test = folds[f];
    for (std::size_t o = 0; o < k; ++o) {
      if (o == f) continue;
      splits[f].train.insert(splits[f].train.end(), folds[o].begin(), folds[o].end());
    }
    rng.shuffle(splits[f].train);
    rng.shuffle(splits[f].test);
  }
  return splits;
}

}  // namespace gp
