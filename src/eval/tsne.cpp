#include "eval/tsne.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace gp {

namespace {

// Squared Euclidean distances between all rows.
std::vector<double> pairwise_dist2(const nn::Tensor& x) {
  const std::size_t n = x.rows();
  std::vector<double> d2(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      const float* a = x.row(i);
      const float* b = x.row(j);
      for (std::size_t c = 0; c < x.cols(); ++c) {
        const double d = a[c] - b[c];
        acc += d * d;
      }
      d2[i * n + j] = acc;
      d2[j * n + i] = acc;
    }
  }
  return d2;
}

// Binary-search the Gaussian bandwidth of row i to hit the target entropy.
void row_affinities(const std::vector<double>& d2, std::size_t n, std::size_t i,
                    double target_entropy, std::vector<double>& p_row) {
  double beta = 1.0;
  double beta_min = 0.0;
  double beta_max = std::numeric_limits<double>::infinity();

  for (int iter = 0; iter < 60; ++iter) {
    double sum = 0.0;
    double weighted = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) {
        p_row[j] = 0.0;
        continue;
      }
      const double pij = std::exp(-beta * d2[i * n + j]);
      p_row[j] = pij;
      sum += pij;
      weighted += pij * d2[i * n + j];
    }
    if (sum <= 0.0) {
      beta /= 2.0;
      continue;
    }
    const double entropy = std::log(sum) + beta * weighted / sum;
    const double diff = entropy - target_entropy;
    if (std::abs(diff) < 1e-5) break;
    if (diff > 0.0) {
      beta_min = beta;
      beta = std::isinf(beta_max) ? beta * 2.0 : 0.5 * (beta + beta_max);
    } else {
      beta_max = beta;
      beta = 0.5 * (beta + beta_min);
    }
  }
  double sum = 0.0;
  for (std::size_t j = 0; j < n; ++j) sum += p_row[j];
  if (sum > 0.0) {
    for (std::size_t j = 0; j < n; ++j) p_row[j] /= sum;
  }
}

}  // namespace

nn::Tensor tsne(const nn::Tensor& features, const TsneConfig& config, Rng& rng) {
  const std::size_t n = features.rows();
  check_arg(n >= 5, "t-SNE needs at least a handful of rows");
  check_arg(config.perplexity > 1.0 && config.perplexity < static_cast<double>(n),
            "perplexity out of range");

  const auto d2 = pairwise_dist2(features);

  // Symmetrised input affinities P.
  std::vector<double> p(n * n, 0.0);
  {
    std::vector<double> row(n, 0.0);
    const double target_entropy = std::log(config.perplexity);
    for (std::size_t i = 0; i < n; ++i) {
      row_affinities(d2, n, i, target_entropy, row);
      for (std::size_t j = 0; j < n; ++j) p[i * n + j] = row[j];
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double sym = (p[i * n + j] + p[j * n + i]) / (2.0 * static_cast<double>(n));
        p[i * n + j] = std::max(sym, 1e-12);
        p[j * n + i] = p[i * n + j];
      }
      p[i * n + i] = 0.0;
    }
  }

  // Embedding state.
  nn::Tensor y(n, 2);
  y.randn(rng, 1e-2);
  std::vector<double> velocity(n * 2, 0.0);
  std::vector<double> grad(n * 2, 0.0);
  std::vector<double> q(n * n, 0.0);

  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    const double exaggeration = iter < config.exaggeration_iters ? config.early_exaggeration : 1.0;
    const double momentum =
        iter < config.momentum_switch ? config.momentum : config.final_momentum;

    // Student-t affinities Q.
    double q_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double dx = y.at(i, 0) - y.at(j, 0);
        const double dy = y.at(i, 1) - y.at(j, 1);
        const double w = 1.0 / (1.0 + dx * dx + dy * dy);
        q[i * n + j] = w;
        q[j * n + i] = w;
        q_sum += 2.0 * w;
      }
      q[i * n + i] = 0.0;
    }
    q_sum = std::max(q_sum, 1e-12);

    // Gradient: 4 * sum_j (exag*P - Q)_ij * w_ij * (y_i - y_j).
    std::fill(grad.begin(), grad.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double w = q[i * n + j];
        const double qij = w / q_sum;
        const double mult = 4.0 * (exaggeration * p[i * n + j] - qij) * w;
        grad[i * 2 + 0] += mult * (y.at(i, 0) - y.at(j, 0));
        grad[i * 2 + 1] += mult * (y.at(i, 1) - y.at(j, 1));
      }
    }

    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < 2; ++c) {
        velocity[i * 2 + c] =
            momentum * velocity[i * 2 + c] - config.learning_rate * grad[i * 2 + c];
        y.at(i, c) += static_cast<float>(velocity[i * 2 + c]);
      }
    }
  }
  return y;
}

double silhouette_score(const nn::Tensor& embedding, const std::vector<int>& labels) {
  const std::size_t n = embedding.rows();
  check_arg(n == labels.size(), "silhouette size mismatch");
  check_arg(n >= 3, "silhouette needs >= 3 rows");

  const auto d2 = pairwise_dist2(embedding);
  const auto dist = [&](std::size_t i, std::size_t j) { return std::sqrt(d2[i * n + j]); };

  int max_label = 0;
  for (int l : labels) max_label = std::max(max_label, l);
  const std::size_t classes = static_cast<std::size_t>(max_label) + 1;

  double acc = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> sum(classes, 0.0);
    std::vector<std::size_t> count(classes, 0);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      sum[static_cast<std::size_t>(labels[j])] += dist(i, j);
      ++count[static_cast<std::size_t>(labels[j])];
    }
    const auto own = static_cast<std::size_t>(labels[i]);
    if (count[own] == 0) continue;  // singleton cluster: skip
    const double a = sum[own] / static_cast<double>(count[own]);
    double b = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < classes; ++c) {
      if (c == own || count[c] == 0) continue;
      b = std::min(b, sum[c] / static_cast<double>(count[c]));
    }
    if (!std::isfinite(b)) continue;
    acc += (b - a) / std::max(a, b);
    ++counted;
  }
  return counted > 0 ? acc / static_cast<double>(counted) : 0.0;
}

}  // namespace gp
