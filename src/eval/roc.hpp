// ROC curves and Equal Error Rate for the user-identification study
// (Fig. 10). Genuine scores are the classifier's probability for the true
// user; impostor scores are the probabilities assigned to every other user.
#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace gp {

struct RocPoint {
  double threshold = 0.0;
  double fpr = 0.0;  ///< impostor accepted
  double tpr = 0.0;  ///< genuine accepted
};

struct RocCurve {
  std::vector<RocPoint> points;  ///< ordered by decreasing threshold
  double auc = 0.0;

  /// Equal error rate: where FPR == FNR (linear interpolation between the
  /// bracketing curve points).
  double eer() const;
};

/// Builds a ROC curve from raw scores.
RocCurve roc_from_scores(const std::vector<double>& genuine,
                         const std::vector<double>& impostor);

/// Convenience: splits per-class probability rows into genuine/impostor
/// scores and builds the curve.
RocCurve roc_from_probabilities(const nn::Tensor& probabilities, const std::vector<int>& truth);

}  // namespace gp
