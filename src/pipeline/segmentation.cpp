#include "pipeline/segmentation.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "obs/metrics.hpp"

namespace gp {

GestureSegmenter::GestureSegmenter(SegmentationParams params) : params_(params) {
  check_arg(params_.threshold_window >= 4, "threshold window too small");
  check_arg(params_.detection_window >= 2, "detection window too small");
  check_arg(params_.min_motion_frames >= 1 &&
                params_.min_motion_frames <= params_.detection_window,
            "min_motion_frames must be within the detection window");
  check_arg(params_.threshold_quantile > 0.0 && params_.threshold_quantile < 1.0,
            "threshold quantile must lie in (0,1)");
  window_states_.assign(params_.detection_window, 0);
  // Fixed-capacity rings: sized once here so the streaming path never
  // grows them again.
  recent_counts_.assign(params_.threshold_window + params_.detection_window, 0);
  threshold_scratch_.reserve(params_.threshold_window);
}

void GestureSegmenter::push_recent_count(std::size_t count) {
  const std::size_t cap = recent_counts_.size();
  if (recent_size_ == cap) {
    // At capacity: overwrite the oldest entry — same contents as the old
    // deque's push_back-then-pop_front.
    recent_counts_[recent_start_] = count;
    recent_start_ = (recent_start_ + 1) % cap;
  } else {
    recent_counts_[(recent_start_ + recent_size_) % cap] = count;
    ++recent_size_;
  }
  threshold_dirty_ = true;
}

std::size_t GestureSegmenter::current_threshold() const {
  // Exclude the newest n entries: they may be a gesture onset that has not
  // crossed the F_Thr detection bar yet.
  if (recent_size_ <= params_.detection_window) return params_.min_threshold;
  if (threshold_dirty_) {
    const std::size_t used = recent_size_ - params_.detection_window;
    threshold_scratch_.clear();
    for (std::size_t k = 0; k < used; ++k) {
      threshold_scratch_.push_back(static_cast<double>(
          recent_counts_[(recent_start_ + k) % recent_counts_.size()]));
    }
    const double q = quantile_inplace(threshold_scratch_, params_.threshold_quantile);
    const auto dynamic = static_cast<std::size_t>(q) + params_.threshold_margin;
    threshold_cache_ = std::max(params_.min_threshold, dynamic);
    threshold_dirty_ = false;
  }
  return threshold_cache_;
}

bool GestureSegmenter::is_motion_frame(std::size_t point_count) const {
  return point_count >= current_threshold();
}

void GestureSegmenter::reset_window() {
  std::fill(window_states_.begin(), window_states_.end(), 0);
  window_pos_ = 0;
  window_start_ = 0;
  window_count_ = 0;  // slots (and their point buffers) stay for reuse
}

void GestureSegmenter::close_pending() {
  if (!in_gesture_ || pending_.empty()) {
    in_gesture_ = false;
    pending_.clear();
    return;
  }
  // Trim trailing static frames beyond the last motion frame.
  const std::size_t keep =
      std::min(pending_.size(), last_motion_frame_ - gesture_start_ + 1);
  if (keep > 0) {
    Range range;
    range.start_frame = gesture_start_;
    range.end_frame = gesture_start_ + keep - 1;
    range.begin = completed_frames_.size();
    range.count = keep;
    for (std::size_t i = 0; i < keep; ++i) {
      completed_frames_.emplace_back() = pending_[i];  // slot copy: capacity reuse
    }
    ranges_.push_back(range);
  }
  in_gesture_ = false;
  pending_.clear();
}

void GestureSegmenter::push(const FrameView& frame) {
  // Gap-aware hangover: a frame_index jump beyond max_gap_frames means the
  // sensor went dark (dropped frames / duty-cycle dropout). Close the open
  // gesture at the last delivered frame and forget the sliding window so
  // pre-gap motion cannot co-trigger with whatever follows the dropout.
  // Contiguous streams (gap == 0) never enter this branch.
  if (have_last_index_) {
    const long gap = static_cast<long>(frame.frame_index) -
                     static_cast<long>(last_frame_index_) - 1;
    if (gap > static_cast<long>(params_.max_gap_frames)) {
      if (in_gesture_) {
        close_pending();
        GP_COUNTER_ADD("gp.pipeline.gap_closures", 1);
      }
      reset_window();
    }
  }
  have_last_index_ = true;
  last_frame_index_ = frame.frame_index;

  const bool motion = is_motion_frame(frame.points.size());

  // Update the background history AFTER classifying and only outside
  // gestures (a gesture must not inflate its own threshold). The lag in
  // current_threshold() keeps the pre-detection onset frames out of the
  // estimate; sustained clutter-level changes still flow through once they
  // age past the detection window.
  if (!in_gesture_) {
    push_recent_count(frame.points.size());
  }

  // Update the sliding detection window (fixed-size rings: states and the
  // frame copies both overwrite their oldest slot).
  window_states_[window_pos_] = motion ? 1 : 0;
  window_pos_ = (window_pos_ + 1) % params_.detection_window;
  if (window_frames_.size() < params_.detection_window &&
      window_count_ == window_frames_.size()) {
    window_frames_.emplace_back();
  }
  if (window_count_ == params_.detection_window) {
    assign_frame(window_frames_[window_start_], frame);
    window_start_ = (window_start_ + 1) % params_.detection_window;
  } else {
    assign_frame(window_frames_[(window_start_ + window_count_) % window_frames_.size()],
                 frame);
    ++window_count_;
  }

  const std::size_t motion_in_window = static_cast<std::size_t>(
      std::count(window_states_.begin(), window_states_.end(), 1));

  if (!in_gesture_) {
    if (motion_in_window >= params_.min_motion_frames) {
      in_gesture_ = true;
      // Backfill: the gesture started at the first motion frame currently
      // inside the window.
      pending_.clear();
      bool seen_motion = false;
      for (std::size_t k = 0; k < window_count_; ++k) {
        const FrameCloud& wf = window_frame(k);
        const bool wf_motion = wf.points.size() >= current_threshold();
        if (!seen_motion && !wf_motion) continue;
        seen_motion = true;
        pending_.emplace_back() = wf;
      }
      if (pending_.empty()) assign_frame(pending_.emplace_back(), frame);
      gesture_start_ = frames_seen_ + 1 - pending_.size();
      last_motion_frame_ = frames_seen_;
    }
  } else {
    assign_frame(pending_.emplace_back(), frame);
    if (motion) last_motion_frame_ = frames_seen_;

    const bool window_all_static = motion_in_window == 0;
    const bool forced_close = pending_.size() >= params_.max_gesture_frames;
    if (window_all_static || forced_close) {
      // A "gesture" that never ends is sustained clutter, not a gesture:
      // feed its counts back into the background history so the threshold
      // adapts instead of re-triggering forever.
      if (forced_close) {
        for (const FrameCloud& pf : pending_) {
          push_recent_count(pf.points.size());
        }
      }
      close_pending();
    }
  }
  ++frames_seen_;
}

void GestureSegmenter::finish() { close_pending(); }

SegmentView GestureSegmenter::completed_segment(std::size_t i) const {
  check_arg(i < ranges_.size(), "completed_segment index out of range");
  const Range& range = ranges_[i];
  SegmentView view;
  view.start_frame = range.start_frame;
  view.end_frame = range.end_frame;
  view.frames = std::span<const FrameCloud>(&completed_frames_[range.begin], range.count);
  return view;
}

void GestureSegmenter::clear_completed() {
  completed_frames_.clear();  // slot storage survives for the next segment
  ranges_.clear();
}

std::vector<GestureSegment> GestureSegmenter::take_segments() {
  std::vector<GestureSegment> out;
  out.reserve(ranges_.size());
  for (std::size_t i = 0; i < ranges_.size(); ++i) {
    const SegmentView view = completed_segment(i);
    GestureSegment seg;
    seg.start_frame = view.start_frame;
    seg.end_frame = view.end_frame;
    seg.frames.assign(view.frames.begin(), view.frames.end());
    out.push_back(std::move(seg));
  }
  clear_completed();
  return out;
}

std::vector<GestureSegment> GestureSegmenter::segment_all(const FrameSequence& frames,
                                                          SegmentationParams params) {
  GestureSegmenter segmenter(params);
  for (const auto& frame : frames) segmenter.push(frame);
  segmenter.finish();
  return segmenter.take_segments();
}

namespace {

// Frame (de)serialization for the session-handoff state blob. Minimum wire
// footprint of one point: 5 f64 + 1 i32 = 44 bytes, used to validate the
// untrusted point count before any allocation. A frame itself can be empty,
// so the per-frame floor is only its header (index + timestamp + count).
constexpr std::size_t kMinPointBytes = 5 * sizeof(double) + sizeof(std::int32_t);
constexpr std::size_t kMinFrameBytes =
    sizeof(std::int32_t) + sizeof(double) + sizeof(std::uint64_t);

void write_frame(BinaryWriter& w, const FrameCloud& frame) {
  w.write_i32(frame.frame_index);
  w.write_f64(frame.timestamp);
  w.write_u64(frame.points.size());
  for (const RadarPoint& p : frame.points) {
    w.write_f64(p.position.x);
    w.write_f64(p.position.y);
    w.write_f64(p.position.z);
    w.write_f64(p.velocity);
    w.write_f64(p.snr_db);
    w.write_i32(p.frame);
  }
}

void read_frame(BinaryReader& r, FrameCloud& frame) {
  frame.frame_index = r.read_i32();
  frame.timestamp = r.read_f64();
  const std::uint64_t n = r.read_count(kMinPointBytes, "segmenter frame points");
  frame.points.clear();
  frame.points.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    RadarPoint p;
    p.position.x = r.read_f64();
    p.position.y = r.read_f64();
    p.position.z = r.read_f64();
    p.velocity = r.read_f64();
    p.snr_db = r.read_f64();
    p.frame = r.read_i32();
    frame.points.push_back(p);
  }
}

}  // namespace

void GestureSegmenter::save_state(BinaryWriter& w) const {
  check(ranges_.empty(), "GestureSegmenter::save_state: completed segments not drained");
  // Params fingerprint: a restored stream continuing under different
  // segmentation params would silently diverge; make the mismatch typed.
  w.write_u64(params_.threshold_window);
  w.write_u64(params_.detection_window);
  w.write_u64(params_.min_motion_frames);
  w.write_f64(params_.threshold_quantile);
  w.write_u64(params_.threshold_margin);
  w.write_u64(params_.min_threshold);
  w.write_u64(params_.max_gesture_frames);
  w.write_u64(params_.max_gap_frames);

  // Count-history ring, oldest first (canonical: rotation-independent).
  w.write_u64(recent_size_);
  for (std::size_t k = 0; k < recent_size_; ++k) {
    w.write_u64(recent_counts_[(recent_start_ + k) % recent_counts_.size()]);
  }

  // Detection-window state ring, oldest first. window_pos_ is the next
  // overwrite slot, i.e. the oldest entry — start there.
  const std::size_t n = window_states_.size();
  for (std::size_t k = 0; k < n; ++k) {
    w.write_u8(static_cast<std::uint8_t>(window_states_[(window_pos_ + k) % n]));
  }

  w.write_u64(frames_seen_);
  w.write_u8(in_gesture_ ? 1 : 0);
  w.write_u8(have_last_index_ ? 1 : 0);
  w.write_i32(last_frame_index_);
  w.write_u64(gesture_start_);
  w.write_u64(last_motion_frame_);

  w.write_u64(pending_.size());
  for (std::size_t i = 0; i < pending_.size(); ++i) write_frame(w, pending_[i]);

  w.write_u64(window_count_);
  for (std::size_t k = 0; k < window_count_; ++k) write_frame(w, window_frame(k));
}

void GestureSegmenter::load_state(BinaryReader& r) {
  const auto expect_u64 = [&](std::uint64_t expected, const char* what) {
    const std::uint64_t got = r.read_u64();
    if (got != expected) {
      throw SerializationError(std::string("segmenter state: ") + what +
                               " mismatch: saved " + std::to_string(got) +
                               ", restoring segmenter has " + std::to_string(expected));
    }
  };
  expect_u64(params_.threshold_window, "threshold_window");
  expect_u64(params_.detection_window, "detection_window");
  expect_u64(params_.min_motion_frames, "min_motion_frames");
  if (r.read_f64() != params_.threshold_quantile) {
    throw SerializationError("segmenter state: threshold_quantile mismatch");
  }
  expect_u64(params_.threshold_margin, "threshold_margin");
  expect_u64(params_.min_threshold, "min_threshold");
  expect_u64(params_.max_gesture_frames, "max_gesture_frames");
  expect_u64(params_.max_gap_frames, "max_gap_frames");

  const std::uint64_t recent_n = r.read_count(sizeof(std::uint64_t), "recent counts");
  if (recent_n > recent_counts_.size()) {
    throw SerializationError("segmenter state: recent-count ring overflows capacity");
  }
  // Canonical restore: logical content at ring offset 0. A rotation of the
  // ring start is unobservable through push()/current_threshold(), so the
  // restored segmenter behaves bitwise identically to the saved one.
  recent_start_ = 0;
  recent_size_ = static_cast<std::size_t>(recent_n);
  for (std::size_t k = 0; k < recent_size_; ++k) {
    recent_counts_[k] = static_cast<std::size_t>(r.read_u64());
  }
  threshold_dirty_ = true;

  const std::size_t n = window_states_.size();
  for (std::size_t k = 0; k < n; ++k) {
    window_states_[k] = static_cast<char>(r.read_u8() != 0 ? 1 : 0);
  }
  window_pos_ = 0;

  frames_seen_ = static_cast<std::size_t>(r.read_u64());
  in_gesture_ = r.read_u8() != 0;
  have_last_index_ = r.read_u8() != 0;
  last_frame_index_ = r.read_i32();
  gesture_start_ = static_cast<std::size_t>(r.read_u64());
  last_motion_frame_ = static_cast<std::size_t>(r.read_u64());

  const std::uint64_t pending_n = r.read_count(kMinFrameBytes, "pending frames");
  if (pending_n > params_.max_gesture_frames + params_.detection_window) {
    throw SerializationError("segmenter state: pending gesture overflows max length");
  }
  pending_.clear();
  for (std::uint64_t i = 0; i < pending_n; ++i) read_frame(r, pending_.emplace_back());

  const std::uint64_t window_n = r.read_count(kMinFrameBytes, "window frames");
  if (window_n > params_.detection_window) {
    throw SerializationError("segmenter state: window frame count overflows window");
  }
  window_start_ = 0;
  window_count_ = static_cast<std::size_t>(window_n);
  // Keep the lazy-growth invariant (size grows once per early push until it
  // reaches detection_window): size >= count, slots beyond count are spare.
  while (window_frames_.size() < window_count_) window_frames_.emplace_back();
  for (std::size_t k = 0; k < window_count_; ++k) read_frame(r, window_frames_[k]);

  clear_completed();
}

}  // namespace gp
