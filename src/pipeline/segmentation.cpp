#include "pipeline/segmentation.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "obs/metrics.hpp"

namespace gp {

GestureSegmenter::GestureSegmenter(SegmentationParams params) : params_(params) {
  check_arg(params_.threshold_window >= 4, "threshold window too small");
  check_arg(params_.detection_window >= 2, "detection window too small");
  check_arg(params_.min_motion_frames >= 1 &&
                params_.min_motion_frames <= params_.detection_window,
            "min_motion_frames must be within the detection window");
  check_arg(params_.threshold_quantile > 0.0 && params_.threshold_quantile < 1.0,
            "threshold quantile must lie in (0,1)");
  window_states_.assign(params_.detection_window, 0);
}

std::size_t GestureSegmenter::current_threshold() const {
  // Exclude the newest n entries: they may be a gesture onset that has not
  // crossed the F_Thr detection bar yet.
  if (recent_counts_.size() <= params_.detection_window) return params_.min_threshold;
  std::vector<double> counts(recent_counts_.begin(),
                             recent_counts_.end() - static_cast<std::ptrdiff_t>(
                                                        params_.detection_window));
  const double q = quantile(counts, params_.threshold_quantile);
  const auto dynamic =
      static_cast<std::size_t>(q) + params_.threshold_margin;
  return std::max(params_.min_threshold, dynamic);
}

bool GestureSegmenter::is_motion_frame(std::size_t point_count) const {
  return point_count >= current_threshold();
}

void GestureSegmenter::reset_window() {
  std::fill(window_states_.begin(), window_states_.end(), 0);
  window_pos_ = 0;
  window_frames_.clear();
}

void GestureSegmenter::close_pending() {
  if (!in_gesture_ || pending_.empty()) {
    in_gesture_ = false;
    pending_.clear();
    return;
  }
  // Trim trailing static frames beyond the last motion frame.
  const std::size_t keep =
      std::min(pending_.size(), last_motion_frame_ - gesture_start_ + 1);
  if (keep > 0) {
    GestureSegment seg;
    seg.start_frame = gesture_start_;
    seg.end_frame = gesture_start_ + keep - 1;
    seg.frames.assign(pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(keep));
    completed_.push_back(std::move(seg));
  }
  in_gesture_ = false;
  pending_.clear();
}

void GestureSegmenter::push(const FrameCloud& frame) {
  // Gap-aware hangover: a frame_index jump beyond max_gap_frames means the
  // sensor went dark (dropped frames / duty-cycle dropout). Close the open
  // gesture at the last delivered frame and forget the sliding window so
  // pre-gap motion cannot co-trigger with whatever follows the dropout.
  // Contiguous streams (gap == 0) never enter this branch.
  if (have_last_index_) {
    const long gap = static_cast<long>(frame.frame_index) -
                     static_cast<long>(last_frame_index_) - 1;
    if (gap > static_cast<long>(params_.max_gap_frames)) {
      if (in_gesture_) {
        close_pending();
        GP_COUNTER_ADD("gp.pipeline.gap_closures", 1);
      }
      reset_window();
    }
  }
  have_last_index_ = true;
  last_frame_index_ = frame.frame_index;

  const bool motion = is_motion_frame(frame.points.size());

  // Update the background history AFTER classifying and only outside
  // gestures (a gesture must not inflate its own threshold). The lag in
  // current_threshold() keeps the pre-detection onset frames out of the
  // estimate; sustained clutter-level changes still flow through once they
  // age past the detection window.
  if (!in_gesture_) {
    recent_counts_.push_back(frame.points.size());
    if (recent_counts_.size() > params_.threshold_window + params_.detection_window) {
      recent_counts_.pop_front();
    }
  }

  // Update the sliding detection window.
  window_states_[window_pos_] = motion ? 1 : 0;
  window_pos_ = (window_pos_ + 1) % params_.detection_window;
  window_frames_.push_back(frame);
  if (window_frames_.size() > params_.detection_window) {
    window_frames_.erase(window_frames_.begin());
  }

  const std::size_t motion_in_window = static_cast<std::size_t>(
      std::count(window_states_.begin(), window_states_.end(), 1));

  if (!in_gesture_) {
    if (motion_in_window >= params_.min_motion_frames) {
      in_gesture_ = true;
      // Backfill: the gesture started at the first motion frame currently
      // inside the window.
      pending_.clear();
      bool seen_motion = false;
      for (const auto& wf : window_frames_) {
        const bool wf_motion = wf.points.size() >= current_threshold();
        if (!seen_motion && !wf_motion) continue;
        seen_motion = true;
        pending_.push_back(wf);
      }
      if (pending_.empty()) pending_.push_back(frame);
      gesture_start_ = frames_seen_ + 1 - pending_.size();
      last_motion_frame_ = frames_seen_;
    }
  } else {
    pending_.push_back(frame);
    if (motion) last_motion_frame_ = frames_seen_;

    const bool window_all_static = motion_in_window == 0;
    const bool forced_close = pending_.size() >= params_.max_gesture_frames;
    if (window_all_static || forced_close) {
      // A "gesture" that never ends is sustained clutter, not a gesture:
      // feed its counts back into the background history so the threshold
      // adapts instead of re-triggering forever.
      if (forced_close) {
        for (const auto& pf : pending_) {
          recent_counts_.push_back(pf.points.size());
          if (recent_counts_.size() >
              params_.threshold_window + params_.detection_window) {
            recent_counts_.pop_front();
          }
        }
      }
      close_pending();
    }
  }
  ++frames_seen_;
}

void GestureSegmenter::finish() { close_pending(); }

std::vector<GestureSegment> GestureSegmenter::take_segments() {
  std::vector<GestureSegment> out;
  out.swap(completed_);
  return out;
}

std::vector<GestureSegment> GestureSegmenter::segment_all(const FrameSequence& frames,
                                                          SegmentationParams params) {
  GestureSegmenter segmenter(params);
  for (const auto& frame : frames) segmenter.push(frame);
  segmenter.finish();
  return segmenter.take_segments();
}

}  // namespace gp
