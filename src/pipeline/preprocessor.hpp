// End-to-end data preprocessing stage (Fig. 4, left half): point-cloud
// capture is the radar's job; this module chains gesture segmentation ->
// noise canceling -> aggregation and prepares fixed-size model inputs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "pipeline/augmentation.hpp"
#include "pipeline/noise_cancel.hpp"
#include "pipeline/segmentation.hpp"
#include "pointcloud/ops.hpp"
#include "pointcloud/point.hpp"

namespace gp {

/// Typed verdict on a preprocessed segment (graceful-degradation contract:
/// a degraded capture yields a *labelled* low-quality cloud, never an
/// exception and never a silently-classified glitch). Ordered from best to
/// worst so callers can threshold.
enum class SegmentQuality {
  kGood = 0,         ///< passes every guard; safe to classify
  kTooShort,         ///< fewer motion frames than min_frames (glitch/truncated)
  kTooFewPoints,     ///< cleaned cloud below min_points (dropout/truncation)
  kEmpty,            ///< nothing survived noise cancelling
};

const char* segment_quality_name(SegmentQuality quality);

/// A preprocessed gesture: the cleaned aggregated cloud plus timing
/// metadata (used by the duration study and the temporal feature channel).
struct GestureCloud {
  PointCloud points;
  std::size_t num_frames = 0;  ///< motion length in radar frames
  int first_frame = 0;         ///< first motion frame index
  double duration_s = 0.0;
  SegmentQuality quality = SegmentQuality::kGood;  ///< set by process_segment
};

struct PreprocessorParams {
  SegmentationParams segmentation;
  NoiseCancelParams noise;
  double frame_rate = 10.0;
  std::size_t min_points = 8;  ///< segments with fewer points are dropped
  /// Minimum motion duration in frames; shorter segments are single-frame
  /// glitches or truncated captures and are rejected as kTooShort.
  std::size_t min_frames = 2;
};

/// Runs the full preprocessing stage over a recording.
class Preprocessor {
 public:
  /// Reusable working memory for process_segment_into: one per streaming
  /// caller (e.g. serve::StreamSession) keeps segment cleaning
  /// allocation-free once warm.
  struct Scratch {
    PointCloud aggregated;
    NoiseCancelScratch noise;
  };

  explicit Preprocessor(PreprocessorParams params = {});

  std::vector<GestureCloud> process(const FrameSequence& recording) const;

  /// Cleans a known single-gesture segment (used when ground-truth
  /// segmentation is available, e.g. regenerated public datasets). The
  /// returned cloud carries its quality verdict (assess()).
  GestureCloud process_segment(const FrameSequence& segment) const;

  /// Allocation-free streaming variant: identical result written into
  /// `out` (capacity reuse) using caller-owned scratch.
  void process_segment_into(std::span<const FrameCloud> segment, GestureCloud& out,
                            Scratch& scratch) const;

  /// The quality verdict the min-point / min-duration guards assign to a
  /// processed cloud. process() only emits kGood clouds; callers on the
  /// runtime path use this to abstain instead of classifying garbage.
  SegmentQuality assess(const GestureCloud& cloud) const;

  const PreprocessorParams& params() const { return params_; }

 private:
  PreprocessorParams params_;
};

/// Model input layout configuration.
struct FeatureConfig {
  std::size_t num_points = 128;  ///< clouds are resampled to this count
  double velocity_scale = 2.7;   ///< Doppler normalisation (max velocity)
  double snr_scale = 30.0;       ///< SNR normalisation
  bool center = true;            ///< subtract the centroid from positions
};

/// A fixed-size tensor view of one gesture cloud.
/// `positions` (num_points x 3) feed the set-abstraction geometry;
/// `features` (num_points x dims) carry [x, y, z, v, snr, t, dur] channels
/// (dur = motion length in frames, constant across the sample's points — it
/// preserves the pace cue that aggregating frames would otherwise dilute).
struct FeaturizedSample {
  std::size_t num_points = 0;
  std::size_t dims = 0;
  std::vector<float> positions;
  std::vector<float> features;
};

FeaturizedSample featurize(const GestureCloud& cloud, const FeatureConfig& config, Rng& rng);

/// Reusable working memory for featurize_into.
struct FeaturizeScratch {
  PointCloud sampled;
  ResampleScratch resample;
};

/// Allocation-free variant of featurize(): identical floats (same RNG draw
/// order) written into `out`, reusing its buffers and `scratch`'s tables.
void featurize_into(const GestureCloud& cloud, const FeatureConfig& config, Rng& rng,
                    FeaturizeScratch& scratch, FeaturizedSample& out);

}  // namespace gp
