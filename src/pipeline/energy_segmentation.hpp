// DRAI-energy gesture segmentation — the DI-Gesture-style alternative the
// paper contrasts its point-count method against (§IV-B: "Unlike DI-Gesture
// segmenting gestures by applying a dynamic window mechanism to DRAI ...
// we segment gestures based on radar point clouds").
//
// This segmenter consumes a per-frame scalar motion-energy signal (the
// total energy of each frame's dynamic range-angle image) and applies the
// same sliding-window state machine over an adaptive energy threshold. It
// exists so the two approaches can be compared on identical recordings
// (tests/test_drai.cpp); the point-cloud segmenter stays the default
// because it needs no raw data cube at runtime.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace gp {

struct EnergySegmentationParams {
  std::size_t threshold_window = 50;   ///< background history length
  std::size_t detection_window = 10;   ///< sliding window length
  std::size_t min_motion_frames = 8;   ///< motion frames required to start
  double threshold_quantile = 0.70;
  double threshold_scale = 3.0;        ///< margin: thr = scale * quantile
  double min_threshold = 1e-9;
  std::size_t max_gesture_frames = 120;
};

struct EnergySegment {
  std::size_t start_frame = 0;
  std::size_t end_frame = 0;  ///< inclusive
};

/// Streaming segmenter over per-frame motion energies.
class EnergySegmenter {
 public:
  explicit EnergySegmenter(EnergySegmentationParams params = {});

  void push(double frame_energy);
  void finish();
  std::vector<EnergySegment> take_segments();

  double current_threshold() const;

  /// Convenience: segment a full recording's energy trace.
  static std::vector<EnergySegment> segment_all(const std::vector<double>& energies,
                                                EnergySegmentationParams params = {});

 private:
  EnergySegmentationParams params_;
  std::deque<double> recent_;
  std::vector<char> window_states_;
  std::size_t window_pos_ = 0;
  std::size_t frames_seen_ = 0;

  bool in_gesture_ = false;
  std::size_t gesture_start_ = 0;
  std::size_t last_motion_frame_ = 0;
  std::size_t pending_frames_ = 0;
  std::vector<EnergySegment> completed_;
};

}  // namespace gp
