#include "pipeline/preprocessor.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pointcloud/ops.hpp"

namespace gp {

Preprocessor::Preprocessor(PreprocessorParams params) : params_(params) {
  check_arg(params_.frame_rate > 0.0, "frame rate must be positive");
}

GestureCloud Preprocessor::process_segment(const FrameSequence& segment) const {
  GP_SPAN("pipeline.noise_cancel");
  GestureCloud out;
  if (segment.empty()) return out;
  const auto cleaned = cancel_noise(segment, params_.noise);
  out.points = cleaned.main_cluster;
  out.num_frames = segment.size();
  out.first_frame = segment.front().frame_index;
  out.duration_s = static_cast<double>(segment.size()) / params_.frame_rate;
  return out;
}

std::vector<GestureCloud> Preprocessor::process(const FrameSequence& recording) const {
  GP_SPAN("pipeline.segment");
  std::vector<GestureCloud> out;
  for (const auto& segment : GestureSegmenter::segment_all(recording, params_.segmentation)) {
    GestureCloud cloud = process_segment(segment.frames);
    if (cloud.points.size() >= params_.min_points) out.push_back(std::move(cloud));
  }
  GP_COUNTER_ADD("gp.pipeline.segments", out.size());
  return out;
}

FeaturizedSample featurize(const GestureCloud& cloud, const FeatureConfig& config, Rng& rng) {
  GP_SPAN("pipeline.featurize");
  GP_COUNTER_ADD("gp.pipeline.samples_featurized", 1);
  check_arg(!cloud.points.empty(), "featurize of empty gesture cloud");
  check_arg(config.num_points > 0, "featurize needs num_points > 0");

  const PointCloud sampled = resample(cloud.points, config.num_points, rng);
  const Vec3 offset = config.center ? centroid(sampled) : Vec3{};

  // Temporal channel: frame index normalised over the motion span.
  int min_frame = sampled.front().frame;
  int max_frame = sampled.front().frame;
  for (const auto& p : sampled) {
    min_frame = std::min(min_frame, p.frame);
    max_frame = std::max(max_frame, p.frame);
  }
  const double frame_span = std::max(1, max_frame - min_frame);

  FeaturizedSample out;
  out.num_points = config.num_points;
  out.dims = 7;
  const float duration_norm = static_cast<float>(
      std::min<double>(static_cast<double>(cloud.num_frames), 60.0) / 40.0);
  out.positions.reserve(config.num_points * 3);
  out.features.reserve(config.num_points * out.dims);

  for (const auto& p : sampled) {
    const Vec3 pos = p.position - offset;
    out.positions.push_back(static_cast<float>(pos.x));
    out.positions.push_back(static_cast<float>(pos.y));
    out.positions.push_back(static_cast<float>(pos.z));

    out.features.push_back(static_cast<float>(pos.x));
    out.features.push_back(static_cast<float>(pos.y));
    out.features.push_back(static_cast<float>(pos.z));
    out.features.push_back(static_cast<float>(p.velocity / config.velocity_scale));
    out.features.push_back(static_cast<float>(p.snr_db / config.snr_scale));
    out.features.push_back(static_cast<float>((p.frame - min_frame) / frame_span));
    out.features.push_back(duration_norm);
  }
  return out;
}

}  // namespace gp
