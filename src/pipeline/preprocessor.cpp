#include "pipeline/preprocessor.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pointcloud/ops.hpp"

namespace gp {

Preprocessor::Preprocessor(PreprocessorParams params) : params_(params) {
  check_arg(params_.frame_rate > 0.0, "frame rate must be positive");
}

const char* segment_quality_name(SegmentQuality quality) {
  switch (quality) {
    case SegmentQuality::kGood: return "good";
    case SegmentQuality::kTooShort: return "too_short";
    case SegmentQuality::kTooFewPoints: return "too_few_points";
    case SegmentQuality::kEmpty: return "empty";
  }
  return "?";
}

SegmentQuality Preprocessor::assess(const GestureCloud& cloud) const {
  if (cloud.points.empty()) return SegmentQuality::kEmpty;
  if (cloud.points.size() < params_.min_points) return SegmentQuality::kTooFewPoints;
  if (cloud.num_frames < params_.min_frames) return SegmentQuality::kTooShort;
  return SegmentQuality::kGood;
}

GestureCloud Preprocessor::process_segment(const FrameSequence& segment) const {
  Scratch scratch;
  GestureCloud out;
  process_segment_into(segment, out, scratch);
  return out;
}

void Preprocessor::process_segment_into(std::span<const FrameCloud> segment, GestureCloud& out,
                                        Scratch& scratch) const {
  GP_SPAN("pipeline.noise_cancel");
  out.points.clear();
  out.num_frames = 0;
  out.first_frame = 0;
  out.duration_s = 0.0;
  if (segment.empty()) {
    out.quality = SegmentQuality::kEmpty;
    return;
  }
  aggregate_into(segment, scratch.aggregated);
  cancel_noise_main_into(scratch.aggregated, params_.noise, scratch.noise, out.points);
  out.num_frames = segment.size();
  out.first_frame = segment.front().frame_index;
  out.duration_s = static_cast<double>(segment.size()) / params_.frame_rate;
  out.quality = assess(out);
}

std::vector<GestureCloud> Preprocessor::process(const FrameSequence& recording) const {
  GP_SPAN("pipeline.segment");
  std::vector<GestureCloud> out;
  for (const auto& segment : GestureSegmenter::segment_all(recording, params_.segmentation)) {
    GestureCloud cloud = process_segment(segment.frames);
    switch (cloud.quality) {
      case SegmentQuality::kGood:
        out.push_back(std::move(cloud));
        break;
      case SegmentQuality::kTooShort:
        GP_COUNTER_ADD("gp.pipeline.rejected.too_short", 1);
        break;
      case SegmentQuality::kTooFewPoints:
        GP_COUNTER_ADD("gp.pipeline.rejected.too_few_points", 1);
        break;
      case SegmentQuality::kEmpty:
        GP_COUNTER_ADD("gp.pipeline.rejected.empty", 1);
        break;
    }
  }
  GP_COUNTER_ADD("gp.pipeline.segments", out.size());
  return out;
}

FeaturizedSample featurize(const GestureCloud& cloud, const FeatureConfig& config, Rng& rng) {
  FeaturizeScratch scratch;
  FeaturizedSample out;
  featurize_into(cloud, config, rng, scratch, out);
  return out;
}

void featurize_into(const GestureCloud& cloud, const FeatureConfig& config, Rng& rng,
                    FeaturizeScratch& scratch, FeaturizedSample& out) {
  GP_SPAN("pipeline.featurize");
  GP_COUNTER_ADD("gp.pipeline.samples_featurized", 1);
  check_arg(!cloud.points.empty(), "featurize of empty gesture cloud");
  check_arg(config.num_points > 0, "featurize needs num_points > 0");

  resample_into(cloud.points, config.num_points, rng, scratch.resample, scratch.sampled);
  const PointCloud& sampled = scratch.sampled;
  const Vec3 offset = config.center ? centroid(sampled) : Vec3{};

  // Temporal channel: frame index normalised over the motion span.
  int min_frame = sampled.front().frame;
  int max_frame = sampled.front().frame;
  for (const auto& p : sampled) {
    min_frame = std::min(min_frame, p.frame);
    max_frame = std::max(max_frame, p.frame);
  }
  const double frame_span = std::max(1, max_frame - min_frame);

  out.num_points = config.num_points;
  out.dims = 7;
  const float duration_norm = static_cast<float>(
      std::min<double>(static_cast<double>(cloud.num_frames), 60.0) / 40.0);
  out.positions.clear();
  out.features.clear();
  out.positions.reserve(config.num_points * 3);
  out.features.reserve(config.num_points * out.dims);

  for (const auto& p : sampled) {
    const Vec3 pos = p.position - offset;
    out.positions.push_back(static_cast<float>(pos.x));
    out.positions.push_back(static_cast<float>(pos.y));
    out.positions.push_back(static_cast<float>(pos.z));

    out.features.push_back(static_cast<float>(pos.x));
    out.features.push_back(static_cast<float>(pos.y));
    out.features.push_back(static_cast<float>(pos.z));
    out.features.push_back(static_cast<float>(p.velocity / config.velocity_scale));
    out.features.push_back(static_cast<float>(p.snr_db / config.snr_scale));
    out.features.push_back(static_cast<float>((p.frame - min_frame) / frame_span));
    out.features.push_back(duration_norm);
  }
}

}  // namespace gp
