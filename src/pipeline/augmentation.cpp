#include "pipeline/augmentation.hpp"

#include "common/error.hpp"

namespace gp {

PointCloud jitter_cloud(const PointCloud& cloud, double sigma, Rng& rng) {
  check_arg(sigma >= 0.0, "jitter sigma must be non-negative");
  PointCloud out = cloud;
  for (auto& p : out) {
    p.position += Vec3(rng.gaussian(0.0, sigma), rng.gaussian(0.0, sigma),
                       rng.gaussian(0.0, sigma));
  }
  return out;
}

std::vector<PointCloud> augment(const PointCloud& cloud, const AugmentationParams& params,
                                Rng& rng) {
  check_arg(params.copies >= 0, "augmentation copies must be non-negative");
  std::vector<PointCloud> out;
  out.reserve(static_cast<std::size_t>(params.copies) + 1);
  out.push_back(cloud);
  for (int i = 0; i < params.copies; ++i) out.push_back(jitter_cloud(cloud, params.sigma, rng));
  return out;
}

}  // namespace gp
