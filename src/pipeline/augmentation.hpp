// Training-time data augmentation (§IV-B): each gesture cloud is replicated
// three times with i.i.d. Gaussian displacements (mu = 0, sigma = 0.02 m)
// added to every point.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "pointcloud/point.hpp"

namespace gp {

struct AugmentationParams {
  double sigma = 0.02;   ///< displacement standard deviation, metres
  int copies = 3;        ///< augmented copies per original sample
};

/// One jittered copy of `cloud`.
PointCloud jitter_cloud(const PointCloud& cloud, double sigma, Rng& rng);

/// The original plus `copies` jittered copies.
std::vector<PointCloud> augment(const PointCloud& cloud, const AugmentationParams& params,
                                Rng& rng);

}  // namespace gp
