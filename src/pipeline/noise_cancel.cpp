#include "pipeline/noise_cancel.hpp"

namespace gp {

NoiseCancelResult cancel_noise(const PointCloud& aggregated, const NoiseCancelParams& params) {
  NoiseCancelResult result;
  if (aggregated.empty()) return result;

  const DbscanResult clusters = dbscan(aggregated, params.dbscan);
  const int main_id = clusters.largest_cluster();
  if (main_id == kDbscanNoise) {
    // Everything is noise; degrade gracefully by keeping the raw cloud so a
    // downstream classifier still has input (matches the paper's behaviour
    // of always producing a gesture cloud per segment).
    result.main_cluster = aggregated;
    return result;
  }

  for (std::size_t i = 0; i < aggregated.size(); ++i) {
    const int label = clusters.labels[i];
    if (label == main_id) {
      result.main_cluster.push_back(aggregated[i]);
    } else if (label == kDbscanNoise) {
      ++result.noise_points;
    }
  }
  for (int c = 0; c < static_cast<int>(clusters.num_clusters); ++c) {
    if (c == main_id) continue;
    result.other_clusters.push_back(extract_cluster(aggregated, clusters, c));
  }
  return result;
}

NoiseCancelResult cancel_noise(const FrameSequence& frames, const NoiseCancelParams& params) {
  return cancel_noise(aggregate(frames), params);
}

void cancel_noise_main_into(const PointCloud& aggregated, const NoiseCancelParams& params,
                            NoiseCancelScratch& scratch, PointCloud& out_main) {
  out_main.clear();
  if (aggregated.empty()) return;

  dbscan_into(aggregated, params.dbscan, scratch.dbscan, scratch.clusters);
  const int main_id = largest_cluster(scratch.clusters, scratch.counts);
  if (main_id == kDbscanNoise) {
    // Everything is noise; degrade gracefully by keeping the raw cloud so a
    // downstream classifier still has input (same policy as cancel_noise).
    out_main.insert(out_main.end(), aggregated.begin(), aggregated.end());
    return;
  }
  for (std::size_t i = 0; i < aggregated.size(); ++i) {
    if (scratch.clusters.labels[i] == main_id) out_main.push_back(aggregated[i]);
  }
}

}  // namespace gp
