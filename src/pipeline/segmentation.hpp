// Parameter-adaptive sliding-window gesture segmentation (§IV-B).
//
// The segmenter watches the per-frame point count. A dynamic threshold
// P_Thr is derived from the cumulative distribution of counts over the last
// N frames (idle frames dominate, so a high quantile of the recent counts
// separates motion from background). A sliding window of length n decides
// frame state; a gesture starts once the window holds >= F_Thr motion
// frames and ends when the window is entirely static.
//
// Paper parameter values (§V): N = 50, n = 10, F_Thr = 8.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "pointcloud/point.hpp"

namespace gp {

struct SegmentationParams {
  std::size_t threshold_window = 50;   ///< N: frames used for the threshold
  std::size_t detection_window = 10;   ///< n: sliding motion window
  std::size_t min_motion_frames = 8;   ///< F_Thr
  double threshold_quantile = 0.70;    ///< quantile of recent counts
  std::size_t threshold_margin = 2;    ///< added above the quantile
  std::size_t min_threshold = 3;       ///< floor for P_Thr
  std::size_t max_gesture_frames = 120;///< safety bound on segment length
  /// Hangover tolerance for missing frames (gap-aware segmentation): a jump
  /// in the pushed frame_index of up to this many missing frames inside a
  /// gesture is coasted over (a lossy link dropped frames mid-motion); a
  /// larger gap closes the open gesture at the last delivered frame —
  /// whatever was captured is emitted instead of being merged with
  /// unrelated post-dropout motion. Contiguous streams never hit this path.
  std::size_t max_gap_frames = 5;
};

/// One segmented gesture motion.
struct GestureSegment {
  std::size_t start_frame = 0;  ///< index into the input sequence
  std::size_t end_frame = 0;    ///< inclusive
  FrameSequence frames;         ///< the motion frames (copies)
};

/// Streaming segmenter. Feed frames in order with push(); completed
/// segments accumulate and can be drained with take_segments(). finish()
/// flushes a gesture still in progress at stream end.
class GestureSegmenter {
 public:
  explicit GestureSegmenter(SegmentationParams params = {});

  void push(const FrameCloud& frame);
  void finish();
  std::vector<GestureSegment> take_segments();

  /// Current adaptive threshold (exposed for tests and diagnostics).
  std::size_t current_threshold() const;

  /// Convenience: segments a complete recorded sequence in one call.
  static std::vector<GestureSegment> segment_all(const FrameSequence& frames,
                                                 SegmentationParams params = {});

 private:
  bool is_motion_frame(std::size_t point_count) const;
  /// Trims trailing static frames and emits the open gesture (shared by
  /// finish(), gap-closure, and the in-stream close paths).
  void close_pending();
  /// Forgets the sliding-window state after a dropout gap, so pre-gap
  /// frames can never co-trigger a detection with post-gap motion.
  void reset_window();

  SegmentationParams params_;
  /// Background point-count history (oldest first). The newest
  /// `detection_window` entries are excluded from the threshold quantile so
  /// a gesture onset cannot inflate its own threshold; older entries track
  /// genuine clutter-level changes.
  std::deque<std::size_t> recent_counts_;
  std::vector<char> window_states_;         ///< ring over last n frames
  std::size_t window_pos_ = 0;
  std::size_t frames_seen_ = 0;

  bool in_gesture_ = false;
  bool have_last_index_ = false;
  int last_frame_index_ = 0;                ///< frame_index of the last push
  FrameSequence pending_;                   ///< frames of the open gesture
  std::vector<FrameCloud> window_frames_;   ///< frames inside the window
  std::size_t gesture_start_ = 0;
  std::size_t last_motion_frame_ = 0;
  std::vector<GestureSegment> completed_;
};

}  // namespace gp
