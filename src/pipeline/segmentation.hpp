// Parameter-adaptive sliding-window gesture segmentation (§IV-B).
//
// The segmenter watches the per-frame point count. A dynamic threshold
// P_Thr is derived from the cumulative distribution of counts over the last
// N frames (idle frames dominate, so a high quantile of the recent counts
// separates motion from background). A sliding window of length n decides
// frame state; a gesture starts once the window holds >= F_Thr motion
// frames and ends when the window is entirely static.
//
// Paper parameter values (§V): N = 50, n = 10, F_Thr = 8.
//
// Memory model (DESIGN.md §9): the streaming path is allocation-free once
// warm. Frames arrive as non-owning FrameView spans and are copied into
// recycled ring/slot storage (count history and the detection window are
// fixed-size rings; the open gesture and the completed-segment store are
// SlotVectors whose nested point buffers survive clear()). Completed
// segments are exposed as SegmentView spans; take_segments() remains the
// allocating compatibility path for offline callers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/mem.hpp"
#include "common/serialize.hpp"
#include "pointcloud/point.hpp"

namespace gp {

struct SegmentationParams {
  std::size_t threshold_window = 50;   ///< N: frames used for the threshold
  std::size_t detection_window = 10;   ///< n: sliding motion window
  std::size_t min_motion_frames = 8;   ///< F_Thr
  double threshold_quantile = 0.70;    ///< quantile of recent counts
  std::size_t threshold_margin = 2;    ///< added above the quantile
  std::size_t min_threshold = 3;       ///< floor for P_Thr
  std::size_t max_gesture_frames = 120;///< safety bound on segment length
  /// Hangover tolerance for missing frames (gap-aware segmentation): a jump
  /// in the pushed frame_index of up to this many missing frames inside a
  /// gesture is coasted over (a lossy link dropped frames mid-motion); a
  /// larger gap closes the open gesture at the last delivered frame —
  /// whatever was captured is emitted instead of being merged with
  /// unrelated post-dropout motion. Contiguous streams never hit this path.
  std::size_t max_gap_frames = 5;
};

/// One segmented gesture motion (owning; the offline/compat currency).
struct GestureSegment {
  std::size_t start_frame = 0;  ///< index into the input sequence
  std::size_t end_frame = 0;    ///< inclusive
  FrameSequence frames;         ///< the motion frames (copies)
};

/// Non-owning view of one completed segment inside the segmenter's
/// recycled store. Valid until the next push()/finish()/clear_completed().
struct SegmentView {
  std::size_t start_frame = 0;
  std::size_t end_frame = 0;  ///< inclusive
  std::span<const FrameCloud> frames;
};

/// Streaming segmenter. Feed frames in order with push(); completed
/// segments accumulate in a recycled store read either zero-copy via
/// completed_count()/completed_segment()/clear_completed() (the serving
/// path) or as owning copies via take_segments() (offline callers).
/// finish() flushes a gesture still in progress at stream end.
class GestureSegmenter {
 public:
  explicit GestureSegmenter(SegmentationParams params = {});

  void push(const FrameView& frame);
  void push(const FrameCloud& frame) { push(FrameView(frame)); }
  void finish();

  /// Zero-copy completed-segment access (allocation-free steady state).
  std::size_t completed_count() const { return ranges_.size(); }
  SegmentView completed_segment(std::size_t i) const;
  void clear_completed();

  /// Owning compat drain: copies the completed store out and clears it.
  std::vector<GestureSegment> take_segments();

  /// Current adaptive threshold (exposed for tests and diagnostics).
  std::size_t current_threshold() const;

  /// Convenience: segments a complete recorded sequence in one call.
  static std::vector<GestureSegment> segment_all(const FrameSequence& frames,
                                                 SegmentationParams params = {});

  /// Serializes the full mid-stream state (count-history ring, detection
  /// window, open gesture, gap-tracking indices) through `w` in canonical
  /// form: rings are written oldest-first so two segmenters with the same
  /// logical state produce identical bytes regardless of ring rotation.
  /// Precondition: the completed-segment store has been drained
  /// (clear_completed()/take_segments()) — checkpointing undrained results
  /// would silently drop them on the restoring side, so it throws instead.
  /// The segmentation params are fingerprinted into the stream and
  /// validated on load (SerializationError on mismatch).
  void save_state(BinaryWriter& w) const;
  /// Restores state written by save_state into a segmenter constructed with
  /// the *same* SegmentationParams. After a load, a continued stream
  /// produces segments bitwise identical to the uninterrupted run (the
  /// session-handoff bar; pinned by tests/test_cluster.cpp).
  void load_state(BinaryReader& r);

 private:
  bool is_motion_frame(std::size_t point_count) const;
  /// Trims trailing static frames and emits the open gesture (shared by
  /// finish(), gap-closure, and the in-stream close paths).
  void close_pending();
  /// Forgets the sliding-window state after a dropout gap, so pre-gap
  /// frames can never co-trigger a detection with post-gap motion.
  void reset_window();
  /// Appends to the background count history ring (drops the oldest entry
  /// at capacity) and invalidates the cached threshold.
  void push_recent_count(std::size_t count);
  /// k-th window frame, oldest first (k < window_count_).
  const FrameCloud& window_frame(std::size_t k) const {
    return window_frames_[(window_start_ + k) % window_frames_.size()];
  }
  /// Copies a view into recycled owning storage (capacity reuse).
  static void assign_frame(FrameCloud& slot, const FrameView& frame) {
    slot.frame_index = frame.frame_index;
    slot.timestamp = frame.timestamp;
    slot.points.assign(frame.points.begin(), frame.points.end());
  }

  SegmentationParams params_;

  /// Background point-count history ring (oldest first), fixed capacity
  /// threshold_window + detection_window. The newest `detection_window`
  /// entries are excluded from the threshold quantile so a gesture onset
  /// cannot inflate its own threshold; older entries track genuine
  /// clutter-level changes.
  std::vector<std::size_t> recent_counts_;
  std::size_t recent_start_ = 0;
  std::size_t recent_size_ = 0;
  /// Threshold cache: the quantile is a pure function of the (unchanged)
  /// history between pushes, so intra-push recomputations (detection +
  /// backfill) reuse one sort instead of re-sorting per window frame.
  mutable std::vector<double> threshold_scratch_;
  mutable std::size_t threshold_cache_ = 0;
  mutable bool threshold_dirty_ = true;

  std::vector<char> window_states_;         ///< ring over last n frames
  std::size_t window_pos_ = 0;
  std::size_t frames_seen_ = 0;

  bool in_gesture_ = false;
  bool have_last_index_ = false;
  int last_frame_index_ = 0;                ///< frame_index of the last push
  mem::SlotVector<FrameCloud> pending_;     ///< frames of the open gesture
  std::vector<FrameCloud> window_frames_;   ///< frame ring inside the window
  std::size_t window_start_ = 0;
  std::size_t window_count_ = 0;
  std::size_t gesture_start_ = 0;
  std::size_t last_motion_frame_ = 0;

  /// Completed-segment store: all segments' frames concatenated in one
  /// recycled SlotVector plus per-segment ranges.
  struct Range {
    std::size_t start_frame = 0;
    std::size_t end_frame = 0;
    std::size_t begin = 0;  ///< offset into completed_frames_
    std::size_t count = 0;
  };
  mem::SlotVector<FrameCloud> completed_frames_;
  std::vector<Range> ranges_;
};

}  // namespace gp
