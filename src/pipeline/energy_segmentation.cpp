#include "pipeline/energy_segmentation.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace gp {

EnergySegmenter::EnergySegmenter(EnergySegmentationParams params) : params_(params) {
  check_arg(params_.threshold_window >= 4, "threshold window too small");
  check_arg(params_.detection_window >= 2, "detection window too small");
  check_arg(params_.min_motion_frames >= 1 &&
                params_.min_motion_frames <= params_.detection_window,
            "min_motion_frames must fit the detection window");
  check_arg(params_.threshold_scale >= 1.0, "threshold scale must be >= 1");
  window_states_.assign(params_.detection_window, 0);
}

double EnergySegmenter::current_threshold() const {
  if (recent_.size() <= params_.detection_window) return params_.min_threshold;
  std::vector<double> history(recent_.begin(),
                              recent_.end() - static_cast<std::ptrdiff_t>(
                                                  params_.detection_window));
  const double q = quantile(history, params_.threshold_quantile);
  return std::max(params_.min_threshold, params_.threshold_scale * q);
}

void EnergySegmenter::push(double frame_energy) {
  // Energies have no natural noise floor (unlike point counts), so nothing
  // can be classified as motion until enough background has been observed
  // to estimate one.
  const bool primed = recent_.size() > params_.detection_window + 3;
  const bool motion = primed && frame_energy >= current_threshold();

  if (!in_gesture_) {
    recent_.push_back(frame_energy);
    if (recent_.size() > params_.threshold_window + params_.detection_window) {
      recent_.pop_front();
    }
  }

  window_states_[window_pos_] = motion ? 1 : 0;
  window_pos_ = (window_pos_ + 1) % params_.detection_window;
  const std::size_t motion_in_window = static_cast<std::size_t>(
      std::count(window_states_.begin(), window_states_.end(), 1));

  if (!in_gesture_) {
    if (motion_in_window >= params_.min_motion_frames) {
      in_gesture_ = true;
      const std::size_t lookback = std::min<std::size_t>(params_.detection_window - 1,
                                                         frames_seen_);
      gesture_start_ = frames_seen_ - lookback;
      last_motion_frame_ = frames_seen_;
      pending_frames_ = lookback + 1;
    }
  } else {
    ++pending_frames_;
    if (motion) last_motion_frame_ = frames_seen_;
    if (motion_in_window == 0 || pending_frames_ >= params_.max_gesture_frames) {
      completed_.push_back({gesture_start_, last_motion_frame_});
      in_gesture_ = false;
      pending_frames_ = 0;
    }
  }
  ++frames_seen_;
}

void EnergySegmenter::finish() {
  if (in_gesture_) {
    completed_.push_back({gesture_start_, last_motion_frame_});
    in_gesture_ = false;
    pending_frames_ = 0;
  }
}

std::vector<EnergySegment> EnergySegmenter::take_segments() {
  std::vector<EnergySegment> out;
  out.swap(completed_);
  return out;
}

std::vector<EnergySegment> EnergySegmenter::segment_all(const std::vector<double>& energies,
                                                        EnergySegmentationParams params) {
  EnergySegmenter segmenter(params);
  for (double e : energies) segmenter.push(e);
  segmenter.finish();
  return segmenter.take_segments();
}

}  // namespace gp
