// Noise canceling (§IV-B): DBSCAN over the aggregated gesture cloud with
// D_max = 1 m, N_min = 4; keep the cluster with the most points (the user),
// discard ghosts / other reflectors / other people.
#pragma once

#include "pointcloud/dbscan.hpp"
#include "pointcloud/point.hpp"

namespace gp {

struct NoiseCancelParams {
  DbscanParams dbscan{1.0, 4};
};

struct NoiseCancelResult {
  PointCloud main_cluster;              ///< the retained gesture cloud
  std::vector<PointCloud> other_clusters;  ///< discarded clusters (Fig. 15)
  std::size_t noise_points = 0;         ///< DBSCAN outliers dropped
};

/// Cleans an aggregated gesture cloud.
NoiseCancelResult cancel_noise(const PointCloud& aggregated, const NoiseCancelParams& params = {});

/// Convenience: aggregate a segment's frames, then clean.
NoiseCancelResult cancel_noise(const FrameSequence& frames, const NoiseCancelParams& params = {});

/// Reusable working memory for the streaming noise-cancel path.
struct NoiseCancelScratch {
  DbscanScratch dbscan;
  DbscanResult clusters;
  std::vector<std::size_t> counts;
};

/// Streaming variant producing only the retained main cluster — exactly
/// cancel_noise(aggregated).main_cluster (including the keep-the-raw-cloud
/// graceful path when everything is noise) — written into `out_main` with
/// every buffer recycled. The discarded-cluster inventory (Fig. 15) is
/// offline-analysis-only and is skipped here.
void cancel_noise_main_into(const PointCloud& aggregated, const NoiseCancelParams& params,
                            NoiseCancelScratch& scratch, PointCloud& out_main);

}  // namespace gp
