// Noise canceling (§IV-B): DBSCAN over the aggregated gesture cloud with
// D_max = 1 m, N_min = 4; keep the cluster with the most points (the user),
// discard ghosts / other reflectors / other people.
#pragma once

#include "pointcloud/dbscan.hpp"
#include "pointcloud/point.hpp"

namespace gp {

struct NoiseCancelParams {
  DbscanParams dbscan{1.0, 4};
};

struct NoiseCancelResult {
  PointCloud main_cluster;              ///< the retained gesture cloud
  std::vector<PointCloud> other_clusters;  ///< discarded clusters (Fig. 15)
  std::size_t noise_points = 0;         ///< DBSCAN outliers dropped
};

/// Cleans an aggregated gesture cloud.
NoiseCancelResult cancel_noise(const PointCloud& aggregated, const NoiseCancelParams& params = {});

/// Convenience: aggregate a segment's frames, then clean.
NoiseCancelResult cancel_noise(const FrameSequence& frames, const NoiseCancelParams& params = {});

}  // namespace gp
