#include "testkit/fuzz.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace gp::testkit {

namespace {

std::string hex_prefix(const std::string& payload, std::size_t max_bytes = 96) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  const std::size_t n = std::min(payload.size(), max_bytes);
  out.reserve(n * 2 + 16);
  for (std::size_t i = 0; i < n; ++i) {
    const auto b = static_cast<unsigned char>(payload[i]);
    out += kHex[b >> 4];
    out += kHex[b & 0xF];
  }
  if (payload.size() > max_bytes) out += "...";
  return out;
}

}  // namespace

std::string FuzzOutcome::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "fuzz[%s]: %zu runs, %zu accepted, %zu typed errors, %zu contract violations",
                target.c_str(), executions, accepted, typed_errors, failures.size());
  return buf;
}

std::vector<std::string> load_corpus_dir(const std::string& dir) {
  std::vector<std::string> seeds;
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) return seeds;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    seeds.push_back(buf.str());
  }
  return seeds;
}

std::string mutate(const std::string& input, const std::vector<std::string>& all_seeds,
                   Rng& rng, std::size_t max_payload) {
  std::string out = input;
  const int op = rng.uniform_int(0, 5);
  switch (op) {
    case 0: {  // bit flip
      if (out.empty()) { out.push_back('\0'); break; }
      const std::size_t pos = rng.index(out.size());
      out[pos] = static_cast<char>(static_cast<unsigned char>(out[pos]) ^
                                   (1u << rng.uniform_int(0, 7)));
      break;
    }
    case 1: {  // byte substitution (interesting values over-represented)
      if (out.empty()) { out.push_back('\xff'); break; }
      static constexpr unsigned char kInteresting[] = {0x00, 0x01, 0x7F, 0x80, 0xFF,
                                                       0xFE, 0x10, 0x20, 0x41};
      const std::size_t pos = rng.index(out.size());
      out[pos] = rng.bernoulli(0.5)
                     ? static_cast<char>(kInteresting[rng.index(sizeof(kInteresting))])
                     : static_cast<char>(rng.uniform_int(0, 255));
      break;
    }
    case 2: {  // truncate
      if (!out.empty()) out.resize(rng.index(out.size() + 1));
      break;
    }
    case 3: {  // extend with random bytes
      const std::size_t extra = 1 + rng.index(64);
      for (std::size_t i = 0; i < extra; ++i) {
        out.push_back(static_cast<char>(rng.uniform_int(0, 255)));
      }
      break;
    }
    case 4: {  // splice: head of this payload + tail of another seed
      if (all_seeds.empty()) break;
      const std::string& other = all_seeds[rng.index(all_seeds.size())];
      const std::size_t head = out.empty() ? 0 : rng.index(out.size() + 1);
      const std::size_t tail_at = other.empty() ? 0 : rng.index(other.size() + 1);
      out = out.substr(0, head) + other.substr(tail_at);
      break;
    }
    default: {  // length-prefix attack: overwrite 8 aligned bytes with a huge LE count
      if (out.size() < 8) { out.append(8 - out.size(), '\0'); }
      const std::size_t pos = rng.index(out.size() - 7);
      const std::uint64_t huge =
          rng.bernoulli(0.5) ? 0xFFFFFFFFFFFFFFFFULL : (1ULL << (32 + rng.uniform_int(0, 28)));
      for (int i = 0; i < 8; ++i) out[pos + i] = static_cast<char>(huge >> (8 * i));
      break;
    }
  }
  if (out.size() > max_payload) out.resize(max_payload);
  return out;
}

FuzzOutcome fuzz_target(const std::string& name, const std::vector<std::string>& seeds,
                        const FuzzTarget& target, const FuzzOptions& options) {
  FuzzOutcome outcome;
  outcome.target = name;

  const auto execute = [&](const std::string& payload, const char* origin) {
    ++outcome.executions;
    try {
      target(payload);
      ++outcome.accepted;
    } catch (const Error&) {
      ++outcome.typed_errors;  // clean, typed rejection — the contract
    } catch (const std::exception& e) {
      if (outcome.failures.size() < 8) {
        outcome.failures.push_back("target '" + name + "' (" + origin + ") leaked " +
                                   std::string(e.what()) + "; payload[" +
                                   std::to_string(payload.size()) + "B] = " +
                                   hex_prefix(payload));
      }
    } catch (...) {
      if (outcome.failures.size() < 8) {
        outcome.failures.push_back("target '" + name + "' (" + origin +
                                   ") threw a non-std exception; payload[" +
                                   std::to_string(payload.size()) + "B] = " +
                                   hex_prefix(payload));
      }
    }
  };

  for (const std::string& seed : seeds) execute(seed, "seed");

  Rng rng(options.seed, 0xF022A6B1C3D4E5F6ULL);
  for (std::size_t i = 0; i < options.iterations; ++i) {
    std::string payload =
        seeds.empty() ? std::string() : seeds[rng.index(seeds.size())];
    const std::size_t rounds = 1 + rng.index(options.max_mutations);
    for (std::size_t m = 0; m < rounds; ++m) {
      payload = mutate(payload, seeds, rng, options.max_payload);
    }
    execute(payload, "mutant");
  }
  return outcome;
}

}  // namespace gp::testkit
