#include "testkit/golden.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>

#include "common/error.hpp"

namespace gp::testkit {

namespace {

bool env_truthy(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  const std::string_view s(v);
  return !(s.empty() || s == "0" || s == "off" || s == "false");
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot read golden file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::filesystem::create_directories(std::filesystem::path(path).parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot write golden file: " + path);
  out << content;
}

}  // namespace

GoldenConfig golden_config_from_env(int argc, const char* const* argv,
                                    const std::string& default_dir) {
  GoldenConfig config;
  if (const char* dir = std::getenv("GP_GOLDEN_DIR")) config.dir = dir;
  if (config.dir.empty()) config.dir = default_dir;
  config.update = env_truthy("GP_UPDATE_GOLDEN");
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--update-golden") config.update = true;
  }
  return config;
}

GoldenOutcome check_golden(const GoldenConfig& config, const std::string& name,
                           const Snapshot& current) {
  check_arg(!config.dir.empty(), "golden directory not configured (set GP_GOLDEN_DIR)");
  const std::string path = config.dir + "/" + name + ".golden";
  GoldenOutcome outcome;

  if (!std::filesystem::exists(path)) {
    if (config.update) {
      write_file(path, to_text(current));
      outcome.ok = true;
      outcome.updated = true;
      outcome.created = true;
      outcome.message = "golden created: " + path + "\n";
    } else {
      outcome.ok = false;
      outcome.message = "golden missing: " + path +
                        "\nrun the test with --update-golden (or GP_UPDATE_GOLDEN=1) "
                        "to create it, then review and commit the file\n";
    }
    return outcome;
  }

  const Snapshot golden = parse_text(read_file(path));
  outcome.diff = diff_snapshots(golden, current);
  if (outcome.diff.identical()) {
    outcome.ok = true;
    outcome.message = "golden match: " + path + "\n";
    return outcome;
  }

  if (config.update) {
    write_file(path, to_text(current));
    outcome.ok = true;
    outcome.updated = true;
    outcome.message = "golden updated: " + path + "\n" + outcome.diff.report();
    return outcome;
  }

  outcome.ok = false;
  outcome.message = "golden mismatch: " + path + "\n" + outcome.diff.report() +
                    "if the drift is intended, regenerate with --update-golden and "
                    "review the diff above before committing\n";
  return outcome;
}

}  // namespace gp::testkit
