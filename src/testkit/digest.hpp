// Canonical digests for regression oracles (gp::testkit).
//
// Digest is a streaming FNV-1a-64 accumulator over a *canonical byte
// encoding*: every value is serialised little-endian with an explicit width,
// strings are length-prefixed, and floating-point values can be fed either
// as raw IEEE-754 bits (bitwise oracles: serial-vs-parallel, cache-vs-fresh)
// or *quantised* to a fixed grid (golden snapshots, where the last few ulps
// are build-dependent but physical drift must be caught).
//
// The encoding is platform-stable: the same logical values produce the same
// 64-bit digest on any little-endian build (big-endian hosts are normalised
// explicitly), so digests can be checked into tests/golden/.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/fnv.hpp"

namespace gp::testkit {

/// Default quantisation grid for golden snapshots: values are snapped to
/// multiples of 1/kDefaultQuantScale before hashing (1e-6 absolute).
inline constexpr double kDefaultQuantScale = 1e6;

/// Snaps `v` to the grid of multiples of 1/scale (round-half-away-from-zero
/// via llround). Non-finite values map to sentinel grid points so NaN/Inf
/// changes are still visible in the digest. -0.0 normalises to +0.0.
double quantize(double v, double scale = kDefaultQuantScale);

/// Streaming FNV-1a-64 over the canonical encoding described above.
class Digest {
 public:
  Digest& add_bytes(const void* data, std::size_t n);
  Digest& add_u8(std::uint8_t v);
  Digest& add_u32(std::uint32_t v);
  Digest& add_u64(std::uint64_t v);
  Digest& add_i64(std::int64_t v);
  /// Raw IEEE-754 bits (bitwise-equality oracles).
  Digest& add_f64_bits(double v);
  /// Quantised value (golden snapshots): hashes llround(v * scale).
  Digest& add_f64_quantized(double v, double scale = kDefaultQuantScale);
  /// Length-prefixed string (no terminator ambiguity).
  Digest& add_string(std::string_view s);

  std::uint64_t value() const { return h_; }
  /// 16 lowercase hex digits.
  std::string hex() const;

 private:
  std::uint64_t h_ = fnv::kOffsetBasis;  ///< canonical FNV-1a basis (common/fnv.hpp)
};

/// Parses a Digest::hex() string back to the 64-bit value; throws
/// gp::SerializationError on malformed input.
std::uint64_t parse_digest_hex(std::string_view hex);

}  // namespace gp::testkit
