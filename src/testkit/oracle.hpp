// Differential oracles (gp::testkit).
//
// The repo deliberately maintains two independent signal paths — the full
// FMCW chirp-level chain and the fast geometric backend — plus several
// pairs of code paths that must agree exactly (serial vs GP_THREADS=N,
// cache-hit vs fresh synthesis, serialize→reload vs in-memory). This header
// provides the two comparison families:
//
//  * CloudStats + check_stat_bands: *physical-tolerance* agreement between
//    the two radar backends. GesturePrint's identifiability signal lives in
//    per-user point-cloud statistics (§III), so these are exactly the
//    quantities whose agreement keeps the fast backend a credible surrogate.
//  * exact_digest(...): full-precision (raw IEEE bit) digests for the
//    bitwise-equality oracles, where any deviation at all is a bug.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "datasets/dataset.hpp"
#include "nn/tensor.hpp"
#include "pointcloud/point.hpp"

namespace gp::testkit {

/// Aggregate statistics of a per-frame point-cloud stream.
struct CloudStats {
  double frames = 0.0;
  double total_points = 0.0;
  double points_per_frame = 0.0;      ///< over all frames
  double active_frame_fraction = 0.0; ///< frames with >= 1 detection
  double mean_range_m = 0.0;
  double mean_abs_velocity_mps = 0.0;
  double velocity_spread_mps = 0.0;   ///< stddev of |v|
  double mean_snr_db = 0.0;
  double extent_x_m = 0.0;
  double extent_y_m = 0.0;
  double extent_z_m = 0.0;
};

CloudStats cloud_stats(const FrameSequence& frames);

/// One tolerance band on the relation between two backends' statistics.
/// kRatio checks lo <= a/b <= hi; kAbsDiff checks |a-b| <= hi.
struct StatBand {
  enum class Kind { kRatio, kAbsDiff };
  std::string name;
  Kind kind = Kind::kRatio;
  double lo = 0.0;
  double hi = 0.0;
};

/// Physical tolerance bands under which the full FMCW chain and the fast
/// geometric backend must agree on the same scene (clutter/ghosts disabled).
/// Derived from the fast backend's calibration contract (fast_backend.hpp).
std::vector<StatBand> default_backend_bands();

/// Returns one human-readable violation string per band that fails;
/// empty result means the oracle passes.
std::vector<std::string> check_stat_bands(const CloudStats& a, const CloudStats& b,
                                          const std::vector<StatBand>& bands);

// ---- bitwise-equality digests (raw IEEE bits, no quantisation) ------------

std::uint64_t exact_digest(const FrameSequence& frames);
std::uint64_t exact_digest(const Dataset& dataset);
std::uint64_t exact_digest(const nn::Tensor& tensor);

}  // namespace gp::testkit
