#include "testkit/oracle.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "testkit/digest.hpp"

namespace gp::testkit {

CloudStats cloud_stats(const FrameSequence& frames) {
  CloudStats s;
  s.frames = static_cast<double>(frames.size());
  double sum_range = 0.0, sum_absv = 0.0, sum_absv_sq = 0.0, sum_snr = 0.0;
  double min_x = 0.0, max_x = 0.0, min_y = 0.0, max_y = 0.0, min_z = 0.0, max_z = 0.0;
  std::size_t n = 0, active = 0;
  for (const FrameCloud& frame : frames) {
    if (!frame.points.empty()) ++active;
    for (const RadarPoint& p : frame.points) {
      const double absv = std::abs(p.velocity);
      sum_range += p.position.norm();
      sum_absv += absv;
      sum_absv_sq += absv * absv;
      sum_snr += p.snr_db;
      if (n == 0) {
        min_x = max_x = p.position.x;
        min_y = max_y = p.position.y;
        min_z = max_z = p.position.z;
      } else {
        min_x = std::min(min_x, p.position.x);
        max_x = std::max(max_x, p.position.x);
        min_y = std::min(min_y, p.position.y);
        max_y = std::max(max_y, p.position.y);
        min_z = std::min(min_z, p.position.z);
        max_z = std::max(max_z, p.position.z);
      }
      ++n;
    }
  }
  s.total_points = static_cast<double>(n);
  s.points_per_frame = frames.empty() ? 0.0 : s.total_points / s.frames;
  s.active_frame_fraction =
      frames.empty() ? 0.0 : static_cast<double>(active) / s.frames;
  if (n > 0) {
    const double dn = static_cast<double>(n);
    s.mean_range_m = sum_range / dn;
    s.mean_abs_velocity_mps = sum_absv / dn;
    const double var = sum_absv_sq / dn - s.mean_abs_velocity_mps * s.mean_abs_velocity_mps;
    s.velocity_spread_mps = var > 0.0 ? std::sqrt(var) : 0.0;
    s.mean_snr_db = sum_snr / dn;
    s.extent_x_m = max_x - min_x;
    s.extent_y_m = max_y - min_y;
    s.extent_z_m = max_z - min_z;
  }
  return s;
}

namespace {

double stat_by_name(const CloudStats& s, const std::string& name) {
  if (name == "points_per_frame") return s.points_per_frame;
  if (name == "active_frame_fraction") return s.active_frame_fraction;
  if (name == "mean_range_m") return s.mean_range_m;
  if (name == "mean_abs_velocity_mps") return s.mean_abs_velocity_mps;
  if (name == "velocity_spread_mps") return s.velocity_spread_mps;
  if (name == "mean_snr_db") return s.mean_snr_db;
  if (name == "extent_x_m") return s.extent_x_m;
  if (name == "extent_y_m") return s.extent_y_m;
  if (name == "extent_z_m") return s.extent_z_m;
  if (name == "total_points") return s.total_points;
  return std::nan("");
}

}  // namespace

std::vector<StatBand> default_backend_bands() {
  using Kind = StatBand::Kind;
  // The fast backend is a calibrated statistical surrogate, not a bit
  // reproduction: detection counts agree within ~2x (matching the seed's
  // RadarConsistency tolerance), geometry within a couple of range bins,
  // Doppler spread within ~2x, SNR within the CFAR estimation noise.
  return {
      {"points_per_frame", Kind::kRatio, 0.4, 2.5},
      {"active_frame_fraction", Kind::kRatio, 0.5, 2.0},
      {"mean_range_m", Kind::kAbsDiff, 0.0, 0.15},
      {"mean_abs_velocity_mps", Kind::kRatio, 0.35, 2.8},
      {"velocity_spread_mps", Kind::kRatio, 0.3, 3.0},
      {"mean_snr_db", Kind::kAbsDiff, 0.0, 8.0},
      {"extent_y_m", Kind::kAbsDiff, 0.0, 0.5},
      {"extent_z_m", Kind::kAbsDiff, 0.0, 0.6},
  };
}

std::vector<std::string> check_stat_bands(const CloudStats& a, const CloudStats& b,
                                          const std::vector<StatBand>& bands) {
  std::vector<std::string> violations;
  char buf[256];
  for (const StatBand& band : bands) {
    const double va = stat_by_name(a, band.name);
    const double vb = stat_by_name(b, band.name);
    if (std::isnan(va) || std::isnan(vb)) {
      violations.push_back("unknown stat band: " + band.name);
      continue;
    }
    if (band.kind == StatBand::Kind::kRatio) {
      if (vb == 0.0) {
        if (va != 0.0) {
          std::snprintf(buf, sizeof(buf), "%s: ratio undefined (a=%g, b=0)", band.name.c_str(),
                        va);
          violations.push_back(buf);
        }
        continue;
      }
      const double ratio = va / vb;
      if (ratio < band.lo || ratio > band.hi) {
        std::snprintf(buf, sizeof(buf), "%s: ratio %.4f outside [%.2f, %.2f] (a=%g, b=%g)",
                      band.name.c_str(), ratio, band.lo, band.hi, va, vb);
        violations.push_back(buf);
      }
    } else {
      const double diff = std::abs(va - vb);
      if (diff > band.hi) {
        std::snprintf(buf, sizeof(buf), "%s: |a-b| = %.4f exceeds %.2f (a=%g, b=%g)",
                      band.name.c_str(), diff, band.hi, va, vb);
        violations.push_back(buf);
      }
    }
  }
  return violations;
}

std::uint64_t exact_digest(const FrameSequence& frames) {
  Digest d;
  d.add_u64(frames.size());
  for (const FrameCloud& frame : frames) {
    d.add_i64(frame.frame_index);
    d.add_f64_bits(frame.timestamp);
    d.add_u64(frame.points.size());
    for (const RadarPoint& p : frame.points) {
      d.add_f64_bits(p.position.x);
      d.add_f64_bits(p.position.y);
      d.add_f64_bits(p.position.z);
      d.add_f64_bits(p.velocity);
      d.add_f64_bits(p.snr_db);
      d.add_i64(p.frame);
    }
  }
  return d.value();
}

std::uint64_t exact_digest(const Dataset& dataset) {
  Digest d;
  d.add_string(dataset.spec.name);
  d.add_u64(dataset.users.size());
  d.add_u64(dataset.spec.gestures.size());
  d.add_u64(dataset.samples.size());
  for (const GestureSample& sample : dataset.samples) {
    d.add_i64(sample.gesture);
    d.add_i64(sample.user);
    d.add_i64(sample.environment);
    d.add_f64_bits(sample.distance);
    d.add_f64_bits(sample.speed);
    d.add_u64(sample.active_frames);
    d.add_u64(sample.cloud.num_frames);
    d.add_i64(sample.cloud.first_frame);
    d.add_f64_bits(sample.cloud.duration_s);
    d.add_u64(sample.cloud.points.size());
    for (const RadarPoint& p : sample.cloud.points) {
      d.add_f64_bits(p.position.x);
      d.add_f64_bits(p.position.y);
      d.add_f64_bits(p.position.z);
      d.add_f64_bits(p.velocity);
      d.add_f64_bits(p.snr_db);
      d.add_i64(p.frame);
    }
  }
  return d.value();
}

std::uint64_t exact_digest(const nn::Tensor& tensor) {
  Digest d;
  d.add_u64(tensor.rows());
  d.add_u64(tensor.cols());
  for (const float v : tensor.vec()) d.add_u32(std::bit_cast<std::uint32_t>(v));
  return d.value();
}

}  // namespace gp::testkit
