#include "testkit/digest.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/error.hpp"

namespace gp::testkit {

double quantize(double v, double scale) {
  if (std::isnan(v)) return std::numeric_limits<double>::quiet_NaN();
  if (std::isinf(v)) return v;
  const double snapped = static_cast<double>(std::llround(v * scale)) / scale;
  return snapped == 0.0 ? 0.0 : snapped;  // normalise -0.0
}

Digest& Digest::add_bytes(const void* data, std::size_t n) {
  h_ = fnv::accumulate(h_, data, n);
  return *this;
}

Digest& Digest::add_u8(std::uint8_t v) { return add_bytes(&v, 1); }

Digest& Digest::add_u32(std::uint32_t v) {
  unsigned char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  return add_bytes(b, sizeof(b));
}

Digest& Digest::add_u64(std::uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  return add_bytes(b, sizeof(b));
}

Digest& Digest::add_i64(std::int64_t v) { return add_u64(static_cast<std::uint64_t>(v)); }

Digest& Digest::add_f64_bits(double v) { return add_u64(std::bit_cast<std::uint64_t>(v)); }

Digest& Digest::add_f64_quantized(double v, double scale) {
  if (std::isnan(v)) return add_u64(0x7FF8DEADBEEF0001ULL);  // canonical NaN marker
  if (std::isinf(v)) return add_u64(v > 0 ? 0x7FF0DEADBEEF0002ULL : 0xFFF0DEADBEEF0003ULL);
  // Clamp to the representable llround range before rounding: out-of-range
  // llround is UB. Snapshot stats live in sane physical ranges anyway.
  const double scaled = v * scale;
  constexpr double kMax = 9.2e18;
  if (scaled >= kMax) return add_u64(0x7FF0DEADBEEF0004ULL);
  if (scaled <= -kMax) return add_u64(0xFFF0DEADBEEF0005ULL);
  std::int64_t snapped = std::llround(scaled);
  if (snapped == 0) snapped = 0;  // -0 impossible on integers; kept for clarity
  return add_i64(snapped);
}

Digest& Digest::add_string(std::string_view s) {
  add_u64(s.size());
  return add_bytes(s.data(), s.size());
}

std::string Digest::hex() const {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) out[15 - i] = kHex[(h_ >> (4 * i)) & 0xF];
  return out;
}

std::uint64_t parse_digest_hex(std::string_view hex) {
  if (hex.size() != 16) throw SerializationError("digest hex must be 16 chars");
  std::uint64_t v = 0;
  for (const char c : hex) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      throw SerializationError("bad digest hex digit");
    }
  }
  return v;
}

}  // namespace gp::testkit
