// Structured, seed-driven fuzzing (gp::testkit).
//
// A deliberately small in-process mutation engine: corpus seeds (valid
// example payloads, committed under tests/corpus/) are mutated with
// bit-flips, byte substitutions, truncations, extensions and cross-seed
// splices, and each mutant is fed to a parser/decoder target. The contract
// under test is *crash-freedom and clean error propagation*:
//
//   * returning normally is fine (the mutant happened to stay valid);
//   * throwing gp::Error (or a subclass, e.g. SerializationError /
//     InvalidArgument) is fine — that is the typed-error contract;
//   * any other exception (std::bad_alloc from an unchecked length prefix,
//     std::length_error, ...) or UB caught by ASan/TSan is a bug.
//
// Determinism: the mutation stream is a pure function of (options.seed,
// corpus content), so a failing run reproduces exactly; the first failing
// payload is dumped hex-encoded for triage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace gp::testkit {

/// A target consumes one payload; see the contract above.
using FuzzTarget = std::function<void(const std::string& payload)>;

struct FuzzOptions {
  std::size_t iterations = 400;  ///< mutants per target
  std::uint64_t seed = 0x5EEDF00DULL;
  std::size_t max_mutations = 4;   ///< mutation ops applied per mutant
  std::size_t max_payload = 1 << 16;  ///< mutants are clipped to this size
};

struct FuzzOutcome {
  std::string target;
  std::size_t executions = 0;
  std::size_t accepted = 0;      ///< target returned normally
  std::size_t typed_errors = 0;  ///< target threw gp::Error
  std::vector<std::string> failures;  ///< diagnostic per contract violation

  bool clean() const { return failures.empty(); }
  /// One-line summary for logging.
  std::string summary() const;
};

/// Loads every regular file in `dir` (sorted by filename) as a seed payload.
/// Missing directory -> empty corpus (callers add built-in seeds anyway).
std::vector<std::string> load_corpus_dir(const std::string& dir);

/// Applies one random mutation op. `all_seeds` feeds the splice op.
std::string mutate(const std::string& input, const std::vector<std::string>& all_seeds,
                   Rng& rng, std::size_t max_payload);

/// Runs the engine: every seed verbatim first, then `options.iterations`
/// mutants. Exceptions are classified per the contract above.
FuzzOutcome fuzz_target(const std::string& name, const std::vector<std::string>& seeds,
                        const FuzzTarget& target, const FuzzOptions& options = {});

}  // namespace gp::testkit
