#include "testkit/snapshot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace gp::testkit {

namespace {

/// Formats a quantised stat value so that it round-trips through strtod.
std::string format_stat(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

void add_stat(StageSummary& s, Digest& d, const std::string& name, double value) {
  const double q = quantize(value);
  d.add_string(name);
  d.add_f64_quantized(value);
  s.stats.push_back({name, q});
}

struct Accumulator {
  double sum = 0.0;
  double sum_sq = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t n = 0;

  void push(double v) {
    if (n == 0) {
      min = max = v;
    } else {
      min = std::min(min, v);
      max = std::max(max, v);
    }
    sum += v;
    sum_sq += v * v;
    ++n;
  }
  double mean() const { return n > 0 ? sum / static_cast<double>(n) : 0.0; }
  double stddev() const {
    if (n == 0) return 0.0;
    const double m = mean();
    const double var = sum_sq / static_cast<double>(n) - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
  }
};

void digest_point(Digest& d, const RadarPoint& p) {
  d.add_f64_quantized(p.position.x);
  d.add_f64_quantized(p.position.y);
  d.add_f64_quantized(p.position.z);
  d.add_f64_quantized(p.velocity);
  d.add_f64_quantized(p.snr_db);
  d.add_i64(p.frame);
}

/// Shared point-cloud statistics block (frames and aggregated clouds).
void add_cloud_stats(StageSummary& s, Digest& d, const PointCloud& points) {
  Accumulator range, vx, vy, vz, vel, snr;
  for (const RadarPoint& p : points) {
    range.push(p.position.norm());
    vx.push(p.position.x);
    vy.push(p.position.y);
    vz.push(p.position.z);
    vel.push(std::abs(p.velocity));
    snr.push(p.snr_db);
  }
  add_stat(s, d, "points", static_cast<double>(points.size()));
  add_stat(s, d, "mean_range_m", range.mean());
  add_stat(s, d, "mean_x_m", vx.mean());
  add_stat(s, d, "mean_y_m", vy.mean());
  add_stat(s, d, "mean_z_m", vz.mean());
  add_stat(s, d, "extent_x_m", vx.max - vx.min);
  add_stat(s, d, "extent_y_m", vy.max - vy.min);
  add_stat(s, d, "extent_z_m", vz.max - vz.min);
  add_stat(s, d, "mean_abs_velocity_mps", vel.mean());
  add_stat(s, d, "velocity_spread_mps", vel.stddev());
  add_stat(s, d, "mean_snr_db", snr.mean());
}

void collect_json_paths(const obs::json::Value& v, const std::string& prefix,
                        std::vector<std::string>& out) {
  using Type = obs::json::Value::Type;
  switch (v.type) {
    case Type::kObject:
      if (v.obj.empty()) out.push_back(prefix + ":{}");
      for (const auto& [key, member] : v.obj) {
        collect_json_paths(member, prefix.empty() ? key : prefix + "." + key, out);
      }
      break;
    case Type::kArray:
      if (v.arr.empty()) {
        out.push_back(prefix + "[]:empty");
      } else {
        // Arrays are homogeneous in our documents; the first element pins
        // the element schema.
        collect_json_paths(v.arr.front(), prefix + "[]", out);
      }
      break;
    case Type::kString: out.push_back(prefix + ":s"); break;
    case Type::kNumber: out.push_back(prefix + ":n"); break;
    case Type::kBool: out.push_back(prefix + ":b"); break;
    case Type::kNull: out.push_back(prefix + ":0"); break;
  }
}

}  // namespace

const StageStat* StageSummary::find_stat(const std::string& name) const {
  for (const auto& stat : stats) {
    if (stat.name == name) return &stat;
  }
  return nullptr;
}

const StageSummary* Snapshot::find(const std::string& stage) const {
  for (const auto& s : stages) {
    if (s.stage == stage) return &s;
  }
  return nullptr;
}

StageSummary summarize_radar_config(const std::string& stage, const RadarConfig& config) {
  StageSummary s{stage, 0, {}};
  Digest d;
  // Scaled units keep every value inside the quantisation grid's range.
  add_stat(s, d, "carrier_ghz", config.carrier_hz / 1e9);
  add_stat(s, d, "bandwidth_ghz", config.bandwidth_hz() / 1e9);
  add_stat(s, d, "range_resolution_m", config.range_resolution);
  add_stat(s, d, "max_range_m", config.max_range());
  add_stat(s, d, "chirp_duration_us", config.chirp_duration_s() * 1e6);
  add_stat(s, d, "adc_rate_msps", config.adc_rate_hz() / 1e6);
  add_stat(s, d, "max_velocity_mps", config.max_velocity);
  add_stat(s, d, "velocity_resolution_mps", config.velocity_resolution());
  add_stat(s, d, "num_samples", static_cast<double>(config.num_samples));
  add_stat(s, d, "num_chirps", static_cast<double>(config.num_chirps));
  add_stat(s, d, "virtual_antennas", static_cast<double>(config.num_virtual_antennas()));
  add_stat(s, d, "angle_fft_size", static_cast<double>(config.angle_fft_size));
  add_stat(s, d, "frame_rate_hz", config.frame_rate);
  add_stat(s, d, "noise_sigma", config.noise_sigma);
  add_stat(s, d, "tx_gain", config.tx_gain);
  s.digest = d.value();
  return s;
}

StageSummary summarize_scene(const std::string& stage, const SceneSequence& scene) {
  StageSummary s{stage, 0, {}};
  Digest d;
  Accumulator per_frame, speed, rcs, y;
  for (const SceneFrame& frame : scene) {
    per_frame.push(static_cast<double>(frame.reflectors.size()));
    d.add_i64(frame.frame_index);
    d.add_f64_quantized(frame.timestamp);
    for (const Reflector& r : frame.reflectors) {
      speed.push(r.velocity.norm());
      rcs.push(r.rcs);
      y.push(r.position.y);
      d.add_f64_quantized(r.position.x);
      d.add_f64_quantized(r.position.y);
      d.add_f64_quantized(r.position.z);
      d.add_f64_quantized(r.velocity.x);
      d.add_f64_quantized(r.velocity.y);
      d.add_f64_quantized(r.velocity.z);
      d.add_f64_quantized(r.rcs);
    }
  }
  add_stat(s, d, "frames", static_cast<double>(scene.size()));
  add_stat(s, d, "reflectors_per_frame", per_frame.mean());
  add_stat(s, d, "mean_reflector_speed_mps", speed.mean());
  add_stat(s, d, "mean_rcs", rcs.mean());
  add_stat(s, d, "mean_y_m", y.mean());
  s.digest = d.value();
  return s;
}

StageSummary summarize_frames(const std::string& stage, const FrameSequence& frames) {
  StageSummary s{stage, 0, {}};
  Digest d;
  PointCloud all;
  std::size_t active = 0;
  for (const FrameCloud& frame : frames) {
    d.add_i64(frame.frame_index);
    d.add_f64_quantized(frame.timestamp);
    d.add_u64(frame.points.size());
    for (const RadarPoint& p : frame.points) digest_point(d, p);
    if (!frame.points.empty()) ++active;
    all.insert(all.end(), frame.points.begin(), frame.points.end());
  }
  add_stat(s, d, "frames", static_cast<double>(frames.size()));
  add_stat(s, d, "active_frame_fraction",
           frames.empty() ? 0.0 : static_cast<double>(active) / static_cast<double>(frames.size()));
  add_cloud_stats(s, d, all);
  s.digest = d.value();
  return s;
}

StageSummary summarize_gesture_cloud(const std::string& stage, const GestureCloud& cloud) {
  StageSummary s{stage, 0, {}};
  Digest d;
  for (const RadarPoint& p : cloud.points) digest_point(d, p);
  add_stat(s, d, "num_frames", static_cast<double>(cloud.num_frames));
  add_stat(s, d, "first_frame", static_cast<double>(cloud.first_frame));
  add_stat(s, d, "duration_s", cloud.duration_s);
  add_cloud_stats(s, d, cloud.points);
  s.digest = d.value();
  return s;
}

StageSummary summarize_features(const std::string& stage, const FeaturizedSample& sample) {
  StageSummary s{stage, 0, {}};
  Digest d;
  for (const float v : sample.positions) d.add_f64_quantized(v);
  for (const float v : sample.features) d.add_f64_quantized(v);
  add_stat(s, d, "num_points", static_cast<double>(sample.num_points));
  add_stat(s, d, "dims", static_cast<double>(sample.dims));
  // Per-channel means expose which feature channel a regression bent.
  for (std::size_t c = 0; c < sample.dims; ++c) {
    Accumulator acc;
    for (std::size_t i = 0; i < sample.num_points; ++i) {
      acc.push(sample.features[i * sample.dims + c]);
    }
    add_stat(s, d, "feature_mean_ch" + std::to_string(c), acc.mean());
  }
  s.digest = d.value();
  return s;
}

StageSummary summarize_tensor(const std::string& stage, const nn::Tensor& tensor) {
  StageSummary s{stage, 0, {}};
  Digest d;
  Accumulator acc, abs_acc;
  for (const float v : tensor.vec()) {
    acc.push(v);
    abs_acc.push(std::abs(v));
    d.add_f64_quantized(v);
  }
  add_stat(s, d, "rows", static_cast<double>(tensor.rows()));
  add_stat(s, d, "cols", static_cast<double>(tensor.cols()));
  add_stat(s, d, "mean", acc.mean());
  add_stat(s, d, "mean_abs", abs_acc.mean());
  add_stat(s, d, "min", acc.n > 0 ? acc.min : 0.0);
  add_stat(s, d, "max", acc.n > 0 ? acc.max : 0.0);
  s.digest = d.value();
  return s;
}

StageSummary summarize_dataset(const std::string& stage, const Dataset& dataset) {
  StageSummary s{stage, 0, {}};
  Digest d;
  Accumulator points, active, duration;
  for (const GestureSample& sample : dataset.samples) {
    d.add_i64(sample.gesture);
    d.add_i64(sample.user);
    d.add_i64(sample.environment);
    d.add_f64_quantized(sample.distance);
    d.add_f64_quantized(sample.speed);
    d.add_u64(sample.active_frames);
    for (const RadarPoint& p : sample.cloud.points) digest_point(d, p);
    points.push(static_cast<double>(sample.cloud.points.size()));
    active.push(static_cast<double>(sample.active_frames));
    duration.push(sample.cloud.duration_s);
  }
  add_stat(s, d, "samples", static_cast<double>(dataset.samples.size()));
  add_stat(s, d, "users", static_cast<double>(dataset.num_users()));
  add_stat(s, d, "gestures", static_cast<double>(dataset.num_gestures()));
  add_stat(s, d, "points_per_sample", points.mean());
  add_stat(s, d, "active_frames_mean", active.mean());
  add_stat(s, d, "duration_mean_s", duration.mean());
  s.digest = d.value();
  return s;
}

StageSummary summarize_json_schema(const std::string& stage, const obs::json::Value& doc) {
  StageSummary s{stage, 0, {}};
  std::vector<std::string> paths;
  collect_json_paths(doc, "", paths);
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  Digest d;
  for (const std::string& p : paths) d.add_string(p);
  add_stat(s, d, "schema_paths", static_cast<double>(paths.size()));
  s.digest = d.value();
  return s;
}

std::string to_text(const Snapshot& snapshot) {
  std::ostringstream out;
  out << "# gp golden snapshot v1\n";
  for (const StageSummary& s : snapshot.stages) {
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(s.digest));
    out << "stage " << s.stage << " digest=" << hex << "\n";
    for (const StageStat& stat : s.stats) {
      out << "  stat " << stat.name << " " << format_stat(stat.value) << "\n";
    }
  }
  return out.str();
}

Snapshot parse_text(const std::string& text) {
  Snapshot snapshot;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip trailing CR for robustness against CRLF checkouts.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "stage") {
      std::string name, digest_field;
      ls >> name >> digest_field;
      if (name.empty() || digest_field.rfind("digest=", 0) != 0) {
        throw SerializationError("snapshot: malformed stage line " + std::to_string(line_no));
      }
      StageSummary s;
      s.stage = name;
      s.digest = parse_digest_hex(digest_field.substr(7));
      snapshot.stages.push_back(std::move(s));
    } else if (kind == "stat") {
      if (snapshot.stages.empty()) {
        throw SerializationError("snapshot: stat before any stage at line " +
                                 std::to_string(line_no));
      }
      std::string name;
      double value = 0.0;
      ls >> name >> value;
      if (name.empty() || ls.fail()) {
        throw SerializationError("snapshot: malformed stat line " + std::to_string(line_no));
      }
      snapshot.stages.back().stats.push_back({name, value});
    } else {
      throw SerializationError("snapshot: unknown record '" + kind + "' at line " +
                               std::to_string(line_no));
    }
  }
  return snapshot;
}

SnapshotDiff diff_snapshots(const Snapshot& golden, const Snapshot& current) {
  SnapshotDiff diff;
  for (const StageSummary& cur : current.stages) {
    const StageSummary* gold = golden.find(cur.stage);
    if (gold == nullptr) {
      StageDrift drift;
      drift.stage = cur.stage;
      drift.missing_in_golden = true;
      drift.current_digest = cur.digest;
      diff.drifted.push_back(std::move(drift));
      continue;
    }
    if (gold->digest == cur.digest) continue;
    StageDrift drift;
    drift.stage = cur.stage;
    drift.golden_digest = gold->digest;
    drift.current_digest = cur.digest;
    for (const StageStat& stat : cur.stats) {
      const StageStat* gstat = gold->find_stat(stat.name);
      if (gstat == nullptr) {
        drift.stat_drifts.push_back({stat.name, std::nan(""), stat.value});
      } else if (gstat->value != stat.value) {
        drift.stat_drifts.push_back({stat.name, gstat->value, stat.value});
      }
    }
    for (const StageStat& gstat : gold->stats) {
      if (cur.find_stat(gstat.name) == nullptr) {
        drift.stat_drifts.push_back({gstat.name, gstat.value, std::nan("")});
      }
    }
    diff.drifted.push_back(std::move(drift));
  }
  for (const StageSummary& gold : golden.stages) {
    if (current.find(gold.stage) == nullptr) {
      StageDrift drift;
      drift.stage = gold.stage;
      drift.missing_in_current = true;
      drift.golden_digest = gold.digest;
      diff.drifted.push_back(std::move(drift));
    }
  }
  if (!diff.drifted.empty()) diff.first_divergent_stage = diff.drifted.front().stage;
  return diff;
}

std::string SnapshotDiff::report() const {
  if (identical()) return "snapshots identical\n";
  std::ostringstream out;
  out << "snapshot drift in " << drifted.size() << " stage(s); first divergent stage: "
      << first_divergent_stage << "\n";
  for (const StageDrift& drift : drifted) {
    out << "stage " << drift.stage << ":";
    if (drift.missing_in_golden) {
      out << " NEW (not in golden)\n";
      continue;
    }
    if (drift.missing_in_current) {
      out << " REMOVED (golden only)\n";
      continue;
    }
    char gh[17], ch[17];
    std::snprintf(gh, sizeof(gh), "%016llx", static_cast<unsigned long long>(drift.golden_digest));
    std::snprintf(ch, sizeof(ch), "%016llx", static_cast<unsigned long long>(drift.current_digest));
    out << " digest " << gh << " -> " << ch << "\n";
    if (drift.stat_drifts.empty()) {
      out << "    (summary stats unchanged: drift is below stat resolution "
             "but visible in the full digest)\n";
    }
    for (const StatDrift& sd : drift.stat_drifts) {
      out << "    " << sd.name << ": " << format_stat(sd.golden) << " -> "
          << format_stat(sd.current);
      if (std::isfinite(sd.golden) && std::isfinite(sd.current)) {
        out << "  (delta " << format_stat(sd.current - sd.golden) << ")";
      }
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace gp::testkit
