// Golden-file workflow (gp::testkit).
//
// check_golden() compares a freshly computed Snapshot against the checked-in
// golden under GoldenConfig::dir. In normal runs a mismatch fails with a
// reviewable per-stage diff (first divergent stage named). In update mode
// (--update-golden on the test command line, or GP_UPDATE_GOLDEN=1) the
// golden file is rewritten instead and the same diff is printed so the
// regeneration is reviewable before committing.
#pragma once

#include <string>

#include "testkit/snapshot.hpp"

namespace gp::testkit {

struct GoldenConfig {
  std::string dir;      ///< directory holding <name>.golden files
  bool update = false;  ///< rewrite goldens instead of failing on drift
};

/// Builds a GoldenConfig from the environment and argv:
///  * dir: GP_GOLDEN_DIR env var (required unless `default_dir` is given);
///  * update: --update-golden anywhere in argv, or GP_UPDATE_GOLDEN=1.
GoldenConfig golden_config_from_env(int argc, const char* const* argv,
                                    const std::string& default_dir = "");

struct GoldenOutcome {
  bool ok = false;       ///< matched, or was (re)written in update mode
  bool updated = false;  ///< golden file was rewritten
  bool created = false;  ///< golden file did not exist and was created
  SnapshotDiff diff;
  std::string message;   ///< printable report (diff / instructions)
};

/// Compares `current` against `<config.dir>/<name>.golden`.
GoldenOutcome check_golden(const GoldenConfig& config, const std::string& name,
                           const Snapshot& current);

}  // namespace gp::testkit
