#include "testkit/seeds.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "cluster/wire.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "datasets/cache.hpp"
#include "nn/quant.hpp"
#include "nn/serialize_nn.hpp"
#include "pointcloud/io.hpp"
#include "enroll/buffer.hpp"
#include "serve/config.hpp"
#include "system/open_set.hpp"

namespace gp::testkit {

namespace {

RadarPoint seed_point(Rng& rng, int frame) {
  RadarPoint p;
  p.position.x = rng.uniform(-0.5, 0.5);
  p.position.y = rng.uniform(0.8, 1.6);
  p.position.z = rng.uniform(-0.3, 0.6);
  p.velocity = rng.uniform(-1.5, 1.5);
  p.snr_db = rng.uniform(8.0, 25.0);
  p.frame = frame;
  return p;
}

}  // namespace

std::string dataset_seed() {
  Rng rng(0xC0FFEE01ULL, 11);
  Dataset dataset;
  dataset.spec.name = "fuzz_seed";
  dataset.spec.num_users = 2;
  dataset.users.resize(2);
  dataset.users[0].id = 0;
  dataset.users[1].id = 1;
  dataset.spec.gestures.resize(2);
  for (int user = 0; user < 2; ++user) {
    for (int gesture = 0; gesture < 2; ++gesture) {
      GestureSample sample;
      sample.gesture = gesture;
      sample.user = user;
      sample.environment = 0;
      sample.distance = 1.0 + 0.5 * user;
      sample.speed = 1.0;
      sample.active_frames = 3;
      sample.cloud.num_frames = 3;
      sample.cloud.first_frame = 5;
      sample.cloud.duration_s = 0.3;
      for (int f = 0; f < 3; ++f) {
        for (int i = 0; i < 4; ++i) sample.cloud.points.push_back(seed_point(rng, f));
      }
      dataset.samples.push_back(std::move(sample));
    }
  }
  std::ostringstream out(std::ios::binary);
  write_dataset(out, dataset);
  return out.str();
}

std::string recording_seed() {
  Rng rng(0xC0FFEE02ULL, 12);
  FrameSequence frames;
  for (int f = 0; f < 5; ++f) {
    FrameCloud frame;
    frame.frame_index = f;
    frame.timestamp = 0.1 * f;
    const int n = 2 + (f % 3);
    for (int i = 0; i < n; ++i) frame.points.push_back(seed_point(rng, f));
    frames.push_back(std::move(frame));
  }
  std::ostringstream out(std::ios::binary);
  save_recording(out, frames);
  return out.str();
}

std::vector<nn::Parameter> make_seed_parameters() {
  std::vector<nn::Parameter> params;
  params.push_back({"fc.weight", nn::Tensor(4, 3), nn::Tensor(4, 3)});
  params.push_back({"fc.bias", nn::Tensor(1, 4), nn::Tensor(1, 4)});
  Rng rng(0xC0FFEE03ULL, 13);
  for (auto& p : params) p.value.randn(rng, 0.1);
  return params;
}

std::string params_seed() {
  std::vector<nn::Parameter> params = make_seed_parameters();
  std::vector<nn::Parameter*> ptrs;
  for (auto& p : params) ptrs.push_back(&p);
  std::ostringstream out(std::ios::binary);
  nn::save_parameters(out, ptrs);
  return out.str();
}

std::string report_json_seed() {
  // Hand-written (rather than captured from obs::write_run_report_json) so
  // the byte content is independent of process history and wall-clock —
  // the committed corpus must regenerate identically. The shape mirrors the
  // REPORT_*.json schema pinned by the golden tests.
  return R"({
  "name": "fuzz_seed",
  "generated_unix_ms": 0,
  "counters": [
    {"name": "gp.dataset.cache.hits", "value": 2},
    {"name": "gp.radar.frames", "value": 128}
  ],
  "timers": [
    {"name": "pipeline.featurize", "count": 16, "total_ms": 3.25, "mean_ms": 0.203125,
     "p50_ms": 0.19, "p95_ms": 0.31, "p99_ms": 0.4}
  ],
  "stages": [
    {"name": "radar.process_scene", "min_depth": 0, "count": 8, "total_ms": 12.5},
    {"name": "pipeline.segment", "min_depth": 1, "count": 8, "total_ms": 1.75}
  ]
})";
}

std::string quant_tables_seed() {
  Rng rng(0xC0FFEE04ULL, 14);
  std::vector<nn::QuantLinearTables> tables;
  for (const auto& [in, out] : {std::pair<std::size_t, std::size_t>{6, 4}, {4, 3}}) {
    std::vector<float> w(in * out);
    for (float& v : w) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    tables.push_back(nn::quantize_folded(w, in, out));
  }
  std::ostringstream out(std::ios::binary);
  nn::save_quant_tables(out, tables);
  return out.str();
}

std::string wire_frame_seed() {
  Rng rng(0xC0FFEE05ULL, 15);
  FrameCloud frame;
  frame.frame_index = 7;
  frame.timestamp = 0.7;
  for (int i = 0; i < 5; ++i) frame.points.push_back(seed_point(rng, 7));
  cluster::Message msg;
  msg.type = cluster::MsgType::kFrame;
  msg.seq = 3;
  msg.payload = cluster::encode_wire_frame(0xF0225EEDULL, frame);
  return cluster::encode_message(msg);
}

std::string wire_results_seed() {
  std::vector<serve::ServeResult> results(2);
  results[0].session_id = 11;
  results[0].segment_ordinal = 2;
  results[0].request_id = 0x5EED;
  results[0].gesture = 1;
  results[0].user = 0;
  results[0].gesture_margin = 0.125;
  results[0].user_margin = 0.0625;
  results[0].model_version = 1;
  results[1].session_id = 12;
  results[1].abstained = true;
  cluster::Message msg;
  msg.type = cluster::MsgType::kResults;
  msg.seq = 4;
  msg.payload = cluster::encode_wire_results(results);
  return cluster::encode_message(msg);
}

std::string enroll_buffer_seed() {
  Rng rng(0xC0FFEE07ULL, 21);
  enroll::EnrollmentBuffer::Config config;
  config.max_candidates = 3;
  config.buffer_cap = 4;
  config.candidate_radius = 2.0;
  enroll::EnrollmentBuffer buffer(config);
  for (int i = 0; i < 5; ++i) {
    enroll::EnrollObservation obs;
    obs.session_id = static_cast<std::uint64_t>(1 + i % 2);
    obs.ordinal = static_cast<std::uint64_t>(i);
    obs.gesture = i % 2;
    for (std::size_t d = 0; d < kBiometricDims; ++d) {
      obs.raw[d] = rng.uniform(0.0, 2.0);
      // Two well-separated clusters so the seed exercises both the join and
      // the found-new-candidate paths.
      obs.normalized[d] = rng.uniform(-0.3, 0.3) + (i % 2 == 0 ? 0.0 : 8.0);
    }
    obs.cloud.num_frames = 4;
    obs.cloud.first_frame = 2;
    obs.cloud.duration_s = 0.4;
    for (int pt = 0; pt < 6; ++pt) obs.cloud.points.push_back(seed_point(rng, 2 + pt / 2));
    (void)buffer.admit(std::move(obs));
  }
  std::ostringstream out(std::ios::binary);
  buffer.save(out, kEnrollSeedFingerprint);
  return out.str();
}

std::string biometric_gallery_seed() {
  Rng rng(0xC0FFEE08ULL, 22);
  std::vector<BiometricStats> raw;
  std::vector<int> gestures;
  for (int i = 0; i < 12; ++i) {
    BiometricStats stats{};
    for (std::size_t d = 0; d < kBiometricDims; ++d) stats[d] = rng.uniform(0.2, 3.0);
    raw.push_back(stats);
    gestures.push_back(i % 2);
  }
  BiometricGallery gallery;
  gallery.calibrate(raw, gestures);
  std::ostringstream out(std::ios::binary);
  gallery.save(out);
  return out.str();
}

std::vector<std::string> write_corpus(const std::string& dir) {
  std::filesystem::create_directories(dir);
  const std::vector<std::pair<std::string, std::string>> entries = {
      {"dataset_gpds.bin", dataset_seed()},
      {"recording_gprc.bin", recording_seed()},
      {"params_gpnn.bin", params_seed()},
      {"report.json", report_json_seed()},
      {"quant_gpq8.bin", quant_tables_seed()},
      {"wire_frame_gpwm.bin", wire_frame_seed()},
      {"wire_results_gpwm.bin", wire_results_seed()},
      {"enroll_gpeb.bin", enroll_buffer_seed()},
      {"gallery_gpbg.bin", biometric_gallery_seed()},
  };
  std::vector<std::string> names;
  for (const auto& [name, payload] : entries) {
    const std::string path = dir + "/" + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("cannot write corpus seed: " + path);
    out << payload;
    names.push_back(name);
  }
  return names;
}

}  // namespace gp::testkit
