// Golden-snapshot summaries of pipeline stage outputs (gp::testkit).
//
// A Snapshot is an *ordered* list of StageSummary records — one per pipeline
// stage, in data-flow order. Each summary carries
//   * a canonical digest of the stage output, quantised to 1e-6 so the last
//     few build-dependent ulps never flip it while real physical drift does;
//   * a small set of named, quantised summary statistics (point counts, mean
//     range, Doppler spread, ...) so a golden diff reports not just *that* a
//     stage drifted but *by how much*.
//
// The text format is line-oriented and diff-friendly:
//   stage <name> digest=<16 hex>
//     stat <name> <value>
// and round-trips through to_text()/parse_text(). diff_snapshots() compares
// two snapshots in pipeline order and names the FIRST divergent stage — the
// stage where a refactor started bending the physics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "datasets/dataset.hpp"
#include "kinematics/performer.hpp"
#include "nn/tensor.hpp"
#include "obs/json.hpp"
#include "pipeline/preprocessor.hpp"
#include "pointcloud/point.hpp"
#include "radar/config.hpp"
#include "testkit/digest.hpp"

namespace gp::testkit {

/// One named, quantised summary statistic of a stage output.
struct StageStat {
  std::string name;
  double value = 0.0;  ///< already quantised (kDefaultQuantScale grid)
};

/// Digest + stats for one pipeline stage.
struct StageSummary {
  std::string stage;
  std::uint64_t digest = 0;
  std::vector<StageStat> stats;

  const StageStat* find_stat(const std::string& name) const;
};

/// Ordered collection of stage summaries (pipeline order).
struct Snapshot {
  std::vector<StageSummary> stages;

  void add(StageSummary summary) { stages.push_back(std::move(summary)); }
  const StageSummary* find(const std::string& stage) const;
};

// ---- stage summarisers ----------------------------------------------------
// All values are quantised with kDefaultQuantScale before hashing/storing.

StageSummary summarize_radar_config(const std::string& stage, const RadarConfig& config);
StageSummary summarize_scene(const std::string& stage, const SceneSequence& scene);
StageSummary summarize_frames(const std::string& stage, const FrameSequence& frames);
StageSummary summarize_gesture_cloud(const std::string& stage, const GestureCloud& cloud);
StageSummary summarize_features(const std::string& stage, const FeaturizedSample& sample);
StageSummary summarize_tensor(const std::string& stage, const nn::Tensor& tensor);
StageSummary summarize_dataset(const std::string& stage, const Dataset& dataset);

/// Summarises the *schema* of a JSON document: the digest covers the sorted
/// set of key paths with a type letter per path (arrays descend into their
/// first element), so value drift is invisible but any added / removed /
/// retyped field changes the digest. Used to pin the REPORT/BENCH JSON
/// schemas emitted by the obs layer and the bench harness.
StageSummary summarize_json_schema(const std::string& stage, const obs::json::Value& doc);

// ---- text round-trip ------------------------------------------------------

std::string to_text(const Snapshot& snapshot);
/// Throws gp::SerializationError on malformed snapshot text.
Snapshot parse_text(const std::string& text);

// ---- diffing --------------------------------------------------------------

struct StatDrift {
  std::string name;
  double golden = 0.0;
  double current = 0.0;
};

struct StageDrift {
  std::string stage;
  bool missing_in_golden = false;
  bool missing_in_current = false;
  std::uint64_t golden_digest = 0;
  std::uint64_t current_digest = 0;
  std::vector<StatDrift> stat_drifts;  ///< stats that moved off the grid point
};

struct SnapshotDiff {
  std::vector<StageDrift> drifted;   ///< pipeline order (current order first)
  std::string first_divergent_stage; ///< empty when identical

  bool identical() const { return drifted.empty(); }
  /// Human-readable, reviewable report: one block per drifted stage with
  /// old/new stats and deltas; the first divergent stage is called out.
  std::string report() const;
};

SnapshotDiff diff_snapshots(const Snapshot& golden, const Snapshot& current);

}  // namespace gp::testkit
