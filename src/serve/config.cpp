#include "serve/config.hpp"

#include <cstdlib>

#include "common/logging.hpp"

namespace gp::serve {

namespace {

/// Parses a positive integer env var; warns and keeps `fallback` on junk.
std::uint64_t env_u64(const char* name, std::uint64_t fallback, std::uint64_t min_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0' || parsed < min_value) {
    log_warn() << "ignoring invalid " << name << "='" << v << "' (want an integer >= "
               << min_value << ")";
    return fallback;
  }
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace

ServeConfig ServeConfig::from_env() { return from_env(ServeConfig{}); }

ServeConfig ServeConfig::from_env(ServeConfig base) {
  base.shards = static_cast<std::size_t>(env_u64("GP_SERVE_SHARDS", base.shards, 1));
  base.batch_max = static_cast<std::size_t>(env_u64("GP_SERVE_BATCH_MAX", base.batch_max, 1));
  base.batch_wait_us = env_u64("GP_SERVE_BATCH_WAIT_US", base.batch_wait_us, 0);
  base.queue_cap = static_cast<std::size_t>(env_u64("GP_SERVE_QUEUE_CAP", base.queue_cap, 1));
  base.stale_after_ticks = env_u64("GP_SERVE_STALE_TICKS", base.stale_after_ticks, 0);
  if (auto faults = faults::FaultConfig::from_env()) base.session_faults = *faults;
  base.health = health::HealthConfig::from_env(base.health);
  base.quant = nn::quant_mode_from_env(base.quant);
  base.enroll.enabled = env_u64("GP_ENROLL", base.enroll.enabled ? 1 : 0, 0) != 0;
  base.enroll.k_segments =
      static_cast<std::size_t>(env_u64("GP_ENROLL_K", base.enroll.k_segments, 1));
  base.enroll.max_candidates = static_cast<std::size_t>(
      env_u64("GP_ENROLL_MAX_CANDIDATES", base.enroll.max_candidates, 1));
  base.enroll.background =
      env_u64("GP_ENROLL_BACKGROUND", base.enroll.background ? 1 : 0, 0) != 0;
  return base;
}

const char* admission_name(Admission a) {
  switch (a) {
    case Admission::kAccepted: return "accepted";
    case Admission::kRejectedQueueFull: return "rejected_queue_full";
    case Admission::kRejectedNoWorker: return "rejected_no_worker";
  }
  return "?";
}

}  // namespace gp::serve
