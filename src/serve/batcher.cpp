#include "serve/batcher.hpp"

#include <map>
#include <utility>

#include "common/math_utils.hpp"
#include "gesidnet/trainer.hpp"
#include "nn/loss.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gp::serve {

namespace {

/// Averages the softmax rows [begin, begin+rounds) of `probs` into a
/// per-class posterior (the TTA average classify() computes).
std::vector<double> average_rows(const nn::Tensor& probs, std::size_t begin,
                                 std::size_t rounds, std::size_t classes) {
  std::vector<double> avg(classes, 0.0);
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t c = 0; c < classes; ++c) {
      avg[c] += probs.at(begin + r, c) / static_cast<double>(rounds);
    }
  }
  return avg;
}

}  // namespace

MicroBatcher::MicroBatcher(const ServeConfig& config, ModelRegistry& registry)
    : config_(&config), registry_(&registry) {}

void MicroBatcher::submit(std::vector<PendingSegment> segments) {
  if (segments.empty()) return;
  const Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  for (PendingSegment& segment : segments) {
    queue_.push_back(Entry{std::move(segment), now});
  }
}

bool MicroBatcher::should_flush(Clock::time_point now) const {
  if (queue_.empty()) return false;
  if (queue_.size() >= config_->batch_max) return true;
  const auto age =
      std::chrono::duration_cast<std::chrono::microseconds>(now - queue_.front().arrived);
  return static_cast<std::uint64_t>(age.count()) >= config_->batch_wait_us;
}

std::vector<ServeResult> MicroBatcher::poll(bool force) {
  std::vector<ServeResult> results;
  for (;;) {
    std::vector<Entry> batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) break;
      if (!force && !should_flush(Clock::now())) break;
      const std::size_t take = std::min(queue_.size(), config_->batch_max);
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    std::vector<ServeResult> flushed = run_batch(std::move(batch));
    for (ServeResult& r : flushed) results.push_back(std::move(r));
  }
  return results;
}

std::vector<ServeResult> MicroBatcher::run_batch(std::vector<Entry> batch) {
  GP_SPAN("serve.batch");
  const Clock::time_point start = Clock::now();
  obs::histogram("gp.serve.batch.size").observe(static_cast<double>(batch.size()));

  // One snapshot for the whole batch: a publish() landing mid-flush can
  // never split a batch across model generations.
  std::shared_ptr<ModelSnapshot> snapshot = registry_->current();
  const std::uint64_t version = snapshot != nullptr ? snapshot->version : 0;

  std::vector<ServeResult> results(batch.size());
  Stats delta;
  delta.batches = 1;
  delta.segments = batch.size();

  // Pass 0: typed dispositions that never touch a model. `live` keeps the
  // batch indices that go through inference.
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const PendingSegment& seg = batch[i].segment;
    ServeResult& r = results[i];
    r.session_id = seg.session_id;
    r.segment_ordinal = seg.ordinal;
    r.model_version = version;
    if (snapshot == nullptr) {
      // No published model: a typed refusal, not an exception — the client
      // sees kAbstain and the tally lands in no_model.
      r.gesture = kAbstain;
      r.user = kAbstain;
      r.abstained = true;
      ++delta.no_model;
      GP_COUNTER_ADD("gp.serve.no_model", 1);
    } else if (seg.quality != SegmentQuality::kGood || seg.empty_cloud ||
               seg.variants.empty()) {
      // The serve path always refuses segments that failed preprocessing
      // guards (stricter than classify(), which only gates when the margin
      // is armed): a streaming client is told *why* via quality_rejected.
      r.gesture = kAbstain;
      r.user = kAbstain;
      r.abstained = true;
      r.quality_rejected = true;
      ++delta.quality_rejected;
      GP_COUNTER_ADD("gp.serve.rejected.quality", 1);
    } else {
      live.push_back(i);
    }
  }

  if (!live.empty()) {
    GesturePrintSystem& system = *snapshot->system;
    const GesturePrintConfig& cfg = system.config();
    const std::size_t num_gestures = system.num_gestures();
    const std::size_t num_users = system.num_users();

    // Gesture pass: every live segment's TTA variants in one forward.
    std::vector<FeaturizedSample> rows;
    std::vector<std::size_t> row_begin(live.size(), 0);
    for (std::size_t k = 0; k < live.size(); ++k) {
      row_begin[k] = rows.size();
      const PendingSegment& seg = batch[live[k]].segment;
      rows.insert(rows.end(), seg.variants.begin(), seg.variants.end());
    }
    const nn::Tensor gesture_probs =
        nn::softmax(predict_logits(system.gesture_model(), rows));

    // Per-segment averaged posterior → gesture + margin gate; group the
    // survivors by the user-ID model they route to.
    std::map<std::size_t, std::vector<std::size_t>> by_model;  ///< model idx → k
    for (std::size_t k = 0; k < live.size(); ++k) {
      const PendingSegment& seg = batch[live[k]].segment;
      ServeResult& r = results[live[k]];
      const std::vector<double> avg =
          average_rows(gesture_probs, row_begin[k], seg.variants.size(), num_gestures);
      r.gesture = static_cast<int>(argmax(avg));
      r.gesture_margin = top2_margin(avg);
      if (should_abstain(avg, cfg.abstain_margin)) {
        // Ambiguous gesture ⇒ serialized routing would pick the wrong ID
        // model; abstain on both heads (same policy as classify()).
        r.gesture = kAbstain;
        r.user = kAbstain;
        r.abstained = true;
        continue;
      }
      const std::size_t route = cfg.mode == IdentificationMode::kParallel
                                    ? 0
                                    : static_cast<std::size_t>(r.gesture);
      if (system.user_model(route) != nullptr) {
        by_model[route].push_back(k);
      }
    }

    // User-ID passes: one batched forward per routed model, ascending model
    // index (deterministic; results are row-local so grouping order cannot
    // change any segment's answer).
    for (const auto& [model_idx, members] : by_model) {
      std::vector<FeaturizedSample> group_rows;
      std::vector<std::size_t> group_begin(members.size(), 0);
      for (std::size_t m = 0; m < members.size(); ++m) {
        group_begin[m] = group_rows.size();
        const PendingSegment& seg = batch[live[members[m]]].segment;
        group_rows.insert(group_rows.end(), seg.variants.begin(), seg.variants.end());
      }
      const nn::Tensor user_probs =
          nn::softmax(predict_logits(*system.user_model(model_idx), group_rows));
      for (std::size_t m = 0; m < members.size(); ++m) {
        const std::size_t k = members[m];
        const PendingSegment& seg = batch[live[k]].segment;
        ServeResult& r = results[live[k]];
        const std::vector<double> avg =
            average_rows(user_probs, group_begin[m], seg.variants.size(), num_users);
        r.user = static_cast<int>(argmax(avg));
        r.user_margin = top2_margin(avg);
        if (should_abstain(avg, cfg.abstain_margin)) {
          r.user = kAbstain;
          r.abstained = true;
        }
      }
    }
  }

  for (const ServeResult& r : results) {
    if (r.abstained) ++delta.abstained;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.batches += delta.batches;
    stats_.segments += delta.segments;
    stats_.quality_rejected += delta.quality_rejected;
    stats_.abstained += delta.abstained;
    stats_.no_model += delta.no_model;
  }
  GP_COUNTER_ADD("gp.serve.batches", 1);
  GP_COUNTER_ADD("gp.serve.segments", batch.size());
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start);
  obs::histogram("gp.serve.batch.latency_us").observe(static_cast<double>(elapsed.count()));
  return results;
}

std::size_t MicroBatcher::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

MicroBatcher::Stats MicroBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace gp::serve
