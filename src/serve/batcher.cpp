#include "serve/batcher.hpp"

#include <utility>

#include "common/logging.hpp"
#include "common/math_utils.hpp"
#include "gesidnet/trainer.hpp"
#include "nn/loss.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gp::serve {

namespace {

/// ns → µs with saturation (health timestamps may be 0 = unknown).
std::uint64_t sat_us(std::uint64_t later_ns, std::uint64_t earlier_ns) {
  if (earlier_ns == 0 || later_ns <= earlier_ns) return 0;
  return (later_ns - earlier_ns) / 1000;
}

/// Averages the softmax rows [begin, begin+rounds) of `probs` into the
/// per-class posterior (the TTA average classify() computes), reusing `avg`.
void average_rows_into(const nn::Tensor& probs, std::size_t begin, std::size_t rounds,
                       std::size_t classes, std::vector<double>& avg) {
  avg.assign(classes, 0.0);
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t c = 0; c < classes; ++c) {
      avg[c] += probs.at(begin + r, c) / static_cast<double>(rounds);
    }
  }
}

}  // namespace

MicroBatcher::MicroBatcher(const ServeConfig& config, ModelRegistry& registry,
                           health::HealthMonitor* monitor)
    : config_(&config), registry_(&registry), monitor_(monitor) {}

void MicroBatcher::submit(std::vector<SegmentPtr>& segments) {
  if (segments.empty()) return;
  const Clock::time_point now = Clock::now();
  const std::uint64_t submit_ns =
      monitor_ != nullptr && monitor_->enabled() ? monotonic_ns() : 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (SegmentPtr& segment : segments) {
    queue_.push_back(Entry{std::move(segment), now, submit_ns});
  }
  segments.clear();
}

bool MicroBatcher::should_flush(Clock::time_point now) const {
  const std::size_t depth = queue_.size() - queue_head_;
  if (depth == 0) return false;
  if (depth >= config_->batch_max) return true;
  const auto age = std::chrono::duration_cast<std::chrono::microseconds>(
      now - queue_[queue_head_].arrived);
  return static_cast<std::uint64_t>(age.count()) >= config_->batch_wait_us;
}

std::vector<ServeResult> MicroBatcher::poll(bool force) {
  std::vector<ServeResult> results;
  for (;;) {
    scratch_.entries.clear();
    {
      std::lock_guard<std::mutex> lock(mu_);
      const std::size_t depth = queue_.size() - queue_head_;
      if (depth == 0) break;
      if (!force && !should_flush(Clock::now())) break;
      const std::size_t take = std::min(depth, config_->batch_max);
      for (std::size_t i = 0; i < take; ++i) {
        scratch_.entries.push_back(std::move(queue_[queue_head_ + i]));
      }
      queue_head_ += take;
      if (queue_head_ == queue_.size()) {
        // Ring emptied: recycle the slot storage (moved-out entries hold
        // null SegmentPtrs, so clear() frees nothing).
        queue_.clear();
        queue_head_ = 0;
      }
    }
    run_batch_into(results);
    scratch_.entries.clear();  // returns the pooled segments
  }
  return results;
}

void MicroBatcher::run_batch_into(std::vector<ServeResult>& results) {
  GP_SPAN("serve.batch");
  const Clock::time_point start = Clock::now();
  const bool health_on = monitor_ != nullptr && monitor_->enabled();
  const std::uint64_t flush_start_ns = health_on ? monotonic_ns() : 0;
  std::uint64_t forward_ns = 0;  ///< fused model passes (shared by the batch)
  std::vector<Entry>& batch = scratch_.entries;
  static obs::Histogram& batch_size_hist = obs::histogram("gp.serve.batch.size");
  batch_size_hist.observe(static_cast<double>(batch.size()));

  // One snapshot for the whole batch: a publish() landing mid-flush can
  // never split a batch across model generations.
  std::shared_ptr<ModelSnapshot> snapshot = registry_->current();
  const std::uint64_t version = snapshot != nullptr ? snapshot->version : 0;

  const std::size_t base = results.size();
  results.resize(base + batch.size());
  Stats delta;
  delta.batches = 1;
  delta.segments = batch.size();

  // Pass 0: typed dispositions that never touch a model. `live` keeps the
  // batch indices that go through inference.
  std::vector<std::size_t>& live = scratch_.live;
  live.clear();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const PendingSegment& seg = *batch[i].segment;
    ServeResult& r = results[base + i];
    r = ServeResult{};
    r.session_id = seg.session_id;
    r.segment_ordinal = seg.ordinal;
    r.request_id = seg.request_id;
    r.model_version = version;
    if (snapshot == nullptr) {
      // No published model: a typed refusal, not an exception — the client
      // sees kAbstain and the tally lands in no_model.
      r.gesture = kAbstain;
      r.user = kAbstain;
      r.abstained = true;
      ++delta.no_model;
      GP_COUNTER_ADD("gp.serve.no_model", 1);
    } else if (seg.quality != SegmentQuality::kGood || seg.empty_cloud ||
               seg.variant_count == 0) {
      // The serve path always refuses segments that failed preprocessing
      // guards (stricter than classify(), which only gates when the margin
      // is armed): a streaming client is told *why* via quality_rejected.
      r.gesture = kAbstain;
      r.user = kAbstain;
      r.abstained = true;
      r.quality_rejected = true;
      ++delta.quality_rejected;
      GP_COUNTER_ADD("gp.serve.rejected.quality", 1);
    } else {
      live.push_back(i);
    }
  }

  if (!live.empty()) {
    GesturePrintSystem& system = *snapshot->system;
    const GesturePrintConfig& cfg = system.config();
    const std::size_t num_gestures = system.num_gestures();
    const std::size_t num_users = system.num_users();

    // Gesture pass: every live segment's TTA variants in one forward. The
    // row table copies into recycled slots (sample buffers keep capacity).
    mem::SlotVector<FeaturizedSample>& rows = scratch_.rows;
    std::vector<std::size_t>& row_begin = scratch_.row_begin;
    rows.clear();
    row_begin.clear();
    for (const std::size_t i : live) {
      row_begin.push_back(rows.size());
      for (const FeaturizedSample& sample : batch[i].segment->active_variants()) {
        rows.emplace_back() = sample;
      }
    }
    {
      const std::uint64_t f0 = health_on ? monotonic_ns() : 0;
      predict_logits_into(system.gesture_model(), rows.span(), scratch_.gesture_logits);
      nn::softmax_into(scratch_.gesture_logits, scratch_.gesture_probs);
      if (health_on) forward_ns += monotonic_ns() - f0;
    }
    const nn::Tensor& gesture_probs = scratch_.gesture_probs;

    // Per-segment averaged posterior → gesture + margin gate; group the
    // survivors by the user-ID model they route to. Routing lists are
    // recycled vectors indexed by model — iterated in ascending model index,
    // the same order the std::map-based grouping produced.
    const std::size_t route_count =
        cfg.mode == IdentificationMode::kParallel ? 1 : num_gestures;
    std::vector<std::vector<std::size_t>>& by_model = scratch_.by_model;
    if (by_model.size() < route_count) by_model.resize(route_count);
    for (auto& members : by_model) members.clear();
    for (std::size_t k = 0; k < live.size(); ++k) {
      const PendingSegment& seg = *batch[live[k]].segment;
      ServeResult& r = results[base + live[k]];
      average_rows_into(gesture_probs, row_begin[k], seg.variant_count, num_gestures,
                        scratch_.avg);
      r.gesture = static_cast<int>(argmax(scratch_.avg));
      r.gesture_margin = top2_margin(scratch_.avg);
      if (should_abstain(scratch_.avg, cfg.abstain_margin)) {
        // Ambiguous gesture ⇒ serialized routing would pick the wrong ID
        // model; abstain on both heads (same policy as classify()).
        r.gesture = kAbstain;
        r.user = kAbstain;
        r.abstained = true;
        continue;
      }
      const std::size_t route = cfg.mode == IdentificationMode::kParallel
                                    ? 0
                                    : static_cast<std::size_t>(r.gesture);
      if (route < route_count && system.user_model(route) != nullptr) {
        by_model[route].push_back(k);
      }
    }

    // User-ID passes: one batched forward per routed model, ascending model
    // index (deterministic; results are row-local so grouping order cannot
    // change any segment's answer).
    for (std::size_t model_idx = 0; model_idx < route_count; ++model_idx) {
      const std::vector<std::size_t>& members = by_model[model_idx];
      if (members.empty()) continue;
      mem::SlotVector<FeaturizedSample>& group_rows = scratch_.group_rows;
      std::vector<std::size_t>& group_begin = scratch_.group_begin;
      group_rows.clear();
      group_begin.clear();
      for (const std::size_t k : members) {
        group_begin.push_back(group_rows.size());
        for (const FeaturizedSample& sample : batch[live[k]].segment->active_variants()) {
          group_rows.emplace_back() = sample;
        }
      }
      {
        const std::uint64_t f0 = health_on ? monotonic_ns() : 0;
        predict_logits_into(*system.user_model(model_idx), group_rows.span(),
                            scratch_.user_logits);
        nn::softmax_into(scratch_.user_logits, scratch_.user_probs);
        if (health_on) forward_ns += monotonic_ns() - f0;
      }
      for (std::size_t m = 0; m < members.size(); ++m) {
        const std::size_t k = members[m];
        const PendingSegment& seg = *batch[live[k]].segment;
        ServeResult& r = results[base + live[k]];
        average_rows_into(scratch_.user_probs, group_begin[m], seg.variant_count, num_users,
                          scratch_.avg);
        r.user = static_cast<int>(argmax(scratch_.avg));
        r.user_margin = top2_margin(scratch_.avg);
        if (should_abstain(scratch_.avg, cfg.abstain_margin)) {
          r.user = kAbstain;
          r.abstained = true;
        }
      }
    }
  }

  // Open-set enrollment gate (gp::enroll, DESIGN.md §13): after the user
  // pass, every recognised segment's biometric descriptor is scored against
  // the novelty gallery. A rejected segment keeps its gesture answer but has
  // the user answer withheld — the hook buffers it as enrollment evidence.
  // gate() is read-only within the tick, so the verdict is independent of
  // shard count and batch composition.
  if (enroll_ != nullptr) {
    for (const std::size_t i : live) {
      const PendingSegment& seg = *batch[i].segment;
      ServeResult& r = results[base + i];
      if (r.gesture < 0 || !seg.has_biometrics) continue;
      if (enroll_->gate(seg, r)) {
        r.user = kAbstain;
        r.abstained = true;
        r.novelty_rejected = true;
        ++delta.novelty_rejected;
        GP_COUNTER_ADD("gp.serve.rejected.novelty", 1);
      }
    }
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (results[base + i].abstained) ++delta.abstained;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.batches += delta.batches;
    stats_.segments += delta.segments;
    stats_.quality_rejected += delta.quality_rejected;
    stats_.abstained += delta.abstained;
    stats_.no_model += delta.no_model;
    stats_.novelty_rejected += delta.novelty_rejected;
  }
  GP_COUNTER_ADD("gp.serve.batches", 1);
  if (snapshot != nullptr && snapshot->quant == nn::QuantMode::kInt8) {
    GP_COUNTER_ADD("gp.serve.batches.quant", 1);
  }
  GP_COUNTER_ADD("gp.serve.segments", batch.size());
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start);
  static obs::Histogram& batch_latency_hist = obs::histogram("gp.serve.batch.latency_us");
  batch_latency_hist.observe(static_cast<double>(elapsed.count()));

  if (health_on) {
    // Per-request stage breakdown (DESIGN.md §10). Forward/epilogue are
    // batch-level costs shared by every member; the waits are per-request.
    const std::uint64_t flush_end_ns = monotonic_ns();
    const std::uint64_t flush_us = sat_us(flush_end_ns, flush_start_ns);
    const std::uint64_t forward_us = forward_ns / 1000;
    const std::uint64_t epilogue_us = flush_us > forward_us ? flush_us - forward_us : 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const PendingSegment& seg = *batch[i].segment;
      const ServeResult& r = results[base + i];
      health::RequestSample sample;
      sample.request_id = seg.request_id;
      sample.session_id = seg.session_id;
      sample.ordinal = seg.ordinal;
      sample.stage_us[static_cast<std::size_t>(health::Stage::kAdmissionWait)] =
          sat_us(seg.drained_ns, seg.admit_ns);
      sample.stage_us[static_cast<std::size_t>(health::Stage::kQueueWait)] =
          sat_us(batch[i].submit_ns, seg.drained_ns);
      sample.stage_us[static_cast<std::size_t>(health::Stage::kBatchWait)] =
          sat_us(flush_start_ns, batch[i].submit_ns);
      sample.stage_us[static_cast<std::size_t>(health::Stage::kForward)] = forward_us;
      sample.stage_us[static_cast<std::size_t>(health::Stage::kEpilogue)] = epilogue_us;
      sample.total_us = seg.admit_ns != 0 ? sat_us(flush_end_ns, seg.admit_ns)
                                          : sat_us(flush_end_ns, batch[i].submit_ns);
      monitor_->record_request(sample, r.abstained, r.quality_rejected, snapshot == nullptr,
                               version);
    }
    monitor_->record_batch(batch.size(), version);
  }
}

std::size_t MicroBatcher::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() - queue_head_;
}

MicroBatcher::Stats MicroBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace gp::serve
