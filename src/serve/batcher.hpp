// MicroBatcher: deadline-bounded cross-session micro-batching (DESIGN.md §8).
//
// Completed featurized segments from *all* sessions accumulate in one FIFO.
// A flush happens when (a) the FIFO reaches batch_max segments, (b) the
// oldest pending segment has waited batch_wait_us of wall-clock time, or
// (c) the caller forces one (stream drain). Each flush runs the batch
// through the registry's current ModelSnapshot: one batched gesture-model
// predict_logits over every variant row, then one batched pass per routed
// user-ID model — so the per-forward fixed costs are amortised across
// sessions, and (with the snapshot's fused layers) the whole batch rides the
// inference-only fast path.
//
// Correctness under batching: the inference stack is per-sample
// batch-composition independent (inference-mode BN uses running stats;
// matmuls and SA grouping are row-local), so a segment's result does not
// depend on which other sessions' segments shared its flush. Hot-swap
// atomicity: the snapshot shared_ptr is acquired once per flush, so a batch
// is always answered entirely by one model version even if a publish lands
// mid-flush.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "serve/registry.hpp"
#include "serve/sessions.hpp"

namespace gp::serve {

class MicroBatcher {
 public:
  MicroBatcher(const ServeConfig& config, ModelRegistry& registry);

  /// Accepts completed segments (submission order is preserved through to
  /// the emitted results). Wall-clock arrival is stamped here for the
  /// deadline half of the flush policy.
  void submit(std::vector<PendingSegment> segments);

  /// Applies the flush policy and returns the results of every batch it
  /// flushed (possibly several when the backlog exceeds batch_max; empty
  /// when no flush triggered). `force` flushes the remainder regardless of
  /// size/age — the stream-drain path.
  std::vector<ServeResult> poll(bool force = false);

  /// Segments waiting for a flush.
  std::size_t pending() const;

  /// Monotonic tallies (batches flushed, results by disposition).
  struct Stats {
    std::uint64_t batches = 0;
    std::uint64_t segments = 0;
    std::uint64_t quality_rejected = 0;
    std::uint64_t abstained = 0;
    std::uint64_t no_model = 0;  ///< answered while no snapshot was published
  };
  Stats stats() const;

 private:
  using Clock = std::chrono::steady_clock;
  struct Entry {
    PendingSegment segment;
    Clock::time_point arrived;
  };

  bool should_flush(Clock::time_point now) const;  ///< caller holds mu_
  /// Classifies one flushed batch against the current snapshot.
  std::vector<ServeResult> run_batch(std::vector<Entry> batch);

  const ServeConfig* config_;
  ModelRegistry* registry_;
  mutable std::mutex mu_;
  std::deque<Entry> queue_;  ///< guarded by mu_
  Stats stats_;              ///< guarded by mu_
};

}  // namespace gp::serve
