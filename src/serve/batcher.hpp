// MicroBatcher: deadline-bounded cross-session micro-batching (DESIGN.md §8).
//
// Completed featurized segments from *all* sessions accumulate in one FIFO.
// A flush happens when (a) the FIFO reaches batch_max segments, (b) the
// oldest pending segment has waited batch_wait_us of wall-clock time, or
// (c) the caller forces one (stream drain). Each flush runs the batch
// through the registry's current ModelSnapshot: one batched gesture-model
// predict_logits over every variant row, then one batched pass per routed
// user-ID model — so the per-forward fixed costs are amortised across
// sessions, and (with the snapshot's fused layers) the whole batch rides the
// inference-only fast path.
//
// Correctness under batching: the inference stack is per-sample
// batch-composition independent (inference-mode BN uses running stats;
// matmuls and SA grouping are row-local), so a segment's result does not
// depend on which other sessions' segments shared its flush. Hot-swap
// atomicity: the snapshot shared_ptr is acquired once per flush, so a batch
// is always answered entirely by one model version even if a publish lands
// mid-flush.
//
// Memory model (DESIGN.md §9): the FIFO is a head-indexed vector ring of
// pooled SegmentPtr handles, and every flush reuses one BatchScratch —
// row tables, routing lists, logits/probs tensors — owned by the (single)
// pump thread. A poll that flushes nothing performs no heap allocation.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/mem.hpp"
#include "nn/tensor.hpp"
#include "serve/enroll_hook.hpp"
#include "serve/registry.hpp"
#include "serve/sessions.hpp"

namespace gp::serve {

class MicroBatcher {
 public:
  /// `monitor` (optional) receives per-request stage breakdowns and batch
  /// flush records; it must outlive the batcher.
  MicroBatcher(const ServeConfig& config, ModelRegistry& registry,
               health::HealthMonitor* monitor = nullptr);

  /// Accepts completed segments, moving them out of `segments` (which is
  /// cleared — callers keep reusing the vector). Submission order is
  /// preserved through to the emitted results. Wall-clock arrival is
  /// stamped here for the deadline half of the flush policy.
  void submit(std::vector<SegmentPtr>& segments);

  /// Applies the flush policy and returns the results of every batch it
  /// flushed (possibly several when the backlog exceeds batch_max; empty
  /// when no flush triggered). `force` flushes the remainder regardless of
  /// size/age — the stream-drain path. Must be called from the single pump
  /// thread (reuses the flush scratch).
  std::vector<ServeResult> poll(bool force = false);

  /// Segments waiting for a flush.
  std::size_t pending() const;

  /// Arms the open-set enrollment gate (gp::enroll). The hook must outlive
  /// the batcher; nullptr disarms. With no hook (or GP_ENROLL=0) the flush
  /// path is byte-identical to a build without the enrollment layer.
  void set_enrollment_hook(EnrollmentHook* hook) { enroll_ = hook; }

  /// Monotonic tallies (batches flushed, results by disposition).
  struct Stats {
    std::uint64_t batches = 0;
    std::uint64_t segments = 0;
    std::uint64_t quality_rejected = 0;
    std::uint64_t abstained = 0;
    std::uint64_t no_model = 0;  ///< answered while no snapshot was published
    std::uint64_t novelty_rejected = 0;  ///< open-set gate fired (GP_ENROLL)
  };
  Stats stats() const;

 private:
  using Clock = std::chrono::steady_clock;
  struct Entry {
    SegmentPtr segment;
    Clock::time_point arrived;
    std::uint64_t submit_ns = 0;  ///< health timestamp (0 = monitor off)
  };

  bool should_flush(Clock::time_point now) const;  ///< caller holds mu_
  /// Classifies the batch staged in scratch_.entries against the current
  /// snapshot, appending one result per entry to `results`.
  void run_batch_into(std::vector<ServeResult>& results);

  const ServeConfig* config_;
  ModelRegistry* registry_;
  health::HealthMonitor* monitor_;
  EnrollmentHook* enroll_ = nullptr;  ///< armed by Server when GP_ENROLL=1
  mutable std::mutex mu_;
  /// FIFO as a head-indexed vector ring: pop = advance queue_head_;
  /// storage is compacted (clear, head reset) whenever it empties, so slot
  /// capacity recycles instead of reallocating. Guarded by mu_.
  std::vector<Entry> queue_;
  std::size_t queue_head_ = 0;
  Stats stats_;  ///< guarded by mu_
  /// Flush working set, reused across batches (pump thread only).
  struct BatchScratch {
    std::vector<Entry> entries;                     ///< the staged batch
    std::vector<std::size_t> live;                  ///< indices going to inference
    std::vector<std::size_t> row_begin;             ///< per-live first variant row
    mem::SlotVector<FeaturizedSample> rows;         ///< gesture-pass row table
    std::vector<std::vector<std::size_t>> by_model; ///< user-model routing lists
    std::vector<std::size_t> group_begin;           ///< per-member first row
    mem::SlotVector<FeaturizedSample> group_rows;   ///< user-pass row table
    std::vector<double> avg;                        ///< TTA-averaged posterior
    nn::Tensor gesture_logits;
    nn::Tensor gesture_probs;
    nn::Tensor user_logits;
    nn::Tensor user_probs;
  };
  BatchScratch scratch_;
};

}  // namespace gp::serve
