#include "serve/server.hpp"

#include <utility>

#include "health/flightrec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gp::serve {

Server::Server(const ServeConfig& config, ModelRegistry& registry, exec::ExecContext& ctx)
    : config_(config),
      registry_(&registry),
      ctx_(&ctx),
      monitor_(config_.health, config_.batch_max),
      sessions_(config_, &monitor_),
      batcher_(config_, *registry_, &monitor_) {
  // Force the global recorder's ring into existence now, so a steady tick
  // never pays its construction (ServeSteadyTickZeroAlloc).
  (void)health::FlightRecorder::global().capacity();
}

Admission Server::push_frame(std::uint64_t session_id, const FrameView& frame) {
  const Admission verdict =
      sessions_.enqueue(session_id, frame, tick_.load(std::memory_order_relaxed));
  if (verdict == Admission::kAccepted) GP_COUNTER_ADD("gp.serve.frames", 1);
  return verdict;
}

std::vector<ServeResult> Server::pump() {
  GP_SPAN("serve.pump");
  obs::set_thread_name("serve.pump");
  const std::uint64_t tick = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  sessions_.drain_into(*ctx_, tick, segments_scratch_);
  batcher_.submit(segments_scratch_);
  static obs::Gauge& sessions_gauge = obs::gauge("gp.serve.sessions");
  static obs::Gauge& pending_gauge = obs::gauge("gp.serve.pending_segments");
  sessions_gauge.set(static_cast<double>(sessions_.session_count()));
  pending_gauge.set(static_cast<double>(batcher_.pending()));
  obs::publish_mem_metrics();
  std::vector<ServeResult> results = batcher_.poll(false);
  monitor_.close_tick(tick);
  // Enrollment barrier: all clustering / fine-tune / publish mutations run
  // here, after the flush, so gate() stays read-only within the tick.
  if (enroll_ != nullptr) enroll_->close_tick(tick);
  return results;
}

std::vector<ServeResult> Server::drain() {
  GP_SPAN("serve.drain");
  const std::uint64_t tick = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  sessions_.drain_into(*ctx_, tick, segments_scratch_);
  sessions_.finish_all(tick, segments_scratch_);
  batcher_.submit(segments_scratch_);
  obs::publish_mem_metrics();
  std::vector<ServeResult> results = batcher_.poll(true);
  monitor_.close_tick(tick);
  if (enroll_ != nullptr) enroll_->close_tick(tick);
  return results;
}

std::vector<ServeResult> Server::end_session(std::uint64_t session_id) {
  const std::uint64_t tick = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Queued frames (all shards) must segment before the flush so the ending
  // session's tail frames are not dropped on the floor.
  sessions_.drain_into(*ctx_, tick, segments_scratch_);
  sessions_.finish_session(session_id, tick, segments_scratch_);
  batcher_.submit(segments_scratch_);
  return batcher_.poll(true);
}

}  // namespace gp::serve
