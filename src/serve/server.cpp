#include "serve/server.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gp::serve {

Server::Server(const ServeConfig& config, ModelRegistry& registry, exec::ExecContext& ctx)
    : config_(config),
      registry_(&registry),
      ctx_(&ctx),
      sessions_(config_),
      batcher_(config_, *registry_) {}

Admission Server::push_frame(std::uint64_t session_id, const FrameView& frame) {
  const Admission verdict =
      sessions_.enqueue(session_id, frame, tick_.load(std::memory_order_relaxed));
  if (verdict == Admission::kAccepted) GP_COUNTER_ADD("gp.serve.frames", 1);
  return verdict;
}

std::vector<ServeResult> Server::pump() {
  GP_SPAN("serve.pump");
  const std::uint64_t tick = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  sessions_.drain_into(*ctx_, tick, segments_scratch_);
  batcher_.submit(segments_scratch_);
  static obs::Gauge& sessions_gauge = obs::gauge("gp.serve.sessions");
  static obs::Gauge& pending_gauge = obs::gauge("gp.serve.pending_segments");
  sessions_gauge.set(static_cast<double>(sessions_.session_count()));
  pending_gauge.set(static_cast<double>(batcher_.pending()));
  obs::publish_mem_metrics();
  return batcher_.poll(false);
}

std::vector<ServeResult> Server::drain() {
  GP_SPAN("serve.drain");
  const std::uint64_t tick = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  sessions_.drain_into(*ctx_, tick, segments_scratch_);
  sessions_.finish_all(tick, segments_scratch_);
  batcher_.submit(segments_scratch_);
  obs::publish_mem_metrics();
  return batcher_.poll(true);
}

std::vector<ServeResult> Server::end_session(std::uint64_t session_id) {
  const std::uint64_t tick = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Queued frames (all shards) must segment before the flush so the ending
  // session's tail frames are not dropped on the floor.
  sessions_.drain_into(*ctx_, tick, segments_scratch_);
  sessions_.finish_session(session_id, tick, segments_scratch_);
  batcher_.submit(segments_scratch_);
  return batcher_.poll(true);
}

}  // namespace gp::serve
