#include "serve/server.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gp::serve {

Server::Server(const ServeConfig& config, ModelRegistry& registry, exec::ExecContext& ctx)
    : config_(config),
      registry_(&registry),
      ctx_(&ctx),
      sessions_(config_),
      batcher_(config_, *registry_) {}

Admission Server::push_frame(std::uint64_t session_id, const FrameCloud& frame) {
  const Admission verdict =
      sessions_.enqueue(session_id, frame, tick_.load(std::memory_order_relaxed));
  if (verdict == Admission::kAccepted) GP_COUNTER_ADD("gp.serve.frames", 1);
  return verdict;
}

std::vector<ServeResult> Server::pump() {
  GP_SPAN("serve.pump");
  const std::uint64_t tick = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::vector<PendingSegment> segments = sessions_.drain(*ctx_, tick);
  batcher_.submit(std::move(segments));
  obs::gauge("gp.serve.sessions").set(static_cast<double>(sessions_.session_count()));
  obs::gauge("gp.serve.pending_segments").set(static_cast<double>(batcher_.pending()));
  return batcher_.poll(false);
}

std::vector<ServeResult> Server::drain() {
  GP_SPAN("serve.drain");
  const std::uint64_t tick = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::vector<PendingSegment> segments = sessions_.drain(*ctx_, tick);
  std::vector<PendingSegment> tail = sessions_.finish_all(tick);
  for (PendingSegment& p : tail) segments.push_back(std::move(p));
  batcher_.submit(std::move(segments));
  return batcher_.poll(true);
}

std::vector<ServeResult> Server::end_session(std::uint64_t session_id) {
  const std::uint64_t tick = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Queued frames (all shards) must segment before the flush so the ending
  // session's tail frames are not dropped on the floor.
  std::vector<PendingSegment> segments = sessions_.drain(*ctx_, tick);
  std::vector<PendingSegment> tail = sessions_.finish_session(session_id, tick);
  for (PendingSegment& p : tail) segments.push_back(std::move(p));
  batcher_.submit(std::move(segments));
  return batcher_.poll(true);
}

}  // namespace gp::serve
