// gp::serve — concurrent streaming-inference serving layer (DESIGN.md §8).
//
// Turns the offline radar→pipeline→GesIDNet stack into a request path: many
// independent per-client streaming sessions, sharded across gp::exec
// workers, feeding completed gesture segments into deadline-bounded
// micro-batches that run through one fused batched GesIDNet forward pass.
// Admission control (bounded per-shard ingress queues + typed load-shed
// rejections + deadline-aware stale drops) keeps the server degrading
// gracefully instead of queue-collapsing under overload, and a ModelRegistry
// hot-swaps checksum-verified .gpsy models RCU-style without pausing the
// stream.
//
// Determinism contract: every per-session output is a pure function of that
// session's delivered frame sequence and (serve seed, session id, segment
// ordinal) — never of GP_THREADS, the shard count, or which other sessions'
// segments shared its micro-batch (per-sample batch-composition independence
// of the inference stack; see nn/fused.hpp). tests/test_serve.cpp pins this
// bitwise across GP_THREADS ∈ {1,4} × shards ∈ {1,4}.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "faults/faults.hpp"
#include "health/health.hpp"
#include "pipeline/preprocessor.hpp"
#include "system/gestureprint.hpp"

namespace gp::serve {

/// Online-enrollment knobs (gp::enroll, DESIGN.md §13). Disabled by default:
/// with `enabled == false` the serve path performs no biometric extraction,
/// no novelty gating and no buffering — bitwise identical to a build without
/// the enrollment layer.
struct EnrollConfig {
  /// Master switch (GP_ENROLL=0/1). Off keeps the serve path byte-identical
  /// to the pre-enrollment goldens.
  bool enabled = false;
  /// Segments a candidate must accumulate before the head-only fine-tune
  /// fires. GP_ENROLL_K.
  std::size_t k_segments = 6;
  /// Bound on concurrently tracked enrollment candidates; admitting one
  /// more evicts the weakest (fewest observations, oldest id on ties).
  /// GP_ENROLL_MAX_CANDIDATES.
  std::size_t max_candidates = 4;
  /// Per-candidate segment buffer bound; a full buffer evicts its oldest
  /// segment (typed, counted) before admitting the new one.
  std::size_t buffer_cap = 16;
  /// Candidate clustering radius in the z-scored biometric space: a novel
  /// segment joins the nearest candidate centroid within this distance,
  /// otherwise it founds a new candidate.
  double candidate_radius = 3.5;
  /// Run fine-tunes on a background thread (GP_ENROLL_BACKGROUND=1). The
  /// default runs them synchronously at tick close, which keeps enrollment
  /// outcomes bitwise deterministic in stream position; background mode
  /// trades that for an unblocked pump loop (artifacts stay identical, the
  /// publish lands a wall-clock-dependent number of ticks later).
  bool background = false;
};

/// Serving-layer knobs. Every field has a GP_SERVE_* environment override
/// (applied by from_env; invalid values warn and keep the base value).
struct ServeConfig {
  /// Session shards; sessions map to shard (session_id % shards) and shards
  /// drain in parallel on gp::exec. GP_SERVE_SHARDS.
  std::size_t shards = 2;
  /// Micro-batch flush threshold in segments. GP_SERVE_BATCH_MAX.
  std::size_t batch_max = 16;
  /// Deadline half of the batching policy: a pending segment older than
  /// this forces a flush even below batch_max. GP_SERVE_BATCH_WAIT_US.
  std::uint64_t batch_wait_us = 2000;
  /// Bounded per-shard ingress queue capacity in frames; a full queue sheds
  /// new frames with a typed rejection. GP_SERVE_QUEUE_CAP.
  std::size_t queue_cap = 256;
  /// Deadline-aware stale-frame drop: frames that waited more than this
  /// many engine ticks (pump cycles) in an ingress queue are shed at drain
  /// time instead of being segmented late. 0 disables. GP_SERVE_STALE_TICKS.
  std::uint64_t stale_after_ticks = 0;
  /// Base seed of the per-session featurization RNG tree:
  /// child_seed(child_seed(seed, session_id), ordinal) — pure, so results
  /// are shard- and thread-invariant.
  std::uint64_t seed = 0x5E12FEEDULL;
  /// Per-session fault injection (GP_FAULTS soak): every session streams
  /// through its own FaultInjector whose seed is derived from the session
  /// id, so degraded links are modelled per client.
  std::optional<faults::FaultConfig> session_faults;
  /// Streaming segmentation + cleaning parameters for every session's
  /// GestureSegmenter/Preprocessor (the offline stack's defaults).
  PreprocessorParams preprocess;
  /// System configuration the served models were trained with (prep chain,
  /// eval_rounds TTA, abstention margin, network shape).
  GesturePrintConfig system;
  /// Health/SLO monitoring (gp::health, DESIGN.md §10). Default-on; never
  /// feeds back into results — health on/off is bitwise-invisible to
  /// ServeResult streams. GP_HEALTH / GP_HEALTH_WINDOW_TICKS / GP_SLO /
  /// GP_FLIGHTREC.
  health::HealthConfig health;
  /// Quantization mode models are fused with at publish time (nn/quant.hpp,
  /// DESIGN.md §11): kInt8 serves the symmetric int8 kernel, kOff the f32
  /// fused baseline. Callers pass this to ModelRegistry::publish*; each
  /// snapshot records the mode it was fused with. GP_QUANT (int8|off).
  nn::QuantMode quant = nn::QuantMode::kOff;
  /// Online enrollment (gp::enroll). GP_ENROLL / GP_ENROLL_K /
  /// GP_ENROLL_MAX_CANDIDATES / GP_ENROLL_BACKGROUND.
  EnrollConfig enroll;

  /// Applies GP_SERVE_SHARDS / GP_SERVE_BATCH_MAX / GP_SERVE_BATCH_WAIT_US /
  /// GP_SERVE_QUEUE_CAP / GP_SERVE_STALE_TICKS / GP_QUANT / GP_FAULTS plus
  /// the GP_HEALTH* / GP_SLO / GP_FLIGHTREC health overrides on top of
  /// `base` (the overload without arguments starts from the defaults).
  static ServeConfig from_env(ServeConfig base);
  static ServeConfig from_env();
};

/// Typed admission verdict for one pushed frame (the load-shed vocabulary;
/// rejections are counted in gp.serve.* obs counters, never thrown).
enum class Admission {
  kAccepted = 0,
  kRejectedQueueFull,  ///< shard ingress queue at queue_cap; frame shed
  /// Cluster-level shed (gp::cluster, DESIGN.md §12): every worker process
  /// that could own the session is down and respawn is disabled — there is
  /// no capacity left to route to, so the frame is rejected typed instead
  /// of queued forever.
  kRejectedNoWorker,
};

const char* admission_name(Admission a);

/// One classified (or typed-rejected) gesture segment.
struct ServeResult {
  std::uint64_t session_id = 0;
  std::uint64_t segment_ordinal = 0;  ///< per-session completed-segment index
  /// Causal trace id minted at segment completion: FNV-1a over (session_id,
  /// ordinal). A pure function of the stream — identical with health on or
  /// off — that keys the per-request stage breakdown in gp::health.
  std::uint64_t request_id = 0;
  int gesture = -1;                   ///< class id, or kAbstain
  int user = -1;                      ///< class id, or kAbstain
  bool abstained = false;             ///< margin gate fired
  bool quality_rejected = false;      ///< segment failed preprocessing guards
  /// Open-set novelty gate fired (GP_ENROLL only): the biometric descriptor
  /// was too far from every enrolled gallery sample, so the user answer was
  /// withheld and the segment routed into an enrollment buffer. Never set
  /// when enrollment is disabled.
  bool novelty_rejected = false;
  double gesture_margin = 0.0;
  double user_margin = 0.0;
  std::uint64_t model_version = 0;    ///< snapshot that answered (hot-swap audit)
};

}  // namespace gp::serve
