// Enrollment hook: the seam between gp::serve and gp::enroll (DESIGN.md §13).
//
// gp::serve must not depend on the enrollment subsystem (layering: enroll is
// built *on top of* serve), so the MicroBatcher talks to an abstract hook.
// The contract mirrors the serve determinism bar:
//
//  * gate() is called from the single pump thread during a flush, once per
//    live segment whose gesture was recognised. It must be *read-only* with
//    respect to the novelty geometry within a tick — the gallery and the
//    candidate set it consults may only change inside close_tick() — so a
//    segment's verdict cannot depend on which shard or batch position
//    delivered it.
//  * close_tick() runs after every pump/drain tick on the pump thread, with
//    no flush in flight. All mutations (candidate clustering, K-trigger
//    fine-tunes, gallery growth, publishes) happen here, over observations
//    staged by gate() and ordered by (session_id, ordinal) — a pure function
//    of the stream, invariant to GP_THREADS and shard count.
#pragma once

#include <cstdint>

namespace gp::serve {

struct PendingSegment;
struct ServeResult;

class EnrollmentHook {
 public:
  virtual ~EnrollmentHook() = default;

  /// Scores `segment` against the open-set novelty gallery. Returns true
  /// when the segment is rejected as novel (the batcher then withholds the
  /// user answer and marks the result novelty_rejected); the hook stages the
  /// observation for candidate clustering at the next close_tick().
  /// `result` carries the recognised gesture the gallery is keyed by.
  virtual bool gate(const PendingSegment& segment, const ServeResult& result) = 0;

  /// Tick barrier: apply staged observations, run due fine-tunes, publish.
  virtual void close_tick(std::uint64_t tick) = 0;
};

}  // namespace gp::serve
