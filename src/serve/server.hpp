// Server: the gp::serve facade — admission → sessions → micro-batcher.
//
// Wiring: producer threads call push_frame() concurrently (lock-bounded
// admission onto the owning shard's ingress queue). One pump thread calls
// pump() in a loop; each pump is one engine *tick*: drain every shard in
// parallel on the ExecContext (segmentation → preprocessing → featurization
// per session), submit the completed segments to the MicroBatcher, and poll
// it under the size/deadline flush policy. drain() ends the streams:
// flushes in-progress gestures in every session and force-flushes the
// batcher.
//
// Threading contract: push_frame is thread-safe against everything;
// pump/drain/end_session must be externally serialized (one pump thread).
// Model hot-swap (ModelRegistry::publish*) is safe at any time — the
// batcher pins one snapshot per flush.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "exec/exec.hpp"
#include "health/health.hpp"
#include "serve/batcher.hpp"
#include "serve/registry.hpp"
#include "serve/sessions.hpp"

namespace gp::serve {

class Server {
 public:
  /// `registry` must outlive the server; publish at least one model before
  /// expecting non-abstain answers (pre-publish segments get typed
  /// no-model abstentions, never exceptions).
  Server(const ServeConfig& config, ModelRegistry& registry,
         exec::ExecContext& ctx = exec::ExecContext::global());

  /// Thread-safe frame admission for `session_id`'s stream. The frame's
  /// points are copied once, into the owning shard's epoch arena (FrameCloud
  /// arguments convert implicitly).
  Admission push_frame(std::uint64_t session_id, const FrameView& frame);

  /// One engine tick: parallel shard drain → batch submit → policy poll.
  /// Returns every result whose batch flushed this tick.
  std::vector<ServeResult> pump();

  /// End-of-stream: drains queued frames, flushes in-progress gestures in
  /// every session, and force-flushes the batcher.
  std::vector<ServeResult> drain();

  /// Ends one client's stream (its in-progress gesture is flushed). Also
  /// force-flushes the batcher, so results of *other* sessions' pending
  /// segments may ride along.
  std::vector<ServeResult> end_session(std::uint64_t session_id);

  /// Session-handoff passthroughs (gp::cluster failover, DESIGN.md §12).
  /// Serialize with pump/drain and only call them quiescent — right after a
  /// pump, before any new push — so the blob captures the whole stream.
  bool export_session(std::uint64_t session_id, std::ostream& out) {
    return sessions_.export_session(session_id, out);
  }
  void restore_session(std::uint64_t session_id, std::istream& in) {
    sessions_.restore_session(session_id, in);
  }

  std::uint64_t ticks() const { return tick_.load(std::memory_order_relaxed); }
  SessionManager::Stats session_stats() const { return sessions_.stats(); }
  MicroBatcher::Stats batch_stats() const { return batcher_.stats(); }
  const SessionManager& sessions() const { return sessions_; }
  const ServeConfig& config() const { return config_; }

  /// Health surface (DESIGN.md §10): rolling SLI windows, SLO verdict, and
  /// the p99 exemplar. Serialise with pump/drain (like stats readers).
  health::HealthSnapshot health_snapshot() const { return monitor_.snapshot(); }
  const health::HealthMonitor& health() const { return monitor_; }
  health::HealthMonitor& health() { return monitor_; }

  /// Arms the open-set enrollment layer (gp::enroll, DESIGN.md §13): the
  /// hook gates flush results and gets a close_tick() barrier after every
  /// pump/drain tick. Must outlive the server; nullptr disarms.
  void set_enrollment_hook(EnrollmentHook* hook) {
    enroll_ = hook;
    batcher_.set_enrollment_hook(hook);
  }

 private:
  ServeConfig config_;
  ModelRegistry* registry_;
  exec::ExecContext* ctx_;
  /// Declared before sessions_/batcher_: both capture a pointer to it.
  health::HealthMonitor monitor_;
  SessionManager sessions_;
  MicroBatcher batcher_;
  EnrollmentHook* enroll_ = nullptr;
  std::atomic<std::uint64_t> tick_{0};
  /// Recycled segment carrier between drain_into and submit (pump thread
  /// only; submit moves the handles out and clears it).
  std::vector<SegmentPtr> segments_scratch_;
};

}  // namespace gp::serve
