// ModelRegistry: versioned, hot-swappable model snapshots for gp::serve.
//
// A ModelSnapshot is a private, *fused* (inference-only, nn/fused.hpp) copy
// of a trained GesturePrintSystem plus a monotonically increasing version.
// publish_file() loads a .gpsy through the checksum-verified self-healing
// path (GesturePrintSystem::try_load: retries transient IO, quarantines
// corrupt files), fuses it, runs a warm-up forward pass, and then swaps the
// published pointer RCU-style: readers that grabbed the old shared_ptr keep
// a consistent model until they drop it, so an in-flight micro-batch is
// answered entirely by one version (batch-atomic swaps). A failed publish
// never disturbs the currently served model.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "system/gestureprint.hpp"

namespace gp::serve {

/// One published model generation. The system is fused — forward-only; the
/// batcher thread is the only caller of its inference path at any time.
struct ModelSnapshot {
  std::uint64_t version = 0;
  /// Quant mode this snapshot was fused with (nn/quant.hpp): kInt8 serves
  /// the symmetric int8 kernel, kOff the f32 fused baseline. Auditable per
  /// generation next to `version`, so a mid-stream f32 → int8 hot-swap is
  /// attributable in results and metrics.
  nn::QuantMode quant = nn::QuantMode::kOff;
  std::unique_ptr<GesturePrintSystem> system;

  std::size_t num_gestures() const { return system->num_gestures(); }
  std::size_t num_users() const { return system->num_users(); }
};

class ModelRegistry {
 public:
  /// `config` must match the configuration the published models were
  /// trained with (same contract as GesturePrintSystem::load).
  explicit ModelRegistry(GesturePrintConfig config);

  /// Loads `path` (checksum-verified, retrying, quarantining — try_load),
  /// fuses it for inference with `mode` (default: the GP_QUANT env choice),
  /// warms it up, and atomically publishes it. Returns the new version, or
  /// nullopt when the load failed (the current snapshot, if any, keeps
  /// serving; failure is counted in gp.serve.model.load_failures).
  std::optional<std::uint64_t> publish_file(
      const std::string& path, nn::QuantMode mode = nn::quant_mode_from_env());

  /// Publishes an already-fitted system (ownership transferred). The system
  /// is fused with `mode` and warmed up here; pass an unfused, freshly
  /// trained/loaded instance. Returns the new version.
  std::uint64_t publish(std::unique_ptr<GesturePrintSystem> system,
                        nn::QuantMode mode = nn::quant_mode_from_env());

  /// The currently published snapshot (nullptr before the first publish).
  /// Thread-safe; the returned shared_ptr pins the generation alive.
  std::shared_ptr<ModelSnapshot> current() const;

  /// Version of the published snapshot; 0 before the first publish.
  std::uint64_t version() const;

  const GesturePrintConfig& config() const { return config_; }

 private:
  std::uint64_t install(std::unique_ptr<GesturePrintSystem> system, nn::QuantMode mode);

  GesturePrintConfig config_;
  mutable std::mutex mu_;
  std::shared_ptr<ModelSnapshot> current_;  ///< guarded by mu_
  std::uint64_t next_version_ = 1;          ///< guarded by mu_
};

}  // namespace gp::serve
