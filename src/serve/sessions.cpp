#include "serve/sessions.hpp"

#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gp::serve {

namespace {

/// Seed index for the per-session fault injector chain (distinct from the
/// featurize ordinal chain, which starts at 0).
constexpr std::uint64_t kFaultSeedIndex = 0xFAULL;

}  // namespace

StreamSession::StreamSession(std::uint64_t session_id, const ServeConfig& config)
    : id_(session_id),
      session_seed_(exec::child_seed(config.seed, session_id)),
      config_(&config),
      segmenter_(config.preprocess.segmentation),
      preprocessor_(config.preprocess) {
  if (config.session_faults.has_value()) {
    faults::FaultConfig fc = *config.session_faults;
    // Per-session fault stream: the same GP_FAULTS spec degrades each
    // client's link independently and reproducibly.
    fc.seed = exec::child_seed(session_seed_, kFaultSeedIndex);
    injector_ = std::make_unique<faults::FaultInjector>(fc);
  }
}

void StreamSession::push_frame(const FrameCloud& frame, std::uint64_t tick,
                               std::vector<PendingSegment>& out) {
  if (injector_ != nullptr) {
    std::optional<FrameCloud> delivered = injector_->apply(frame);
    if (!delivered.has_value()) return;  // frame dropped/lost on the degraded link
    segmenter_.push(*delivered);
  } else {
    segmenter_.push(frame);
  }
  drain_completed(tick, out);
}

void StreamSession::finish(std::uint64_t tick, std::vector<PendingSegment>& out) {
  segmenter_.finish();
  drain_completed(tick, out);
}

void StreamSession::drain_completed(std::uint64_t tick, std::vector<PendingSegment>& out) {
  std::vector<GestureSegment> segments = segmenter_.take_segments();
  for (GestureSegment& segment : segments) {
    PendingSegment pending;
    pending.session_id = id_;
    pending.ordinal = ordinal_;
    pending.enqueued_tick = tick;

    GestureCloud processed = preprocessor_.process_segment(segment.frames);
    pending.quality = processed.quality;
    pending.empty_cloud = processed.points.empty();
    if (pending.quality == SegmentQuality::kGood && !pending.empty_cloud) {
      // Featurize eval_rounds TTA variants now, inside the (parallel) shard
      // drain. RNG chain: child(child(session_seed, ordinal), round) — a pure
      // function of (serve seed, session id, ordinal, round), so the variants
      // are identical for any shard count / thread count / interleaving.
      const std::uint64_t segment_seed = exec::child_seed(session_seed_, ordinal_);
      const int rounds = config_->system.eval_rounds > 0 ? config_->system.eval_rounds : 1;
      pending.variants.reserve(static_cast<std::size_t>(rounds));
      for (int r = 0; r < rounds; ++r) {
        Rng rng = exec::child_rng(segment_seed, static_cast<std::uint64_t>(r));
        pending.variants.push_back(featurize(processed, config_->system.prep.features, rng));
      }
    }
    ++ordinal_;
    out.push_back(std::move(pending));
  }
}

SessionManager::SessionManager(const ServeConfig& config) : config_(config) {
  check_arg(config_.shards >= 1, "SessionManager: shards must be >= 1");
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

Admission SessionManager::enqueue(std::uint64_t session_id, const FrameCloud& frame,
                                  std::uint64_t tick) {
  Shard& shard = *shards_[shard_of(session_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.queue.size() >= config_.queue_cap) {
    ++shard.rejected_queue_full;
    GP_COUNTER_ADD("gp.serve.rejected.queue_full", 1);
    return Admission::kRejectedQueueFull;
  }
  QueuedFrame qf;
  qf.session_id = session_id;
  qf.tick = tick;
  qf.frame = frame;
  shard.queue.push_back(std::move(qf));
  ++shard.accepted;
  return Admission::kAccepted;
}

std::vector<PendingSegment> SessionManager::drain(exec::ExecContext& ctx, std::uint64_t tick) {
  GP_SPAN("serve.sessions.drain");
  const std::size_t n = shards_.size();
  std::vector<std::vector<PendingSegment>> per_shard(n);

  ctx.run_chunks(n, [&](std::size_t s) {
    Shard& shard = *shards_[s];
    std::deque<QueuedFrame> batch;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      batch.swap(shard.queue);
    }
    std::uint64_t shed = 0;
    {
      std::lock_guard<std::mutex> session_lock(shard.session_mu);
      for (QueuedFrame& qf : batch) {
        if (config_.stale_after_ticks > 0 && tick >= qf.tick &&
            tick - qf.tick > config_.stale_after_ticks) {
          ++shed;  // deadline-aware drop: too old to be worth segmenting late
          continue;
        }
        session(shard, qf.session_id).push_frame(qf.frame, tick, per_shard[s]);
      }
    }
    if (shed > 0) {
      GP_COUNTER_ADD("gp.serve.shed.stale", shed);
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.shed_stale += shed;
    }
  });

  // Concatenate in shard-index order: deterministic for any thread count.
  std::vector<PendingSegment> out;
  for (std::size_t s = 0; s < n; ++s) {
    for (PendingSegment& p : per_shard[s]) out.push_back(std::move(p));
  }
  return out;
}

std::vector<PendingSegment> SessionManager::finish_session(std::uint64_t session_id,
                                                           std::uint64_t tick) {
  Shard& shard = *shards_[shard_of(session_id)];
  std::vector<PendingSegment> out;
  std::lock_guard<std::mutex> lock(shard.session_mu);
  auto it = shard.sessions.find(session_id);
  if (it != shard.sessions.end()) it->second.finish(tick, out);
  return out;
}

std::vector<PendingSegment> SessionManager::finish_all(std::uint64_t tick) {
  std::vector<PendingSegment> out;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.session_mu);
    for (auto& [id, session] : shard.sessions) session.finish(tick, out);
  }
  return out;
}

SessionManager::Stats SessionManager::stats() const {
  Stats total;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    total.frames_accepted += shard.accepted;
    total.frames_rejected_queue_full += shard.rejected_queue_full;
    total.frames_shed_stale += shard.shed_stale;
  }
  return total;
}

std::size_t SessionManager::queue_depth(std::size_t s) const {
  check_arg(s < shards_.size(), "queue_depth: shard index out of range");
  const Shard& shard = *shards_[s];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.queue.size();
}

std::size_t SessionManager::session_count() const {
  std::size_t n = 0;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.session_mu);
    n += shard.sessions.size();
  }
  return n;
}

StreamSession& SessionManager::session(Shard& shard, std::uint64_t session_id) {
  auto it = shard.sessions.find(session_id);
  if (it == shard.sessions.end()) {
    it = shard.sessions
             .emplace(std::piecewise_construct, std::forward_as_tuple(session_id),
                      std::forward_as_tuple(session_id, config_))
             .first;
  }
  return it->second;
}

}  // namespace gp::serve
