#include "serve/sessions.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/fnv.hpp"
#include "common/logging.hpp"
#include "health/flightrec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gp::serve {

namespace {

/// Seed index for the per-session fault injector chain (distinct from the
/// featurize ordinal chain, which starts at 0).
constexpr std::uint64_t kFaultSeedIndex = 0xFAULL;

}  // namespace

StreamSession::StreamSession(std::uint64_t session_id, const ServeConfig& config,
                             mem::Pool<PendingSegment>& pool, health::HealthMonitor* monitor)
    : id_(session_id),
      session_seed_(exec::child_seed(config.seed, session_id)),
      config_(&config),
      pool_(&pool),
      monitor_(monitor),
      segmenter_(config.preprocess.segmentation),
      preprocessor_(config.preprocess) {
  if (config.session_faults.has_value()) {
    faults::FaultConfig fc = *config.session_faults;
    // Per-session fault stream: the same GP_FAULTS spec degrades each
    // client's link independently and reproducibly.
    fc.seed = exec::child_seed(session_seed_, kFaultSeedIndex);
    injector_ = std::make_unique<faults::FaultInjector>(fc);
  }
}

void StreamSession::push_frame(const FrameView& frame, std::uint64_t tick,
                               std::vector<SegmentPtr>& out, std::uint64_t admit_ns,
                               std::uint64_t drained_ns) {
  if (injector_ != nullptr) {
    // The injector mutates owning frames; materialise the view into the
    // session's recycled copy (faulted ticks are outside the zero-alloc
    // steady-state contract).
    fault_scratch_.frame_index = frame.frame_index;
    fault_scratch_.timestamp = frame.timestamp;
    fault_scratch_.points.assign(frame.points.begin(), frame.points.end());
    std::optional<FrameCloud> delivered = injector_->apply(fault_scratch_);
    if (!delivered.has_value()) {
      // Frame dropped/lost on the degraded link — a health fact, not a
      // result: the injector's own RNG already consumed this decision.
      if (monitor_ != nullptr) monitor_->on_fault_drop();
      health::FlightRecorder::global().record(health::EventKind::kFaultDrop, tick, id_);
      return;
    }
    segmenter_.push(*delivered);
  } else {
    segmenter_.push(frame);
  }
  drain_completed(tick, out, admit_ns, drained_ns);
}

void StreamSession::finish(std::uint64_t tick, std::vector<SegmentPtr>& out) {
  segmenter_.finish();
  drain_completed(tick, out);
}

void StreamSession::drain_completed(std::uint64_t tick, std::vector<SegmentPtr>& out,
                                    std::uint64_t admit_ns, std::uint64_t drained_ns) {
  const std::size_t count = segmenter_.completed_count();
  if (count == 0) return;  // the steady-state fast path: nothing completed
  for (std::size_t i = 0; i < count; ++i) {
    const SegmentView view = segmenter_.completed_segment(i);
    SegmentPtr pending = pool_->acquire();
    pending->reset_for_reuse();
    pending->session_id = id_;
    pending->ordinal = ordinal_;
    pending->enqueued_tick = tick;
    // RequestId: FNV-1a over (session, ordinal) — a pure function of the
    // stream, so results carry the same id with health on or off.
    pending->request_id =
        fnv::accumulate_value(fnv::accumulate_value(fnv::kOffsetBasis, id_), ordinal_);
    pending->admit_ns = admit_ns;    // the frame whose push closed the gesture
    pending->drained_ns = drained_ns;
    health::FlightRecorder::global().record(health::EventKind::kSegmentCompleted, tick, id_,
                                            ordinal_, pending->request_id);

    preprocessor_.process_segment_into(view.frames, cloud_scratch_, prep_scratch_);
    pending->quality = cloud_scratch_.quality;
    pending->empty_cloud = cloud_scratch_.points.empty();
    if (pending->quality == SegmentQuality::kGood && !pending->empty_cloud) {
      // Featurize eval_rounds TTA variants now, inside the (parallel) shard
      // drain. RNG chain: child(child(session_seed, ordinal), round) — a pure
      // function of (serve seed, session id, ordinal, round), so the variants
      // are identical for any shard count / thread count / interleaving.
      const std::uint64_t segment_seed = exec::child_seed(session_seed_, ordinal_);
      const int rounds = config_->system.eval_rounds > 0 ? config_->system.eval_rounds : 1;
      for (int r = 0; r < rounds; ++r) {
        const auto slot = static_cast<std::size_t>(r);
        if (slot == pending->variants.size()) pending->variants.emplace_back();
        Rng rng = exec::child_rng(segment_seed, static_cast<std::uint64_t>(r));
        featurize_into(cloud_scratch_, config_->system.prep.features, rng, feat_scratch_,
                       pending->variants[slot]);
      }
      pending->variant_count = static_cast<std::size_t>(rounds);
      if (config_->enroll.enabled) {
        // Enrollment payload: descriptor for the novelty gate plus the
        // cleaned cloud for fine-tune buffering. Both are deterministic
        // per-segment functions (no RNG), so the featurize chain above is
        // untouched and results stay shard/thread-invariant.
        pending->biometrics = biometric_stats(cloud_scratch_);
        pending->has_biometrics = true;
        pending->cloud = cloud_scratch_;
      }
    }
    ++ordinal_;
    out.push_back(std::move(pending));
  }
  segmenter_.clear_completed();
}

void StreamSession::save_state(std::ostream& out) const {
  BinaryWriter w(out, "GPSS");
  w.write_u64(id_);
  w.write_u64(ordinal_);
  segmenter_.save_state(w);
}

void StreamSession::load_state(std::istream& in) {
  BinaryReader r(in, "GPSS");
  const std::uint64_t saved_id = r.read_u64();
  if (saved_id != id_) {
    throw SerializationError("session state: blob is for session " +
                             std::to_string(saved_id) + ", restoring into session " +
                             std::to_string(id_));
  }
  ordinal_ = r.read_u64();
  segmenter_.load_state(r);
}

SessionManager::SessionManager(const ServeConfig& config, health::HealthMonitor* monitor)
    : config_(config), monitor_(monitor) {
  check_arg(config_.shards >= 1, "SessionManager: shards must be >= 1");
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Built once so the per-tick run_chunks call never constructs a callable
  // (std::function construction can allocate).
  drain_fn_ = [this](std::size_t s) { drain_shard(s); };
  if (monitor_ != nullptr && monitor_->enabled()) {
    admit_clock_ns_.store(monotonic_ns(), std::memory_order_relaxed);
  }
}

Admission SessionManager::enqueue(std::uint64_t session_id, const FrameView& frame,
                                  std::uint64_t tick) {
  const bool health_on = monitor_ != nullptr && monitor_->enabled();
  Shard& shard = *shards_[shard_of(session_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.queue.size() >= config_.queue_cap) {
    ++shard.rejected_queue_full;
    GP_COUNTER_ADD("gp.serve.rejected.queue_full", 1);
    if (health_on) monitor_->on_frame_rejected();
    health::FlightRecorder::global().record(health::EventKind::kAdmissionReject, tick,
                                            session_id);
    return Admission::kRejectedQueueFull;
  }
  QueuedFrame qf;
  qf.session_id = session_id;
  qf.tick = tick;
  if (health_on) {
    qf.admit_ns = admit_clock_ns_.load(std::memory_order_relaxed);
    monitor_->on_frame_admitted();
  }
  qf.frame.frame_index = frame.frame_index;
  qf.frame.timestamp = frame.timestamp;
  // The single copy on the frame path: points land in the shard's epoch
  // arena; everything downstream reads this stable view.
  qf.frame.points = shard.arenas[shard.epoch].copy_span(frame.points);
  shard.queue.push_back(qf);
  ++shard.accepted;
  return Admission::kAccepted;
}

void SessionManager::drain_shard(std::size_t s) {
  Shard& shard = *shards_[s];
  const std::uint64_t tick = drain_tick_;
  shard.out_scratch.clear();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    // Ping-pong flip: producers now write the other arena; the queued views
    // keep referencing the epoch we are about to process (its arena is not
    // reset until the *next* flip, after drain_queue has been cleared).
    shard.epoch = 1 - shard.epoch;
    shard.arenas[shard.epoch].reset();
    shard.drain_queue.swap(shard.queue);
  }
  const std::uint64_t drained_ns =
      monitor_ != nullptr && monitor_->enabled() ? monotonic_ns() : 0;
  std::uint64_t shed = 0;
  {
    std::lock_guard<std::mutex> session_lock(shard.session_mu);
    for (const QueuedFrame& qf : shard.drain_queue) {
      if (config_.stale_after_ticks > 0 && tick >= qf.tick &&
          tick - qf.tick > config_.stale_after_ticks) {
        ++shed;  // deadline-aware drop: too old to be worth segmenting late
        continue;
      }
      session(shard, qf.session_id)
          .push_frame(qf.frame, tick, shard.out_scratch, qf.admit_ns, drained_ns);
    }
  }
  shard.drain_queue.clear();
  if (shed > 0) {
    GP_COUNTER_ADD("gp.serve.shed.stale", shed);
    if (monitor_ != nullptr) monitor_->on_stale_shed(shed);
    health::FlightRecorder::global().record(health::EventKind::kStaleShed, tick, s, shed);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.shed_stale += shed;
  }
}

void SessionManager::drain_into(exec::ExecContext& ctx, std::uint64_t tick,
                                std::vector<SegmentPtr>& out) {
  GP_SPAN("serve.sessions.drain");
  drain_tick_ = tick;  // pump/drain are externally serialized
  ctx.run_chunks(shards_.size(), drain_fn_);

  // Concatenate in shard-index order: deterministic for any thread count.
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    for (SegmentPtr& p : shard.out_scratch) out.push_back(std::move(p));
    shard.out_scratch.clear();
  }

  // Advance the tick-granular admission clock: frames pushed from here to
  // the next drain are stamped with this boundary.
  if (monitor_ != nullptr && monitor_->enabled()) {
    admit_clock_ns_.store(monotonic_ns(), std::memory_order_relaxed);
  }
}

std::vector<SegmentPtr> SessionManager::drain(exec::ExecContext& ctx, std::uint64_t tick) {
  std::vector<SegmentPtr> out;
  drain_into(ctx, tick, out);
  return out;
}

void SessionManager::finish_session(std::uint64_t session_id, std::uint64_t tick,
                                    std::vector<SegmentPtr>& out) {
  Shard& shard = *shards_[shard_of(session_id)];
  std::lock_guard<std::mutex> lock(shard.session_mu);
  auto it = shard.sessions.find(session_id);
  if (it != shard.sessions.end()) it->second.finish(tick, out);
}

void SessionManager::finish_all(std::uint64_t tick, std::vector<SegmentPtr>& out) {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.session_mu);
    for (auto& [id, session] : shard.sessions) session.finish(tick, out);
  }
}

bool SessionManager::export_session(std::uint64_t session_id, std::ostream& out) {
  Shard& shard = *shards_[shard_of(session_id)];
  std::lock_guard<std::mutex> lock(shard.session_mu);
  auto it = shard.sessions.find(session_id);
  if (it == shard.sessions.end()) return false;
  it->second.save_state(out);
  return true;
}

void SessionManager::restore_session(std::uint64_t session_id, std::istream& in) {
  Shard& shard = *shards_[shard_of(session_id)];
  std::lock_guard<std::mutex> lock(shard.session_mu);
  session(shard, session_id).load_state(in);
}

SessionManager::Stats SessionManager::stats() const {
  Stats total;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    total.frames_accepted += shard.accepted;
    total.frames_rejected_queue_full += shard.rejected_queue_full;
    total.frames_shed_stale += shard.shed_stale;
  }
  return total;
}

std::size_t SessionManager::queue_depth(std::size_t s) const {
  check_arg(s < shards_.size(), "queue_depth: shard index out of range");
  const Shard& shard = *shards_[s];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.queue.size();
}

std::size_t SessionManager::session_count() const {
  std::size_t n = 0;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.session_mu);
    n += shard.sessions.size();
  }
  return n;
}

StreamSession& SessionManager::session(Shard& shard, std::uint64_t session_id) {
  auto it = shard.sessions.find(session_id);
  if (it == shard.sessions.end()) {
    it = shard.sessions
             .emplace(std::piecewise_construct, std::forward_as_tuple(session_id),
                      std::forward_as_tuple(session_id, config_, segment_pool_, monitor_))
             .first;
  }
  return it->second;
}

}  // namespace gp::serve
