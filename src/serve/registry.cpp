#include "serve/registry.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "datasets/prep.hpp"
#include "health/flightrec.hpp"
#include "gesidnet/trainer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/preprocessor.hpp"

namespace gp::serve {

namespace {

/// Warm-up pass: one deterministic synthetic segment through the gesture
/// model and every user model. Touches every fused weight matrix (paging
/// the snapshot hot before the first real request) and fails fast on any
/// configuration/width mismatch a bad publish could smuggle in.
void warm_up(GesturePrintSystem& system, const GesturePrintConfig& config) {
  GP_SPAN("serve.warmup");
  GestureCloud cloud;
  cloud.num_frames = 8;
  cloud.duration_s = 0.8;
  Rng point_rng(0x3A97u, 11);
  for (int i = 0; i < 32; ++i) {
    RadarPoint p;
    p.position = Vec3(point_rng.uniform(-0.3, 0.3), point_rng.uniform(0.8, 1.4),
                      point_rng.uniform(-0.3, 0.3));
    p.velocity = point_rng.uniform(-1.0, 1.0);
    p.snr_db = point_rng.uniform(5.0, 25.0);
    p.frame = i / 4;
    cloud.points.push_back(p);
  }
  Rng feat_rng(0x3A97u, 13);
  std::vector<FeaturizedSample> one;
  one.push_back(featurize(cloud, config.prep.features, feat_rng));

  (void)predict_logits(system.gesture_model(), one);
  for (std::size_t g = 0; g < system.num_user_models(); ++g) {
    if (GesIDNet* model = system.user_model(g)) (void)predict_logits(*model, one);
  }
}

}  // namespace

ModelRegistry::ModelRegistry(GesturePrintConfig config) : config_(std::move(config)) {}

std::optional<std::uint64_t> ModelRegistry::publish_file(const std::string& path,
                                                         nn::QuantMode mode) {
  GP_SPAN("serve.publish");
  auto system = std::make_unique<GesturePrintSystem>(config_);
  if (!system->try_load(path)) {
    GP_COUNTER_ADD("gp.serve.model.load_failures", 1);
    health::FlightRecorder::global().record(health::EventKind::kPublishFail, 0);
    log_warn() << "serve: publish of '" << path << "' failed; keeping version "
               << version();
    return std::nullopt;
  }
  return install(std::move(system), mode);
}

std::uint64_t ModelRegistry::publish(std::unique_ptr<GesturePrintSystem> system,
                                     nn::QuantMode mode) {
  GP_SPAN("serve.publish");
  check_arg(system != nullptr && system->fitted(), "publish of an unfitted system");
  return install(std::move(system), mode);
}

std::uint64_t ModelRegistry::install(std::unique_ptr<GesturePrintSystem> system,
                                     nn::QuantMode mode) {
  system->fuse_for_inference(mode);
  warm_up(*system, config_);

  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->quant = mode;
  snapshot->system = std::move(system);
  std::uint64_t published = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot->version = next_version_++;
    published = snapshot->version;
    current_ = std::move(snapshot);  // RCU: old generation lives until readers drop it
  }
  GP_COUNTER_ADD("gp.serve.model.swaps", 1);
  health::FlightRecorder::global().record(health::EventKind::kHotSwap, 0, published);
  obs::gauge("gp.serve.model.version").set(static_cast<double>(published));
  obs::gauge("gp.serve.model.quant").set(mode == nn::QuantMode::kInt8 ? 1.0 : 0.0);
  return published;
}

std::shared_ptr<ModelSnapshot> ModelRegistry::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

std::uint64_t ModelRegistry::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_ != nullptr ? current_->version : 0;
}

}  // namespace gp::serve
