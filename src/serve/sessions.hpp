// Per-client streaming sessions and the sharded SessionManager.
//
// A StreamSession owns the full per-client streaming state — fault injector
// (optional), gap-aware GestureSegmenter, Preprocessor, featurization RNG
// chain — so two clients can never bleed segmentation state into each other.
// Completed segments leave a session already *featurized*: the expensive
// per-segment work (noise cancel, aggregation, TTA resampling) runs inside
// the parallel shard drain, and only fixed-size tensors travel to the
// micro-batcher.
//
// Sharding: session (id) lives on shard (id % shards). Each shard has a
// bounded ingress frame queue (admission control) and an ordered session
// map; shards drain in parallel on gp::exec. Determinism: a session's
// featurize RNG for segment `ordinal`, round `r` is
//     child_rng(child_seed(child_seed(serve_seed, session_id), ordinal), r)
// — a pure function, so per-session outputs are identical for any shard
// count, thread count, or interleaving with other sessions.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "exec/exec.hpp"
#include "pipeline/preprocessor.hpp"
#include "serve/config.hpp"

namespace gp::serve {

/// A completed, preprocessed, featurized gesture segment awaiting inference.
struct PendingSegment {
  std::uint64_t session_id = 0;
  std::uint64_t ordinal = 0;                 ///< per-session segment index
  SegmentQuality quality = SegmentQuality::kGood;
  bool empty_cloud = false;                  ///< nothing survived preprocessing
  std::vector<FeaturizedSample> variants;    ///< eval_rounds TTA featurizations
  std::uint64_t enqueued_tick = 0;           ///< engine tick at completion
};

class StreamSession {
 public:
  StreamSession(std::uint64_t session_id, const ServeConfig& config);

  /// Feeds one frame (through the per-session fault injector when armed);
  /// appends any segments the push completed to `out`.
  void push_frame(const FrameCloud& frame, std::uint64_t tick,
                  std::vector<PendingSegment>& out);

  /// End-of-stream: flushes a gesture still in progress.
  void finish(std::uint64_t tick, std::vector<PendingSegment>& out);

  std::uint64_t id() const { return id_; }
  std::uint64_t segments_completed() const { return ordinal_; }

 private:
  void drain_completed(std::uint64_t tick, std::vector<PendingSegment>& out);

  std::uint64_t id_;
  std::uint64_t session_seed_;  ///< child_seed(serve_seed, id)
  const ServeConfig* config_;
  std::unique_ptr<faults::FaultInjector> injector_;  ///< per-session faults
  GestureSegmenter segmenter_;
  Preprocessor preprocessor_;
  std::uint64_t ordinal_ = 0;
};

/// Sharded session table with bounded ingress queues.
class SessionManager {
 public:
  explicit SessionManager(const ServeConfig& config);

  /// Thread-safe frame admission: enqueues onto the owning shard's bounded
  /// queue, or sheds with a typed rejection when the queue is at cap.
  Admission enqueue(std::uint64_t session_id, const FrameCloud& frame, std::uint64_t tick);

  /// Drains every shard queue (parallel over shards on `ctx`), running
  /// segmentation → preprocessing → featurization per session, applying the
  /// deadline-aware stale-frame drop. Returns completed segments in
  /// deterministic order (shard index, then completion order).
  std::vector<PendingSegment> drain(exec::ExecContext& ctx, std::uint64_t tick);

  /// Flushes an in-progress gesture for one session / for all sessions.
  /// (Queued frames are drained first by the caller via drain().)
  std::vector<PendingSegment> finish_session(std::uint64_t session_id, std::uint64_t tick);
  std::vector<PendingSegment> finish_all(std::uint64_t tick);

  /// Aggregate load-shed tallies (monotonic).
  struct Stats {
    std::uint64_t frames_accepted = 0;
    std::uint64_t frames_rejected_queue_full = 0;
    std::uint64_t frames_shed_stale = 0;
  };
  Stats stats() const;

  std::size_t shard_count() const { return shards_.size(); }
  /// Current depth of shard `s`'s ingress queue (diagnostics/tests).
  std::size_t queue_depth(std::size_t s) const;
  std::size_t session_count() const;

 private:
  struct QueuedFrame {
    std::uint64_t session_id = 0;
    std::uint64_t tick = 0;  ///< admission tick (staleness basis)
    FrameCloud frame;
  };
  struct Shard {
    /// Guards queue + admission counters; held only for O(1) enqueue/swap so
    /// frame admission never waits behind featurization.
    mutable std::mutex mu;
    /// Guards the session map; held by drain/finish while running the
    /// (expensive) segmentation→preprocess→featurize work.
    mutable std::mutex session_mu;
    std::deque<QueuedFrame> queue;                       ///< bounded by queue_cap
    std::map<std::uint64_t, StreamSession> sessions;     ///< ordered → deterministic
    std::uint64_t accepted = 0;
    std::uint64_t rejected_queue_full = 0;
    std::uint64_t shed_stale = 0;
  };

  std::size_t shard_of(std::uint64_t session_id) const {
    return static_cast<std::size_t>(session_id % shards_.size());
  }
  StreamSession& session(Shard& shard, std::uint64_t session_id);

  ServeConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace gp::serve
