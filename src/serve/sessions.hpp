// Per-client streaming sessions and the sharded SessionManager.
//
// A StreamSession owns the full per-client streaming state — fault injector
// (optional), gap-aware GestureSegmenter, Preprocessor, featurization RNG
// chain — so two clients can never bleed segmentation state into each other.
// Completed segments leave a session already *featurized*: the expensive
// per-segment work (noise cancel, aggregation, TTA resampling) runs inside
// the parallel shard drain, and only fixed-size tensors travel to the
// micro-batcher.
//
// Sharding: session (id) lives on shard (id % shards). Each shard has a
// bounded ingress frame queue (admission control) and an ordered session
// map; shards drain in parallel on gp::exec. Determinism: a session's
// featurize RNG for segment `ordinal`, round `r` is
//     child_rng(child_seed(child_seed(serve_seed, session_id), ordinal), r)
// — a pure function, so per-session outputs are identical for any shard
// count, thread count, or interleaving with other sessions.
//
// Memory model (DESIGN.md §9): the frame path is zero-copy + recycled.
// Admission copies a frame's points once, into the owning shard's epoch
// arena, and queues a non-owning FrameView. The drain tick flips the
// shard's ping-pong arenas (reset, no free) and walks the queued views
// straight into the sessions' recycled segmentation state. Completed
// segments travel as pooled PendingSegment handles (SegmentPtr) whose
// variant buffers persist across reuse — a steady-state tick performs no
// heap allocation (asserted by tests/test_mem.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/mem.hpp"
#include "exec/exec.hpp"
#include "health/health.hpp"
#include "pipeline/preprocessor.hpp"
#include "serve/config.hpp"
#include "system/open_set.hpp"

namespace gp::serve {

/// A completed, preprocessed, featurized gesture segment awaiting inference.
/// Pooled: the first `variant_count` entries of `variants` are the live TTA
/// featurizations; the vector itself is slot storage that keeps its
/// capacity across pool round-trips.
struct PendingSegment {
  std::uint64_t session_id = 0;
  std::uint64_t ordinal = 0;                 ///< per-session segment index
  SegmentQuality quality = SegmentQuality::kGood;
  bool empty_cloud = false;                  ///< nothing survived preprocessing
  std::vector<FeaturizedSample> variants;    ///< slot storage (valid prefix)
  std::size_t variant_count = 0;             ///< live entries in variants
  std::uint64_t enqueued_tick = 0;           ///< engine tick at completion
  /// Causal trace id: FNV-1a over (session_id, ordinal) — pure, so identical
  /// with health on/off. Audited on ServeResult::request_id.
  std::uint64_t request_id = 0;
  /// Health timestamps (0 when the monitor is off): when the frame that
  /// completed this segment was admitted, and when its shard drain began.
  std::uint64_t admit_ns = 0;
  std::uint64_t drained_ns = 0;
  /// Enrollment payload (GP_ENROLL only; DESIGN.md §13): the biometric
  /// descriptor the novelty gate scores, plus a copy of the cleaned cloud so
  /// a buffered candidate segment can be re-featurized as fine-tune training
  /// data. Never populated when enrollment is disabled — the extra copies
  /// would break both the zero-alloc steady-tick contract and the
  /// disabled-path bitwise-identity bar.
  bool has_biometrics = false;
  BiometricStats biometrics{};
  GestureCloud cloud;

  std::span<const FeaturizedSample> active_variants() const {
    return {variants.data(), variant_count};
  }

  /// Resets logical state for pool reuse; variant buffers stay warm.
  void reset_for_reuse() {
    session_id = 0;
    ordinal = 0;
    quality = SegmentQuality::kGood;
    empty_cloud = false;
    variant_count = 0;
    enqueued_tick = 0;
    request_id = 0;
    admit_ns = 0;
    drained_ns = 0;
    has_biometrics = false;
    cloud.points.clear();  // keeps capacity, like the variant buffers
  }
};

/// Pooled handle; destruction recycles the segment into its pool.
using SegmentPtr = mem::PoolPtr<PendingSegment>;

class StreamSession {
 public:
  StreamSession(std::uint64_t session_id, const ServeConfig& config,
                mem::Pool<PendingSegment>& pool, health::HealthMonitor* monitor = nullptr);

  /// Feeds one frame (through the per-session fault injector when armed);
  /// appends any segments the push completed to `out`. `admit_ns` /
  /// `drained_ns` are health timestamps for the request stage breakdown
  /// (0 = unknown / monitor off).
  void push_frame(const FrameView& frame, std::uint64_t tick, std::vector<SegmentPtr>& out,
                  std::uint64_t admit_ns = 0, std::uint64_t drained_ns = 0);

  /// End-of-stream: flushes a gesture still in progress.
  void finish(std::uint64_t tick, std::vector<SegmentPtr>& out);

  /// Serializes the session's resumable streaming state (segment ordinal +
  /// full mid-gesture segmenter state; the Preprocessor is stateless and
  /// the featurize RNG chain is a pure function of (seed, id, ordinal), so
  /// neither needs bytes) as one "GPSS" blob. Precondition: all completed
  /// segments have been drained — push_frame/finish drain eagerly, so any
  /// quiescent session satisfies it. A restored session continues the
  /// stream bitwise identically to the uninterrupted run (the cluster
  /// session-handoff bar, DESIGN.md §12).
  void save_state(std::ostream& out) const;
  /// Restores state saved by save_state into a session with the same id and
  /// config; throws SerializationError on id/params mismatch or corruption.
  void load_state(std::istream& in);

  std::uint64_t id() const { return id_; }
  std::uint64_t segments_completed() const { return ordinal_; }

 private:
  void drain_completed(std::uint64_t tick, std::vector<SegmentPtr>& out,
                       std::uint64_t admit_ns = 0, std::uint64_t drained_ns = 0);

  std::uint64_t id_;
  std::uint64_t session_seed_;  ///< child_seed(serve_seed, id)
  const ServeConfig* config_;
  mem::Pool<PendingSegment>* pool_;
  health::HealthMonitor* monitor_;  ///< may be null (monitor-less tests)
  std::unique_ptr<faults::FaultInjector> injector_;  ///< per-session faults
  GestureSegmenter segmenter_;
  Preprocessor preprocessor_;
  std::uint64_t ordinal_ = 0;
  /// Recycled working memory: the owning-copy a fault injector needs, the
  /// cleaned cloud, and the preprocess/featurize scratch tables.
  FrameCloud fault_scratch_;
  GestureCloud cloud_scratch_;
  Preprocessor::Scratch prep_scratch_;
  FeaturizeScratch feat_scratch_;
};

/// Sharded session table with bounded ingress queues.
class SessionManager {
 public:
  /// `monitor` (optional) receives admission/shed/fault tallies and the
  /// per-request health timestamps; it must outlive the manager.
  explicit SessionManager(const ServeConfig& config,
                          health::HealthMonitor* monitor = nullptr);

  /// Thread-safe frame admission: copies the frame's points into the owning
  /// shard's epoch arena and enqueues a view, or sheds with a typed
  /// rejection when the queue is at cap.
  Admission enqueue(std::uint64_t session_id, const FrameView& frame, std::uint64_t tick);

  /// Drains every shard queue (parallel over shards on `ctx`), running
  /// segmentation → preprocessing → featurization per session, applying the
  /// deadline-aware stale-frame drop. Appends completed segments to `out`
  /// in deterministic order (shard index, then completion order).
  void drain_into(exec::ExecContext& ctx, std::uint64_t tick, std::vector<SegmentPtr>& out);

  /// Allocating convenience wrapper over drain_into.
  std::vector<SegmentPtr> drain(exec::ExecContext& ctx, std::uint64_t tick);

  /// Flushes an in-progress gesture for one session / for all sessions,
  /// appending to `out`. (Queued frames are drained first by the caller via
  /// drain_into().)
  void finish_session(std::uint64_t session_id, std::uint64_t tick,
                      std::vector<SegmentPtr>& out);
  void finish_all(std::uint64_t tick, std::vector<SegmentPtr>& out);

  /// Session-handoff passthroughs (cluster failover, DESIGN.md §12): both
  /// must run quiescent — after a drain, with no frames queued for the
  /// session — or the exported blob would miss in-flight state.
  /// export_session returns false when the session does not exist;
  /// restore_session creates the session if needed and overwrites its
  /// streaming state from the blob.
  bool export_session(std::uint64_t session_id, std::ostream& out);
  void restore_session(std::uint64_t session_id, std::istream& in);

  /// Aggregate load-shed tallies (monotonic).
  struct Stats {
    std::uint64_t frames_accepted = 0;
    std::uint64_t frames_rejected_queue_full = 0;
    std::uint64_t frames_shed_stale = 0;
  };
  Stats stats() const;

  std::size_t shard_count() const { return shards_.size(); }
  /// Current depth of shard `s`'s ingress queue (diagnostics/tests).
  std::size_t queue_depth(std::size_t s) const;
  std::size_t session_count() const;

 private:
  struct QueuedFrame {
    std::uint64_t session_id = 0;
    std::uint64_t tick = 0;      ///< admission tick (staleness basis)
    std::uint64_t admit_ns = 0;  ///< admission timestamp (0 = monitor off)
    FrameView frame;             ///< points live in the shard's epoch arena
  };
  struct Shard {
    /// Guards queue + arenas + admission counters; held only for O(1)
    /// enqueue/flip so frame admission never waits behind featurization.
    mutable std::mutex mu;
    /// Guards the session map; held by drain/finish while running the
    /// (expensive) segmentation→preprocess→featurize work.
    mutable std::mutex session_mu;
    /// Ping-pong frame-point arenas: producers copy into arenas[epoch]; the
    /// drain tick flips epoch and resets the incoming side, so views queued
    /// before the flip stay valid while they are processed.
    mem::Arena arenas[2];
    std::size_t epoch = 0;
    std::vector<QueuedFrame> queue;                      ///< bounded by queue_cap
    std::vector<QueuedFrame> drain_queue;                ///< drain-side double buffer
    std::vector<SegmentPtr> out_scratch;                 ///< drain-tick results
    std::map<std::uint64_t, StreamSession> sessions;     ///< ordered → deterministic
    std::uint64_t accepted = 0;
    std::uint64_t rejected_queue_full = 0;
    std::uint64_t shed_stale = 0;
  };

  std::size_t shard_of(std::uint64_t session_id) const {
    return static_cast<std::size_t>(session_id % shards_.size());
  }
  StreamSession& session(Shard& shard, std::uint64_t session_id);
  void drain_shard(std::size_t s);

  ServeConfig config_;
  health::HealthMonitor* monitor_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mem::Pool<PendingSegment> segment_pool_;
  /// Tick-granular admission clock: refreshed once per drain (and at
  /// construction); admitted frames copy it instead of reading the clock.
  /// A per-frame monotonic_ns() would cost more than everything else on
  /// the admission path combined — admission wait is therefore measured
  /// from the last tick boundary (an upper bound, exact for clients that
  /// push right after a pump).
  std::atomic<std::uint64_t> admit_clock_ns_{0};
  /// Tick of the drain in flight (pump is externally serialized) plus the
  /// pre-built chunk functor, so run_chunks never constructs a callable.
  std::uint64_t drain_tick_ = 0;
  exec::ThreadPool::ChunkFn drain_fn_;
};

}  // namespace gp::serve
