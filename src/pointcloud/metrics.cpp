#include "pointcloud/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace gp {

namespace {

double min_dist_to(const PointCloud& cloud, const Vec3& q) {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& p : cloud) best = std::min(best, (p.position - q).norm2());
  return std::sqrt(best);
}

}  // namespace

double directed_hausdorff(const PointCloud& a, const PointCloud& b) {
  check_arg(!a.empty() && !b.empty(), "Hausdorff of empty cloud");
  double worst = 0.0;
  for (const auto& p : a) worst = std::max(worst, min_dist_to(b, p.position));
  return worst;
}

double hausdorff_distance(const PointCloud& a, const PointCloud& b) {
  return std::max(directed_hausdorff(a, b), directed_hausdorff(b, a));
}

double chamfer_distance(const PointCloud& a, const PointCloud& b) {
  check_arg(!a.empty() && !b.empty(), "Chamfer of empty cloud");
  double acc_ab = 0.0;
  for (const auto& p : a) acc_ab += min_dist_to(b, p.position);
  double acc_ba = 0.0;
  for (const auto& p : b) acc_ba += min_dist_to(a, p.position);
  return 0.5 * (acc_ab / static_cast<double>(a.size()) + acc_ba / static_cast<double>(b.size()));
}

double jensen_shannon_divergence(const PointCloud& a, const PointCloud& b,
                                 std::size_t resolution) {
  check_arg(!a.empty() && !b.empty(), "JSD of empty cloud");
  check_arg(resolution >= 2, "JSD resolution must be >= 2");

  // Joint bounding box, padded slightly so max-coordinate points stay inside.
  PointCloud joint = a;
  joint.insert(joint.end(), b.begin(), b.end());
  Aabb box = bounding_box(joint);
  const Vec3 extent = box.extent();
  const double pad = 1e-9 + 1e-6 * std::max({extent.x, extent.y, extent.z, 1.0});
  box.max += Vec3(pad, pad, pad);

  const auto voxelize = [&](const PointCloud& cloud) {
    std::vector<double> hist(resolution * resolution * resolution, 0.0);
    const Vec3 span = box.extent();
    for (const auto& p : cloud) {
      const auto cell = [&](double v, double lo, double s) {
        if (s <= 0.0) return std::size_t{0};
        const double t = (v - lo) / s;
        const auto i = static_cast<std::ptrdiff_t>(t * static_cast<double>(resolution));
        return static_cast<std::size_t>(
            std::clamp<std::ptrdiff_t>(i, 0, static_cast<std::ptrdiff_t>(resolution) - 1));
      };
      const std::size_t ix = cell(p.position.x, box.min.x, span.x);
      const std::size_t iy = cell(p.position.y, box.min.y, span.y);
      const std::size_t iz = cell(p.position.z, box.min.z, span.z);
      hist[(ix * resolution + iy) * resolution + iz] += 1.0;
    }
    for (auto& h : hist) h /= static_cast<double>(cloud.size());
    return hist;
  };

  const auto pa = voxelize(a);
  const auto pb = voxelize(b);

  const auto kl = [](const std::vector<double>& p, const std::vector<double>& m) {
    double acc = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (p[i] > 0.0 && m[i] > 0.0) acc += p[i] * std::log(p[i] / m[i]);
    }
    return acc;
  };

  std::vector<double> mid(pa.size());
  for (std::size_t i = 0; i < pa.size(); ++i) mid[i] = 0.5 * (pa[i] + pb[i]);
  return 0.5 * kl(pa, mid) + 0.5 * kl(pb, mid);
}

}  // namespace gp
