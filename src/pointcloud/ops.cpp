#include "pointcloud/ops.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/error.hpp"

namespace gp {

std::vector<std::size_t> knn(const PointCloud& cloud, const Vec3& query, std::size_t k) {
  check_arg(!cloud.empty(), "knn over empty cloud");
  k = std::min(k, cloud.size());
  std::vector<std::size_t> idx(cloud.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k), idx.end(),
                    [&](std::size_t a, std::size_t b) {
                      return (cloud[a].position - query).norm2() <
                             (cloud[b].position - query).norm2();
                    });
  idx.resize(k);
  return idx;
}

std::vector<std::size_t> ball_query(const PointCloud& cloud, const Vec3& query, double radius,
                                    std::size_t max_count) {
  check_arg(radius > 0.0, "ball_query radius must be positive");
  std::vector<std::pair<double, std::size_t>> hits;
  const double r2 = radius * radius;
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    const double d2 = (cloud[i].position - query).norm2();
    if (d2 <= r2) hits.emplace_back(d2, i);
  }
  std::sort(hits.begin(), hits.end());
  if (max_count > 0 && hits.size() > max_count) hits.resize(max_count);
  std::vector<std::size_t> out;
  out.reserve(hits.size());
  for (const auto& [d2, i] : hits) out.push_back(i);
  return out;
}

std::vector<std::size_t> farthest_point_sample(const PointCloud& cloud, std::size_t n,
                                               std::size_t start) {
  ResampleScratch scratch;
  farthest_point_sample_into(cloud, n, start, scratch);
  return std::move(scratch.selected);
}

void farthest_point_sample_into(const PointCloud& cloud, std::size_t n, std::size_t start,
                                ResampleScratch& scratch) {
  check_arg(!cloud.empty(), "FPS over empty cloud");
  check_arg(start < cloud.size(), "FPS start index out of range");
  std::vector<std::size_t>& selected = scratch.selected;
  selected.clear();
  if (n >= cloud.size()) {
    selected.resize(cloud.size());
    std::iota(selected.begin(), selected.end(), 0);
    return;
  }

  selected.reserve(n);
  scratch.min_dist2.assign(cloud.size(), std::numeric_limits<double>::infinity());
  std::vector<double>& min_dist2 = scratch.min_dist2;
  std::size_t current = start;
  for (std::size_t round = 0; round < n; ++round) {
    selected.push_back(current);
    std::size_t farthest = 0;
    double best = -1.0;
    for (std::size_t i = 0; i < cloud.size(); ++i) {
      const double d2 = (cloud[i].position - cloud[current].position).norm2();
      min_dist2[i] = std::min(min_dist2[i], d2);
      if (min_dist2[i] > best) {
        best = min_dist2[i];
        farthest = i;
      }
    }
    current = farthest;
  }
}

PointCloud resample(const PointCloud& cloud, std::size_t n, Rng& rng) {
  ResampleScratch scratch;
  PointCloud out;
  resample_into(cloud, n, rng, scratch, out);
  return out;
}

void resample_into(const PointCloud& cloud, std::size_t n, Rng& rng, ResampleScratch& scratch,
                   PointCloud& out) {
  check_arg(!cloud.empty(), "resample of empty cloud");
  check_arg(n > 0, "resample to zero points");
  out.clear();
  out.reserve(n);
  if (cloud.size() >= n) {
    // Same RNG draw order as the allocating path: one index() for the FPS
    // start point.
    farthest_point_sample_into(cloud, n, rng.index(cloud.size()), scratch);
    for (std::size_t i : scratch.selected) out.push_back(cloud[i]);
  } else {
    out.insert(out.end(), cloud.begin(), cloud.end());
    while (out.size() < n) out.push_back(cloud[rng.index(cloud.size())]);
  }
}

PointCloud normalize_centroid(const PointCloud& cloud, double scale) {
  check_arg(scale != 0.0, "normalize_centroid scale must be non-zero");
  if (cloud.empty()) return {};
  const Vec3 c = centroid(cloud);
  PointCloud out = cloud;
  for (auto& p : out) p.position = (p.position - c) / scale;
  return out;
}

}  // namespace gp
