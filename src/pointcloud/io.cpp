#include "pointcloud/io.hpp"

#include <fstream>

#include "common/csv.hpp"
#include "common/serialize.hpp"
#include "common/table.hpp"

namespace gp {

namespace {
constexpr const char* kTag = "GPRC";
}

void save_recording(std::ostream& out, const FrameSequence& frames) {
  BinaryWriter writer(out, kTag);
  writer.write_u64(frames.size());
  for (const auto& frame : frames) {
    writer.write_i32(frame.frame_index);
    writer.write_f64(frame.timestamp);
    writer.write_u64(frame.points.size());
    for (const auto& p : frame.points) {
      writer.write_f64(p.position.x);
      writer.write_f64(p.position.y);
      writer.write_f64(p.position.z);
      writer.write_f64(p.velocity);
      writer.write_f64(p.snr_db);
      writer.write_i32(p.frame);
    }
  }
}

void save_recording_file(const std::string& path, const FrameSequence& frames) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open recording for writing: " + path);
  save_recording(out, frames);
}

FrameSequence load_recording(std::istream& in) {
  BinaryReader reader(in, kTag);
  FrameSequence frames;
  // Minimum on-stream bytes: an empty frame is i32 + f64 + u64 point count;
  // each point is 5 x f64 + i32. The counts are validated against the bytes
  // actually left in the stream so corrupt length prefixes become typed
  // SerializationErrors rather than unbounded allocations.
  constexpr std::size_t kBytesPerFrame = sizeof(std::int32_t) + sizeof(double) + 8;
  constexpr std::size_t kBytesPerPoint = 5 * sizeof(double) + sizeof(std::int32_t);
  const std::uint64_t frame_count = reader.read_count(kBytesPerFrame, "recording frame");
  frames.reserve(static_cast<std::size_t>(frame_count));
  for (std::uint64_t f = 0; f < frame_count; ++f) {
    FrameCloud frame;
    frame.frame_index = reader.read_i32();
    frame.timestamp = reader.read_f64();
    const std::uint64_t point_count = reader.read_count(kBytesPerPoint, "frame point");
    frame.points.reserve(static_cast<std::size_t>(point_count));
    for (std::uint64_t i = 0; i < point_count; ++i) {
      RadarPoint p;
      p.position.x = reader.read_f64();
      p.position.y = reader.read_f64();
      p.position.z = reader.read_f64();
      p.velocity = reader.read_f64();
      p.snr_db = reader.read_f64();
      p.frame = reader.read_i32();
      frame.points.push_back(p);
    }
    frames.push_back(std::move(frame));
  }
  return frames;
}

std::optional<FrameSequence> load_recording_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return load_recording(in);
}

void export_recording_csv(const std::string& path, const FrameSequence& frames) {
  CsvWriter csv(path, {"frame", "t", "x", "y", "z", "velocity", "snr_db"});
  for (const auto& frame : frames) {
    for (const auto& p : frame.points) {
      csv.write_row({std::to_string(frame.frame_index), Table::num(frame.timestamp, 3),
                     Table::num(p.position.x, 4), Table::num(p.position.y, 4),
                     Table::num(p.position.z, 4), Table::num(p.velocity, 3),
                     Table::num(p.snr_db, 1)});
    }
  }
}

}  // namespace gp
