// Recording I/O: persist and replay raw point-cloud frame streams.
//
// A deployment records FrameSequences (what the radar emits) for later
// replay through the preprocessing pipeline — dataset exchange, regression
// testing against captured streams, and offline debugging all go through
// this format ("GPRC" tag in the gp binary container).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "pointcloud/point.hpp"

namespace gp {

/// Writes a frame stream to a gp-binary stream/file.
void save_recording(std::ostream& out, const FrameSequence& frames);
void save_recording_file(const std::string& path, const FrameSequence& frames);

/// Reads a frame stream; throws SerializationError on malformed content.
FrameSequence load_recording(std::istream& in);
/// Returns nullopt when the file does not exist.
std::optional<FrameSequence> load_recording_file(const std::string& path);

/// Exports a frame stream as CSV (frame, t, x, y, z, velocity, snr_db) for
/// external tooling.
void export_recording_csv(const std::string& path, const FrameSequence& frames);

}  // namespace gp
