// DBSCAN density clustering.
//
// Used by the noise-canceling module (§IV-B): cluster the aggregated gesture
// cloud, keep the cluster with the most points (the user's body/arm), drop
// everything else (multipath ghosts, other reflectors, other people).
#pragma once

#include <cstddef>
#include <vector>

#include "pointcloud/point.hpp"

namespace gp {

struct DbscanParams {
  double max_distance = 1.0;    ///< D_max: eps neighbourhood radius (m)
  std::size_t min_points = 4;   ///< N_min: minimum cluster size (core point)
};

inline constexpr int kDbscanNoise = -1;

struct DbscanResult {
  /// Per-point cluster id in [0, num_clusters) or kDbscanNoise.
  std::vector<int> labels;
  std::size_t num_clusters = 0;

  /// Index of the cluster with the most members; kDbscanNoise if none.
  int largest_cluster() const;
  /// Number of points assigned to `cluster`.
  std::size_t cluster_size(int cluster) const;
};

/// Runs DBSCAN over point positions (Euclidean metric).
DbscanResult dbscan(const PointCloud& cloud, const DbscanParams& params);

/// Reusable working memory for dbscan_into: hot loops keep one per caller
/// so repeated clustering stops allocating (capacities stay warm).
struct DbscanScratch {
  std::vector<char> visited;
  std::vector<std::size_t> neighbours;
  std::vector<std::size_t> queue;  ///< BFS ring (head index, no pops)
};

/// Allocation-free variant of dbscan(): identical labels/cluster ids
/// (bit-for-bit BFS expansion order), with every buffer including
/// `out.labels` recycled across calls.
void dbscan_into(const PointCloud& cloud, const DbscanParams& params, DbscanScratch& scratch,
                 DbscanResult& out);

/// largest_cluster() with caller-owned count scratch (allocation-free once
/// warm). Same result as DbscanResult::largest_cluster().
int largest_cluster(const DbscanResult& result, std::vector<std::size_t>& counts_scratch);

/// Extracts the points of one cluster.
PointCloud extract_cluster(const PointCloud& cloud, const DbscanResult& result, int cluster);

}  // namespace gp
