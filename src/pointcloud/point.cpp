#include "pointcloud/point.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace gp {

PointCloud aggregate(const FrameSequence& frames) {
  PointCloud out;
  aggregate_into(frames, out);
  return out;
}

void aggregate_into(std::span<const FrameCloud> frames, PointCloud& out) {
  out.clear();
  std::size_t total = 0;
  for (const auto& frame : frames) total += frame.points.size();
  out.reserve(total);
  for (const auto& frame : frames) {
    out.insert(out.end(), frame.points.begin(), frame.points.end());
  }
}

Vec3 centroid(const PointCloud& cloud) {
  check_arg(!cloud.empty(), "centroid of empty cloud");
  Vec3 acc;
  for (const auto& p : cloud) acc += p.position;
  return acc / static_cast<double>(cloud.size());
}

Aabb bounding_box(const PointCloud& cloud) {
  check_arg(!cloud.empty(), "bounding box of empty cloud");
  constexpr double inf = std::numeric_limits<double>::infinity();
  Aabb box{{inf, inf, inf}, {-inf, -inf, -inf}};
  for (const auto& p : cloud) {
    box.min.x = std::min(box.min.x, p.position.x);
    box.min.y = std::min(box.min.y, p.position.y);
    box.min.z = std::min(box.min.z, p.position.z);
    box.max.x = std::max(box.max.x, p.position.x);
    box.max.y = std::max(box.max.y, p.position.y);
    box.max.z = std::max(box.max.z, p.position.z);
  }
  return box;
}

std::size_t total_points(const FrameSequence& frames) {
  std::size_t n = 0;
  for (const auto& frame : frames) n += frame.points.size();
  return n;
}

}  // namespace gp
