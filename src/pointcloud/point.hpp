// Core point-cloud data types shared by the radar, pipeline and models.
//
// Coordinate frame (radar-centric, matching the paper's deployment): the
// radar sits at the origin at a mounted height; +y points away from the
// radar toward the user, +x to the radar's right, +z up.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/vec3.hpp"

namespace gp {

/// One detected radar point.
struct RadarPoint {
  Vec3 position;          ///< Cartesian position in metres (radar frame)
  double velocity = 0.0;  ///< radial Doppler velocity, m/s (+ = receding)
  double snr_db = 0.0;    ///< detection signal-to-noise ratio
  int frame = 0;          ///< index of the radar frame that produced it
};

/// Unordered set of radar points (possibly aggregated across frames).
using PointCloud = std::vector<RadarPoint>;

/// Points detected in a single radar frame with its capture timestamp.
struct FrameCloud {
  int frame_index = 0;
  double timestamp = 0.0;  ///< seconds since capture start
  PointCloud points;
};

/// A temporal stream of frames, the unit the segmentation module consumes.
using FrameSequence = std::vector<FrameCloud>;

/// Non-owning view of one frame: the zero-copy currency of the serving hot
/// path. Frame points live in the owning shard's mem::Arena (or any other
/// stable storage); the view stays valid until that storage's epoch reset.
/// Implicitly convertible from FrameCloud so owning call sites keep
/// compiling unchanged.
struct FrameView {
  int frame_index = 0;
  double timestamp = 0.0;
  std::span<const RadarPoint> points;

  FrameView() = default;
  FrameView(const FrameCloud& frame)  // NOLINT(google-explicit-constructor)
      : frame_index(frame.frame_index), timestamp(frame.timestamp), points(frame.points) {}
};

/// Concatenates the points of every frame (used after segmentation: the
/// paper aggregates the whole gesture into one cloud before GesIDNet).
PointCloud aggregate(const FrameSequence& frames);

/// Allocation-free variant: refills `out`, reusing its capacity.
void aggregate_into(std::span<const FrameCloud> frames, PointCloud& out);

/// Arithmetic mean of point positions. Requires a non-empty cloud.
Vec3 centroid(const PointCloud& cloud);

/// Axis-aligned bounding box.
struct Aabb {
  Vec3 min;
  Vec3 max;
  Vec3 extent() const { return max - min; }
};
Aabb bounding_box(const PointCloud& cloud);

/// Total number of points across all frames.
std::size_t total_points(const FrameSequence& frames);

}  // namespace gp
