// Core point-cloud data types shared by the radar, pipeline and models.
//
// Coordinate frame (radar-centric, matching the paper's deployment): the
// radar sits at the origin at a mounted height; +y points away from the
// radar toward the user, +x to the radar's right, +z up.
#pragma once

#include <cstddef>
#include <vector>

#include "common/vec3.hpp"

namespace gp {

/// One detected radar point.
struct RadarPoint {
  Vec3 position;          ///< Cartesian position in metres (radar frame)
  double velocity = 0.0;  ///< radial Doppler velocity, m/s (+ = receding)
  double snr_db = 0.0;    ///< detection signal-to-noise ratio
  int frame = 0;          ///< index of the radar frame that produced it
};

/// Unordered set of radar points (possibly aggregated across frames).
using PointCloud = std::vector<RadarPoint>;

/// Points detected in a single radar frame with its capture timestamp.
struct FrameCloud {
  int frame_index = 0;
  double timestamp = 0.0;  ///< seconds since capture start
  PointCloud points;
};

/// A temporal stream of frames, the unit the segmentation module consumes.
using FrameSequence = std::vector<FrameCloud>;

/// Concatenates the points of every frame (used after segmentation: the
/// paper aggregates the whole gesture into one cloud before GesIDNet).
PointCloud aggregate(const FrameSequence& frames);

/// Arithmetic mean of point positions. Requires a non-empty cloud.
Vec3 centroid(const PointCloud& cloud);

/// Axis-aligned bounding box.
struct Aabb {
  Vec3 min;
  Vec3 max;
  Vec3 extent() const { return max - min; }
};
Aabb bounding_box(const PointCloud& cloud);

/// Total number of points across all frames.
std::size_t total_points(const FrameSequence& frames);

}  // namespace gp
