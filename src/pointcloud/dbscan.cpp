#include "pointcloud/dbscan.hpp"

#include <algorithm>
#include <deque>

#include "common/error.hpp"

namespace gp {

int DbscanResult::largest_cluster() const {
  if (num_clusters == 0) return kDbscanNoise;
  std::vector<std::size_t> counts(num_clusters, 0);
  for (int l : labels) {
    if (l >= 0) ++counts[static_cast<std::size_t>(l)];
  }
  const auto it = std::max_element(counts.begin(), counts.end());
  return static_cast<int>(std::distance(counts.begin(), it));
}

std::size_t DbscanResult::cluster_size(int cluster) const {
  std::size_t n = 0;
  for (int l : labels) {
    if (l == cluster) ++n;
  }
  return n;
}

DbscanResult dbscan(const PointCloud& cloud, const DbscanParams& params) {
  check_arg(params.max_distance > 0.0, "DBSCAN max_distance must be positive");
  check_arg(params.min_points >= 1, "DBSCAN min_points must be >= 1");

  const std::size_t n = cloud.size();
  DbscanResult result;
  result.labels.assign(n, kDbscanNoise);
  if (n == 0) return result;

  const double eps2 = params.max_distance * params.max_distance;
  const auto neighbours = [&](std::size_t i) {
    std::vector<std::size_t> out;
    for (std::size_t j = 0; j < n; ++j) {
      if ((cloud[i].position - cloud[j].position).norm2() <= eps2) out.push_back(j);
    }
    return out;  // includes i itself, matching the classic definition
  };

  std::vector<char> visited(n, 0);
  int next_cluster = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (visited[i]) continue;
    visited[i] = 1;
    auto seed = neighbours(i);
    if (seed.size() < params.min_points) continue;  // not a core point (yet)

    const int cluster = next_cluster++;
    result.labels[i] = cluster;
    std::deque<std::size_t> queue(seed.begin(), seed.end());
    while (!queue.empty()) {
      const std::size_t j = queue.front();
      queue.pop_front();
      if (result.labels[j] == kDbscanNoise) result.labels[j] = cluster;  // border point
      if (visited[j]) continue;
      visited[j] = 1;
      result.labels[j] = cluster;
      const auto nb = neighbours(j);
      if (nb.size() >= params.min_points) {
        queue.insert(queue.end(), nb.begin(), nb.end());
      }
    }
  }
  result.num_clusters = static_cast<std::size_t>(next_cluster);
  return result;
}

PointCloud extract_cluster(const PointCloud& cloud, const DbscanResult& result, int cluster) {
  check_arg(cloud.size() == result.labels.size(), "DBSCAN result size mismatch");
  PointCloud out;
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    if (result.labels[i] == cluster) out.push_back(cloud[i]);
  }
  return out;
}

}  // namespace gp
