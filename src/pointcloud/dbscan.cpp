#include "pointcloud/dbscan.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gp {

int DbscanResult::largest_cluster() const {
  if (num_clusters == 0) return kDbscanNoise;
  std::vector<std::size_t> counts(num_clusters, 0);
  for (int l : labels) {
    if (l >= 0) ++counts[static_cast<std::size_t>(l)];
  }
  const auto it = std::max_element(counts.begin(), counts.end());
  return static_cast<int>(std::distance(counts.begin(), it));
}

std::size_t DbscanResult::cluster_size(int cluster) const {
  std::size_t n = 0;
  for (int l : labels) {
    if (l == cluster) ++n;
  }
  return n;
}

DbscanResult dbscan(const PointCloud& cloud, const DbscanParams& params) {
  DbscanScratch scratch;
  DbscanResult result;
  dbscan_into(cloud, params, scratch, result);
  return result;
}

void dbscan_into(const PointCloud& cloud, const DbscanParams& params, DbscanScratch& scratch,
                 DbscanResult& out) {
  check_arg(params.max_distance > 0.0, "DBSCAN max_distance must be positive");
  check_arg(params.min_points >= 1, "DBSCAN min_points must be >= 1");

  const std::size_t n = cloud.size();
  out.labels.assign(n, kDbscanNoise);
  out.num_clusters = 0;
  if (n == 0) return;

  const double eps2 = params.max_distance * params.max_distance;
  // Fills scratch.neighbours with every index within eps of point i
  // (including i itself, matching the classic definition), ascending —
  // the same order the allocating implementation produced.
  const auto find_neighbours = [&](std::size_t i) {
    scratch.neighbours.clear();
    for (std::size_t j = 0; j < n; ++j) {
      if ((cloud[i].position - cloud[j].position).norm2() <= eps2) {
        scratch.neighbours.push_back(j);
      }
    }
  };

  scratch.visited.assign(n, 0);
  std::vector<char>& visited = scratch.visited;
  // BFS frontier as a head-indexed ring: push_back grows the tail, the
  // head index advances instead of popping, so the expansion order matches
  // the previous deque-based queue exactly while the storage is recycled.
  std::vector<std::size_t>& queue = scratch.queue;

  int next_cluster = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (visited[i]) continue;
    visited[i] = 1;
    find_neighbours(i);
    if (scratch.neighbours.size() < params.min_points) continue;  // not a core point (yet)

    const int cluster = next_cluster++;
    out.labels[i] = cluster;
    queue.clear();
    queue.insert(queue.end(), scratch.neighbours.begin(), scratch.neighbours.end());
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::size_t j = queue[head];
      if (out.labels[j] == kDbscanNoise) out.labels[j] = cluster;  // border point
      if (visited[j]) continue;
      visited[j] = 1;
      out.labels[j] = cluster;
      find_neighbours(j);
      if (scratch.neighbours.size() >= params.min_points) {
        queue.insert(queue.end(), scratch.neighbours.begin(), scratch.neighbours.end());
      }
    }
  }
  out.num_clusters = static_cast<std::size_t>(next_cluster);
}

int largest_cluster(const DbscanResult& result, std::vector<std::size_t>& counts_scratch) {
  if (result.num_clusters == 0) return kDbscanNoise;
  counts_scratch.assign(result.num_clusters, 0);
  for (int l : result.labels) {
    if (l >= 0) ++counts_scratch[static_cast<std::size_t>(l)];
  }
  const auto it = std::max_element(counts_scratch.begin(), counts_scratch.end());
  return static_cast<int>(std::distance(counts_scratch.begin(), it));
}

PointCloud extract_cluster(const PointCloud& cloud, const DbscanResult& result, int cluster) {
  check_arg(cloud.size() == result.labels.size(), "DBSCAN result size mismatch");
  PointCloud out;
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    if (result.labels[i] == cluster) out.push_back(cloud[i]);
  }
  return out;
}

}  // namespace gp
