// Geometric operations on point clouds: neighbour queries, farthest point
// sampling, ball grouping and normalisation. These are the primitives the
// PointNet++-style set abstraction in GesIDNet is built from.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/vec3.hpp"
#include "pointcloud/point.hpp"

namespace gp {

/// Indices of the k nearest neighbours of `query` within `cloud`, ordered by
/// increasing distance. k is clamped to cloud.size(). Brute force: gesture
/// clouds are a few hundred points, so an index structure would not pay off.
std::vector<std::size_t> knn(const PointCloud& cloud, const Vec3& query, std::size_t k);

/// Indices of all points within `radius` of `query`, capped at `max_count`
/// (0 = unlimited), nearest first.
std::vector<std::size_t> ball_query(const PointCloud& cloud, const Vec3& query, double radius,
                                    std::size_t max_count = 0);

/// Farthest point sampling: greedily selects n indices maximising pairwise
/// coverage, starting from `start`. If the cloud has fewer than n points all
/// indices are returned (no padding here; callers pad).
std::vector<std::size_t> farthest_point_sample(const PointCloud& cloud, std::size_t n,
                                               std::size_t start = 0);

/// Reusable working memory for resample_into (FPS selection + distance
/// table); one per hot caller keeps resampling allocation-free.
struct ResampleScratch {
  std::vector<std::size_t> selected;
  std::vector<double> min_dist2;
};

/// Allocation-free farthest point sampling: same indices as
/// farthest_point_sample, written into `scratch.selected`.
void farthest_point_sample_into(const PointCloud& cloud, std::size_t n, std::size_t start,
                                ResampleScratch& scratch);

/// Resamples a cloud to exactly n points: FPS when shrinking, repetition
/// with jitter-free duplication when growing. Deterministic given `rng`.
PointCloud resample(const PointCloud& cloud, std::size_t n, Rng& rng);

/// Allocation-free variant: identical output (same RNG draw order) written
/// into `out`, reusing its capacity and `scratch`'s tables.
void resample_into(const PointCloud& cloud, std::size_t n, Rng& rng, ResampleScratch& scratch,
                   PointCloud& out);

/// Translates the cloud so its centroid is at origin and divides positions
/// by `scale` (pass 1.0 to only centre). Velocity/SNR are untouched.
PointCloud normalize_centroid(const PointCloud& cloud, double scale = 1.0);

/// Pairwise Euclidean distance between two points' positions.
inline double point_distance(const RadarPoint& a, const RadarPoint& b) {
  return distance(a.position, b.position);
}

}  // namespace gp
