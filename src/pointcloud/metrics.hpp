// Point-cloud dissimilarity metrics used in the paper's preliminary study
// (§III, Fig. 3): Hausdorff distance, Chamfer distance, and Jensen–Shannon
// divergence between voxelised occupancy distributions.
#pragma once

#include <cstddef>

#include "pointcloud/point.hpp"

namespace gp {

/// Directed Hausdorff: max over a of min over b of ||a-b||.
double directed_hausdorff(const PointCloud& a, const PointCloud& b);

/// Symmetric Hausdorff distance: max of the two directed distances.
double hausdorff_distance(const PointCloud& a, const PointCloud& b);

/// Chamfer distance: mean closest-point distance, averaged over both
/// directions (the point-set generation network convention).
double chamfer_distance(const PointCloud& a, const PointCloud& b);

/// Jensen–Shannon divergence between the voxel occupancy distributions of
/// two clouds. Both clouds are voxelised over their joint bounding box with
/// `resolution` cells per axis. Returns a value in [0, ln 2].
double jensen_shannon_divergence(const PointCloud& a, const PointCloud& b,
                                 std::size_t resolution = 16);

}  // namespace gp
