// Enrollment candidate buffers (DESIGN.md §13).
//
// Segments the open-set novelty gate rejects are evidence that *someone
// unknown* is using the system — but several unknown people may be streaming
// at once. The EnrollmentBuffer clusters rejected segments into per-candidate
// buffers by nearest-centroid assignment in the same z-scored biometric space
// the novelty decision uses: a rejected segment joins the closest candidate
// centroid within `candidate_radius`, otherwise it founds a new candidate.
// Everything is bounded with *typed* eviction — a full candidate buffer
// evicts its oldest segment, a full candidate table evicts the weakest
// candidate (fewest live segments, lowest id on ties) — so an adversarial
// stream of random gestures can grow neither memory nor the candidate count.
//
// Determinism: admission happens at tick close, over observations ordered by
// (session_id, ordinal); centroid updates are running means over admission
// order. Outcomes are therefore pure functions of the stream, invariant to
// GP_THREADS and shard count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "system/open_set.hpp"

namespace gp::enroll {

/// One novelty-rejected segment retained as enrollment evidence. Carries the
/// cleaned cloud so a triggered fine-tune can featurize it as training data.
struct EnrollObservation {
  std::uint64_t session_id = 0;
  std::uint64_t ordinal = 0;
  int gesture = -1;
  BiometricStats raw{};        ///< un-normalized descriptor
  BiometricStats normalized{}; ///< z-scored under the gallery calibration
  GestureCloud cloud;
  /// Wall-clock staging timestamp (0 when obs metrics are off): start of the
  /// enrollment-to-live latency measurement. Observational only — never
  /// feeds back into clustering or training.
  std::uint64_t staged_ns = 0;
};

/// Why room had to be made (the typed-eviction vocabulary).
enum class Eviction {
  kNone = 0,
  kSegmentOldest,     ///< candidate buffer at cap: oldest segment dropped
  kCandidateWeakest,  ///< candidate table at cap: weakest candidate dropped
};

/// One tracked enrollment candidate: a centroid in z-space plus its bounded
/// segment buffer.
struct Candidate {
  std::uint64_t id = 0;              ///< founding order (monotonic)
  BiometricStats centroid{};         ///< running mean over admitted segments
  std::uint64_t admitted = 0;        ///< total ever admitted (centroid weight)
  std::vector<EnrollObservation> segments;  ///< live evidence, oldest first
};

class EnrollmentBuffer {
 public:
  struct Config {
    std::size_t max_candidates = 4;
    std::size_t buffer_cap = 16;
    double candidate_radius = 3.5;
  };

  explicit EnrollmentBuffer(Config config);

  struct AdmitOutcome {
    std::uint64_t candidate_id = 0;
    bool founded = false;          ///< a new candidate was created
    Eviction eviction = Eviction::kNone;
  };

  /// Admits one observation: nearest-centroid assignment within the radius,
  /// else a new candidate (evicting typed when bounds require it).
  AdmitOutcome admit(EnrollObservation obs);

  /// Candidates in founding order (ascending id).
  const std::vector<Candidate>& candidates() const { return candidates_; }
  const Candidate* find(std::uint64_t candidate_id) const;

  /// Removes a candidate (after its fine-tune consumed the evidence),
  /// returning its observations. Returns an empty vector for unknown ids.
  std::vector<EnrollObservation> take(std::uint64_t candidate_id);

  std::size_t total_segments() const;

  struct Stats {
    std::uint64_t admitted = 0;
    std::uint64_t founded = 0;
    std::uint64_t evicted_segments = 0;
    std::uint64_t evicted_candidates = 0;
  };
  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }

  /// Round-trips the buffer state ("GPEB"). `params_fingerprint` binds the
  /// saved z-space observations to the gallery calibration that produced
  /// them: load() rejects a blob whose fingerprint does not match the
  /// caller's current calibration (typed SerializationError) — restoring
  /// buffers against a different model/gallery would cluster in the wrong
  /// metric space.
  void save(std::ostream& out, std::uint64_t params_fingerprint) const;
  static EnrollmentBuffer load(std::istream& in, std::uint64_t expected_fingerprint);

 private:
  Config config_;
  std::vector<Candidate> candidates_;  ///< ascending id
  std::uint64_t next_id_ = 1;
  Stats stats_;
};

}  // namespace gp::enroll
