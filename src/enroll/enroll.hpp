// gp::enroll — open-set enrollment-as-a-service (DESIGN.md §13).
//
// The EnrollmentService turns the serve stack's abstention vocabulary into a
// product feature: segments the open-set novelty gate rejects are clustered
// into per-candidate EnrollmentBuffers; once a candidate accumulates
// K segments, a head-only fine-tune (frozen PointNet++ trunk,
// GesturePrintSystem::widen_users + fine_tune_user_heads) trains a widened
// user head on replayed enrolled samples plus the buffered evidence, saves a
// new .gpsy, and publishes it through the checksum-verified
// ModelRegistry::publish_file RCU hot-swap — zero dropped ticks, the
// in-flight batch always answered by exactly one model version.
//
// It implements serve::EnrollmentHook: gate() runs on the pump thread during
// a flush and is read-only against the novelty gallery; every mutation
// (candidate clustering, K-trigger, fine-tune, gallery growth, publish
// bookkeeping) happens in close_tick(), over observations ordered by
// (session_id, ordinal). Enrollment outcomes are therefore pure functions of
// the per-session streams — bitwise invariant to GP_THREADS × shard count.
//
// Synchronous mode (default) runs the fine-tune inside close_tick, which
// pins the publish to a deterministic stream position. Background mode
// (GP_ENROLL_BACKGROUND=1) runs it on a worker thread: the pump loop never
// blocks, the published artifact is bit-identical, but the version flip
// lands a wall-clock-dependent number of ticks later.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "enroll/buffer.hpp"
#include "serve/enroll_hook.hpp"
#include "serve/registry.hpp"
#include "serve/sessions.hpp"
#include "system/open_set.hpp"

namespace gp::enroll {

struct EnrollmentServiceConfig {
  /// Admission knobs, normally copied from ServeConfig::enroll.
  serve::EnrollConfig admission;
  /// Novelty gallery knobs (FRR target, k nearest neighbours).
  OpenSetConfig open_set;
  /// The .gpsy the first fine-tune starts from (must round-trip the model
  /// the registry serves). Each successful enrollment rebases this onto the
  /// freshly published artifact, so enrollments compose.
  std::string base_model_path;
  /// Directory where enroll_v<seq>.gpsy artifacts are written.
  std::string publish_dir;
  std::size_t fine_tune_epochs = 4;
  double fine_tune_lr = 5e-4;
  /// Replay cap per (gesture, user) cell captured at calibrate() time: the
  /// widened head trains against these negatives so it cannot collapse onto
  /// the new user's class.
  std::size_t replay_per_cell = 3;
  /// Drives widened-head inits, fine-tune shuffles and the synthetic profile
  /// of each enrolled user; enrollment outcomes are pure in it.
  std::uint64_t seed = 0xE9120115ULL;
  /// Quant mode the published snapshot fuses with (match the serve config).
  nn::QuantMode quant = nn::QuantMode::kOff;
};

class EnrollmentService final : public serve::EnrollmentHook {
 public:
  /// `registry` must outlive the service; its config() is the architecture
  /// fine-tuned systems are constructed with.
  EnrollmentService(EnrollmentServiceConfig config, serve::ModelRegistry& registry);
  ~EnrollmentService() override;

  EnrollmentService(const EnrollmentService&) = delete;
  EnrollmentService& operator=(const EnrollmentService&) = delete;

  /// Calibrates the novelty gallery from the enrolled training split and
  /// captures the replay set for future fine-tunes. Must run before the
  /// hook is armed.
  void calibrate(const Dataset& dataset, std::span<const std::size_t> genuine_indices);

  // serve::EnrollmentHook
  bool gate(const serve::PendingSegment& segment, const serve::ServeResult& result) override;
  void close_tick(std::uint64_t tick) override;

  /// Background mode: blocks until the in-flight fine-tune (if any) has
  /// finished training; its publish still lands at the next close_tick().
  /// No-op in synchronous mode.
  void wait_for_fine_tune();

  /// One completed enrollment (audit record).
  struct EnrolledUser {
    int user_id = -1;                 ///< class id in the widened head
    std::uint64_t candidate_id = 0;   ///< buffer candidate consumed
    std::uint64_t model_version = 0;  ///< registry version that went live
    std::uint64_t tick = 0;           ///< close_tick that published it
    std::string artifact;             ///< the enroll_v<seq>.gpsy path
  };

  struct Stats {
    std::uint64_t novelty_rejections = 0;  ///< gate() fired
    std::size_t candidates = 0;            ///< live candidate buffers
    std::size_t buffered_segments = 0;     ///< live buffered segments
    std::uint64_t evicted_segments = 0;
    std::uint64_t evicted_candidates = 0;
    std::uint64_t fine_tunes_started = 0;
    std::uint64_t fine_tunes_failed = 0;   ///< base load/save/publish failed
    std::uint64_t fine_tunes_in_flight = 0;
    std::uint64_t users_enrolled = 0;
    std::uint64_t last_publish_version = 0;
  };
  Stats stats() const;
  std::vector<EnrolledUser> enrolled() const;

  const BiometricGallery& gallery() const { return gallery_; }
  /// Candidate-buffer state (pump-thread callers only: read between ticks).
  const EnrollmentBuffer& buffer() const { return buffer_; }
  bool calibrated() const { return gallery_.calibrated(); }
  const EnrollmentServiceConfig& config() const { return config_; }
  /// FNV-1a over the gallery calibration (z-stats + threshold + config):
  /// the fingerprint EnrollmentBuffer blobs are bound to.
  std::uint64_t params_fingerprint() const;

 private:
  struct FineTuneJob {
    std::uint64_t candidate_id = 0;
    std::uint64_t seq = 0;               ///< enrollment sequence number
    std::uint64_t trigger_tick = 0;
    std::uint64_t first_staged_ns = 0;   ///< earliest evidence staging time
    std::vector<EnrollObservation> evidence;
  };
  struct FineTuneOutcome {
    FineTuneJob job;
    bool ok = false;
    int user_id = -1;      ///< widened class id (valid when ok)
    std::string artifact;  ///< saved .gpsy (valid when ok)
  };

  /// Trains + saves the widened system (no registry/gallery mutation) —
  /// safe on the worker thread.
  FineTuneOutcome run_fine_tune(FineTuneJob job);
  /// Publishes the artifact and applies gallery/bookkeeping mutations.
  /// close_tick() context only.
  void commit_outcome(FineTuneOutcome outcome, std::uint64_t tick);
  /// Scans for K-ready candidates and starts/runs their fine-tunes.
  void trigger_ready(std::uint64_t tick);

  EnrollmentServiceConfig config_;
  serve::ModelRegistry* registry_;
  BiometricGallery gallery_;
  Dataset replay_;                  ///< capped enrolled replay set
  EnrollmentBuffer buffer_;
  std::string base_model_path_;     ///< rebased after each publish
  std::uint64_t enroll_seq_ = 0;

  /// Observations gate() staged this tick (pump thread); drained and
  /// admitted in (session_id, ordinal) order by close_tick().
  std::vector<EnrollObservation> staged_;

  /// Background worker (admission.background only): one fine-tune in
  /// flight at a time; its outcome is committed at the next close_tick.
  std::thread worker_;
  std::optional<FineTuneOutcome> worker_outcome_;  ///< guarded by mu_
  bool worker_running_ = false;                    ///< guarded by mu_

  mutable std::mutex mu_;  ///< guards stats_/enrolled_/worker state
  Stats stats_;
  std::vector<EnrolledUser> enrolled_;
};

}  // namespace gp::enroll
