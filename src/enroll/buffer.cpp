#include "enroll/buffer.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace gp::enroll {

namespace {

double l2(const BiometricStats& a, const BiometricStats& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < kBiometricDims; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace

EnrollmentBuffer::EnrollmentBuffer(Config config) : config_(config) {
  check_arg(config_.max_candidates >= 1, "enrollment needs >= 1 candidate slot");
  check_arg(config_.buffer_cap >= 1, "enrollment buffer cap must be >= 1");
  check_arg(config_.candidate_radius > 0.0, "candidate radius must be positive");
}

EnrollmentBuffer::AdmitOutcome EnrollmentBuffer::admit(EnrollObservation obs) {
  AdmitOutcome outcome;
  ++stats_.admitted;

  // Nearest candidate centroid in z-space. Ties (exactly equal distances)
  // resolve to the lowest id — candidates_ is ascending by id and the strict
  // `<` keeps the first minimum.
  Candidate* nearest = nullptr;
  double nearest_d = std::numeric_limits<double>::max();
  for (Candidate& c : candidates_) {
    const double d = l2(c.centroid, obs.normalized);
    if (d < nearest_d) {
      nearest_d = d;
      nearest = &c;
    }
  }

  if (nearest != nullptr && nearest_d <= config_.candidate_radius) {
    // Join: running-mean centroid over every segment ever admitted (evicted
    // segments keep their weight — the centroid tracks the *person*, not the
    // buffer contents).
    Candidate& c = *nearest;
    const double n = static_cast<double>(c.admitted);
    for (std::size_t d = 0; d < kBiometricDims; ++d) {
      c.centroid[d] = (c.centroid[d] * n + obs.normalized[d]) / (n + 1.0);
    }
    ++c.admitted;
    if (c.segments.size() >= config_.buffer_cap) {
      c.segments.erase(c.segments.begin());  // typed: oldest segment out
      ++stats_.evicted_segments;
      outcome.eviction = Eviction::kSegmentOldest;
    }
    outcome.candidate_id = c.id;
    c.segments.push_back(std::move(obs));
    return outcome;
  }

  // Found a new candidate; evict the weakest when the table is full. Weakest
  // = fewest live segments, lowest id on ties (the longest-stalled stranger).
  if (candidates_.size() >= config_.max_candidates) {
    std::size_t weakest = 0;
    for (std::size_t i = 1; i < candidates_.size(); ++i) {
      if (candidates_[i].segments.size() < candidates_[weakest].segments.size()) weakest = i;
    }
    stats_.evicted_segments += candidates_[weakest].segments.size();
    ++stats_.evicted_candidates;
    candidates_.erase(candidates_.begin() + static_cast<std::ptrdiff_t>(weakest));
    outcome.eviction = Eviction::kCandidateWeakest;
  }

  Candidate c;
  c.id = next_id_++;
  c.centroid = obs.normalized;
  c.admitted = 1;
  outcome.candidate_id = c.id;
  outcome.founded = true;
  ++stats_.founded;
  c.segments.push_back(std::move(obs));
  candidates_.push_back(std::move(c));
  return outcome;
}

const Candidate* EnrollmentBuffer::find(std::uint64_t candidate_id) const {
  for (const Candidate& c : candidates_) {
    if (c.id == candidate_id) return &c;
  }
  return nullptr;
}

std::vector<EnrollObservation> EnrollmentBuffer::take(std::uint64_t candidate_id) {
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    if (candidates_[i].id == candidate_id) {
      std::vector<EnrollObservation> out = std::move(candidates_[i].segments);
      candidates_.erase(candidates_.begin() + static_cast<std::ptrdiff_t>(i));
      return out;
    }
  }
  return {};
}

std::size_t EnrollmentBuffer::total_segments() const {
  std::size_t total = 0;
  for (const Candidate& c : candidates_) total += c.segments.size();
  return total;
}

namespace {

void write_stats_array(BinaryWriter& w, const BiometricStats& s) {
  std::vector<double> v(s.begin(), s.end());
  w.write_f64_vector(v);
}

BiometricStats read_stats_array(BinaryReader& r) {
  const std::vector<double> v = r.read_f64_vector();
  if (v.size() != kBiometricDims) {
    throw SerializationError("enrollment descriptor has wrong dimension");
  }
  BiometricStats s{};
  std::copy(v.begin(), v.end(), s.begin());
  return s;
}

}  // namespace

void EnrollmentBuffer::save(std::ostream& out, std::uint64_t params_fingerprint) const {
  BinaryWriter w(out, "GPEB");
  w.write_u64(params_fingerprint);
  w.write_u64(config_.max_candidates);
  w.write_u64(config_.buffer_cap);
  w.write_f64(config_.candidate_radius);
  w.write_u64(next_id_);
  w.write_u64(stats_.admitted);
  w.write_u64(stats_.founded);
  w.write_u64(stats_.evicted_segments);
  w.write_u64(stats_.evicted_candidates);
  w.write_u64(candidates_.size());
  for (const Candidate& c : candidates_) {
    w.write_u64(c.id);
    w.write_u64(c.admitted);
    write_stats_array(w, c.centroid);
    w.write_u64(c.segments.size());
    for (const EnrollObservation& obs : c.segments) {
      w.write_u64(obs.session_id);
      w.write_u64(obs.ordinal);
      w.write_i32(obs.gesture);
      write_stats_array(w, obs.raw);
      write_stats_array(w, obs.normalized);
      w.write_u64(obs.cloud.num_frames);
      w.write_i32(obs.cloud.first_frame);
      w.write_f64(obs.cloud.duration_s);
      w.write_u8(static_cast<std::uint8_t>(obs.cloud.quality));
      w.write_u64(obs.cloud.points.size());
      for (const RadarPoint& p : obs.cloud.points) {
        w.write_f64(p.position.x);
        w.write_f64(p.position.y);
        w.write_f64(p.position.z);
        w.write_f64(p.velocity);
        w.write_f64(p.snr_db);
        w.write_i32(p.frame);
      }
    }
  }
}

EnrollmentBuffer EnrollmentBuffer::load(std::istream& in, std::uint64_t expected_fingerprint) {
  BinaryReader r(in, "GPEB");
  const std::uint64_t fingerprint = r.read_u64();
  if (fingerprint != expected_fingerprint) {
    // The buffered observations are z-scored under a specific gallery
    // calibration; mixing calibrations silently would corrupt the clustering
    // metric, so this is typed corruption, not a soft mismatch.
    throw SerializationError("enrollment buffer params fingerprint mismatch");
  }
  Config config;
  config.max_candidates = static_cast<std::size_t>(r.read_u64());
  config.buffer_cap = static_cast<std::size_t>(r.read_u64());
  config.candidate_radius = r.read_f64();
  if (config.max_candidates < 1 || config.max_candidates > 4096 || config.buffer_cap < 1 ||
      config.buffer_cap > 65536 || !(config.candidate_radius > 0.0)) {
    throw SerializationError("enrollment buffer config out of range");
  }
  EnrollmentBuffer buffer(config);
  buffer.next_id_ = r.read_u64();
  buffer.stats_.admitted = r.read_u64();
  buffer.stats_.founded = r.read_u64();
  buffer.stats_.evicted_segments = r.read_u64();
  buffer.stats_.evicted_candidates = r.read_u64();

  const std::uint64_t candidate_count = r.read_count(32, "enrollment candidates");
  if (candidate_count > config.max_candidates) {
    throw SerializationError("enrollment buffer holds more candidates than its cap");
  }
  for (std::uint64_t i = 0; i < candidate_count; ++i) {
    Candidate c;
    c.id = r.read_u64();
    if (c.id == 0 || c.id >= buffer.next_id_) {
      throw SerializationError("enrollment candidate id out of range");
    }
    c.admitted = r.read_u64();
    c.centroid = read_stats_array(r);
    const std::uint64_t segment_count = r.read_count(64, "enrollment segments");
    if (segment_count > config.buffer_cap) {
      throw SerializationError("enrollment candidate holds more segments than its cap");
    }
    c.segments.reserve(static_cast<std::size_t>(segment_count));
    for (std::uint64_t s = 0; s < segment_count; ++s) {
      EnrollObservation obs;
      obs.session_id = r.read_u64();
      obs.ordinal = r.read_u64();
      obs.gesture = r.read_i32();
      if (obs.gesture < 0 || obs.gesture > 4096) {
        throw SerializationError("enrollment observation gesture out of range");
      }
      obs.raw = read_stats_array(r);
      obs.normalized = read_stats_array(r);
      obs.cloud.num_frames = static_cast<std::size_t>(r.read_u64());
      obs.cloud.first_frame = r.read_i32();
      obs.cloud.duration_s = r.read_f64();
      const std::uint8_t quality = r.read_u8();
      if (quality > static_cast<std::uint8_t>(SegmentQuality::kEmpty)) {
        throw SerializationError("enrollment observation quality out of range");
      }
      obs.cloud.quality = static_cast<SegmentQuality>(quality);
      const std::uint64_t point_count = r.read_count(44, "enrollment cloud points");
      obs.cloud.points.reserve(static_cast<std::size_t>(point_count));
      for (std::uint64_t p = 0; p < point_count; ++p) {
        RadarPoint point;
        point.position.x = r.read_f64();
        point.position.y = r.read_f64();
        point.position.z = r.read_f64();
        point.velocity = r.read_f64();
        point.snr_db = r.read_f64();
        point.frame = r.read_i32();
        obs.cloud.points.push_back(point);
      }
      c.segments.push_back(std::move(obs));
    }
    buffer.candidates_.push_back(std::move(c));
  }
  return buffer;
}

}  // namespace gp::enroll
