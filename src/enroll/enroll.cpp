#include "enroll/enroll.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <exception>
#include <tuple>
#include <utility>

#include "common/error.hpp"
#include "common/fnv.hpp"
#include "common/logging.hpp"
#include "exec/exec.hpp"
#include "obs/metrics.hpp"

namespace gp::enroll {

EnrollmentService::EnrollmentService(EnrollmentServiceConfig config,
                                     serve::ModelRegistry& registry)
    : config_(std::move(config)),
      registry_(&registry),
      gallery_(config_.open_set),
      buffer_(EnrollmentBuffer::Config{config_.admission.max_candidates,
                                       config_.admission.buffer_cap,
                                       config_.admission.candidate_radius}),
      base_model_path_(config_.base_model_path) {
  check_arg(config_.admission.k_segments >= 1, "enrollment K must be >= 1");
  check_arg(!config_.publish_dir.empty(), "enrollment needs a publish directory");
}

EnrollmentService::~EnrollmentService() {
  if (worker_.joinable()) worker_.join();
}

void EnrollmentService::calibrate(const Dataset& dataset,
                                  std::span<const std::size_t> genuine_indices) {
  std::vector<BiometricStats> raw;
  std::vector<int> gestures;
  raw.reserve(genuine_indices.size());
  gestures.reserve(genuine_indices.size());
  for (std::size_t idx : genuine_indices) {
    check_arg(idx < dataset.samples.size(), "calibration index out of range");
    raw.push_back(biometric_stats(dataset.samples[idx].cloud));
    gestures.push_back(dataset.samples[idx].gesture);
  }
  gallery_.calibrate(raw, gestures);

  // Capture the replay set: up to replay_per_cell enrolled samples per
  // (gesture, user) cell. Every future fine-tune trains the widened head
  // against these negatives, so the new class cannot swallow the enrolled
  // users' decision regions.
  replay_.spec = dataset.spec;
  replay_.users = dataset.users;
  replay_.samples.clear();
  std::map<std::pair<int, int>, std::size_t> cell_counts;
  for (std::size_t idx : genuine_indices) {
    const GestureSample& s = dataset.samples[idx];
    std::size_t& count = cell_counts[{s.gesture, s.user}];
    if (count >= config_.replay_per_cell) continue;
    ++count;
    replay_.samples.push_back(s);
  }
}

bool EnrollmentService::gate(const serve::PendingSegment& segment,
                             const serve::ServeResult& result) {
  if (!gallery_.calibrated()) return false;
  const BiometricStats normalized = gallery_.normalize(segment.biometrics);
  const double distance = gallery_.novelty_normalized(result.gesture, normalized);
  if (gallery_.accepts(distance)) return false;

  EnrollObservation obs;
  obs.session_id = segment.session_id;
  obs.ordinal = segment.ordinal;
  obs.gesture = result.gesture;
  obs.raw = segment.biometrics;
  obs.normalized = normalized;
  obs.cloud = segment.cloud;
  obs.staged_ns = monotonic_ns();
  staged_.push_back(std::move(obs));
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.novelty_rejections;
  }
  return true;
}

void EnrollmentService::close_tick(std::uint64_t tick) {
  // 1. Land a finished background fine-tune: publish + gallery growth happen
  //    here, at the tick barrier, never on the worker thread.
  if (config_.admission.background) {
    std::optional<FineTuneOutcome> done;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (worker_outcome_.has_value() && !worker_running_) {
        done = std::move(worker_outcome_);
        worker_outcome_.reset();
      }
    }
    if (done.has_value()) {
      worker_.join();
      commit_outcome(std::move(*done), tick);
    }
  }

  // 2. Admit this tick's rejected segments in (session_id, ordinal) order —
  //    the shard-count/thread-count-independent canonical stream order.
  if (!staged_.empty()) {
    std::sort(staged_.begin(), staged_.end(),
              [](const EnrollObservation& a, const EnrollObservation& b) {
                return std::tie(a.session_id, a.ordinal) < std::tie(b.session_id, b.ordinal);
              });
    for (EnrollObservation& obs : staged_) {
      const EnrollmentBuffer::AdmitOutcome outcome = buffer_.admit(std::move(obs));
      if (outcome.founded) GP_COUNTER_ADD("gp.enroll.candidates.founded", 1);
      switch (outcome.eviction) {
        case Eviction::kSegmentOldest:
          GP_COUNTER_ADD("gp.enroll.evicted.segment_oldest", 1);
          break;
        case Eviction::kCandidateWeakest:
          GP_COUNTER_ADD("gp.enroll.evicted.candidate_weakest", 1);
          break;
        case Eviction::kNone:
          break;
      }
    }
    staged_.clear();
  }

  // 3. Fire fine-tunes for K-ready candidates.
  trigger_ready(tick);

  std::lock_guard<std::mutex> lk(mu_);
  stats_.candidates = buffer_.candidates().size();
  stats_.buffered_segments = buffer_.total_segments();
  stats_.evicted_segments = buffer_.stats().evicted_segments;
  stats_.evicted_candidates = buffer_.stats().evicted_candidates;
}

void EnrollmentService::trigger_ready(std::uint64_t tick) {
  for (;;) {
    // Lowest-id ready candidate first: founding order, deterministic.
    const Candidate* ready = nullptr;
    for (const Candidate& c : buffer_.candidates()) {
      if (c.segments.size() >= config_.admission.k_segments) {
        ready = &c;
        break;
      }
    }
    if (ready == nullptr) return;

    if (config_.admission.background) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        // One fine-tune in flight at a time; the candidate keeps buffering
        // until the slot frees up.
        if (worker_running_ || worker_outcome_.has_value()) return;
        worker_running_ = true;
        ++stats_.fine_tunes_started;
        ++stats_.fine_tunes_in_flight;
      }
      FineTuneJob job;
      job.candidate_id = ready->id;
      job.seq = ++enroll_seq_;
      job.trigger_tick = tick;
      job.evidence = buffer_.take(ready->id);
      for (const EnrollObservation& obs : job.evidence) {
        if (job.first_staged_ns == 0 || obs.staged_ns < job.first_staged_ns) {
          job.first_staged_ns = obs.staged_ns;
        }
      }
      if (worker_.joinable()) worker_.join();  // previous outcome committed
      worker_ = std::thread([this, job = std::move(job)]() mutable {
        FineTuneOutcome outcome = run_fine_tune(std::move(job));
        std::lock_guard<std::mutex> lk(mu_);
        worker_outcome_ = std::move(outcome);
        worker_running_ = false;
        --stats_.fine_tunes_in_flight;
      });
      return;  // the slot is taken; further candidates wait
    }

    // Synchronous: run inline at the tick barrier. Several ready candidates
    // enroll back-to-back, each fine-tune rebased on the previous publish.
    FineTuneJob job;
    job.candidate_id = ready->id;
    job.seq = ++enroll_seq_;
    job.trigger_tick = tick;
    job.evidence = buffer_.take(ready->id);
    for (const EnrollObservation& obs : job.evidence) {
      if (job.first_staged_ns == 0 || obs.staged_ns < job.first_staged_ns) {
        job.first_staged_ns = obs.staged_ns;
      }
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.fine_tunes_started;
    }
    commit_outcome(run_fine_tune(std::move(job)), tick);
  }
}

EnrollmentService::FineTuneOutcome EnrollmentService::run_fine_tune(FineTuneJob job) {
  GP_COUNTER_ADD("gp.enroll.fine_tune.started", 1);
  FineTuneOutcome outcome;
  outcome.job = std::move(job);
  try {
    GesturePrintSystem sys(registry_->config());
    if (!sys.try_load(base_model_path_)) {
      log_warn() << "enroll: fine-tune " << outcome.job.seq << " could not load base model '"
                 << base_model_path_ << "'";
      return outcome;
    }
    const int new_user =
        sys.widen_users(exec::child_seed(config_.seed, outcome.job.seq));

    // Adaptation set: the calibrated replay negatives plus the candidate's
    // buffered evidence labelled as the new class. The synthetic profile is
    // a placeholder consistent with the widened label space — training only
    // reads the recorded clouds.
    Dataset adapt = replay_;
    Rng profile_rng(exec::child_seed(config_.seed ^ 0x9E3779B97F4A7C15ULL, outcome.job.seq));
    adapt.users.push_back(UserProfile::sample(new_user, profile_rng));
    adapt.spec.num_users = adapt.users.size();
    for (const EnrollObservation& obs : outcome.job.evidence) {
      GestureSample sample;
      sample.cloud = obs.cloud;
      sample.gesture = obs.gesture;
      sample.user = new_user;
      adapt.samples.push_back(std::move(sample));
    }
    std::vector<std::size_t> indices(adapt.samples.size());
    for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
    sys.fine_tune_user_heads(adapt, indices, config_.fine_tune_epochs, config_.fine_tune_lr);

    const std::string artifact =
        config_.publish_dir + "/enroll_v" + std::to_string(outcome.job.seq) + ".gpsy";
    sys.save(artifact);
    outcome.ok = true;
    outcome.user_id = new_user;
    outcome.artifact = artifact;
  } catch (const std::exception& e) {
    log_warn() << "enroll: fine-tune " << outcome.job.seq << " failed: " << e.what();
    outcome.ok = false;
  }
  return outcome;
}

void EnrollmentService::commit_outcome(FineTuneOutcome outcome, std::uint64_t tick) {
  if (!outcome.ok) {
    GP_COUNTER_ADD("gp.enroll.fine_tune.failed", 1);
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.fine_tunes_failed;
    return;  // evidence is consumed; the candidate re-accumulates if they return
  }
  const std::optional<std::uint64_t> version =
      registry_->publish_file(outcome.artifact, config_.quant);
  if (!version.has_value()) {
    GP_COUNTER_ADD("gp.enroll.fine_tune.failed", 1);
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.fine_tunes_failed;
    return;
  }

  // The registry serves the widened head now; grow the novelty gallery so
  // the enrolled person's future segments pass the gate, and rebase the next
  // fine-tune on this artifact so enrollments compose.
  for (const EnrollObservation& obs : outcome.job.evidence) {
    gallery_.enroll_sample(obs.gesture, obs.raw);
  }
  base_model_path_ = outcome.artifact;

  GP_COUNTER_ADD("gp.enroll.published", 1);
  if (outcome.job.first_staged_ns != 0) {
    const double ms =
        static_cast<double>(monotonic_ns() - outcome.job.first_staged_ns) / 1e6;
    static obs::Histogram& to_live = obs::histogram("gp.enroll.to_live_ms");
    to_live.observe(ms);
  }

  EnrolledUser record;
  record.user_id = outcome.user_id;
  record.candidate_id = outcome.job.candidate_id;
  record.model_version = *version;
  record.tick = tick;
  record.artifact = outcome.artifact;

  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.users_enrolled;
  stats_.last_publish_version = *version;
  enrolled_.push_back(std::move(record));
}

void EnrollmentService::wait_for_fine_tune() {
  if (!config_.admission.background) return;
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!worker_running_) return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

EnrollmentService::Stats EnrollmentService::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::vector<EnrollmentService::EnrolledUser> EnrollmentService::enrolled() const {
  std::lock_guard<std::mutex> lk(mu_);
  return enrolled_;
}

std::uint64_t EnrollmentService::params_fingerprint() const {
  std::uint64_t h = fnv::kOffsetBasis;
  h = fnv::accumulate_value(h, gallery_.calibrated() ? 1u : 0u);
  h = fnv::accumulate_value(h, std::bit_cast<std::uint64_t>(gallery_.threshold()));
  h = fnv::accumulate_value(h, std::bit_cast<std::uint64_t>(gallery_.config().target_false_rejection));
  h = fnv::accumulate_value(h, static_cast<std::uint64_t>(gallery_.config().k_neighbors));
  for (double v : gallery_.z_mean()) h = fnv::accumulate_value(h, std::bit_cast<std::uint64_t>(v));
  for (double v : gallery_.z_stddev()) h = fnv::accumulate_value(h, std::bit_cast<std::uint64_t>(v));
  return h;
}

}  // namespace gp::enroll
