#include "system/gestureprint.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/fnv.hpp"
#include "common/logging.hpp"
#include "common/math_utils.hpp"
#include "common/serialize.hpp"
#include "faults/selfheal.hpp"
#include "nn/loss.hpp"
#include "nn/serialize_nn.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gp {

namespace {

/// Canonical FNV-1a (common/fnv.hpp) over a byte blob — the model-file
/// integrity checksum.
std::uint64_t blob_digest(const std::string& blob) { return fnv::hash_string(blob); }

/// GP_ABSTAIN_MARGIN override for the config field (empty/unset: keep).
double env_abstain_margin(double fallback) {
  const char* v = std::getenv("GP_ABSTAIN_MARGIN");
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || parsed < 0.0 || parsed > 1.0) {
    log_warn() << "ignoring invalid GP_ABSTAIN_MARGIN='" << v << "' (want a value in [0,1])";
    return fallback;
  }
  return parsed;
}

}  // namespace

double top2_margin(const std::vector<double>& probabilities) {
  if (probabilities.size() < 2) return 1.0;
  double top1 = -1.0;
  double top2 = -1.0;
  for (const double p : probabilities) {
    if (p > top1) {
      top2 = top1;
      top1 = p;
    } else if (p > top2) {
      top2 = p;
    }
  }
  return top1 - top2;
}

bool should_abstain(const std::vector<double>& probabilities, double margin) {
  if (margin <= 0.0) return false;
  return top2_margin(probabilities) < margin;
}

GesturePrintSystem::GesturePrintSystem(GesturePrintConfig config)
    : config_(std::move(config)), rng_(config_.seed, 0xB5297A4D3F2C1E05ULL) {
  config_.abstain_margin = env_abstain_margin(config_.abstain_margin);
}

GesIDNet& GesturePrintSystem::gesture_model() {
  check(gesture_model_ != nullptr, "system not fitted");
  return *gesture_model_;
}

void GesturePrintSystem::fit(const Dataset& dataset,
                             std::span<const std::size_t> train_indices) {
  GP_SPAN("system.fit");
  check_arg(!train_indices.empty(), "fit with empty training set");
  num_gestures_ = dataset.num_gestures();
  num_users_ = dataset.num_users();
  check_arg(num_gestures_ >= 2 && num_users_ >= 2, "need >= 2 gestures and users");

  // ---- gesture recognition model ----
  {
    GesIDNetConfig net = config_.network;
    net.num_classes = num_gestures_;
    Rng init = rng_.fork();
    gesture_model_ = std::make_unique<GesIDNet>(net, init);
    Rng prep_rng = rng_.fork();
    const LabeledSamples train = prepare_subset(dataset, train_indices, LabelKind::kGesture,
                                                config_.prep, prep_rng);
    TrainConfig tc = config_.training;
    tc.seed = rng_();
    const TrainStats stats = train_classifier(*gesture_model_, train, tc);
    log_debug() << "gesture model train acc " << stats.train_accuracy;
  }

  // ---- user identification model(s) ----
  user_models_.clear();
  GesIDNetConfig net = config_.network;
  net.num_classes = num_users_;

  if (config_.mode == IdentificationMode::kParallel) {
    Rng init = rng_.fork();
    auto model = std::make_unique<GesIDNet>(net, init);
    Rng prep_rng = rng_.fork();
    const LabeledSamples train =
        prepare_subset(dataset, train_indices, LabelKind::kUser, config_.prep, prep_rng);
    TrainConfig tc = config_.training;
    tc.seed = rng_();
    train_classifier(*model, train, tc);
    user_models_.push_back(std::move(model));
    return;
  }

  // Serialized: one ID model per gesture, trained on that gesture's samples.
  user_models_.resize(num_gestures_);
  for (std::size_t g = 0; g < num_gestures_; ++g) {
    std::vector<std::size_t> gesture_indices;
    for (std::size_t idx : train_indices) {
      if (dataset.samples[idx].gesture == static_cast<int>(g)) gesture_indices.push_back(idx);
    }
    if (gesture_indices.empty()) continue;  // gesture absent from training

    Rng init = rng_.fork();
    auto model = std::make_unique<GesIDNet>(net, init);
    Rng prep_rng = rng_.fork();
    const LabeledSamples train = prepare_subset(dataset, gesture_indices, LabelKind::kUser,
                                                config_.prep, prep_rng);
    TrainConfig tc = config_.training;
    tc.seed = rng_();
    // Each per-gesture model sees only 1/num_gestures of the data, so a
    // budget that trains the recognition model leaves these undertrained.
    // Compensate with more epochs and smaller batches (total serialized-ID
    // compute stays ~2x one full model pass).
    if (train.size() < 500) {
      tc.epochs = std::min<std::size_t>(tc.epochs * 2, 24);
      tc.batch_size = 16;
    }
    train_classifier(*model, train, tc);
    user_models_[g] = std::move(model);
  }
}

namespace {

// Parameters plus buffers: the full persistent state of one model.
std::vector<nn::Parameter*> full_state(GesIDNet& model) {
  std::vector<nn::Parameter*> state = model.parameters();
  const auto buffers = model.buffers();
  state.insert(state.end(), buffers.begin(), buffers.end());
  return state;
}

}  // namespace

void GesturePrintSystem::fine_tune(const Dataset& dataset,
                                   std::span<const std::size_t> indices, std::size_t epochs,
                                   double lr) {
  check(fitted(), "fine_tune before fit");
  check_arg(!indices.empty(), "fine_tune with no samples");
  check_arg(dataset.num_gestures() == num_gestures_ && dataset.num_users() == num_users_,
            "fine_tune label space mismatch");

  TrainConfig tc = config_.training;
  tc.epochs = epochs;
  tc.lr = lr;
  tc.seed = rng_();

  {
    Rng prep_rng = rng_.fork();
    const LabeledSamples adapt =
        prepare_subset(dataset, indices, LabelKind::kGesture, config_.prep, prep_rng);
    train_classifier(*gesture_model_, adapt, tc);
  }

  if (config_.mode == IdentificationMode::kParallel) {
    Rng prep_rng = rng_.fork();
    const LabeledSamples adapt =
        prepare_subset(dataset, indices, LabelKind::kUser, config_.prep, prep_rng);
    train_classifier(*user_models_.front(), adapt, tc);
    return;
  }
  for (std::size_t g = 0; g < num_gestures_; ++g) {
    if (user_models_[g] == nullptr) continue;
    std::vector<std::size_t> gesture_indices;
    for (std::size_t idx : indices) {
      if (dataset.samples[idx].gesture == static_cast<int>(g)) gesture_indices.push_back(idx);
    }
    // Per-gesture adaptation needs at least a minibatch worth of samples.
    if (gesture_indices.size() < 4) continue;
    Rng prep_rng = rng_.fork();
    const LabeledSamples adapt = prepare_subset(dataset, gesture_indices, LabelKind::kUser,
                                                config_.prep, prep_rng);
    train_classifier(*user_models_[g], adapt, tc);
  }
}

int GesturePrintSystem::widen_users(std::uint64_t seed) {
  check(fitted(), "widen_users before fit");
  check(!gesture_model_->fused(), "widen_users on a fused (inference-only) system");
  const int new_user = static_cast<int>(num_users_);
  ++num_users_;
  // Derive per-model init seeds from the caller's seed, not from rng_: the
  // existing fit/load/classify draw sequence must stay untouched so the
  // pre-enrollment paths remain bitwise identical.
  for (std::size_t g = 0; g < user_models_.size(); ++g) {
    if (user_models_[g] == nullptr) continue;
    user_models_[g] = user_models_[g]->widen_head(num_users_, exec::child_seed(seed, g));
  }
  return new_user;
}

void GesturePrintSystem::fine_tune_user_heads(const Dataset& dataset,
                                              std::span<const std::size_t> indices,
                                              std::size_t epochs, double lr) {
  check(fitted(), "fine_tune_user_heads before fit");
  check_arg(!indices.empty(), "fine_tune_user_heads with no samples");
  check_arg(dataset.num_gestures() == num_gestures_ && dataset.num_users() == num_users_,
            "fine_tune_user_heads label space mismatch");

  TrainConfig tc = config_.training;
  tc.epochs = epochs;
  tc.lr = lr;
  tc.seed = rng_();
  tc.head_only = true;  // frozen trunk: the whole point of the enroll path

  if (config_.mode == IdentificationMode::kParallel) {
    Rng prep_rng = rng_.fork();
    const LabeledSamples adapt =
        prepare_subset(dataset, indices, LabelKind::kUser, config_.prep, prep_rng);
    train_classifier(*user_models_.front(), adapt, tc);
    return;
  }
  for (std::size_t g = 0; g < num_gestures_; ++g) {
    if (g >= user_models_.size() || user_models_[g] == nullptr) continue;
    std::vector<std::size_t> gesture_indices;
    for (std::size_t idx : indices) {
      if (dataset.samples[idx].gesture == static_cast<int>(g)) gesture_indices.push_back(idx);
    }
    // Per-gesture adaptation needs at least a minibatch worth of samples.
    if (gesture_indices.size() < 4) continue;
    Rng prep_rng = rng_.fork();
    const LabeledSamples adapt = prepare_subset(dataset, gesture_indices, LabelKind::kUser,
                                                config_.prep, prep_rng);
    train_classifier(*user_models_[g], adapt, tc);
  }
}

void GesturePrintSystem::fuse_for_inference(nn::QuantMode mode) {
  check(fitted(), "fuse_for_inference before fit");
  gesture_model_->fuse_for_inference(mode);
  for (auto& model : user_models_) {
    if (model != nullptr) model->fuse_for_inference(mode);
  }
}

void GesturePrintSystem::save(const std::string& path) {
  check(fitted(), "save before fit");
  check(!gesture_model_->fused(), "save on a fused (inference-only) system");
  // Serialize into memory first so a whole-payload checksum trailer can be
  // appended: load() verifies it before parsing, turning silent bit rot
  // into a typed, quarantinable SerializationError.
  std::ostringstream buf(std::ios::binary);
  {
    BinaryWriter writer(buf, "GPS2");
    writer.write_u8(config_.mode == IdentificationMode::kSerialized ? 1 : 0);
    writer.write_u32(static_cast<std::uint32_t>(num_gestures_));
    writer.write_u32(static_cast<std::uint32_t>(num_users_));
    // Each model's f32 parameters are followed by its int8 quant section
    // (GPS2 extension, DESIGN.md §11): precomputed per-channel tables so a
    // loaded system can fuse straight into the quantized kernel without
    // retraining-time state. Written unconditionally — int8 tables cost
    // ~1/4 of the f32 payload and keep the format mode-independent.
    nn::save_parameters(buf, full_state(*gesture_model_));
    nn::save_quant_tables(buf, gesture_model_->collect_quant_tables());
    writer.write_u32(static_cast<std::uint32_t>(user_models_.size()));
    for (auto& model : user_models_) {
      writer.write_u8(model != nullptr ? 1 : 0);
      if (model != nullptr) {
        nn::save_parameters(buf, full_state(*model));
        nn::save_quant_tables(buf, model->collect_quant_tables());
      }
    }
  }
  const std::string blob = buf.str();
  const std::uint64_t digest = blob_digest(blob);

  // Transient write failures (flaky storage) are retried with backoff.
  faults::with_retries(faults::RetryPolicy{}, [&] {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("cannot open system file for writing: " + path);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    for (int i = 0; i < 8; ++i) {
      out.put(static_cast<char>((digest >> (8 * i)) & 0xFF));
    }
    if (!out) throw Error("short write while saving system file: " + path);
    return true;
  });
}

void GesturePrintSystem::load(const std::string& path) {
  std::string blob;
  {
    std::ifstream file(path, std::ios::binary);
    if (!file) throw Error("cannot open system file for reading: " + path);
    std::ostringstream buf;
    buf << file.rdbuf();
    blob = buf.str();
  }
  if (blob.size() < 8) {
    throw SerializationError("system file truncated (no checksum trailer): " + path);
  }
  std::uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<std::uint64_t>(
                  static_cast<unsigned char>(blob[blob.size() - 8 + i]))
              << (8 * i);
  }
  blob.resize(blob.size() - 8);
  if (blob_digest(blob) != stored) {
    throw SerializationError("system file checksum mismatch (bit rot or truncation): " +
                             path);
  }

  std::istringstream in(blob, std::ios::binary);
  BinaryReader reader(in, "GPS2");
  const bool serialized = reader.read_u8() == 1;
  if (serialized != (config_.mode == IdentificationMode::kSerialized)) {
    throw SerializationError("identification mode mismatch while loading system");
  }
  num_gestures_ = reader.read_u32();
  num_users_ = reader.read_u32();

  GesIDNetConfig gnet = config_.network;
  gnet.num_classes = num_gestures_;
  Rng ginit = rng_.fork();
  gesture_model_ = std::make_unique<GesIDNet>(gnet, ginit);
  nn::load_parameters(in, full_state(*gesture_model_));
  gesture_model_->set_pending_quant_tables(nn::load_quant_tables(in));

  GesIDNetConfig unet = config_.network;
  unet.num_classes = num_users_;
  const std::uint32_t model_count = reader.read_u32();
  user_models_.clear();
  user_models_.resize(model_count);
  for (std::uint32_t g = 0; g < model_count; ++g) {
    if (reader.read_u8() == 0) continue;
    Rng uinit = rng_.fork();
    user_models_[g] = std::make_unique<GesIDNet>(unet, uinit);
    nn::load_parameters(in, full_state(*user_models_[g]));
    user_models_[g]->set_pending_quant_tables(nn::load_quant_tables(in));
  }
}

bool GesturePrintSystem::try_load(const std::string& path) {
  // Missing file is the ordinary cold-start case: no warning, no retry.
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return false;

  try {
    // Transient open/read failures retry with backoff; corruption
    // (SerializationError) escapes immediately — re-reading rotten bytes
    // cannot heal them.
    faults::with_retries(faults::RetryPolicy{}, [&] {
      load(path);
      return true;
    });
    return true;
  } catch (const SerializationError& e) {
    const std::string moved = faults::quarantine_file(path);
    GP_COUNTER_ADD("gp.system.model_quarantined", 1);
    log_warn() << "quarantined corrupt system file " << path << " -> "
               << (moved.empty() ? std::string("<rename failed>") : moved)
               << " (" << e.what() << "); refit and re-save";
  } catch (const Error& e) {
    log_warn() << "cannot load system file " << path << ": " << e.what();
  }
  // Failure leaves the system unfitted so the caller's refit path is
  // unambiguous (a half-loaded model must never classify).
  gesture_model_.reset();
  user_models_.clear();
  return false;
}

InferenceResult GesturePrintSystem::classify(const GestureCloud& cloud) {
  GP_SPAN("system.classify");
  GP_COUNTER_ADD("gp.system.classifications", 1);
  check(fitted(), "classify before fit");
  const std::size_t rounds = std::max<std::size_t>(1, config_.eval_rounds);

  // Quality gate (graceful degradation, DESIGN.md §7): when the abstention
  // gate is armed, a cloud that failed its preprocessing guards is refused
  // outright rather than resampled into garbage. With the gate disabled
  // (abstain_margin == 0) behaviour is bitwise-identical to older builds.
  if (config_.abstain_margin > 0.0 &&
      (cloud.points.empty() || cloud.quality != SegmentQuality::kGood)) {
    GP_COUNTER_ADD("gp.system.abstained.quality", 1);
    InferenceResult refused;
    refused.gesture = kAbstain;
    refused.user = kAbstain;
    refused.abstained = true;
    refused.gesture_margin = 0.0;
    refused.user_margin = 0.0;
    return refused;
  }

  // Featurize `rounds` stochastic resamplings of the cloud once; average
  // posteriors over them (test-time augmentation).
  std::vector<FeaturizedSample> variants;
  variants.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    Rng feat_rng = rng_.fork();
    variants.push_back(featurize(cloud, config_.prep.features, feat_rng));
  }

  InferenceResult result;
  result.gesture_probabilities.assign(num_gestures_, 0.0);
  {
    const nn::Tensor probs = nn::softmax(predict_logits(*gesture_model_, variants));
    for (std::size_t r = 0; r < rounds; ++r) {
      for (std::size_t c = 0; c < num_gestures_; ++c) {
        result.gesture_probabilities[c] += probs.at(r, c) / static_cast<double>(rounds);
      }
    }
  }
  result.gesture = static_cast<int>(argmax(result.gesture_probabilities));
  result.gesture_margin = top2_margin(result.gesture_probabilities);

  // Confidence gate on the gesture head: an ambiguous posterior means the
  // capture degraded past what the model can disambiguate. Abstaining here
  // also skips user ID — serialized mode would route to the *wrong* ID
  // model, which is worse than no answer.
  if (should_abstain(result.gesture_probabilities, config_.abstain_margin)) {
    GP_COUNTER_ADD("gp.system.abstained.gesture", 1);
    result.gesture = kAbstain;
    result.user = kAbstain;
    result.abstained = true;
    return result;
  }

  GesIDNet* id_model = nullptr;
  if (config_.mode == IdentificationMode::kParallel) {
    id_model = user_models_.front().get();
  } else if (result.gesture >= 0 &&
             static_cast<std::size_t>(result.gesture) < user_models_.size()) {
    id_model = user_models_[static_cast<std::size_t>(result.gesture)].get();
  }
  if (id_model != nullptr) {
    result.user_probabilities.assign(num_users_, 0.0);
    const nn::Tensor probs = nn::softmax(predict_logits(*id_model, variants));
    for (std::size_t r = 0; r < rounds; ++r) {
      for (std::size_t c = 0; c < num_users_; ++c) {
        result.user_probabilities[c] += probs.at(r, c) / static_cast<double>(rounds);
      }
    }
    result.user = static_cast<int>(argmax(result.user_probabilities));
    result.user_margin = top2_margin(result.user_probabilities);
    if (should_abstain(result.user_probabilities, config_.abstain_margin)) {
      GP_COUNTER_ADD("gp.system.abstained.user", 1);
      result.user = kAbstain;
      result.abstained = true;
    }
  }
  return result;
}

GesturePrintSystem::EmbeddingResult GesturePrintSystem::id_embedding(const GestureCloud& cloud) {
  check(fitted(), "id_embedding before fit");
  Rng feat_rng = rng_.fork();
  std::vector<FeaturizedSample> one;
  one.push_back(featurize(cloud, config_.prep.features, feat_rng));

  EmbeddingResult result;
  result.gesture = argmax_labels(predict_logits(*gesture_model_, one))[0];

  GesIDNet* id_model = nullptr;
  if (config_.mode == IdentificationMode::kParallel) {
    id_model = user_models_.front().get();
  } else if (result.gesture >= 0 &&
             static_cast<std::size_t>(result.gesture) < user_models_.size() &&
             user_models_[static_cast<std::size_t>(result.gesture)] != nullptr) {
    id_model = user_models_[static_cast<std::size_t>(result.gesture)].get();
  }
  if (id_model == nullptr) {
    for (auto& m : user_models_) {
      if (m != nullptr) {
        id_model = m.get();
        break;
      }
    }
  }
  check(id_model != nullptr, "no user model available");

  const GesIDNet::Features features = id_model->extract_features(make_batch(one, 0, 1));
  result.embedding.assign(features.fused_low.row(0),
                          features.fused_low.row(0) + features.fused_low.cols());
  return result;
}

SystemEvaluation GesturePrintSystem::evaluate(const Dataset& dataset,
                                              std::span<const std::size_t> test_indices) {
  std::vector<const GestureSample*> samples;
  samples.reserve(test_indices.size());
  for (std::size_t idx : test_indices) {
    check_arg(idx < dataset.samples.size(), "test index out of range");
    samples.push_back(&dataset.samples[idx]);
  }
  return evaluate_samples(samples);
}

SystemEvaluation GesturePrintSystem::evaluate_dataset(const Dataset& dataset) {
  std::vector<const GestureSample*> samples;
  samples.reserve(dataset.samples.size());
  for (const auto& s : dataset.samples) samples.push_back(&s);
  return evaluate_samples(samples);
}

SystemEvaluation GesturePrintSystem::evaluate_samples(
    const std::vector<const GestureSample*>& samples) {
  GP_SPAN("system.evaluate");
  check(fitted(), "evaluate before fit");
  check_arg(!samples.empty(), "evaluate with no samples");

  // Featurize `eval_rounds` stochastic resamplings per sample (test-time
  // augmentation; no positional jitter) and average the posteriors.
  const std::size_t rounds = std::max<std::size_t>(1, config_.eval_rounds);
  std::vector<std::vector<FeaturizedSample>> round_features(rounds);
  std::vector<int> truth_gesture;
  std::vector<int> truth_user;
  for (const GestureSample* s : samples) {
    truth_gesture.push_back(s->gesture);
    truth_user.push_back(s->user);
  }
  for (std::size_t r = 0; r < rounds; ++r) {
    Rng feat_rng = rng_.fork();
    round_features[r].reserve(samples.size());
    for (const GestureSample* s : samples) {
      round_features[r].push_back(featurize(s->cloud, config_.prep.features, feat_rng));
    }
  }

  SystemEvaluation eval;

  // ---- gesture recognition ----
  nn::Tensor gprobs(samples.size(), num_gestures_);
  for (std::size_t r = 0; r < rounds; ++r) {
    const nn::Tensor probs = nn::softmax(predict_logits(*gesture_model_, round_features[r]));
    for (std::size_t i = 0; i < samples.size(); ++i) {
      for (std::size_t c = 0; c < num_gestures_; ++c) {
        gprobs.at(i, c) += probs.at(i, c) / static_cast<float>(rounds);
      }
    }
  }
  const std::vector<int> gpred = argmax_labels(gprobs);
  eval.gesture_confusion = build_confusion(truth_gesture, gpred, num_gestures_);
  eval.gra = eval.gesture_confusion.accuracy();
  eval.grf1 = eval.gesture_confusion.macro_f1();
  eval.grauc = macro_auc(gprobs, truth_gesture);

  // ---- user identification ----
  nn::Tensor uprobs(samples.size(), num_users_);

  if (config_.mode == IdentificationMode::kParallel) {
    for (std::size_t r = 0; r < rounds; ++r) {
      const nn::Tensor probs =
          nn::softmax(predict_logits(*user_models_.front(), round_features[r]));
      for (std::size_t i = 0; i < samples.size(); ++i) {
        for (std::size_t c = 0; c < num_users_; ++c) {
          uprobs.at(i, c) += probs.at(i, c) / static_cast<float>(rounds);
        }
      }
    }
  } else {
    // Serialized: route each test sample to the ID model its *predicted*
    // gesture selects (the runtime behaviour).
    for (std::size_t g = 0; g < num_gestures_; ++g) {
      std::vector<std::size_t> routed;
      for (std::size_t i = 0; i < samples.size(); ++i) {
        if (gpred[i] == static_cast<int>(g)) routed.push_back(i);
      }
      if (routed.empty()) continue;
      GesIDNet* model = user_models_[g] != nullptr
                            ? user_models_[g].get()
                            : nullptr;
      if (model == nullptr) {
        // Gesture had no training data: fall back to any available model.
        for (auto& m : user_models_) {
          if (m != nullptr) {
            model = m.get();
            break;
          }
        }
      }
      check(model != nullptr, "no user model available");

      for (std::size_t r = 0; r < rounds; ++r) {
        std::vector<FeaturizedSample> routed_features;
        routed_features.reserve(routed.size());
        for (std::size_t i : routed) routed_features.push_back(round_features[r][i]);
        const nn::Tensor probs = nn::softmax(predict_logits(*model, routed_features));
        for (std::size_t k = 0; k < routed.size(); ++k) {
          for (std::size_t c = 0; c < num_users_; ++c) {
            uprobs.at(routed[k], c) += probs.at(k, c) / static_cast<float>(rounds);
          }
        }
      }
    }
  }
  const std::vector<int> upred = argmax_labels(uprobs);

  eval.user_confusion = build_confusion(truth_user, upred, num_users_);
  eval.uia = eval.user_confusion.accuracy();
  eval.uif1 = eval.user_confusion.macro_f1();
  eval.uiauc = macro_auc(uprobs, truth_user);
  eval.user_roc = roc_from_probabilities(uprobs, truth_user);
  return eval;
}

}  // namespace gp
