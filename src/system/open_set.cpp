#include "system/open_set.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>

#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "common/serialize.hpp"

namespace gp {

BiometricStats biometric_stats(const GestureCloud& cloud) {
  check_arg(!cloud.points.empty(), "biometric stats of empty cloud");
  const auto& pts = cloud.points;
  const Aabb box = bounding_box(pts);
  const Vec3 c = centroid(pts);

  double mean_speed = 0.0;
  for (const auto& p : pts) mean_speed += std::abs(p.velocity);
  mean_speed /= static_cast<double>(pts.size());
  double var_speed = 0.0;
  for (const auto& p : pts) {
    const double d = std::abs(p.velocity) - mean_speed;
    var_speed += d * d;
  }
  var_speed /= static_cast<double>(pts.size());

  // 4-bin temporal height profile: where the hand sits over the motion —
  // captures trajectory shape habits beyond aggregate extents.
  int min_frame = pts.front().frame;
  int max_frame = pts.front().frame;
  for (const auto& p : pts) {
    min_frame = std::min(min_frame, p.frame);
    max_frame = std::max(max_frame, p.frame);
  }
  const double span = std::max(1, max_frame - min_frame);
  std::array<double, 4> height_sum{};
  std::array<double, 4> height_count{};
  for (const auto& p : pts) {
    const double t = (p.frame - min_frame) / span;
    const auto bin = std::min<std::size_t>(3, static_cast<std::size_t>(t * 4.0));
    height_sum[bin] += p.position.z;
    height_count[bin] += 1.0;
  }

  BiometricStats stats{};
  stats[0] = static_cast<double>(cloud.num_frames) / 30.0;
  stats[1] = box.extent().x;
  stats[2] = box.extent().y;
  stats[3] = box.extent().z;
  stats[4] = mean_speed;
  stats[5] = std::sqrt(var_speed);
  stats[6] = static_cast<double>(pts.size()) / 300.0;
  stats[7] = c.z;
  for (std::size_t b = 0; b < 4; ++b) {
    stats[8 + b] = height_count[b] > 0.0 ? height_sum[b] / height_count[b] : c.z;
  }
  return stats;
}

namespace {

double l2(const BiometricStats& a, const BiometricStats& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < kBiometricDims; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace

BiometricGallery::BiometricGallery(OpenSetConfig config) : config_(config) {
  check_arg(config_.target_false_rejection > 0.0 && config_.target_false_rejection < 0.5,
            "target false rejection must be in (0, 0.5)");
  check_arg(config_.k_neighbors >= 1, "k_neighbors must be >= 1");
}

BiometricStats BiometricGallery::normalize(const BiometricStats& stats) const {
  BiometricStats out{};
  for (std::size_t d = 0; d < kBiometricDims; ++d) {
    out[d] = (stats[d] - mean_[d]) / stddev_[d];
  }
  return out;
}

double BiometricGallery::novelty_normalized(int gesture, const BiometricStats& normalized,
                                            const BiometricStats* exclude) const {
  const auto it = gallery_.find(gesture);
  if (it == gallery_.end() || it->second.empty()) {
    // No enrollment evidence for this gesture: maximally novel.
    return std::numeric_limits<double>::max();
  }
  std::vector<double> distances;
  distances.reserve(it->second.size());
  bool excluded = false;
  for (const auto& enrolled : it->second) {
    if (!excluded && exclude != nullptr && enrolled == *exclude) {
      excluded = true;  // leave-one-out: skip exactly one copy of self
      continue;
    }
    distances.push_back(l2(enrolled, normalized));
  }
  if (distances.empty()) return std::numeric_limits<double>::max();
  const std::size_t k = std::min(config_.k_neighbors, distances.size());
  std::partial_sort(distances.begin(), distances.begin() + static_cast<std::ptrdiff_t>(k),
                    distances.end());
  double acc = 0.0;
  for (std::size_t i = 0; i < k; ++i) acc += distances[i];
  return acc / static_cast<double>(k);
}

double BiometricGallery::novelty(int gesture, const BiometricStats& raw) const {
  check(calibrated_, "biometric gallery not calibrated");
  return novelty_normalized(gesture, normalize(raw));
}

void BiometricGallery::enroll_sample(int gesture, const BiometricStats& raw) {
  check(calibrated_, "biometric gallery not calibrated");
  // Frozen z-stats: incremental enrollment must not move the metric space
  // under already-enrolled users, so only the gallery grows.
  gallery_[gesture].push_back(normalize(raw));
}

std::size_t BiometricGallery::size() const {
  std::size_t total = 0;
  for (const auto& [gesture, samples] : gallery_) total += samples.size();
  return total;
}

void BiometricGallery::calibrate(const std::vector<BiometricStats>& raw,
                                 const std::vector<int>& gestures) {
  check_arg(raw.size() == gestures.size(), "gallery calibration label mismatch");
  check_arg(raw.size() >= 8, "calibration needs several genuine samples");

  mean_.fill(0.0);
  for (const auto& s : raw) {
    for (std::size_t d = 0; d < kBiometricDims; ++d) mean_[d] += s[d];
  }
  for (std::size_t d = 0; d < kBiometricDims; ++d) {
    mean_[d] /= static_cast<double>(raw.size());
  }
  stddev_.fill(0.0);
  for (const auto& s : raw) {
    for (std::size_t d = 0; d < kBiometricDims; ++d) {
      stddev_[d] += (s[d] - mean_[d]) * (s[d] - mean_[d]);
    }
  }
  for (std::size_t d = 0; d < kBiometricDims; ++d) {
    stddev_[d] = std::max(std::sqrt(stddev_[d] / static_cast<double>(raw.size())), 1e-6);
  }

  // Build the per-gesture gallery. The *true* gesture label is available at
  // enrollment time (users perform prompted gestures), so use it.
  gallery_.clear();
  for (std::size_t i = 0; i < raw.size(); ++i) {
    gallery_[gestures[i]].push_back(normalize(raw[i]));
  }

  // Leave-one-out novelty distances of the genuine enrollment samples.
  std::vector<double> distances;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const BiometricStats probe = normalize(raw[i]);
    const double d = novelty_normalized(gestures[i], probe, &probe);
    if (d < std::numeric_limits<double>::max()) distances.push_back(d);
  }
  check(!distances.empty(), "no usable calibration distances");

  // Accept while distance <= threshold; the (1 - FRR) quantile of genuine
  // distances rejects ~FRR of genuine probes.
  threshold_ = quantile(distances, 1.0 - config_.target_false_rejection);
  calibrated_ = true;
}

void BiometricGallery::save(std::ostream& out) const {
  BinaryWriter writer(out, "GPBG");
  writer.write_f64(config_.target_false_rejection);
  writer.write_u64(config_.k_neighbors);
  writer.write_u8(calibrated_ ? 1 : 0);
  writer.write_f64(threshold_);
  std::vector<double> stats(kBiometricDims);
  std::copy(mean_.begin(), mean_.end(), stats.begin());
  writer.write_f64_vector(stats);
  std::copy(stddev_.begin(), stddev_.end(), stats.begin());
  writer.write_f64_vector(stats);
  writer.write_u64(gallery_.size());
  for (const auto& [gesture, samples] : gallery_) {
    writer.write_i32(gesture);
    writer.write_u64(samples.size());
    for (const auto& s : samples) {
      std::copy(s.begin(), s.end(), stats.begin());
      writer.write_f64_vector(stats);
    }
  }
}

BiometricGallery BiometricGallery::load(std::istream& in) {
  BinaryReader reader(in, "GPBG");
  OpenSetConfig config;
  config.target_false_rejection = reader.read_f64();
  const std::uint64_t k = reader.read_u64();
  if (!(config.target_false_rejection > 0.0 && config.target_false_rejection < 0.5)) {
    throw SerializationError("gallery FRR out of range");
  }
  if (k < 1 || k > 1024) throw SerializationError("gallery k_neighbors out of range");
  config.k_neighbors = static_cast<std::size_t>(k);
  BiometricGallery gallery(config);
  gallery.calibrated_ = reader.read_u8() != 0;
  gallery.threshold_ = reader.read_f64();

  const auto read_stats = [&reader]() {
    const std::vector<double> v = reader.read_f64_vector();
    if (v.size() != kBiometricDims) {
      throw SerializationError("gallery descriptor has wrong dimension");
    }
    BiometricStats s{};
    std::copy(v.begin(), v.end(), s.begin());
    return s;
  };
  gallery.mean_ = read_stats();
  gallery.stddev_ = read_stats();
  for (std::size_t d = 0; d < kBiometricDims; ++d) {
    if (!(gallery.stddev_[d] > 0.0)) {
      throw SerializationError("gallery stddev must be positive");
    }
  }

  // Each gesture entry holds at least an i32 gesture id + u64 count; each
  // descriptor at least a length prefix + 12 doubles.
  const std::uint64_t num_gestures = reader.read_count(12, "gallery gestures");
  for (std::uint64_t g = 0; g < num_gestures; ++g) {
    const int gesture = reader.read_i32();
    if (gesture < 0 || gesture > 4096) throw SerializationError("gallery gesture id out of range");
    const std::uint64_t count =
        reader.read_count(8 + kBiometricDims * sizeof(double), "gallery descriptors");
    auto& samples = gallery.gallery_[gesture];
    samples.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) samples.push_back(read_stats());
  }
  return gallery;
}

OpenSetIdentifier::OpenSetIdentifier(GesturePrintSystem& system, OpenSetConfig config)
    : system_(system), gallery_(config) {
  check_arg(system_.fitted(), "open-set wrapper needs a fitted system");
}

void OpenSetIdentifier::calibrate(const Dataset& dataset,
                                  std::span<const std::size_t> genuine_indices) {
  check_arg(genuine_indices.size() >= 8, "calibration needs several genuine samples");
  std::vector<BiometricStats> raw;
  std::vector<int> gestures;
  raw.reserve(genuine_indices.size());
  for (std::size_t idx : genuine_indices) {
    raw.push_back(biometric_stats(dataset.samples[idx].cloud));
    gestures.push_back(dataset.samples[idx].gesture);
  }
  gallery_.calibrate(raw, gestures);
}

OpenSetDecision OpenSetIdentifier::decide(const GestureCloud& cloud) {
  check(gallery_.calibrated(), "open-set identifier not calibrated");
  const InferenceResult inference = system_.classify(cloud);

  OpenSetDecision decision;
  decision.gesture = inference.gesture;
  decision.distance = gallery_.novelty(inference.gesture, biometric_stats(cloud));
  if (gallery_.accepts(decision.distance)) {
    decision.accepted = true;
    decision.user = inference.user;
  }
  return decision;
}

OpenSetEvaluation OpenSetIdentifier::evaluate(const Dataset& genuine,
                                              std::span<const std::size_t> genuine_idx,
                                              const std::vector<GestureCloud>& impostors) {
  check_arg(!genuine_idx.empty() && !impostors.empty(), "open-set eval needs both cohorts");

  OpenSetEvaluation eval;
  eval.threshold = gallery_.threshold();

  std::size_t accepted = 0;
  std::size_t accepted_correct = 0;
  for (std::size_t idx : genuine_idx) {
    const OpenSetDecision decision = decide(genuine.samples[idx].cloud);
    if (decision.accepted) {
      ++accepted;
      if (decision.user == genuine.samples[idx].user) ++accepted_correct;
    }
  }
  eval.genuine_accept_rate =
      static_cast<double>(accepted) / static_cast<double>(genuine_idx.size());
  eval.accepted_uia =
      accepted > 0 ? static_cast<double>(accepted_correct) / static_cast<double>(accepted) : 0.0;

  std::size_t rejected = 0;
  for (const GestureCloud& cloud : impostors) {
    if (!decide(cloud).accepted) ++rejected;
  }
  eval.impostor_reject_rate =
      static_cast<double>(rejected) / static_cast<double>(impostors.size());
  return eval;
}

}  // namespace gp
