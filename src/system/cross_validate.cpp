#include "system/cross_validate.hpp"

#include <cmath>

#include "common/error.hpp"
#include "eval/splits.hpp"

namespace gp {

CrossValidationResult cross_validate(const Dataset& dataset, const GesturePrintConfig& config,
                                     std::size_t k, std::uint64_t seed) {
  check_arg(k >= 2, "cross-validation needs k >= 2");

  Rng rng(seed, 0x853c49e6748fea9bULL);
  std::vector<int> strata;
  strata.reserve(dataset.samples.size());
  const int num_users = static_cast<int>(dataset.num_users());
  for (const auto& s : dataset.samples) strata.push_back(s.gesture * num_users + s.user);
  const std::vector<Split> folds = stratified_kfold(strata, k, rng);

  CrossValidationResult result;
  result.folds.reserve(k);
  for (const Split& fold : folds) {
    GesturePrintConfig fold_config = config;
    fold_config.seed = config.seed + result.folds.size() + 1;
    GesturePrintSystem system(fold_config);
    system.fit(dataset, fold.train);
    result.folds.push_back(system.evaluate(dataset, fold.test));
  }

  double gra_acc = 0.0;
  double uia_acc = 0.0;
  double eer_acc = 0.0;
  for (const auto& fold : result.folds) {
    gra_acc += fold.gra;
    uia_acc += fold.uia;
    eer_acc += fold.user_roc.eer();
  }
  const double n = static_cast<double>(result.folds.size());
  result.mean_gra = gra_acc / n;
  result.mean_uia = uia_acc / n;
  result.mean_eer = eer_acc / n;

  double gra_var = 0.0;
  double uia_var = 0.0;
  for (const auto& fold : result.folds) {
    gra_var += (fold.gra - result.mean_gra) * (fold.gra - result.mean_gra);
    uia_var += (fold.uia - result.mean_uia) * (fold.uia - result.mean_uia);
  }
  result.std_gra = std::sqrt(gra_var / n);
  result.std_uia = std::sqrt(uia_var / n);
  return result;
}

}  // namespace gp
