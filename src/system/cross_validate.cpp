#include "system/cross_validate.hpp"

#include <cmath>

#include "common/error.hpp"
#include "eval/splits.hpp"

namespace gp {

CrossValidationResult cross_validate(const Dataset& dataset, const GesturePrintConfig& config,
                                     std::size_t k, std::uint64_t seed, exec::ExecContext& ctx) {
  check_arg(k >= 2, "cross-validation needs k >= 2");

  Rng rng(seed, 0x853c49e6748fea9bULL);
  std::vector<int> strata;
  strata.reserve(dataset.samples.size());
  const int num_users = static_cast<int>(dataset.num_users());
  for (const auto& s : dataset.samples) strata.push_back(s.gesture * num_users + s.user);
  const std::vector<Split> folds = stratified_kfold(strata, k, rng);

  // Folds are fully independent (each trains its own system from a seed
  // derived from the fold index), so they parallelise without changing any
  // per-fold number. Inside a fold the nested training/inference parallel
  // calls run inline — the fold level already saturates the pool.
  CrossValidationResult result;
  result.folds.resize(folds.size());
  ctx.parallel_for(0, folds.size(), /*grain=*/1, [&](std::size_t i) {
    GesturePrintConfig fold_config = config;
    fold_config.seed = config.seed + i + 1;
    GesturePrintSystem system(fold_config);
    system.fit(dataset, folds[i].train);
    result.folds[i] = system.evaluate(dataset, folds[i].test);
  });

  double gra_acc = 0.0;
  double uia_acc = 0.0;
  double eer_acc = 0.0;
  for (const auto& fold : result.folds) {
    gra_acc += fold.gra;
    uia_acc += fold.uia;
    eer_acc += fold.user_roc.eer();
  }
  const double n = static_cast<double>(result.folds.size());
  result.mean_gra = gra_acc / n;
  result.mean_uia = uia_acc / n;
  result.mean_eer = eer_acc / n;

  double gra_var = 0.0;
  double uia_var = 0.0;
  for (const auto& fold : result.folds) {
    gra_var += (fold.gra - result.mean_gra) * (fold.gra - result.mean_gra);
    uia_var += (fold.uia - result.mean_uia) * (fold.uia - result.mean_uia);
  }
  result.std_gra = std::sqrt(gra_var / n);
  result.std_uia = std::sqrt(uia_var / n);
  return result;
}

}  // namespace gp
