#include "system/multi_user.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gp {

std::vector<MultiUserResult> classify_multi(GesturePrintSystem& system,
                                            const FrameSequence& frames,
                                            const TrackerParams& params) {
  check_arg(system.fitted(), "classify_multi needs a fitted system");

  ClusterTracker tracker(params);
  for (const auto& frame : frames) tracker.push(frame);
  tracker.finish();

  std::vector<Track> tracks = tracker.take_finished();
  std::sort(tracks.begin(), tracks.end(),
            [](const Track& a, const Track& b) { return a.id < b.id; });

  std::vector<MultiUserResult> results;
  for (const Track& track : tracks) {
    if (!track.reportable(params)) continue;

    GestureCloud cloud;
    cloud.points = track.points;
    cloud.num_frames = track.frames_observed;
    cloud.duration_s = static_cast<double>(track.frames_observed) * 0.1;
    if (!cloud.points.empty()) {
      int min_frame = cloud.points.front().frame;
      for (const auto& p : cloud.points) min_frame = std::min(min_frame, p.frame);
      cloud.first_frame = min_frame;
    }

    MultiUserResult result;
    result.track_id = track.id;
    result.position = track.centroid;
    result.num_points = track.points.size();
    result.frames_observed = track.frames_observed;
    result.inference = system.classify(cloud);
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace gp
