// Open-set user identification: rejecting people who are not enrolled.
//
// §IV-C notes the serialized mode's "capability of handling random gestures
// and unauthorized people" — this module makes that concrete. Neither
// softmax confidence nor the classifier's embedding separates outsiders: a
// discriminatively trained ID model collapses its feature space onto the
// enrolled clusters, so an impostor is simply mapped onto whoever they
// resemble most. What *does* retain outsider signal is the raw biometric
// statistics of the gesture cloud — duration, spatial extent, Doppler
// profile, point density — exactly the §III identity factors (arm length,
// pace, range of motion). Rejection therefore scores novelty as the mean
// distance to the k nearest enrolled gallery samples in a z-scored
// biometric-statistics space, per recognised gesture.
//
// The gallery itself is a value type (BiometricGallery) so that gp::enroll
// can carry one inside the serve process: calibrate once from the enrolled
// training split, score live segments, and grow it incrementally as new
// users are admitted — without re-running the full calibration.
#pragma once

#include <array>
#include <iosfwd>
#include <map>
#include <vector>

#include "system/gestureprint.hpp"

namespace gp {

struct OpenSetConfig {
  /// Target fraction of genuine enrolled samples rejected at calibration
  /// (the knob trades convenience vs security).
  double target_false_rejection = 0.05;
  /// Nearest gallery neighbours averaged into the novelty distance.
  std::size_t k_neighbors = 3;
};

/// The biometric-statistics descriptor used for novelty scoring.
inline constexpr std::size_t kBiometricDims = 12;
using BiometricStats = std::array<double, kBiometricDims>;

/// Extracts the descriptor of one gesture cloud: [duration, extent x/y/z,
/// mean |v|, std v, point density, centroid z, and a 4-bin temporal height
/// profile of the motion].
BiometricStats biometric_stats(const GestureCloud& cloud);

/// Per-gesture gallery of z-scored biometric descriptors with a calibrated
/// novelty threshold. Pure value type: no model reference, copyable,
/// serializable ("GPBG"), and incrementally growable — `enroll_sample`
/// inserts new descriptors under the *frozen* calibration z-statistics so
/// the novelty geometry of already-enrolled users never shifts.
class BiometricGallery {
 public:
  explicit BiometricGallery(OpenSetConfig config = {});

  /// Computes z-scoring statistics over the raw descriptors, builds the
  /// per-gesture gallery, and calibrates the acceptance threshold to the
  /// target FRR via leave-one-out novelty distances. Needs >= 8 samples.
  void calibrate(const std::vector<BiometricStats>& raw, const std::vector<int>& gestures);

  /// Novelty distance of a raw (un-normalized) descriptor for `gesture`.
  /// Unseen gestures score maximally novel (numeric max).
  double novelty(int gesture, const BiometricStats& raw) const;

  /// Whether a novelty distance passes the calibrated threshold.
  bool accepts(double distance) const { return distance <= threshold_; }

  /// Adds one raw descriptor to the gallery under the frozen calibration
  /// z-statistics (incremental enrollment; threshold unchanged).
  void enroll_sample(int gesture, const BiometricStats& raw);

  /// z-scores a descriptor with the calibration statistics. Exposed so
  /// candidate clustering (gp::enroll) operates in the same metric space
  /// the novelty decision uses.
  BiometricStats normalize(const BiometricStats& stats) const;

  /// Mean distance to the k nearest gallery descriptors for this gesture.
  /// `exclude` skips exactly one copy of self (leave-one-out calibration).
  double novelty_normalized(int gesture, const BiometricStats& normalized,
                            const BiometricStats* exclude = nullptr) const;

  double threshold() const { return threshold_; }
  bool calibrated() const { return calibrated_; }
  const OpenSetConfig& config() const { return config_; }
  /// The frozen calibration z-statistics (gp::enroll fingerprints these to
  /// bind persisted buffers to the calibration that z-scored them).
  const BiometricStats& z_mean() const { return mean_; }
  const BiometricStats& z_stddev() const { return stddev_; }
  /// Total descriptors across all gestures.
  std::size_t size() const;

  /// Round-trips the calibrated gallery ("GPBG" tag, hardened reader path;
  /// throws SerializationError on corruption).
  void save(std::ostream& out) const;
  static BiometricGallery load(std::istream& in);

 private:
  OpenSetConfig config_;
  std::map<int, std::vector<BiometricStats>> gallery_;  ///< gesture -> z-scored descriptors
  BiometricStats mean_{};
  BiometricStats stddev_{};
  double threshold_ = 0.0;
  bool calibrated_ = false;
};

/// Decision for one sample under open-set identification.
struct OpenSetDecision {
  bool accepted = false;
  int user = -1;       ///< valid when accepted
  int gesture = -1;
  double distance = 0; ///< novelty distance used for the decision
};

/// Aggregate open-set metrics over a labelled evaluation.
struct OpenSetEvaluation {
  double genuine_accept_rate = 0.0;   ///< enrolled samples accepted
  double impostor_reject_rate = 0.0;  ///< unauthorized samples rejected
  double accepted_uia = 0.0;          ///< ID accuracy among accepted genuine
  double threshold = 0.0;
};

/// Wraps a fitted GesturePrintSystem with novelty-based rejection.
class OpenSetIdentifier {
 public:
  OpenSetIdentifier(GesturePrintSystem& system, OpenSetConfig config = {});

  /// Builds the per-gesture enrollment galleries from the given genuine
  /// samples (the training split works well: the descriptor is model-free,
  /// so there is no overconfidence issue) and calibrates the distance
  /// threshold via leave-one-out to the target FRR.
  void calibrate(const Dataset& dataset, std::span<const std::size_t> genuine_indices);

  /// Classifies one cloud, possibly rejecting it as an outsider.
  OpenSetDecision decide(const GestureCloud& cloud);

  /// Evaluates against genuine samples (from the enrolled dataset) and
  /// impostor samples (clouds from users the system never saw).
  OpenSetEvaluation evaluate(const Dataset& genuine, std::span<const std::size_t> genuine_idx,
                             const std::vector<GestureCloud>& impostors);

  double threshold() const { return gallery_.threshold(); }
  bool calibrated() const { return gallery_.calibrated(); }
  const BiometricGallery& gallery() const { return gallery_; }

 private:
  GesturePrintSystem& system_;
  BiometricGallery gallery_;
};

}  // namespace gp
