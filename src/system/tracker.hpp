// Multi-target cluster tracking across radar frames.
//
// §VII-1's future-work direction (via m3Track): handle several people
// interacting simultaneously. This module segments each frame's points into
// spatial clusters, associates clusters across frames by nearest-centroid
// matching, and maintains per-track point buffers, so every person's
// gesture cloud can be preprocessed and classified independently
// (GesturePrintSystem::classify on each track's aggregated cloud).
#pragma once

#include <optional>
#include <vector>

#include "pointcloud/dbscan.hpp"
#include "pointcloud/point.hpp"

namespace gp {

struct TrackerParams {
  /// Per-frame clustering (looser than the aggregate noise-canceling pass:
  /// single-frame clouds are sparse).
  DbscanParams frame_cluster{0.7, 3};
  /// Maximum centroid movement between consecutive frames to associate a
  /// cluster with an existing track (humans move << 1 m per 100 ms).
  double gate_distance = 0.6;
  /// Frames a track survives without an associated cluster.
  int max_misses = 5;
  /// Minimum total points before a track is reported.
  std::size_t min_track_points = 12;
};

/// One tracked person/object.
struct Track {
  int id = 0;
  Vec3 centroid;            ///< latest associated cluster centroid
  int last_update_frame = 0;
  int misses = 0;           ///< consecutive frames without association
  PointCloud points;        ///< all points accumulated by this track
  std::size_t frames_observed = 0;

  bool reportable(const TrackerParams& params) const {
    return points.size() >= params.min_track_points;
  }
};

/// Online nearest-centroid tracker over per-frame DBSCAN clusters.
class ClusterTracker {
 public:
  explicit ClusterTracker(TrackerParams params = {});

  /// Consumes one radar frame; updates/creates/retires tracks.
  void push(const FrameCloud& frame);

  /// Tracks currently alive (reportable or not).
  const std::vector<Track>& tracks() const { return tracks_; }
  /// Tracks retired because they went unseen for max_misses frames.
  std::vector<Track> take_finished();

  /// Finishes all live tracks (end of recording).
  void finish();

 private:
  TrackerParams params_;
  std::vector<Track> tracks_;
  std::vector<Track> finished_;
  int next_id_ = 0;
};

}  // namespace gp
