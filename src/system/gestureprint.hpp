// GesturePrint end-to-end system (Fig. 4): trains the GesIDNet recognition
// model plus user-identification models, and classifies gesture clouds into
// (gesture, user) pairs.
//
// Identification modes (§IV-C):
//  * serialized (default): one user-ID model per gesture; at runtime the
//    recognised gesture selects which ID model scores the cloud.
//  * parallel: a single user-ID model trained across all gestures.
#pragma once

#include <memory>
#include <optional>
#include <span>

#include "datasets/prep.hpp"
#include "eval/metrics.hpp"
#include "eval/roc.hpp"
#include "gesidnet/gesidnet.hpp"
#include "gesidnet/trainer.hpp"

namespace gp {

enum class IdentificationMode { kSerialized, kParallel };

/// Label value returned by classify() when the system abstains: the
/// posterior margin fell below the calibrated abstention margin, or the
/// cloud failed its quality guards. Distinct from -1 ("no model ran").
inline constexpr int kAbstain = -2;

/// Top-1 minus top-2 posterior probability — the abstention-gate statistic.
/// Returns 1.0 for distributions with fewer than two classes.
double top2_margin(const std::vector<double>& probabilities);

/// The abstention gate: true when the margin of `probabilities` is below
/// `margin` (a non-positive margin disables the gate). Monotone in
/// `margin`: raising it can only turn answers into abstentions.
bool should_abstain(const std::vector<double>& probabilities, double margin);

struct GesturePrintConfig {
  GesIDNetConfig network;          ///< num_classes is set per model internally
  TrainConfig training;
  PrepConfig prep{FeatureConfig{}, AugmentationParams{0.02, 2}, true};
  IdentificationMode mode = IdentificationMode::kSerialized;
  /// Test-time augmentation: logits are averaged over this many stochastic
  /// featurizations (cloud resampling) per sample. Inference is cheap next
  /// to training, and averaging removes resampling variance.
  std::size_t eval_rounds = 3;
  std::uint64_t seed = 99;
  /// Confidence-gated abstention (coverage/risk trade-off): classify()
  /// returns kAbstain when the top-1/top-2 posterior margin falls below
  /// this value, instead of silently misclassifying a degraded capture.
  /// 0 disables the gate (the clean-capture default — bitwise-identical
  /// behaviour to a build without the gate). The GP_ABSTAIN_MARGIN
  /// environment variable, when set, overrides this field.
  double abstain_margin = 0.0;
};

/// Result of classifying one gesture sample.
struct InferenceResult {
  int gesture = -1;             ///< class id, or kAbstain
  int user = -1;                ///< class id, or kAbstain
  std::vector<double> gesture_probabilities;
  std::vector<double> user_probabilities;
  bool abstained = false;       ///< any gate fired (margin or quality)
  double gesture_margin = 1.0;  ///< top-1 minus top-2 gesture posterior
  double user_margin = 1.0;     ///< top-1 minus top-2 user posterior
};

/// Aggregate evaluation metrics matching Table II's columns.
struct SystemEvaluation {
  double gra = 0.0;    ///< gesture recognition accuracy
  double grf1 = 0.0;
  double grauc = 0.0;
  double uia = 0.0;    ///< user identification accuracy
  double uif1 = 0.0;
  double uiauc = 0.0;
  RocCurve user_roc;   ///< for Fig. 10 (EER via user_roc.eer())
  ConfusionMatrix gesture_confusion{2};
  ConfusionMatrix user_confusion{2};
};

class GesturePrintSystem {
 public:
  explicit GesturePrintSystem(GesturePrintConfig config = {});

  /// Trains recognition + identification models on the selected samples.
  void fit(const Dataset& dataset, std::span<const std::size_t> train_indices);

  /// Continues training the already-fitted models on additional samples —
  /// the §VII-2 mitigation: adapt to a new environment with a few local
  /// recordings instead of retraining from scratch. Label spaces must match
  /// the original fit.
  void fine_tune(const Dataset& dataset, std::span<const std::size_t> indices,
                 std::size_t epochs, double lr = 5e-4);

  /// Grows the user label space by one (gp::enroll): every user-ID model is
  /// replaced by its widened copy (GesIDNet::widen_head) — existing users'
  /// decision boundaries are copied exactly, the new class row starts at a
  /// `seed`-derived init. The gesture model is untouched. Requires an
  /// unfused fitted system; returns the new user's class id.
  int widen_users(std::uint64_t seed);

  /// Head-only fine-tune of the user-ID models (frozen PointNet++ trunk,
  /// TrainConfig::head_only): the enrollment path trains just the widened
  /// heads on replayed + newly-buffered samples. `dataset` must carry the
  /// (already widened) user label space; the gesture model is not trained.
  void fine_tune_user_heads(const Dataset& dataset, std::span<const std::size_t> indices,
                            std::size_t epochs, double lr = 5e-4);

  /// Persists every trained model (weights + batch-norm statistics). The
  /// file carries a whole-payload FNV-1a checksum trailer so bit rot is
  /// *detected* on load instead of silently perturbing weights.
  void save(const std::string& path);
  /// Restores a system saved with save(); the network configuration must
  /// match the one this system was constructed with. Throws
  /// SerializationError on checksum mismatch or malformed content.
  void load(const std::string& path);
  /// Self-healing load (DESIGN.md §7): retries transient IO errors with
  /// backoff; on a corrupt file, quarantines it aside (".quarantine"
  /// suffix), logs one warning, and returns false so the caller can refit
  /// and re-save instead of aborting. Returns false (without warning) when
  /// the file simply does not exist. The system is left unfitted on
  /// failure.
  bool try_load(const std::string& path);

  /// Classifies one preprocessed gesture cloud (runtime path).
  InferenceResult classify(const GestureCloud& cloud);

  /// The fused identification embedding of a cloud (the Y^l1 feature of the
  /// ID model the recognised gesture routes to), plus the recognised
  /// gesture. Open-set rejection scores novelty in this space.
  struct EmbeddingResult {
    int gesture = -1;
    std::vector<float> embedding;
  };
  EmbeddingResult id_embedding(const GestureCloud& cloud);

  /// Batch evaluation over the selected test samples.
  SystemEvaluation evaluate(const Dataset& dataset, std::span<const std::size_t> test_indices);

  /// Evaluation against a differently-generated dataset (cross-distance /
  /// cross-environment studies). Label spaces must match the fit dataset.
  SystemEvaluation evaluate_dataset(const Dataset& dataset);

  bool fitted() const { return gesture_model_ != nullptr; }
  std::size_t num_gestures() const { return num_gestures_; }
  std::size_t num_users() const { return num_users_; }
  GesIDNet& gesture_model();
  const GesturePrintConfig& config() const { return config_; }

  /// Serve-layer accessors: the user-ID model routed to for gesture `g`
  /// (serialized mode; index 0 in parallel mode). nullptr when that gesture
  /// had no training data or `g` is out of range.
  std::size_t num_user_models() const { return user_models_.size(); }
  GesIDNet* user_model(std::size_t g) {
    return g < user_models_.size() ? user_models_[g].get() : nullptr;
  }

  /// Irreversibly fuses every trained model into its inference-only form
  /// (GesIDNet::fuse_for_inference). Afterwards the system can classify but
  /// not fit/fine_tune/save — gp::serve calls this on the private system
  /// copy inside each ModelSnapshot, never on a caller's live system.
  /// QuantMode::kInt8 selects the symmetric int8 inference kernel
  /// (nn/quant.hpp); a system restored via load()/try_load() reuses the
  /// .gpsy quant sections, a freshly fitted one quantizes at fuse time —
  /// identical tables either way.
  void fuse_for_inference(nn::QuantMode mode = nn::QuantMode::kOff);

 private:
  SystemEvaluation evaluate_samples(const std::vector<const GestureSample*>& samples);

  GesturePrintConfig config_;
  std::size_t num_gestures_ = 0;
  std::size_t num_users_ = 0;
  Rng rng_;
  std::unique_ptr<GesIDNet> gesture_model_;
  /// Serialized mode: index = gesture id; parallel mode: single entry.
  std::vector<std::unique_ptr<GesIDNet>> user_models_;
};

}  // namespace gp
