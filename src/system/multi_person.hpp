// Multi-person scene utilities (§VII-1, Fig. 15): compose scenes with a
// bystander walking past or gesturing beside the target user, and analyse
// whether noise canceling isolates the target's point cluster.
#pragma once

#include "datasets/dataset.hpp"
#include "kinematics/performer.hpp"
#include "pipeline/noise_cancel.hpp"

namespace gp {

/// Overlays scene `b` onto scene `a` frame by frame (reflectors merged;
/// the longer scene's tail is kept as-is).
SceneSequence merge_scenes(const SceneSequence& a, const SceneSequence& b);

/// A pedestrian walking along a straight line (constant speed), producing
/// torso reflectors with genuine non-zero Doppler.
struct WalkerConfig {
  Vec3 start{2.0, 2.5, 0.0};   ///< radar frame, metres (z = body base offset)
  Vec3 velocity{-0.8, 0.0, 0.0};
  double height = 1.72;
  double radar_height = 1.25;
  int num_frames = 40;
  double frame_rate = 10.0;
};
SceneSequence make_walker_scene(const WalkerConfig& config, Rng& rng);

/// Cluster-separation analysis of a multi-person gesture cloud. Two
/// selection policies are reported:
///  * size-based — the paper's default "keep the largest cluster", which
///    works when the user is the nearest/strongest reflector;
///  * work-zone based — pick the cluster nearest a predefined interaction
///    zone (§VII-1's suggested mitigation when bystanders reflect more).
struct SeparationResult {
  std::size_t num_clusters = 0;
  double main_cluster_fraction = 0.0;   ///< of all clustered points
  double centroid_gap = 0.0;            ///< m, main to nearest other cluster
  /// True when the (size-based) main cluster sits nearer the expected user
  /// position than any other cluster.
  bool main_cluster_is_user = false;
  /// Work-zone policy: the cluster whose centroid is nearest the zone.
  std::size_t zone_cluster_size = 0;
  double zone_cluster_distance = 0.0;   ///< its centroid's distance to zone
};
SeparationResult analyze_separation(const PointCloud& aggregated, const Vec3& user_position,
                                    const NoiseCancelParams& params = {});

}  // namespace gp
