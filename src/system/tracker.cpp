#include "system/tracker.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace gp {

ClusterTracker::ClusterTracker(TrackerParams params) : params_(params) {
  check_arg(params_.gate_distance > 0.0, "gate distance must be positive");
  check_arg(params_.max_misses >= 1, "max_misses must be >= 1");
}

void ClusterTracker::push(const FrameCloud& frame) {
  // Cluster this frame's points.
  struct FrameCluster {
    Vec3 centroid;
    PointCloud points;
    bool used = false;
  };
  std::vector<FrameCluster> clusters;
  if (!frame.points.empty()) {
    const DbscanResult result = dbscan(frame.points, params_.frame_cluster);
    clusters.resize(result.num_clusters);
    for (std::size_t i = 0; i < frame.points.size(); ++i) {
      const int label = result.labels[i];
      if (label < 0) continue;
      clusters[static_cast<std::size_t>(label)].points.push_back(frame.points[i]);
    }
    for (auto& cluster : clusters) {
      if (!cluster.points.empty()) cluster.centroid = centroid(cluster.points);
    }
  }

  // Greedy nearest association: repeatedly match the globally closest
  // (track, cluster) pair under the gate.
  std::vector<char> track_used(tracks_.size(), 0);
  while (true) {
    double best = params_.gate_distance;
    std::size_t best_track = tracks_.size();
    std::size_t best_cluster = clusters.size();
    for (std::size_t t = 0; t < tracks_.size(); ++t) {
      if (track_used[t]) continue;
      for (std::size_t c = 0; c < clusters.size(); ++c) {
        if (clusters[c].used || clusters[c].points.empty()) continue;
        const double d = distance(tracks_[t].centroid, clusters[c].centroid);
        if (d < best) {
          best = d;
          best_track = t;
          best_cluster = c;
        }
      }
    }
    if (best_track == tracks_.size()) break;

    Track& track = tracks_[best_track];
    FrameCluster& cluster = clusters[best_cluster];
    track.centroid = cluster.centroid;
    track.last_update_frame = frame.frame_index;
    track.misses = 0;
    track.points.insert(track.points.end(), cluster.points.begin(), cluster.points.end());
    ++track.frames_observed;
    track_used[best_track] = 1;
    cluster.used = true;
  }

  // Unmatched clusters spawn new tracks.
  for (auto& cluster : clusters) {
    if (cluster.used || cluster.points.empty()) continue;
    Track track;
    track.id = next_id_++;
    track.centroid = cluster.centroid;
    track.last_update_frame = frame.frame_index;
    track.points = cluster.points;
    track.frames_observed = 1;
    tracks_.push_back(std::move(track));
    track_used.push_back(1);  // freshly spawned: updated this frame
  }

  // Unmatched tracks age; the stale ones retire.
  std::vector<Track> alive;
  alive.reserve(tracks_.size());
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    Track& track = tracks_[t];
    if (!track_used[t] && track.last_update_frame != frame.frame_index) ++track.misses;
    if (track.misses > params_.max_misses) {
      finished_.push_back(std::move(track));
    } else {
      alive.push_back(std::move(track));
    }
  }
  tracks_ = std::move(alive);
}

std::vector<Track> ClusterTracker::take_finished() {
  std::vector<Track> out;
  out.swap(finished_);
  return out;
}

void ClusterTracker::finish() {
  for (auto& track : tracks_) finished_.push_back(std::move(track));
  tracks_.clear();
}

}  // namespace gp
