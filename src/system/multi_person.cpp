#include "system/multi_person.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace gp {

SceneSequence merge_scenes(const SceneSequence& a, const SceneSequence& b) {
  SceneSequence out = a.size() >= b.size() ? a : b;
  const SceneSequence& shorter = a.size() >= b.size() ? b : a;
  for (std::size_t i = 0; i < shorter.size(); ++i) {
    out[i].reflectors.insert(out[i].reflectors.end(), shorter[i].reflectors.begin(),
                             shorter[i].reflectors.end());
  }
  return out;
}

SceneSequence make_walker_scene(const WalkerConfig& config, Rng& rng) {
  check_arg(config.num_frames > 0 && config.frame_rate > 0.0, "bad walker config");
  SceneSequence scene;
  scene.reserve(static_cast<std::size_t>(config.num_frames));
  const double dt = 1.0 / config.frame_rate;

  for (int f = 0; f < config.num_frames; ++f) {
    SceneFrame frame;
    frame.frame_index = f;
    frame.timestamp = f * dt;
    const Vec3 base = config.start + config.velocity * frame.timestamp;

    // Torso column + swinging arms (gait micro-motion).
    for (double h : {0.5, 0.7, 0.9, 1.1, 1.3}) {
      Reflector r;
      r.position = base + Vec3(rng.gaussian(0.0, 0.02), rng.gaussian(0.0, 0.02),
                               h * config.height - config.radar_height);
      r.velocity = config.velocity;
      r.rcs = 1.4;
      frame.reflectors.push_back(r);
    }
    // Swinging arm: sinusoidal fore-aft motion on top of the walk velocity.
    const double swing_phase = 2.0 * 3.14159265358979 * 0.9 * frame.timestamp;
    for (double side : {-1.0, 1.0}) {
      Reflector r;
      r.position = base + Vec3(side * 0.22, 0.25 * std::sin(swing_phase + side),
                               0.58 * config.height - config.radar_height);
      r.velocity = config.velocity +
                   Vec3(0.0, 0.25 * 2.0 * 3.14159265358979 * 0.9 * std::cos(swing_phase + side),
                        0.0);
      r.rcs = 0.5;
      frame.reflectors.push_back(r);
    }
    scene.push_back(std::move(frame));
  }
  return scene;
}

SeparationResult analyze_separation(const PointCloud& aggregated, const Vec3& user_position,
                                    const NoiseCancelParams& params) {
  SeparationResult result;
  if (aggregated.empty()) return result;

  const NoiseCancelResult cleaned = cancel_noise(aggregated, params);
  result.num_clusters = 1 + cleaned.other_clusters.size();

  std::size_t clustered_points = cleaned.main_cluster.size();
  for (const auto& c : cleaned.other_clusters) clustered_points += c.size();
  if (clustered_points == 0) return result;
  result.main_cluster_fraction =
      static_cast<double>(cleaned.main_cluster.size()) / static_cast<double>(clustered_points);

  if (cleaned.main_cluster.empty()) return result;
  const Vec3 main_centroid = centroid(cleaned.main_cluster);
  const double main_to_user = distance(main_centroid, user_position);

  double nearest_other_gap = std::numeric_limits<double>::infinity();
  bool other_closer_to_user = false;
  result.zone_cluster_size = cleaned.main_cluster.size();
  result.zone_cluster_distance = main_to_user;
  for (const auto& cluster : cleaned.other_clusters) {
    if (cluster.empty()) continue;
    const Vec3 c = centroid(cluster);
    nearest_other_gap = std::min(nearest_other_gap, distance(c, main_centroid));
    const double to_user = distance(c, user_position);
    if (to_user < main_to_user) other_closer_to_user = true;
    if (to_user < result.zone_cluster_distance) {
      result.zone_cluster_distance = to_user;
      result.zone_cluster_size = cluster.size();
    }
  }
  result.centroid_gap = std::isfinite(nearest_other_gap) ? nearest_other_gap : 0.0;
  result.main_cluster_is_user = !other_closer_to_user;
  return result;
}

}  // namespace gp
