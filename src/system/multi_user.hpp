// Simultaneous multi-user gesture classification (§VII-1 future work):
// track every person in the scene, aggregate each track's points into its
// own gesture cloud, and classify each independently with a fitted
// GesturePrintSystem.
#pragma once

#include "system/gestureprint.hpp"
#include "system/tracker.hpp"

namespace gp {

struct MultiUserResult {
  int track_id = 0;
  Vec3 position;                ///< last tracked centroid
  std::size_t num_points = 0;
  std::size_t frames_observed = 0;
  InferenceResult inference;
};

/// Runs the tracker over a recording and classifies every reportable track.
/// Results are ordered by track id (appearance order).
std::vector<MultiUserResult> classify_multi(GesturePrintSystem& system,
                                            const FrameSequence& frames,
                                            const TrackerParams& params = {});

}  // namespace gp
