// k-fold cross-validation of the full system — the paper's protocol (§V:
// "8:2 split with 5-fold cross-validation for reliable results").
#pragma once

#include "exec/exec.hpp"
#include "system/gestureprint.hpp"

namespace gp {

struct CrossValidationResult {
  std::vector<SystemEvaluation> folds;
  double mean_gra = 0.0;
  double std_gra = 0.0;
  double mean_uia = 0.0;
  double std_uia = 0.0;
  double mean_eer = 0.0;
};

/// Trains and evaluates one system per stratified fold (stratification on
/// the (gesture, user) pair so every pair appears in every fold). Folds are
/// independent and run in parallel on `ctx`; each fold's seed is a function
/// of its index, so per-fold metrics do not depend on the thread count.
CrossValidationResult cross_validate(const Dataset& dataset, const GesturePrintConfig& config,
                                     std::size_t k = 5, std::uint64_t seed = 1234,
                                     exec::ExecContext& ctx = exec::ExecContext::global());

}  // namespace gp
