// gp::health — per-request tracing, rolling SLI windows, SLO verdicts, and
// the serve-stack flight recorder (DESIGN.md §10).
//
// The HealthMonitor rides the serve tick: producers count admissions and
// sheds through relaxed atomics, the pump thread records per-request stage
// breakdowns and batch flushes into an *open* tick cell, and close_tick()
// folds the cell into a preallocated ring plus an incrementally-maintained
// rolling-window aggregate that feeds the SLO evaluator. Nothing on the tick
// path allocates (ServeSteadyTickZeroAlloc holds with health enabled) and
// nothing here ever feeds back into serve results — health on/off is
// bitwise-invisible to ServeResult streams.
//
// Threading contract: on_frame_admitted / on_frame_rejected / on_stale_shed /
// on_fault_drop are safe from any thread; record_request / record_batch /
// close_tick belong to the pump thread; snapshot() / exemplar_trace_json()
// must not race close_tick (call them between pumps, like Server::stats).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <atomic>
#include <optional>
#include <string>
#include <vector>

#include "health/slo.hpp"

namespace gp::obs {
class Counter;
class Gauge;
}  // namespace gp::obs

namespace gp::health {

// ------------------------------------------------------------------ stages

/// Per-request stage taxonomy. A request's end-to-end latency decomposes as
///   admission_wait : frame admitted -> its shard drain began
///   queue_wait     : shard drain began -> segment submitted to the batcher
///                    (includes featurization)
///   batch_wait     : batcher submit -> the flush that served it started
///   forward        : the flush's fused model passes (shared by the batch)
///   epilogue       : the rest of the flush (routing, margins, result fill)
enum class Stage {
  kAdmissionWait = 0,
  kQueueWait,
  kBatchWait,
  kForward,
  kEpilogue,
};
inline constexpr std::size_t kStageCount = 5;
const char* stage_name(Stage s);

/// One served request's timing breakdown, keyed by the RequestId minted at
/// admission and audited on ServeResult::request_id.
struct RequestSample {
  std::uint64_t request_id = 0;
  std::uint64_t session_id = 0;
  std::uint64_t ordinal = 0;
  std::uint64_t total_us = 0;
  std::array<std::uint64_t, kStageCount> stage_us{};

  Stage slowest_stage() const;
};

// ------------------------------------------------------------------ config

struct HealthConfig {
  bool enabled = true;             ///< GP_HEALTH=off|0 disables the monitor
  std::uint64_t window_ticks = 2048;  ///< tick ring capacity (GP_HEALTH_WINDOW_TICKS)
  std::optional<SloSpec> slo;      ///< GP_SLO (malformed spec warns + keeps base)
  bool flightrec = true;           ///< GP_FLIGHTREC=off|0 disables the recorder
  std::string flightrec_path;      ///< GP_FLIGHTREC=<path>: crash-dump target

  /// Telemetry-only test hook: inflate the *recorded* time of one stage by
  /// debug_slow_us per request (results are untouched — this is how
  /// test_health injects an attributable p99 spike).
  int debug_slow_stage = -1;
  std::uint64_t debug_slow_us = 0;

  /// Applies GP_HEALTH / GP_HEALTH_WINDOW_TICKS / GP_SLO / GP_FLIGHTREC on
  /// top of `base`, warn-and-keep on malformed values (serve config idiom).
  static HealthConfig from_env();
  static HealthConfig from_env(HealthConfig base);
};

// ---------------------------------------------------------------- tick ring

/// Power-of-two latency histogram: bucket b holds total_us in [2^(b-1), 2^b).
/// Coarser than obs::Histogram on purpose — 40 * u32 per cell keeps the ring
/// copy cheap; quantiles interpolate inside the bucket (±2x resolution is
/// plenty for verdict thresholds, exact tails live in gp.serve histograms).
inline constexpr std::size_t kLatencyBuckets = 40;
std::size_t latency_bucket(std::uint64_t us);

/// Per-cell model-version mix slots (a tick rarely sees more than two
/// versions mid-hot-swap; overflow versions fold into the last slot).
inline constexpr std::size_t kVersionSlots = 4;
struct VersionCount {
  std::uint64_t version = 0;
  std::uint64_t count = 0;
};

/// One closed serve tick's worth of health facts. Plain fields: the open
/// cell is pump-thread single-writer; closed cells are immutable ring slots.
struct TickCell {
  std::uint64_t tick = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t frames_admitted = 0;
  std::uint64_t frames_rejected = 0;
  std::uint64_t stale_sheds = 0;
  std::uint64_t fault_drops = 0;
  std::uint64_t results = 0;
  std::uint64_t abstained = 0;
  std::uint64_t quality_rejected = 0;
  std::uint64_t no_model = 0;
  std::uint64_t batches = 0;
  std::uint64_t batch_segments = 0;
  std::array<std::uint32_t, kLatencyBuckets> lat{};
  std::array<VersionCount, kVersionSlots> versions{};
  bool has_exemplar = false;
  RequestSample exemplar;  ///< worst total_us seen this tick

  void clear();
};

/// Sums of TickCell counts over a window, maintained incrementally for the
/// SLO window (add the new cell, subtract the one that left) and rebuilt by
/// scan for the wall-clock snapshot windows.
struct WindowAgg {
  std::uint64_t ticks = 0;
  std::uint64_t frames_admitted = 0;
  std::uint64_t frames_rejected = 0;
  std::uint64_t stale_sheds = 0;
  std::uint64_t fault_drops = 0;
  std::uint64_t results = 0;
  std::uint64_t abstained = 0;
  std::uint64_t quality_rejected = 0;
  std::uint64_t no_model = 0;
  std::uint64_t batches = 0;
  std::uint64_t batch_segments = 0;
  std::array<std::uint64_t, kLatencyBuckets> lat{};

  void add(const TickCell& cell);
  void sub(const TickCell& cell);
  /// Interpolated quantile (q in [0,1]) over the power-of-two buckets, µs.
  double quantile_us(double q) const;
  /// The SLI a SloClause bounds (rates are 0 on a zero denominator).
  double sli(SliMetric m, std::uint64_t batch_max) const;
};

// ---------------------------------------------------------------- snapshot

struct WindowStats {
  std::string label;  ///< "slo" | "1s" | "10s" | "60s"
  std::uint64_t ticks = 0;
  std::uint64_t frames_admitted = 0;
  std::uint64_t frames_rejected = 0;
  std::uint64_t stale_sheds = 0;
  std::uint64_t fault_drops = 0;
  std::uint64_t results = 0;
  std::uint64_t abstained = 0;
  std::uint64_t quality_rejected = 0;
  std::uint64_t no_model = 0;
  std::uint64_t batches = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double shed_rate = 0.0;
  double abstain_rate = 0.0;
  double quality_reject_rate = 0.0;
  double no_model_rate = 0.0;
  double fault_rate = 0.0;
  double batch_occupancy = 0.0;
  std::vector<VersionCount> version_mix;  ///< sorted by version
};

struct ExemplarRecord {
  RequestSample sample;
  std::uint64_t tick = 0;
  std::uint64_t end_ns = 0;  ///< close time of the tick that captured it
};

struct HealthSnapshot {
  bool enabled = false;
  std::uint64_t ticks_closed = 0;
  bool has_slo = false;
  std::string slo_spec;
  Verdict verdict = Verdict::kHealthy;
  std::uint64_t breach_streak = 0;
  std::uint64_t ok_streak = 0;
  std::uint64_t verdict_flips = 0;
  std::uint64_t breaches_total = 0;
  WindowStats slo_window;          ///< the SLO tick window (or last 256 ticks)
  std::vector<WindowStats> wall_windows;  ///< 1s / 10s / 60s
  bool has_exemplar = false;
  ExemplarRecord exemplar;  ///< worst request in the SLO window
  std::uint64_t flightrec_events = 0;

  /// {"health": {...}} — parse it back with gp::obs::json.
  std::string to_json(int indent = 0) const;
};

// ----------------------------------------------------------------- monitor

class HealthMonitor {
 public:
  /// `batch_max` feeds the batch-occupancy SLI. All rings preallocate here.
  HealthMonitor(const HealthConfig& config, std::uint64_t batch_max);

  bool enabled() const { return config_.enabled; }
  const HealthConfig& config() const { return config_; }

  // Any-thread producers (single relaxed fetch_add when enabled).
  void on_frame_admitted() { bump(admitted_pending_); }
  void on_frame_rejected() { bump(rejected_pending_); }
  void on_stale_shed(std::uint64_t n) { bump(stale_pending_, n); }
  void on_fault_drop() { bump(fault_pending_); }

  // Pump-thread recorders.
  void record_request(const RequestSample& sample, bool abstained, bool quality_rejected,
                      bool no_model, std::uint64_t model_version);
  void record_batch(std::uint64_t segments, std::uint64_t model_version);
  /// Folds the open cell into the ring, advances the SLO window, evaluates
  /// the verdict, and publishes gp.health.* metrics. Allocation-free.
  void close_tick(std::uint64_t tick);

  // Off the tick path.
  HealthSnapshot snapshot() const;
  /// Chrome-trace JSON of the exemplar ring: per exemplar, one "X" event per
  /// stage laid end-to-end (synthetic timeline anchored at the capturing
  /// tick's close), named "req.<stage>", tid = session id.
  std::string exemplar_trace_json() const;

  std::uint64_t ticks_closed() const { return closed_; }
  Verdict verdict() const { return tracker_.verdict(); }
  std::uint64_t verdict_flips() const { return tracker_.flips(); }

  static constexpr std::size_t kExemplarRing = 32;

 private:
  void bump(std::atomic<std::uint64_t>& slot, std::uint64_t n = 1) {
    if (config_.enabled) slot.fetch_add(n, std::memory_order_relaxed);
  }
  WindowStats window_stats_from(const WindowAgg& agg, const char* label,
                                const std::vector<VersionCount>& mix) const;

  HealthConfig config_;
  std::uint64_t batch_max_;
  SloSpec effective_slo_;  ///< config_.slo or a default window for SLI-only mode
  VerdictTracker tracker_;

  std::vector<TickCell> ring_;
  std::uint64_t closed_ = 0;
  TickCell open_;
  WindowAgg agg_;  ///< rolling sums over the last effective_slo_.window_ticks
  std::uint64_t breaches_total_ = 0;

  std::array<ExemplarRecord, kExemplarRing> exemplars_{};
  std::uint64_t exemplar_count_ = 0;

  std::atomic<std::uint64_t> admitted_pending_{0};
  std::atomic<std::uint64_t> rejected_pending_{0};
  std::atomic<std::uint64_t> stale_pending_{0};
  std::atomic<std::uint64_t> fault_pending_{0};

  obs::Counter* ticks_counter_;
  obs::Counter* requests_counter_;
  obs::Counter* breaches_counter_;
  obs::Counter* flips_counter_;
  obs::Gauge* verdict_gauge_;
  obs::Gauge* p99_gauge_;
  obs::Gauge* shed_gauge_;
};

}  // namespace gp::health
