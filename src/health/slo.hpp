// Declarative SLO specs for the serving health monitor (DESIGN.md §10).
//
// A spec is a comma-separated list of clauses plus options, e.g.
//
//   GP_SLO="p99_ms<5,shed_rate<0.05,window=256t,degraded_after=3"
//
// Clauses bound an SLI computed over the rolling tick window (`<` means the
// value must stay below the threshold, `>` that it must stay above); an
// evaluation *breaches* when any clause is violated. Options tune the window
// length (ticks only: `window=<N>t` — wall-clock windows live in the SLI
// snapshot, the SLO itself is evaluated on the deterministic tick ring) and
// the hysteresis streaks: `degraded_after` consecutive breaching evaluations
// flip healthy→degraded, `unhealthy_after` flip degraded→unhealthy, and
// `healthy_after` consecutive clean evaluations recover to healthy from
// either state. parse() throws gp::InvalidArgument on malformed input (the
// GP_SLO env path warns and keeps the fallback instead — see
// HealthConfig::from_env).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gp::health {

/// Tri-state health verdict with hysteresis (§10). Order matters: higher is
/// worse, and the numeric value is exported through the gp.health.verdict
/// gauge.
enum class Verdict { kHealthy = 0, kDegraded = 1, kUnhealthy = 2 };
const char* verdict_name(Verdict v);

/// The SLIs a clause may bound. Latency quantiles are in milliseconds over
/// the window's per-request end-to-end latencies; rates are in [0,1].
enum class SliMetric {
  kP50Ms = 0,
  kP95Ms,
  kP99Ms,
  kShedRate,          ///< (queue-full rejects + stale sheds) / frames offered
  kAbstainRate,       ///< abstained results / results
  kQualityRejectRate, ///< quality-rejected results / results
  kNoModelRate,       ///< no-model refusals / results
  kFaultRate,         ///< injector-dropped frames / frames accepted
  kBatchOccupancy,    ///< segments / (batches * batch_max)
};
inline constexpr std::size_t kSliMetricCount = 9;
const char* sli_metric_name(SliMetric m);

struct SloClause {
  SliMetric metric = SliMetric::kP99Ms;
  bool upper_bound = true;  ///< true: breach when value >= threshold ('<')
  double threshold = 0.0;
};

struct SloSpec {
  std::vector<SloClause> clauses;
  std::uint64_t window_ticks = 256;   ///< evaluation window (tick ring cells)
  std::uint64_t degraded_after = 3;   ///< breach streak: healthy → degraded
  std::uint64_t unhealthy_after = 10; ///< breach streak: degraded → unhealthy
  std::uint64_t healthy_after = 3;    ///< clean streak: back to healthy

  /// Parses the spec grammar above; throws gp::InvalidArgument with the
  /// offending token on malformed input. An empty spec is invalid.
  static SloSpec parse(std::string_view text);

  /// Canonical round-trippable form (parse(to_string()) == *this).
  std::string to_string() const;
};

/// The hysteresis state machine: feed one evaluation outcome per tick,
/// read the verdict. Pure and allocation-free — drive it from tests
/// directly or through HealthMonitor.
class VerdictTracker {
 public:
  explicit VerdictTracker(const SloSpec& spec) : spec_(&spec) {}

  /// Returns true when the verdict flipped on this evaluation.
  bool evaluate(bool breached);

  Verdict verdict() const { return verdict_; }
  std::uint64_t breach_streak() const { return breach_streak_; }
  std::uint64_t ok_streak() const { return ok_streak_; }
  std::uint64_t flips() const { return flips_; }

 private:
  const SloSpec* spec_;
  Verdict verdict_ = Verdict::kHealthy;
  std::uint64_t breach_streak_ = 0;
  std::uint64_t ok_streak_ = 0;
  std::uint64_t flips_ = 0;
};

}  // namespace gp::health
