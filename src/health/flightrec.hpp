// Flight recorder: a fixed-capacity lock-free ring of structured serving
// events — the last seconds of what the server was doing, preserved for
// post-mortems (DESIGN.md §10).
//
// Producers (admission threads, shard-drain workers, the pump thread, the
// model registry) record events with one relaxed fetch_add on the cursor
// plus relaxed stores into the claimed slot; there are no locks, no
// allocation after construction, and recording is TSan-clean. The ring
// overwrites oldest-first, so a dump always holds the newest `capacity()`
// events in (approximately) chronological order — under a wrap race a slot
// can be torn, which the dump tolerates (best effort by design: this is a
// crash artifact, not an audit log).
//
// Dumps: dump_json() for the on-demand path (Server tests, gpctl top), and
// dump_with_sink() — snprintf + caller-supplied write callback, no
// allocation, no locks — which install_crash_dump() wires to SIGABRT/SIGSEGV
// so an aborting process still leaves TRACE_flightrec.json behind.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace gp::health {

/// Event taxonomy (§10). `a`/`b`/`c` are kind-specific payload words,
/// documented per kind below. The recorder logs *anomalies and transitions*
/// — rejects, sheds, drops, completions, swaps, verdict flips — never the
/// per-frame happy path (a record per admitted frame would both flood the
/// ring with noise and put ~60 ns on the admission hot path).
enum class EventKind : std::uint64_t {
  kAdmissionReject = 0,  ///< a=session_id (queue full)
  kStaleShed,           ///< a=shard, b=frames shed
  kFaultDrop,           ///< a=session_id (injector swallowed a frame)
  kSegmentCompleted,    ///< a=session_id, b=ordinal, c=request_id
  kBatchFlush,          ///< a=batch size, b=model version
  kHotSwap,             ///< a=new version
  kPublishFail,         ///< a=0 (load/verify failure; old model keeps serving)
  kVerdictFlip,         ///< a=old verdict, b=new verdict, c=tick streak
  kWorkerEvicted,       ///< a=worker slot, b=pid, c=eviction reason (§12)
  kSessionMigrated,     ///< a=session_id, b=from slot, c=to slot (§12)
  kMark,                ///< a/b/c caller-defined (tests, tooling)
};
const char* event_kind_name(EventKind kind);

struct FlightEvent {
  std::uint64_t ns = 0;    ///< monotonic_ns at record time
  std::uint64_t tick = 0;  ///< server tick (0 when recorded off the pump path)
  EventKind kind = EventKind::kMark;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

class FlightRecorder {
 public:
  /// The process-wide recorder every serve-stack site records into. The ring
  /// is allocated on first use — Server's constructor touches it so steady
  /// ticks never pay the construction.
  static FlightRecorder& global();

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  /// One relaxed fetch_add + six relaxed stores; disabled → one branch.
  void record(EventKind kind, std::uint64_t tick, std::uint64_t a = 0, std::uint64_t b = 0,
              std::uint64_t c = 0);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }

  std::size_t capacity() const { return slots_.size(); }
  /// Events ever recorded (monotonic; events beyond capacity were overwritten).
  std::uint64_t total() const { return cursor_.load(std::memory_order_relaxed); }

  /// Oldest-to-newest copy of the live ring contents.
  std::vector<FlightEvent> snapshot() const;

  /// {"flight_recorder": {"capacity", "total", "events": [...]}} — parse it
  /// back with gp::obs::json.
  void dump_json(std::ostream& out) const;
  /// dump_json to `path` (creates parent directories); returns the path.
  std::string dump_to_file(const std::string& path) const;

  /// Allocation- and lock-free dump through a caller-supplied sink: the
  /// async-signal-safe core the crash handler uses (sink = write(2)).
  using Sink = void (*)(void* ctx, const char* data, std::size_t len);
  void dump_with_sink(Sink sink, void* ctx) const;

  /// Drops all recorded events (tests / before a fresh measured region).
  void clear();

  static constexpr std::size_t kDefaultCapacity = 4096;

 private:
  struct Slot {
    std::atomic<std::uint64_t> ns{0};
    std::atomic<std::uint64_t> tick{0};
    std::atomic<std::uint64_t> kind{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    std::atomic<std::uint64_t> c{0};
    std::atomic<std::uint64_t> seq{0};  ///< 1-based record index; 0 = empty
  };
  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> cursor_{0};
  std::atomic<bool> enabled_{true};
};

/// Installs SIGABRT/SIGSEGV handlers (once; later calls only update the
/// path) that dump the global recorder to `path` best-effort and re-raise.
/// The handler itself allocates nothing and takes no locks.
void install_crash_dump(const std::string& path);

}  // namespace gp::health
