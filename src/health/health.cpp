#include "health/health.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "health/flightrec.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace gp::health {

namespace {

constexpr std::uint64_t kNsPerUs = 1000;

/// Wall-clock snapshot windows (label, horizon). The SLO itself never uses
/// these — it runs on the deterministic tick window (slo.hpp).
struct WallWindow {
  const char* label;
  std::uint64_t horizon_ns;
};
constexpr WallWindow kWallWindows[] = {
    {"1s", 1'000'000'000ULL},
    {"10s", 10'000'000'000ULL},
    {"60s", 60'000'000'000ULL},
};

std::uint64_t env_u64(const char* name, std::uint64_t fallback, std::uint64_t min_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0' || parsed < min_value) {
    log_warn() << "ignoring invalid " << name << "='" << v << "' (want an integer >= "
               << min_value << ")";
    return fallback;
  }
  return static_cast<std::uint64_t>(parsed);
}

bool env_is_off(const char* value) {
  return value != nullptr &&
         (std::string_view(value) == "off" || std::string_view(value) == "0");
}

void merge_version(std::vector<VersionCount>& mix, std::uint64_t version, std::uint64_t count) {
  for (VersionCount& vc : mix) {
    if (vc.version == version) {
      vc.count += count;
      return;
    }
  }
  mix.push_back({version, count});
}

double rate(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

// ------------------------------------------------------------------ stages

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kAdmissionWait: return "admission_wait";
    case Stage::kQueueWait: return "queue_wait";
    case Stage::kBatchWait: return "batch_wait";
    case Stage::kForward: return "forward";
    case Stage::kEpilogue: return "epilogue";
  }
  return "?";
}

Stage RequestSample::slowest_stage() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < kStageCount; ++i) {
    if (stage_us[i] > stage_us[best]) best = i;
  }
  return static_cast<Stage>(best);
}

// ------------------------------------------------------------------ config

HealthConfig HealthConfig::from_env() { return from_env(HealthConfig{}); }

HealthConfig HealthConfig::from_env(HealthConfig base) {
  if (env_is_off(std::getenv("GP_HEALTH"))) base.enabled = false;
  base.window_ticks = env_u64("GP_HEALTH_WINDOW_TICKS", base.window_ticks, 2);
  if (const char* spec = std::getenv("GP_SLO"); spec != nullptr && *spec != '\0') {
    try {
      base.slo = SloSpec::parse(spec);
    } catch (const InvalidArgument& e) {
      log_warn() << "ignoring GP_SLO: " << e.what();
    }
  }
  if (const char* rec = std::getenv("GP_FLIGHTREC"); rec != nullptr && *rec != '\0') {
    if (env_is_off(rec)) {
      base.flightrec = false;
      base.flightrec_path.clear();
    } else {
      base.flightrec = true;
      base.flightrec_path = rec;
    }
  }
  return base;
}

// ---------------------------------------------------------------- tick ring

std::size_t latency_bucket(std::uint64_t us) {
  return std::min<std::size_t>(kLatencyBuckets - 1,
                               static_cast<std::size_t>(std::bit_width(us)));
}

void TickCell::clear() {
  *this = TickCell{};
}

void WindowAgg::add(const TickCell& cell) {
  ++ticks;
  frames_admitted += cell.frames_admitted;
  frames_rejected += cell.frames_rejected;
  stale_sheds += cell.stale_sheds;
  fault_drops += cell.fault_drops;
  results += cell.results;
  abstained += cell.abstained;
  quality_rejected += cell.quality_rejected;
  no_model += cell.no_model;
  batches += cell.batches;
  batch_segments += cell.batch_segments;
  for (std::size_t b = 0; b < kLatencyBuckets; ++b) lat[b] += cell.lat[b];
}

void WindowAgg::sub(const TickCell& cell) {
  --ticks;
  frames_admitted -= cell.frames_admitted;
  frames_rejected -= cell.frames_rejected;
  stale_sheds -= cell.stale_sheds;
  fault_drops -= cell.fault_drops;
  results -= cell.results;
  abstained -= cell.abstained;
  quality_rejected -= cell.quality_rejected;
  no_model -= cell.no_model;
  batches -= cell.batches;
  batch_segments -= cell.batch_segments;
  for (std::size_t b = 0; b < kLatencyBuckets; ++b) lat[b] -= cell.lat[b];
}

double WindowAgg::quantile_us(double q) const {
  std::uint64_t count = 0;
  for (std::uint64_t n : lat) count += n;
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kLatencyBuckets; ++b) {
    if (lat[b] == 0) continue;
    const std::uint64_t next = seen + lat[b];
    if (static_cast<double>(next) >= target) {
      // Interpolate linearly inside [2^(b-1), 2^b) by rank position.
      const double lower = b == 0 ? 0.0 : static_cast<double>(1ULL << (b - 1));
      const double upper = static_cast<double>(1ULL << b);
      const double frac = lat[b] == 0
                              ? 0.0
                              : (target - static_cast<double>(seen)) /
                                    static_cast<double>(lat[b]);
      return lower + std::clamp(frac, 0.0, 1.0) * (upper - lower);
    }
    seen = next;
  }
  return static_cast<double>(1ULL << (kLatencyBuckets - 1));
}

double WindowAgg::sli(SliMetric m, std::uint64_t batch_max) const {
  switch (m) {
    case SliMetric::kP50Ms: return quantile_us(0.5) / 1000.0;
    case SliMetric::kP95Ms: return quantile_us(0.95) / 1000.0;
    case SliMetric::kP99Ms: return quantile_us(0.99) / 1000.0;
    case SliMetric::kShedRate:
      return rate(frames_rejected + stale_sheds, frames_admitted + frames_rejected);
    case SliMetric::kAbstainRate: return rate(abstained, results);
    case SliMetric::kQualityRejectRate: return rate(quality_rejected, results);
    case SliMetric::kNoModelRate: return rate(no_model, results);
    case SliMetric::kFaultRate: return rate(fault_drops, frames_admitted);
    case SliMetric::kBatchOccupancy: return rate(batch_segments, batches * batch_max);
  }
  return 0.0;
}

// ----------------------------------------------------------------- monitor

HealthMonitor::HealthMonitor(const HealthConfig& config, std::uint64_t batch_max)
    : config_(config),
      batch_max_(batch_max == 0 ? 1 : batch_max),
      effective_slo_(config.slo.value_or(SloSpec{})),
      tracker_(effective_slo_),
      ticks_counter_(&obs::counter("gp.health.ticks")),
      requests_counter_(&obs::counter("gp.health.requests")),
      breaches_counter_(&obs::counter("gp.health.slo.breaches")),
      flips_counter_(&obs::counter("gp.health.verdict.flips")),
      verdict_gauge_(&obs::gauge("gp.health.verdict")),
      p99_gauge_(&obs::gauge("gp.health.p99_us")),
      shed_gauge_(&obs::gauge("gp.health.shed_rate")) {
  // Ring must out-live the rolling window by one cell so the evicted cell is
  // still readable when it is subtracted from the aggregate.
  const std::uint64_t cap =
      std::max<std::uint64_t>(config_.window_ticks, effective_slo_.window_ticks + 1);
  ring_.resize(static_cast<std::size_t>(cap));
  FlightRecorder::global().set_enabled(config_.flightrec && config_.enabled);
  if (config_.enabled && !config_.flightrec_path.empty()) {
    install_crash_dump(config_.flightrec_path);
  }
}

void HealthMonitor::record_request(const RequestSample& sample, bool abstained,
                                   bool quality_rejected, bool no_model,
                                   std::uint64_t model_version) {
  if (!config_.enabled) return;
  RequestSample s = sample;
  if (config_.debug_slow_stage >= 0 &&
      config_.debug_slow_stage < static_cast<int>(kStageCount) && config_.debug_slow_us > 0) {
    // Telemetry-only spike: inflates the recorded breakdown, never results.
    s.stage_us[static_cast<std::size_t>(config_.debug_slow_stage)] += config_.debug_slow_us;
    s.total_us += config_.debug_slow_us;
  }
  ++open_.results;
  open_.abstained += abstained ? 1 : 0;
  open_.quality_rejected += quality_rejected ? 1 : 0;
  open_.no_model += no_model ? 1 : 0;
  ++open_.lat[latency_bucket(s.total_us)];
  for (VersionCount& vc : open_.versions) {
    if (vc.count == 0 || vc.version == model_version) {
      vc.version = model_version;
      ++vc.count;
      break;
    }
    if (&vc == &open_.versions.back()) ++vc.count;  // overflow folds into last slot
  }
  if (!open_.has_exemplar || s.total_us > open_.exemplar.total_us) {
    open_.has_exemplar = true;
    open_.exemplar = s;
  }
}

void HealthMonitor::record_batch(std::uint64_t segments, std::uint64_t model_version) {
  if (!config_.enabled) return;
  ++open_.batches;
  open_.batch_segments += segments;
  FlightRecorder::global().record(EventKind::kBatchFlush, open_.tick, segments, model_version);
}

void HealthMonitor::close_tick(std::uint64_t tick) {
  if (!config_.enabled) return;
  open_.tick = tick;
  open_.end_ns = monotonic_ns();
  open_.frames_admitted += admitted_pending_.exchange(0, std::memory_order_relaxed);
  open_.frames_rejected += rejected_pending_.exchange(0, std::memory_order_relaxed);
  open_.stale_sheds += stale_pending_.exchange(0, std::memory_order_relaxed);
  open_.fault_drops += fault_pending_.exchange(0, std::memory_order_relaxed);

  const std::uint64_t cap = ring_.size();
  ring_[static_cast<std::size_t>(closed_ % cap)] = open_;
  agg_.add(open_);
  const std::uint64_t window = effective_slo_.window_ticks;
  if (closed_ >= window) {
    agg_.sub(ring_[static_cast<std::size_t>((closed_ - window) % cap)]);
  }

  if (config_.slo.has_value()) {
    bool breached = false;
    for (const SloClause& clause : effective_slo_.clauses) {
      const double value = agg_.sli(clause.metric, batch_max_);
      const bool violated = clause.upper_bound ? value >= clause.threshold
                                               : value <= clause.threshold;
      breached = breached || violated;
    }
    if (breached) {
      ++breaches_total_;
      breaches_counter_->add(1);
    }
    const Verdict before = tracker_.verdict();
    if (tracker_.evaluate(breached)) {
      flips_counter_->add(1);
      FlightRecorder::global().record(EventKind::kVerdictFlip, tick,
                                      static_cast<std::uint64_t>(before),
                                      static_cast<std::uint64_t>(tracker_.verdict()),
                                      tracker_.flips());
    }
  }

  if (open_.has_exemplar) {
    ExemplarRecord& slot = exemplars_[static_cast<std::size_t>(exemplar_count_ % kExemplarRing)];
    slot.sample = open_.exemplar;
    slot.tick = tick;
    slot.end_ns = open_.end_ns;
    ++exemplar_count_;
  }

  ticks_counter_->add(1);
  requests_counter_->add(open_.results);
  verdict_gauge_->set(static_cast<double>(tracker_.verdict()));
  p99_gauge_->set(agg_.quantile_us(0.99));
  shed_gauge_->set(agg_.sli(SliMetric::kShedRate, batch_max_));

  ++closed_;
  open_.clear();
}

WindowStats HealthMonitor::window_stats_from(const WindowAgg& agg, const char* label,
                                             const std::vector<VersionCount>& mix) const {
  WindowStats w;
  w.label = label;
  w.ticks = agg.ticks;
  w.frames_admitted = agg.frames_admitted;
  w.frames_rejected = agg.frames_rejected;
  w.stale_sheds = agg.stale_sheds;
  w.fault_drops = agg.fault_drops;
  w.results = agg.results;
  w.abstained = agg.abstained;
  w.quality_rejected = agg.quality_rejected;
  w.no_model = agg.no_model;
  w.batches = agg.batches;
  w.p50_ms = agg.sli(SliMetric::kP50Ms, batch_max_);
  w.p95_ms = agg.sli(SliMetric::kP95Ms, batch_max_);
  w.p99_ms = agg.sli(SliMetric::kP99Ms, batch_max_);
  w.shed_rate = agg.sli(SliMetric::kShedRate, batch_max_);
  w.abstain_rate = agg.sli(SliMetric::kAbstainRate, batch_max_);
  w.quality_reject_rate = agg.sli(SliMetric::kQualityRejectRate, batch_max_);
  w.no_model_rate = agg.sli(SliMetric::kNoModelRate, batch_max_);
  w.fault_rate = agg.sli(SliMetric::kFaultRate, batch_max_);
  w.batch_occupancy = agg.sli(SliMetric::kBatchOccupancy, batch_max_);
  w.version_mix = mix;
  std::sort(w.version_mix.begin(), w.version_mix.end(),
            [](const VersionCount& a, const VersionCount& b) { return a.version < b.version; });
  return w;
}

HealthSnapshot HealthMonitor::snapshot() const {
  HealthSnapshot snap;
  snap.enabled = config_.enabled;
  snap.ticks_closed = closed_;
  snap.has_slo = config_.slo.has_value();
  if (snap.has_slo) snap.slo_spec = effective_slo_.to_string();
  snap.verdict = tracker_.verdict();
  snap.breach_streak = tracker_.breach_streak();
  snap.ok_streak = tracker_.ok_streak();
  snap.verdict_flips = tracker_.flips();
  snap.breaches_total = breaches_total_;
  snap.flightrec_events = FlightRecorder::global().total();

  const std::uint64_t cap = ring_.size();
  const std::uint64_t live = std::min(closed_, cap);

  // SLO window: reuse the incremental aggregate; version mix + exemplar by
  // scanning the window's cells.
  {
    std::vector<VersionCount> mix;
    const std::uint64_t window = std::min(effective_slo_.window_ticks, closed_);
    for (std::uint64_t i = closed_ - window; i < closed_; ++i) {
      const TickCell& cell = ring_[static_cast<std::size_t>(i % cap)];
      for (const VersionCount& vc : cell.versions) {
        if (vc.count > 0) merge_version(mix, vc.version, vc.count);
      }
      if (cell.has_exemplar &&
          (!snap.has_exemplar || cell.exemplar.total_us > snap.exemplar.sample.total_us)) {
        // Sampling rule (§10): the slowest request in the window is kept as
        // the upper-bound exemplar for the window's p99.
        snap.has_exemplar = true;
        snap.exemplar.sample = cell.exemplar;
        snap.exemplar.tick = cell.tick;
        snap.exemplar.end_ns = cell.end_ns;
      }
    }
    snap.slo_window = window_stats_from(agg_, "slo", mix);
  }

  // Wall-clock windows: rebuilt by scan over cells young enough.
  const std::uint64_t now = monotonic_ns();
  for (const WallWindow& ww : kWallWindows) {
    WindowAgg agg;
    std::vector<VersionCount> mix;
    const std::uint64_t cutoff = now > ww.horizon_ns ? now - ww.horizon_ns : 0;
    for (std::uint64_t i = closed_ - live; i < closed_; ++i) {
      const TickCell& cell = ring_[static_cast<std::size_t>(i % cap)];
      if (cell.end_ns < cutoff) continue;
      agg.add(cell);
      for (const VersionCount& vc : cell.versions) {
        if (vc.count > 0) merge_version(mix, vc.version, vc.count);
      }
    }
    snap.wall_windows.push_back(window_stats_from(agg, ww.label, mix));
  }
  return snap;
}

std::string HealthMonitor::exemplar_trace_json() const {
  std::ostringstream out;
  out << "{\"traceEvents\": [\n";
  out << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
         "\"args\": {\"name\": \"gestureprint.health.exemplars\"}}";
  const std::uint64_t live = std::min<std::uint64_t>(exemplar_count_, kExemplarRing);
  for (std::uint64_t i = exemplar_count_ - live; i < exemplar_count_; ++i) {
    const ExemplarRecord& rec = exemplars_[static_cast<std::size_t>(i % kExemplarRing)];
    // Synthetic timeline: stages laid end-to-end, anchored so the request
    // finishes at the close of the tick that captured it.
    const std::uint64_t total_ns = rec.sample.total_us * kNsPerUs;
    std::uint64_t cursor_ns = rec.end_ns > total_ns ? rec.end_ns - total_ns : 0;
    for (std::size_t s = 0; s < kStageCount; ++s) {
      const std::uint64_t dur_ns = rec.sample.stage_us[s] * kNsPerUs;
      out << ",\n  {\"name\": \"req." << stage_name(static_cast<Stage>(s))
          << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << rec.sample.session_id
          << ", \"ts\": " << cursor_ns / kNsPerUs << ", \"dur\": " << dur_ns / kNsPerUs
          << ", \"args\": {\"request_id\": " << rec.sample.request_id
          << ", \"ordinal\": " << rec.sample.ordinal << ", \"tick\": " << rec.tick << "}}";
      cursor_ns += dur_ns;
    }
  }
  out << "\n]}\n";
  return out.str();
}

// ---------------------------------------------------------------- snapshot

namespace {

void window_json(std::ostream& out, const WindowStats& w, const std::string& pad) {
  namespace json = obs::json;
  out << pad << "{\"window\": \"" << json::escape(w.label) << "\", \"ticks\": " << w.ticks
      << ", \"frames_admitted\": " << w.frames_admitted
      << ", \"frames_rejected\": " << w.frames_rejected
      << ", \"stale_sheds\": " << w.stale_sheds << ", \"fault_drops\": " << w.fault_drops
      << ", \"results\": " << w.results << ", \"abstained\": " << w.abstained
      << ", \"quality_rejected\": " << w.quality_rejected << ", \"no_model\": " << w.no_model
      << ", \"batches\": " << w.batches << ",\n" << pad
      << " \"p50_ms\": " << json::number(w.p50_ms) << ", \"p95_ms\": " << json::number(w.p95_ms)
      << ", \"p99_ms\": " << json::number(w.p99_ms)
      << ", \"shed_rate\": " << json::number(w.shed_rate)
      << ", \"abstain_rate\": " << json::number(w.abstain_rate)
      << ", \"quality_reject_rate\": " << json::number(w.quality_reject_rate)
      << ", \"no_model_rate\": " << json::number(w.no_model_rate)
      << ", \"fault_rate\": " << json::number(w.fault_rate)
      << ", \"batch_occupancy\": " << json::number(w.batch_occupancy)
      << ", \"version_mix\": [";
  for (std::size_t i = 0; i < w.version_mix.size(); ++i) {
    out << (i ? ", " : "") << "{\"version\": " << w.version_mix[i].version
        << ", \"count\": " << w.version_mix[i].count << "}";
  }
  out << "]}";
}

}  // namespace

std::string HealthSnapshot::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::ostringstream out;
  out << pad << "{\"health\": {\n";
  out << pad << "  \"enabled\": " << (enabled ? "true" : "false")
      << ", \"ticks_closed\": " << ticks_closed << ",\n";
  out << pad << "  \"slo\": {\"present\": " << (has_slo ? "true" : "false") << ", \"spec\": \""
      << obs::json::escape(slo_spec) << "\", \"verdict\": \"" << verdict_name(verdict)
      << "\", \"breach_streak\": " << breach_streak << ", \"ok_streak\": " << ok_streak
      << ", \"verdict_flips\": " << verdict_flips << ", \"breaches_total\": " << breaches_total
      << "},\n";
  out << pad << "  \"windows\": [\n";
  window_json(out, slo_window, pad + "    ");
  for (const WindowStats& w : wall_windows) {
    out << ",\n";
    window_json(out, w, pad + "    ");
  }
  out << "\n" << pad << "  ],\n";
  out << pad << "  \"exemplar\": {\"present\": " << (has_exemplar ? "true" : "false");
  if (has_exemplar) {
    out << ", \"request_id\": " << exemplar.sample.request_id
        << ", \"session\": " << exemplar.sample.session_id
        << ", \"ordinal\": " << exemplar.sample.ordinal << ", \"tick\": " << exemplar.tick
        << ", \"total_us\": " << exemplar.sample.total_us << ", \"slowest_stage\": \""
        << stage_name(exemplar.sample.slowest_stage()) << "\", \"stages\": {";
    for (std::size_t s = 0; s < kStageCount; ++s) {
      out << (s ? ", " : "") << "\"" << stage_name(static_cast<Stage>(s))
          << "_us\": " << exemplar.sample.stage_us[s];
    }
    out << "}";
  }
  out << "},\n";
  out << pad << "  \"flightrec_events\": " << flightrec_events << "\n";
  out << pad << "}}";
  return out.str();
}

}  // namespace gp::health
