#include "health/flightrec.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <ostream>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"

namespace gp::health {

namespace {

// Crash-dump plumbing. The handler runs under SIGABRT/SIGSEGV, so everything
// it touches must be async-signal-safe: a fixed path buffer filled in ahead
// of time, open/write/close, and the allocation-free dump_with_sink core.
char g_crash_path[512] = {0};
std::atomic<bool> g_handlers_installed{false};

void fd_sink(void* ctx, const char* data, std::size_t len) {
  const int fd = *static_cast<const int*>(ctx);
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n <= 0) return;  // best effort: never loop forever inside a handler
    off += static_cast<std::size_t>(n);
  }
}

void crash_handler(int sig) {
  if (g_crash_path[0] != '\0') {
    int fd = ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      FlightRecorder::global().dump_with_sink(&fd_sink, &fd);
      ::close(fd);
    }
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kAdmissionReject: return "admission_reject";
    case EventKind::kStaleShed: return "stale_shed";
    case EventKind::kFaultDrop: return "fault_drop";
    case EventKind::kSegmentCompleted: return "segment_completed";
    case EventKind::kBatchFlush: return "batch_flush";
    case EventKind::kHotSwap: return "hot_swap";
    case EventKind::kPublishFail: return "publish_fail";
    case EventKind::kVerdictFlip: return "verdict_flip";
    case EventKind::kWorkerEvicted: return "worker_evicted";
    case EventKind::kSessionMigrated: return "session_migrated";
    case EventKind::kMark: return "mark";
  }
  return "?";
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

FlightRecorder::FlightRecorder(std::size_t capacity) : slots_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::record(EventKind kind, std::uint64_t tick, std::uint64_t a, std::uint64_t b,
                            std::uint64_t c) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  const std::uint64_t seq = cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % slots_.size()];
  slot.ns.store(monotonic_ns(), std::memory_order_relaxed);
  slot.tick.store(tick, std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint64_t>(kind), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.c.store(c, std::memory_order_relaxed);
  // Published last so readers can skip half-written slots; relaxed is enough
  // for the best-effort contract documented in the header.
  slot.seq.store(seq + 1, std::memory_order_release);
  GP_COUNTER_ADD("gp.health.flightrec.events", 1);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  const std::uint64_t total = cursor_.load(std::memory_order_relaxed);
  const std::uint64_t cap = slots_.size();
  const std::uint64_t first = total > cap ? total - cap : 0;
  out.reserve(static_cast<std::size_t>(total - first));
  for (std::uint64_t seq = first; seq < total; ++seq) {
    const Slot& slot = slots_[seq % cap];
    if (slot.seq.load(std::memory_order_acquire) != seq + 1) continue;  // torn/overwritten
    FlightEvent ev;
    ev.ns = slot.ns.load(std::memory_order_relaxed);
    ev.tick = slot.tick.load(std::memory_order_relaxed);
    ev.kind = static_cast<EventKind>(slot.kind.load(std::memory_order_relaxed));
    ev.a = slot.a.load(std::memory_order_relaxed);
    ev.b = slot.b.load(std::memory_order_relaxed);
    ev.c = slot.c.load(std::memory_order_relaxed);
    out.push_back(ev);
  }
  return out;
}

void FlightRecorder::dump_with_sink(Sink sink, void* ctx) const {
  char buf[256];
  int n = std::snprintf(buf, sizeof(buf),
                        "{\"flight_recorder\":{\"capacity\":%llu,\"total\":%llu,\"events\":[",
                        static_cast<unsigned long long>(slots_.size()),
                        static_cast<unsigned long long>(cursor_.load(std::memory_order_relaxed)));
  sink(ctx, buf, static_cast<std::size_t>(n));
  const std::uint64_t total = cursor_.load(std::memory_order_relaxed);
  const std::uint64_t cap = slots_.size();
  const std::uint64_t first = total > cap ? total - cap : 0;
  bool first_out = true;
  for (std::uint64_t seq = first; seq < total; ++seq) {
    const Slot& slot = slots_[seq % cap];
    if (slot.seq.load(std::memory_order_acquire) != seq + 1) continue;
    const EventKind kind = static_cast<EventKind>(slot.kind.load(std::memory_order_relaxed));
    n = std::snprintf(
        buf, sizeof(buf),
        "%s{\"ns\":%llu,\"tick\":%llu,\"kind\":\"%s\",\"a\":%llu,\"b\":%llu,\"c\":%llu}",
        first_out ? "" : ",",
        static_cast<unsigned long long>(slot.ns.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(slot.tick.load(std::memory_order_relaxed)),
        event_kind_name(kind),
        static_cast<unsigned long long>(slot.a.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(slot.b.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(slot.c.load(std::memory_order_relaxed)));
    sink(ctx, buf, static_cast<std::size_t>(n));
    first_out = false;
  }
  sink(ctx, "]}}\n", 4);
}

namespace {
void stream_sink(void* ctx, const char* data, std::size_t len) {
  static_cast<std::ostream*>(ctx)->write(data, static_cast<std::streamsize>(len));
}
}  // namespace

void FlightRecorder::dump_json(std::ostream& out) const { dump_with_sink(&stream_sink, &out); }

std::string FlightRecorder::dump_to_file(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw Error("flight recorder: cannot open '" + path + "' for writing");
  dump_json(out);
  return path;
}

void FlightRecorder::clear() {
  for (Slot& slot : slots_) slot.seq.store(0, std::memory_order_relaxed);
  cursor_.store(0, std::memory_order_relaxed);
}

void install_crash_dump(const std::string& path) {
  std::snprintf(g_crash_path, sizeof(g_crash_path), "%s", path.c_str());
  bool expected = false;
  if (g_handlers_installed.compare_exchange_strong(expected, true)) {
    ::signal(SIGABRT, &crash_handler);
    ::signal(SIGSEGV, &crash_handler);
  }
}

}  // namespace gp::health
