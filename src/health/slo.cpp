#include "health/slo.hpp"

#include <array>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"

namespace gp::health {

namespace {

struct MetricName {
  const char* name;
  SliMetric metric;
};

constexpr std::array<MetricName, kSliMetricCount> kMetricNames{{
    {"p50_ms", SliMetric::kP50Ms},
    {"p95_ms", SliMetric::kP95Ms},
    {"p99_ms", SliMetric::kP99Ms},
    {"shed_rate", SliMetric::kShedRate},
    {"abstain_rate", SliMetric::kAbstainRate},
    {"quality_reject_rate", SliMetric::kQualityRejectRate},
    {"no_model_rate", SliMetric::kNoModelRate},
    {"fault_rate", SliMetric::kFaultRate},
    {"batch_occupancy", SliMetric::kBatchOccupancy},
}};

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

SliMetric metric_from_name(std::string_view name, std::string_view token) {
  for (const MetricName& m : kMetricNames) {
    if (name == m.name) return m.metric;
  }
  throw InvalidArgument("GP_SLO: unknown SLI metric '" + std::string(name) + "' in clause '" +
                        std::string(token) + "'");
}

double parse_threshold(std::string_view text, std::string_view token) {
  const std::string s(trim(text));
  if (s.empty()) throw InvalidArgument("GP_SLO: missing threshold in clause '" + std::string(token) + "'");
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || !(v == v)) {
    throw InvalidArgument("GP_SLO: bad threshold '" + s + "' in clause '" + std::string(token) + "'");
  }
  if (v < 0.0) {
    throw InvalidArgument("GP_SLO: threshold must be >= 0 in clause '" + std::string(token) + "'");
  }
  return v;
}

std::uint64_t parse_count(std::string_view text, const char* key) {
  const std::string s(trim(text));
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (s.empty() || end != s.c_str() + s.size() || v == 0) {
    throw InvalidArgument(std::string("GP_SLO: ") + key + " wants a positive integer, got '" + s + "'");
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kHealthy: return "healthy";
    case Verdict::kDegraded: return "degraded";
    case Verdict::kUnhealthy: return "unhealthy";
  }
  return "?";
}

const char* sli_metric_name(SliMetric m) {
  for (const MetricName& entry : kMetricNames) {
    if (entry.metric == m) return entry.name;
  }
  return "?";
}

SloSpec SloSpec::parse(std::string_view text) {
  SloSpec spec;
  std::string_view rest = text;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view token = trim(rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view{} : rest.substr(comma + 1);
    if (token.empty()) continue;

    const std::size_t eq = token.find('=');
    const std::size_t lt = token.find('<');
    const std::size_t gt = token.find('>');
    if (eq != std::string_view::npos && lt == std::string_view::npos &&
        gt == std::string_view::npos) {
      const std::string_view key = trim(token.substr(0, eq));
      const std::string_view value = trim(token.substr(eq + 1));
      if (key == "window") {
        // Tick windows only: the SLO is evaluated on the deterministic
        // per-tick ring, never on wall-clock cells (see header comment).
        if (value.empty() || value.back() != 't') {
          throw InvalidArgument("GP_SLO: window wants '<N>t' (ticks), got '" +
                                std::string(value) + "'");
        }
        spec.window_ticks = parse_count(value.substr(0, value.size() - 1), "window");
      } else if (key == "degraded_after") {
        spec.degraded_after = parse_count(value, "degraded_after");
      } else if (key == "unhealthy_after") {
        spec.unhealthy_after = parse_count(value, "unhealthy_after");
      } else if (key == "healthy_after") {
        spec.healthy_after = parse_count(value, "healthy_after");
      } else {
        throw InvalidArgument("GP_SLO: unknown option '" + std::string(key) + "'");
      }
      continue;
    }

    const bool upper = lt != std::string_view::npos &&
                       (gt == std::string_view::npos || lt < gt);
    const std::size_t op = upper ? lt : gt;
    if (op == std::string_view::npos) {
      throw InvalidArgument("GP_SLO: clause '" + std::string(token) +
                            "' is neither '<metric><op><value>' nor '<key>=<value>'");
    }
    SloClause clause;
    clause.metric = metric_from_name(trim(token.substr(0, op)), token);
    clause.upper_bound = upper;
    clause.threshold = parse_threshold(token.substr(op + 1), token);
    spec.clauses.push_back(clause);
  }
  if (spec.clauses.empty()) {
    throw InvalidArgument("GP_SLO: spec has no clauses: '" + std::string(text) + "'");
  }
  if (spec.unhealthy_after < spec.degraded_after) {
    throw InvalidArgument("GP_SLO: unhealthy_after must be >= degraded_after");
  }
  return spec;
}

std::string SloSpec::to_string() const {
  std::ostringstream out;
  for (const SloClause& c : clauses) {
    out << sli_metric_name(c.metric) << (c.upper_bound ? '<' : '>') << c.threshold << ',';
  }
  out << "window=" << window_ticks << "t,degraded_after=" << degraded_after
      << ",unhealthy_after=" << unhealthy_after << ",healthy_after=" << healthy_after;
  return out.str();
}

bool VerdictTracker::evaluate(bool breached) {
  if (breached) {
    ++breach_streak_;
    ok_streak_ = 0;
  } else {
    ++ok_streak_;
    breach_streak_ = 0;
  }
  Verdict next = verdict_;
  switch (verdict_) {
    case Verdict::kHealthy:
      if (breach_streak_ >= spec_->degraded_after) next = Verdict::kDegraded;
      // A single window can be bad enough to jump straight past degraded.
      if (breach_streak_ >= spec_->unhealthy_after) next = Verdict::kUnhealthy;
      break;
    case Verdict::kDegraded:
      if (breach_streak_ >= spec_->unhealthy_after) next = Verdict::kUnhealthy;
      if (ok_streak_ >= spec_->healthy_after) next = Verdict::kHealthy;
      break;
    case Verdict::kUnhealthy:
      if (ok_streak_ >= spec_->healthy_after) next = Verdict::kHealthy;
      break;
  }
  if (next == verdict_) return false;
  verdict_ = next;
  // The streak that caused the flip has been consumed; restart the count so
  // e.g. degraded → unhealthy needs unhealthy_after *fresh* breaches.
  breach_streak_ = 0;
  ok_streak_ = 0;
  ++flips_;
  return true;
}

}  // namespace gp::health
