#include "nn/fused.hpp"

#include <cmath>

namespace gp::nn {

FusedLinear::FusedLinear(Linear& linear, BatchNorm1d* bn, bool relu) : relu_(relu) {
  const Tensor& w = linear.weight().value;  // (out × in)
  const Tensor& b = linear.bias().value;    // (1 × out)
  const std::size_t out = w.rows();
  const std::size_t in = w.cols();
  if (bn != nullptr) {
    check_arg(bn->running_mean().cols() == out, "FusedLinear: BN width mismatch");
  }

  weight_t_ = Tensor(in, out);
  bias_ = Tensor(1, out);
  for (std::size_t c = 0; c < out; ++c) {
    // Fold in double precision: scale = γ/√(σ²+ε) per output channel, the
    // identity map when no batch-norm follows the linear.
    double scale = 1.0;
    double shift = 0.0;
    if (bn != nullptr) {
      const double inv_std =
          1.0 / std::sqrt(static_cast<double>(bn->running_var().at(0, c)) + bn->eps());
      scale = static_cast<double>(bn->gamma().value.at(0, c)) * inv_std;
      shift = static_cast<double>(bn->beta().value.at(0, c)) -
              static_cast<double>(bn->running_mean().at(0, c)) * scale;
    }
    for (std::size_t k = 0; k < in; ++k) {
      weight_t_.at(k, c) = static_cast<float>(static_cast<double>(w.at(c, k)) * scale);
    }
    bias_.at(0, c) = static_cast<float>(static_cast<double>(b.at(0, c)) * scale + shift);
  }
}

Tensor FusedLinear::forward(const Tensor& input, bool /*training*/) {
  const std::size_t in = weight_t_.rows();
  const std::size_t out = weight_t_.cols();
  check_arg(input.cols() == in, "FusedLinear input width mismatch");

  Tensor result(input.rows(), out);
  const float* bias = bias_.row(0);
  for (std::size_t i = 0; i < input.rows(); ++i) {
    const float* x = input.row(i);
    float* y = result.row(i);
    for (std::size_t j = 0; j < out; ++j) y[j] = bias[j];
    // Outer-product accumulation: broadcast x[k], stream the contiguous
    // transposed weight row into the resident output row. Serial in k per
    // row → bitwise batch-composition-independent per sample.
    for (std::size_t k = 0; k < in; ++k) {
      const float xk = x[k];
      if (xk == 0.0f) continue;  // ReLU-sparse activations skip whole rows
      const float* wrow = weight_t_.row(k);
      for (std::size_t j = 0; j < out; ++j) y[j] += xk * wrow[j];
    }
    if (relu_) {
      for (std::size_t j = 0; j < out; ++j) {
        if (y[j] < 0.0f) y[j] = 0.0f;
      }
    }
  }
  return result;
}

Tensor FusedLinear::backward(const Tensor& /*grad_output*/) {
  throw Error("FusedLinear is inference-only: backward() on a fused model");
}

// ---- Sequential::fuse_inference --------------------------------------------

void Sequential::fuse_inference() {
  std::vector<std::unique_ptr<Layer>> fused;
  fused.reserve(layers_.size());
  std::size_t i = 0;
  while (i < layers_.size()) {
    if (auto* lin = dynamic_cast<Linear*>(layers_[i].get())) {
      std::size_t j = i + 1;
      BatchNorm1d* bn = nullptr;
      if (j < layers_.size()) {
        bn = dynamic_cast<BatchNorm1d*>(layers_[j].get());
        if (bn != nullptr) ++j;
      }
      bool relu = false;
      if (j < layers_.size() && dynamic_cast<ReLU*>(layers_[j].get()) != nullptr) {
        relu = true;
        ++j;
      }
      fused.push_back(std::make_unique<FusedLinear>(*lin, bn, relu));
      i = j;
    } else if (dynamic_cast<Dropout*>(layers_[i].get()) != nullptr) {
      ++i;  // identity at inference; drop it
    } else {
      fused.push_back(std::move(layers_[i]));
      ++i;
    }
  }
  layers_ = std::move(fused);
}

}  // namespace gp::nn
