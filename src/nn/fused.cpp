#include "nn/fused.hpp"

#include <cmath>
#include <cstring>

// VPDPWSSD on 256-bit vectors: via AVX-VNNI (VEX) or AVX512-VNNI+VL (EVEX).
// The scalar fallback below computes bitwise-identical results (exact int32
// arithmetic), so this is purely a speed gate, never a semantics gate.
#if defined(__AVXVNNI__)
#include <immintrin.h>
#define GP_INT8_VNNI 1
#define GP_DPWSSD(acc, x, w) _mm256_dpwssd_avx_epi32((acc), (x), (w))
#elif defined(__AVX512VNNI__) && defined(__AVX512VL__)
#include <immintrin.h>
#define GP_INT8_VNNI 1
#define GP_DPWSSD(acc, x, w) _mm256_dpwssd_epi32((acc), (x), (w))
#endif

namespace gp::nn {

FusedLinear::FusedLinear(Linear& linear, BatchNorm1d* bn, bool relu, QuantMode mode,
                         const QuantLinearTables* preload)
    : relu_(relu), quant_(mode) {
  const Tensor& w = linear.weight().value;  // (out × in)
  const Tensor& b = linear.bias().value;    // (1 × out)
  const std::size_t out = w.rows();
  const std::size_t in = w.cols();
  if (bn != nullptr) {
    check_arg(bn->running_mean().cols() == out, "FusedLinear: BN width mismatch");
  }

  weight_t_ = Tensor(in, out);
  bias_ = Tensor(1, out);
  for (std::size_t c = 0; c < out; ++c) {
    // Fold in double precision: scale = γ/√(σ²+ε) per output channel, the
    // identity map when no batch-norm follows the linear.
    double scale = 1.0;
    double shift = 0.0;
    if (bn != nullptr) {
      const double inv_std =
          1.0 / std::sqrt(static_cast<double>(bn->running_var().at(0, c)) + bn->eps());
      scale = static_cast<double>(bn->gamma().value.at(0, c)) * inv_std;
      shift = static_cast<double>(bn->beta().value.at(0, c)) -
              static_cast<double>(bn->running_mean().at(0, c)) * scale;
    }
    for (std::size_t k = 0; k < in; ++k) {
      weight_t_.at(k, c) = static_cast<float>(static_cast<double>(w.at(c, k)) * scale);
    }
    bias_.at(0, c) = static_cast<float>(static_cast<double>(b.at(0, c)) * scale + shift);
  }

  if (quant_ == QuantMode::kInt8) {
    if (preload != nullptr) {
      check_arg(preload->in == in && preload->out == out,
                "FusedLinear: preloaded quant table shape mismatch");
      qscales_ = preload->scales;
      qweight_ = preload->qweight;
    } else {
      QuantLinearTables t = quantize_folded(weight_t_.vec(), in, out);
      qscales_ = std::move(t.scales);
      qweight_ = std::move(t.qweight);
    }
    // Interleaved paired-k panel (see header): the kernel consumes two k
    // terms per accumulator lane, so pad odd in-widths with a zero column.
    const std::size_t in_pad = (in + 1) & ~std::size_t{1};
    qwpair_.assign((in_pad / 2) * out * 2, 0);
    for (std::size_t j = 0; j < out; ++j) {
      for (std::size_t k = 0; k < in; ++k) {
        qwpair_[(k / 2) * out * 2 + 2 * j + (k & 1)] =
            static_cast<std::int16_t>(qweight_[j * in + k]);
      }
    }
    qx_.assign(in_pad, 0);
    qacc_.assign(out, 0);
  }
}

void FusedLinear::forward_int8_row(const float* x, float* y) const {
  const std::size_t in = weight_t_.rows();
  const std::size_t out = weight_t_.cols();
  const float* bias = bias_.row(0);

  float amax = 0.0f;
#pragma omp simd reduction(max : amax)
  for (std::size_t k = 0; k < in; ++k) {
    const float a = std::fabs(x[k]);
    if (a > amax) amax = a;
  }
  if (amax == 0.0f) {
    // All-zero row: the integer kernel would multiply by a zero scale; the
    // exact answer is just the (folded) bias through the epilogue.
    for (std::size_t j = 0; j < out; ++j) {
      const float v = bias[j];
      y[j] = (relu_ && v < 0.0f) ? 0.0f : v;
    }
    return;
  }

  const float sx = amax / 127.0f;
  const float inv_sx = 127.0f / amax;
  std::int16_t* qx = qx_.data();
  std::size_t k = 0;
#if defined(GP_INT8_VNNI)
  // Vectorized round-to-nearest-even + clamp. CVTPS2DQ and lrintf both
  // round under the default FE_TONEAREST mode (nothing in this codebase
  // changes the rounding mode), so the two loops produce identical bits.
  {
    const __m256 vs = _mm256_set1_ps(inv_sx);
    const __m256i lo = _mm256_set1_epi32(-127);
    const __m256i hi = _mm256_set1_epi32(127);
    for (; k + 16 <= in; k += 16) {
      __m256i a = _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(x + k), vs));
      __m256i b = _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(x + k + 8), vs));
      a = _mm256_min_epi32(_mm256_max_epi32(a, lo), hi);
      b = _mm256_min_epi32(_mm256_max_epi32(b, lo), hi);
      // packs interleaves 128-bit halves; permute restores element order.
      const __m256i p = _mm256_permute4x64_epi64(_mm256_packs_epi32(a, b), 0xD8);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(qx + k), p);
    }
  }
#endif
  for (; k < in; ++k) {
    long q = std::lrintf(x[k] * inv_sx);
    if (q > 127) q = 127;
    if (q < -127) q = -127;
    qx[k] = static_cast<std::int16_t>(q);
  }
  const std::size_t in_pad = qx_.size();  // (in+1) & ~1; padding stays 0

  // Paired-k outer product into the int32 accumulator row. Exact int32
  // accumulation (|acc| <= 127*127*in, far below 2^31 for every layer width
  // here): associative, so the VNNI path, the scalar path, and every lane
  // count produce identical bits, and a (0, 0) activation pair can be
  // skipped outright — it contributes exactly 0 to every accumulator.
  std::int32_t* acc = qacc_.data();
  std::memset(acc, 0, out * sizeof(std::int32_t));
  for (std::size_t k = 0; k < in_pad; k += 2) {
    const auto pair = static_cast<std::uint32_t>(static_cast<std::uint16_t>(qx[k])) |
                      (static_cast<std::uint32_t>(static_cast<std::uint16_t>(qx[k + 1])) << 16);
    if (pair == 0) continue;  // ReLU-sparse activations skip whole panels
    const std::int16_t* wr = qwpair_.data() + (k / 2) * out * 2;
    std::size_t j = 0;
#if defined(GP_INT8_VNNI)
    // acc[j..j+7] += qx[k]·wr[2j] + qx[k+1]·wr[2j+1]: one VPDPWSSD per 8
    // lanes, both k terms of the pair fused into the i32 dot-accumulate.
    const __m256i xb = _mm256_set1_epi32(static_cast<std::int32_t>(pair));
    for (; j + 16 <= out; j += 16) {
      __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + j));
      __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + j + 8));
      const __m256i w0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wr + 2 * j));
      const __m256i w1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wr + 2 * j + 16));
      a0 = GP_DPWSSD(a0, xb, w0);
      a1 = GP_DPWSSD(a1, xb, w1);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + j), a0);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + j + 8), a1);
    }
#endif
    const std::int32_t x0 = qx[k];
    const std::int32_t x1 = qx[k + 1];
    for (; j < out; ++j) {
      acc[j] += x0 * static_cast<std::int32_t>(wr[2 * j]) +
                x1 * static_cast<std::int32_t>(wr[2 * j + 1]);
    }
  }

  for (std::size_t j = 0; j < out; ++j) {
    // Dequantization folded into the ReLU epilogue.
    const float v = bias[j] + static_cast<float>(acc[j]) * (sx * qscales_[j]);
    y[j] = (relu_ && v < 0.0f) ? 0.0f : v;
  }
}

Tensor FusedLinear::forward(const Tensor& input, bool /*training*/) {
  const std::size_t in = weight_t_.rows();
  const std::size_t out = weight_t_.cols();
  check_arg(input.cols() == in, "FusedLinear input width mismatch");

  Tensor result(input.rows(), out);
  if (quant_ == QuantMode::kInt8) {
    for (std::size_t i = 0; i < input.rows(); ++i) {
      forward_int8_row(input.row(i), result.row(i));
    }
    return result;
  }

  const float* bias = bias_.row(0);
  for (std::size_t i = 0; i < input.rows(); ++i) {
    const float* x = input.row(i);
    float* y = result.row(i);
    for (std::size_t j = 0; j < out; ++j) y[j] = bias[j];
    // Outer-product accumulation: broadcast x[k], stream the contiguous
    // transposed weight row into the resident output row. Serial in k per
    // row → bitwise batch-composition-independent per sample.
    for (std::size_t k = 0; k < in; ++k) {
      const float xk = x[k];
      if (xk == 0.0f) continue;  // ReLU-sparse activations skip whole rows
      const float* wrow = weight_t_.row(k);
      for (std::size_t j = 0; j < out; ++j) y[j] += xk * wrow[j];
    }
    if (relu_) {
      for (std::size_t j = 0; j < out; ++j) {
        if (y[j] < 0.0f) y[j] = 0.0f;
      }
    }
  }
  return result;
}

Tensor FusedLinear::backward(const Tensor& /*grad_output*/) {
  throw Error("FusedLinear is inference-only: backward() on a fused model");
}

// ---- Sequential fuse / quant-table collection ------------------------------

namespace {

/// One fusable [Linear → BatchNorm1d? → ReLU?] run starting at layer `i`.
/// `lin == nullptr` means layers[i] is not a Linear; `next` is the index of
/// the first layer after the run either way.
struct FuseRun {
  Linear* lin = nullptr;
  BatchNorm1d* bn = nullptr;
  bool relu = false;
  std::size_t next = 0;
};

FuseRun match_run(const std::vector<std::unique_ptr<Layer>>& layers, std::size_t i) {
  FuseRun run;
  run.next = i + 1;
  run.lin = dynamic_cast<Linear*>(layers[i].get());
  if (run.lin == nullptr) return run;
  std::size_t j = i + 1;
  if (j < layers.size()) {
    run.bn = dynamic_cast<BatchNorm1d*>(layers[j].get());
    if (run.bn != nullptr) ++j;
  }
  if (j < layers.size() && dynamic_cast<ReLU*>(layers[j].get()) != nullptr) {
    run.relu = true;
    ++j;
  }
  run.next = j;
  return run;
}

}  // namespace

void Sequential::fuse_inference(QuantMode mode, QuantTableCursor* preload) {
  std::vector<std::unique_ptr<Layer>> fused;
  fused.reserve(layers_.size());
  std::size_t i = 0;
  while (i < layers_.size()) {
    const FuseRun run = match_run(layers_, i);
    if (run.lin != nullptr) {
      const QuantLinearTables* tables = nullptr;
      if (mode == QuantMode::kInt8 && preload != nullptr) {
        check_arg(!preload->exhausted(), "fuse_inference: quant table sequence exhausted");
        tables = &(*preload->tables)[preload->next++];
      }
      fused.push_back(std::make_unique<FusedLinear>(*run.lin, run.bn, run.relu, mode, tables));
      i = run.next;
    } else if (dynamic_cast<Dropout*>(layers_[i].get()) != nullptr) {
      ++i;  // identity at inference; drop it
    } else {
      fused.push_back(std::move(layers_[i]));
      ++i;
    }
  }
  layers_ = std::move(fused);
}

void Sequential::collect_quant_tables(std::vector<QuantLinearTables>& out) {
  std::size_t i = 0;
  while (i < layers_.size()) {
    const FuseRun run = match_run(layers_, i);
    if (run.lin != nullptr) {
      // A throwaway f32 fuse reuses the exact double-precision BN fold, so
      // collected tables are bit-identical to the ones fuse_inference(kInt8)
      // would quantize in place.
      const FusedLinear folded(*run.lin, run.bn, run.relu);
      out.push_back(
          quantize_folded(folded.weight_t().vec(), folded.in_features(), folded.out_features()));
    }
    i = run.next;
  }
}

}  // namespace gp::nn
