#include "nn/optimizer.hpp"

#include <cmath>

namespace gp::nn {

void Optimizer::zero_grad() {
  for (Parameter* p : params_) p->grad.zero();
}

Sgd::Sgd(std::vector<Parameter*> params, double lr, double momentum, double weight_decay)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) velocity_.emplace_back(p->value.rows(), p->value.cols());
}

void Sgd::step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Parameter& p = *params_[k];
    Tensor& vel = velocity_[k];
    for (std::size_t i = 0; i < p.value.numel(); ++i) {
      double g = p.grad.vec()[i] + weight_decay_ * p.value.vec()[i];
      if (momentum_ > 0.0) {
        vel.vec()[i] = static_cast<float>(momentum_ * vel.vec()[i] + g);
        g = vel.vec()[i];
      }
      p.value.vec()[i] -= static_cast<float>(lr_ * g);
    }
    p.grad.zero();
  }
}

Adam::Adam(std::vector<Parameter*> params, double lr, double beta1, double beta2, double eps,
           double weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  ++step_count_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(step_count_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Parameter& p = *params_[k];
    for (std::size_t i = 0; i < p.value.numel(); ++i) {
      const double g = p.grad.vec()[i] + weight_decay_ * p.value.vec()[i];
      m_[k].vec()[i] = static_cast<float>(beta1_ * m_[k].vec()[i] + (1.0 - beta1_) * g);
      v_[k].vec()[i] = static_cast<float>(beta2_ * v_[k].vec()[i] + (1.0 - beta2_) * g * g);
      const double m_hat = m_[k].vec()[i] / bias1;
      const double v_hat = v_[k].vec()[i] / bias2;
      p.value.vec()[i] -= static_cast<float>(lr_ * m_hat / (std::sqrt(v_hat) + eps_));
    }
    p.grad.zero();
  }
}

}  // namespace gp::nn
