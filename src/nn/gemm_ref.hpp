#pragma once
// Retained naive GEMM reference kernels — the bitwise ground truth.
//
// These are serial, untiled copies of the pre-blocking `matmul*` kernels.
// They define the numerical contract the optimized kernels in tensor.cpp
// must reproduce bit-for-bit: per output element, k-terms accumulate in
// ascending order, one rounding per `+=` statement (a single fused
// multiply-add under the project's -ffp-contract regime), and the exact
// zero-skip semantics of the original loops:
//
//   * matmul     skips the j-pass when a(i,k) == 0.0f  — so NaN/Inf in the
//                masked b-row do NOT propagate, and -0.0 outputs survive;
//   * matmul_at  skips when a(k,i) == 0.0f (same rationale);
//   * matmul_bt  has NO skip — it is the dot-product form.
//
// test_gemm_kernel runs the differential battery (optimized vs these) and
// bench/gemm_bench reports the speedup against them. They are header-only
// and deliberately boring: do not "optimize" them.
//
// Comparison contract per kernel: matmul and matmul_at must match these
// BIT-FOR-BIT on every shape. matmul_bt is BAND-CHECKED (tight ulp-scale
// tolerance) instead: its serial k-reduction picks up a contraction mix
// (fused vs mul-then-add per term) that depends on the compiler's
// vectorization of the surrounding loop nest, so two source-identical
// copies in different TUs may legitimately differ in final-ulp rounding.
// Thread-count invariance is still exact for all three.
#include "nn/tensor.hpp"

namespace gp::nn {

inline void matmul_ref(const Tensor& a, const Tensor& b, Tensor& out) {
  check_arg(a.cols() == b.rows(), "matmul_ref inner dimension mismatch");
  if (out.rows() != a.rows() || out.cols() != b.cols()) out.resize(a.rows(), b.cols());
  out.zero();
  const std::size_t K = a.cols();
  const std::size_t N = b.cols();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (std::size_t k = 0; k < K; ++k) {
      const float aik = arow[k];
      if (aik == 0.0f) continue;
      const float* brow = b.row(k);
      for (std::size_t j = 0; j < N; ++j) orow[j] += aik * brow[j];
    }
  }
}

inline void matmul_bt_ref(const Tensor& a, const Tensor& b, Tensor& out) {
  check_arg(a.cols() == b.cols(), "matmul_bt_ref inner dimension mismatch");
  if (out.rows() != a.rows() || out.cols() != b.rows()) out.resize(a.rows(), b.rows());
  const std::size_t K = a.cols();
  const std::size_t N = b.rows();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (std::size_t j = 0; j < N; ++j) {
      const float* brow = b.row(j);
      float acc = 0.0f;
      for (std::size_t k = 0; k < K; ++k) acc += arow[k] * brow[k];
      orow[j] = acc;
    }
  }
}

inline void matmul_at_ref(const Tensor& a, const Tensor& b, Tensor& out) {
  check_arg(a.rows() == b.rows(), "matmul_at_ref inner dimension mismatch");
  if (out.rows() != a.cols() || out.cols() != b.cols()) out.resize(a.cols(), b.cols());
  out.zero();
  const std::size_t K = a.rows();
  const std::size_t N = b.cols();
  for (std::size_t k = 0; k < K; ++k) {
    const float* arow = a.row(k);
    const float* brow = b.row(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* orow = out.row(i);
      for (std::size_t j = 0; j < N; ++j) orow[j] += aki * brow[j];
    }
  }
}

}  // namespace gp::nn
