// Inference-only fused layers (gp::serve hot path, DESIGN.md §8, §11).
//
// FusedLinear collapses a [Linear → BatchNorm1d? → ReLU?] run into one
// kernel at inference time:
//   * the batch-norm affine map is folded into the linear weights
//     (W'_cj = W_cj · γ_c/√(σ²_c+ε), b'_c = (b_c−μ_c)·γ_c/√(σ²_c+ε)+β_c,
//     folding done in double precision once at fuse time);
//   * the weight matrix is stored *transposed* (in × out) so the kernel is
//     an outer-product accumulation — broadcast x[k], FMA into a contiguous
//     output row — which vectorises over the output dimension;
//   * the optional ReLU runs as an epilogue on the already-resident output
//     row, eliminating the ReLU layer's mask allocation and extra pass.
//
// QuantMode::kInt8 additionally builds symmetric per-output-channel int8
// tables (see nn/quant.hpp) at fuse time — either quantized from the
// double-precision fold, or taken verbatim from a preloaded .gpsy section —
// and forward() switches to the integer kernel: per-row dynamic activation
// scale, int16×int8 → int32 multiply-accumulate, dequantization folded into
// the ReLU epilogue. The kernel runs as an outer product over k-PAIRS: the
// canonical out-major table is re-laid-out at fuse time into an interleaved
// (k/2, out, 2) int16 panel so each accumulator lane consumes two k terms at
// once (one VPDPWSSD per 8 lanes on AVX-VNNI hardware; a scalar paired loop
// elsewhere). The int32 accumulation is exact, so every lane count and both
// code paths produce bitwise-identical results, and all-zero activation
// pairs can be skipped (they contribute exactly 0) — the integer analogue of
// the f32 path's ReLU-sparsity row skip. The int16/int32 scratch rows are
// members sized once at fuse time, keeping the steady-state forward
// allocation profile identical to the f32 path. forward() is single-caller
// by contract (gp::serve's single pump thread / the serial fused-inference
// fallback), which is what makes the member scratch safe.
//
// Determinism: for each output row the k-accumulation is a fixed serial
// loop (f32) or an exact integer reduction (int8), so a sample's output
// depends only on its own input row — never on batch composition, thread
// count, or shard placement. That property is what lets gp::serve
// micro-batch segments from many sessions while keeping per-session results
// bitwise reproducible.
//
// Fused layers are forward-only: backward() throws, parameters()/buffers()
// are empty (the folded weights are no longer the training parameters).
// Fuse only models that will never be trained, serialized, or cloned again
// — gp::serve fuses its private ModelSnapshot copies, never the caller's
// system.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layers.hpp"
#include "nn/quant.hpp"

namespace gp::nn {

/// One fused inference kernel; see file comment. Constructed by folding an
/// existing trained Linear (and optionally the BatchNorm1d that follows it,
/// using its *running* statistics) plus an optional ReLU epilogue.
class FusedLinear : public Layer {
 public:
  /// `mode` selects the inference kernel. With kInt8, `preload` (when
  /// non-null) supplies tables deserialized from a .gpsy quant section —
  /// validated against the folded shape — otherwise tables are quantized
  /// from the fresh double-precision fold.
  FusedLinear(Linear& linear, BatchNorm1d* bn, bool relu,
              QuantMode mode = QuantMode::kOff,
              const QuantLinearTables* preload = nullptr);

  Tensor forward(const Tensor& input, bool training) override;
  /// Fused layers are inference-only.
  Tensor backward(const Tensor& grad_output) override;

  bool has_relu() const { return relu_; }
  bool quantized() const { return quant_ == QuantMode::kInt8; }
  std::size_t in_features() const { return weight_t_.rows(); }
  std::size_t out_features() const { return weight_t_.cols(); }
  /// The BN-folded transposed weights — exposed so collect_quant_tables can
  /// quantize the exact same fold it would get at fuse time.
  const Tensor& weight_t() const { return weight_t_; }

 private:
  void forward_int8_row(const float* x, float* y) const;

  Tensor weight_t_;  ///< (in × out): transposed, BN-folded weights
  Tensor bias_;      ///< (1 × out): BN-folded bias
  bool relu_;
  QuantMode quant_ = QuantMode::kOff;
  std::vector<float> qscales_;        ///< per-channel weight scales (out)
  std::vector<std::int8_t> qweight_;  ///< out-major int8 weights (out × in)
  /// Interleaved kernel panel built from qweight_ at fuse time:
  /// qwpair_[(k/2)·out·2 + 2j + (k&1)], zero-padded to an even k count.
  std::vector<std::int16_t> qwpair_;
  mutable std::vector<std::int16_t> qx_;   ///< quantized activations (in, padded even)
  mutable std::vector<std::int32_t> qacc_; ///< int32 accumulator row (out)
};

}  // namespace gp::nn
