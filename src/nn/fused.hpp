// Inference-only fused layers (gp::serve hot path, DESIGN.md §8).
//
// FusedLinear collapses a [Linear → BatchNorm1d? → ReLU?] run into one
// kernel at inference time:
//   * the batch-norm affine map is folded into the linear weights
//     (W'_cj = W_cj · γ_c/√(σ²_c+ε), b'_c = (b_c−μ_c)·γ_c/√(σ²_c+ε)+β_c,
//     folding done in double precision once at fuse time);
//   * the weight matrix is stored *transposed* (in × out) so the kernel is
//     an outer-product accumulation — broadcast x[k], FMA into a contiguous
//     output row — which vectorises over the output dimension;
//   * the optional ReLU runs as an epilogue on the already-resident output
//     row, eliminating the ReLU layer's mask allocation and extra pass.
//
// Determinism: for each output row the k-accumulation is a fixed serial
// loop, so a sample's output depends only on its own input row — never on
// batch composition, thread count, or shard placement. That property is
// what lets gp::serve micro-batch segments from many sessions while keeping
// per-session results bitwise reproducible.
//
// Fused layers are forward-only: backward() throws, parameters()/buffers()
// are empty (the folded weights are no longer the training parameters).
// Fuse only models that will never be trained, serialized, or cloned again
// — gp::serve fuses its private ModelSnapshot copies, never the caller's
// system.
#pragma once

#include "nn/layers.hpp"

namespace gp::nn {

/// One fused inference kernel; see file comment. Constructed by folding an
/// existing trained Linear (and optionally the BatchNorm1d that follows it,
/// using its *running* statistics) plus an optional ReLU epilogue.
class FusedLinear : public Layer {
 public:
  FusedLinear(Linear& linear, BatchNorm1d* bn, bool relu);

  Tensor forward(const Tensor& input, bool training) override;
  /// Fused layers are inference-only.
  Tensor backward(const Tensor& grad_output) override;

  bool has_relu() const { return relu_; }
  std::size_t in_features() const { return weight_t_.rows(); }
  std::size_t out_features() const { return weight_t_.cols(); }

 private:
  Tensor weight_t_;  ///< (in × out): transposed, BN-folded weights
  Tensor bias_;      ///< (1 × out): BN-folded bias
  bool relu_;
};

}  // namespace gp::nn
