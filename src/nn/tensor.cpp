#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>

namespace gp::nn {

Tensor::Tensor(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::randn(Rng& rng, double stddev) {
  for (auto& v : data_) v = static_cast<float>(rng.gaussian(0.0, stddev));
}

Tensor& Tensor::operator+=(const Tensor& other) {
  check_arg(rows_ == other.rows_ && cols_ == other.cols_, "tensor shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

double Tensor::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return acc;
}

double Tensor::abs_max() const {
  double best = 0.0;
  for (float v : data_) best = std::max(best, static_cast<double>(std::fabs(v)));
  return best;
}

void matmul(const Tensor& a, const Tensor& b, Tensor& out) {
  check_arg(a.cols() == b.rows(), "matmul inner dimension mismatch");
  if (out.rows() != a.rows() || out.cols() != b.cols()) out = Tensor(a.rows(), b.cols());
  out.zero();
  // ikj loop order: streams through b and out rows contiguously.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float aik = arow[k];
      if (aik == 0.0f) continue;
      const float* brow = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
    }
  }
}

void matmul_bt(const Tensor& a, const Tensor& b, Tensor& out) {
  check_arg(a.cols() == b.cols(), "matmul_bt inner dimension mismatch");
  if (out.rows() != a.rows() || out.cols() != b.rows()) out = Tensor(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const float* brow = b.row(j);
      float acc = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      orow[j] = acc;
    }
  }
}

void matmul_at(const Tensor& a, const Tensor& b, Tensor& out) {
  check_arg(a.rows() == b.rows(), "matmul_at inner dimension mismatch");
  if (out.rows() != a.cols() || out.cols() != b.cols()) out = Tensor(a.cols(), b.cols());
  out.zero();
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const float* arow = a.row(k);
    const float* brow = b.row(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* orow = out.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += aki * brow[j];
    }
  }
}

}  // namespace gp::nn
