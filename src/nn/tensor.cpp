#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/mem.hpp"

namespace gp::nn {

Tensor::Tensor(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);  // keeps capacity on shrink; grows if needed
  // Debug mode (GP_POISON_RESIZE=1): contents after resize are documented
  // unspecified, so poison every cell with NaN — a caller that reads a
  // stale value propagates NaN instead of silently reusing old data.
  if (mem::poison_resize_enabled()) {
    std::fill(data_.begin(), data_.end(), std::numeric_limits<float>::quiet_NaN());
  }
}

void Tensor::randn(Rng& rng, double stddev) {
  for (auto& v : data_) v = static_cast<float>(rng.gaussian(0.0, stddev));
}

Tensor& Tensor::operator+=(const Tensor& other) {
  check_arg(rows_ == other.rows_ && cols_ == other.cols_, "tensor shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

double Tensor::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return acc;
}

double Tensor::abs_max() const {
  double best = 0.0;
  for (float v : data_) best = std::max(best, static_cast<double>(std::fabs(v)));
  return best;
}

namespace {

/// Below this many multiply-adds a kernel runs inline: the parallel-region
/// dispatch would cost more than the arithmetic it distributes.
constexpr std::size_t kParallelMinFlops = 32 * 1024;

/// Inner-dimension tile: keeps the touched panel of `b` resident in cache
/// while successive output rows stream over it. Iterating k-tiles in
/// ascending order preserves the serial accumulation order exactly.
constexpr std::size_t kKTile = 128;

/// Row-panel size for one chunk of output rows. Fixed (not derived from the
/// thread count) so chunk boundaries are reproducible; each output element
/// lives in exactly one panel, so this only affects scheduling anyway.
std::size_t row_grain(std::size_t rows, std::size_t flops_per_row) {
  // Aim for panels worth ~256k flops so dispatch overhead stays <1%.
  const std::size_t target = std::max<std::size_t>(1, (256 * 1024) / std::max<std::size_t>(1, flops_per_row));
  return std::min(rows, target);
}

}  // namespace

void matmul(const Tensor& a, const Tensor& b, Tensor& out, exec::ExecContext& ctx) {
  check_arg(a.cols() == b.rows(), "matmul inner dimension mismatch");
  if (out.rows() != a.rows() || out.cols() != b.cols()) out.resize(a.rows(), b.cols());
  out.zero();
  const std::size_t K = a.cols();
  const std::size_t N = b.cols();

  // Panel kernel, ikj loop order with k-tiling: streams through b and out
  // rows contiguously; per output element the k-accumulation order matches
  // the untiled serial loop bit-for-bit.
  const auto panel = [&](std::size_t rb, std::size_t re) {
    for (std::size_t k0 = 0; k0 < K; k0 += kKTile) {
      const std::size_t k1 = std::min(K, k0 + kKTile);
      for (std::size_t i = rb; i < re; ++i) {
        const float* arow = a.row(i);
        float* orow = out.row(i);
        for (std::size_t k = k0; k < k1; ++k) {
          const float aik = arow[k];
          if (aik == 0.0f) continue;
          const float* brow = b.row(k);
          for (std::size_t j = 0; j < N; ++j) orow[j] += aik * brow[j];
        }
      }
    }
  };

  const std::size_t flops = a.rows() * K * N;
  if (flops < kParallelMinFlops || ctx.threads() <= 1) {
    panel(0, a.rows());
    return;
  }
  ctx.parallel_for_chunks(0, a.rows(), row_grain(a.rows(), K * N), panel);
}

void matmul_bt(const Tensor& a, const Tensor& b, Tensor& out, exec::ExecContext& ctx) {
  check_arg(a.cols() == b.cols(), "matmul_bt inner dimension mismatch");
  if (out.rows() != a.rows() || out.cols() != b.rows()) out.resize(a.rows(), b.rows());
  const std::size_t K = a.cols();
  const std::size_t N = b.rows();

  const auto panel = [&](std::size_t rb, std::size_t re) {
    for (std::size_t i = rb; i < re; ++i) {
      const float* arow = a.row(i);
      float* orow = out.row(i);
      for (std::size_t j = 0; j < N; ++j) {
        const float* brow = b.row(j);
        float acc = 0.0f;
        for (std::size_t k = 0; k < K; ++k) acc += arow[k] * brow[k];
        orow[j] = acc;
      }
    }
  };

  const std::size_t flops = a.rows() * K * N;
  if (flops < kParallelMinFlops || ctx.threads() <= 1) {
    panel(0, a.rows());
    return;
  }
  ctx.parallel_for_chunks(0, a.rows(), row_grain(a.rows(), K * N), panel);
}

void matmul_at(const Tensor& a, const Tensor& b, Tensor& out, exec::ExecContext& ctx) {
  check_arg(a.rows() == b.rows(), "matmul_at inner dimension mismatch");
  if (out.rows() != a.cols() || out.cols() != b.cols()) out.resize(a.cols(), b.cols());
  out.zero();
  const std::size_t K = a.rows();  // reduction dimension
  const std::size_t N = b.cols();

  // A chunk owns output rows [ib, ie) — i.e. columns [ib, ie) of `a`. The
  // k-loop stays outermost (ascending) inside each chunk, so every output
  // element accumulates its k-terms in the same order as the serial kernel.
  const auto panel = [&](std::size_t ib, std::size_t ie) {
    for (std::size_t k = 0; k < K; ++k) {
      const float* arow = a.row(k);
      const float* brow = b.row(k);
      for (std::size_t i = ib; i < ie; ++i) {
        const float aki = arow[i];
        if (aki == 0.0f) continue;
        float* orow = out.row(i);
        for (std::size_t j = 0; j < N; ++j) orow[j] += aki * brow[j];
      }
    }
  };

  const std::size_t flops = a.cols() * K * N;
  if (flops < kParallelMinFlops || ctx.threads() <= 1) {
    panel(0, a.cols());
    return;
  }
  ctx.parallel_for_chunks(0, a.cols(), row_grain(a.cols(), K * N), panel);
}

}  // namespace gp::nn
