#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/mem.hpp"

namespace gp::nn {

Tensor::Tensor(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);  // keeps capacity on shrink; grows if needed
  // Debug mode (GP_POISON_RESIZE=1): contents after resize are documented
  // unspecified, so poison every cell with NaN — a caller that reads a
  // stale value propagates NaN instead of silently reusing old data.
  if (mem::poison_resize_enabled()) {
    std::fill(data_.begin(), data_.end(), std::numeric_limits<float>::quiet_NaN());
  }
}

void Tensor::randn(Rng& rng, double stddev) {
  for (auto& v : data_) v = static_cast<float>(rng.gaussian(0.0, stddev));
}

Tensor& Tensor::operator+=(const Tensor& other) {
  check_arg(rows_ == other.rows_ && cols_ == other.cols_, "tensor shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

double Tensor::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return acc;
}

double Tensor::abs_max() const {
  double best = 0.0;
  for (float v : data_) best = std::max(best, static_cast<double>(std::fabs(v)));
  return best;
}

namespace {

/// Below this many multiply-adds a kernel runs inline: the parallel-region
/// dispatch would cost more than the arithmetic it distributes.
constexpr std::size_t kParallelMinFlops = 32 * 1024;

/// Inner-dimension tile: keeps the touched panel of `b` resident in cache
/// while successive output rows stream over it. Iterating k-tiles in
/// ascending order preserves the serial accumulation order exactly.
constexpr std::size_t kKTile = 128;

/// Register tile: rows of `a` (matmul) / output rows (matmul_at) advanced
/// together so one streamed b-row feeds kMR independent accumulation chains.
/// Each chain still rounds once per `+=` statement, so tiling only reorders
/// work *across* output elements, never within one element's k-sum.
constexpr std::size_t kMR = 4;

/// Row-panel size for one chunk of output rows. Fixed (not derived from the
/// thread count) so chunk boundaries are reproducible; each output element
/// lives in exactly one panel, so this only affects scheduling anyway.
std::size_t row_grain(std::size_t rows, std::size_t flops_per_row) {
  // Aim for panels worth ~256k flops so dispatch overhead stays <1%.
  const std::size_t target = std::max<std::size_t>(1, (256 * 1024) / std::max<std::size_t>(1, flops_per_row));
  return std::min(rows, target);
}

#define GP_RESTRICT __restrict__

/// One a-row's rank-1 update of one out-row, preserving the reference
/// kernels' zero-skip: the j-pass is suppressed entirely when aik == 0.0f.
inline void axpy_row(float aik, const float* GP_RESTRICT brow, float* GP_RESTRICT orow,
                     std::size_t n) {
  if (aik == 0.0f) return;
#pragma omp simd
  for (std::size_t j = 0; j < n; ++j) orow[j] += aik * brow[j];
}

}  // namespace

void matmul(const Tensor& a, const Tensor& b, Tensor& out, exec::ExecContext& ctx) {
  check_arg(a.cols() == b.rows(), "matmul inner dimension mismatch");
  if (out.rows() != a.rows() || out.cols() != b.cols()) out.resize(a.rows(), b.cols());
  out.zero();
  const std::size_t K = a.cols();
  const std::size_t N = b.cols();

  // Blocked panel kernel: k-tiles keep the touched slice of `b` cache
  // resident; inside a tile, kMR output rows advance together so each
  // streamed b-row feeds kMR independent fma chains (latency hiding + 4x
  // b-row reuse). Per output element the k-accumulation order and the
  // per-(i,k) zero-skip match the naive reference bit-for-bit: interleaving
  // rows never reorders one element's own serial k-sum.
  const auto panel = [&](std::size_t rb, std::size_t re) {
    for (std::size_t k0 = 0; k0 < K; k0 += kKTile) {
      const std::size_t k1 = std::min(K, k0 + kKTile);
      std::size_t i = rb;
      for (; i + kMR <= re; i += kMR) {
        const float* GP_RESTRICT ar0 = a.row(i);
        const float* GP_RESTRICT ar1 = a.row(i + 1);
        const float* GP_RESTRICT ar2 = a.row(i + 2);
        const float* GP_RESTRICT ar3 = a.row(i + 3);
        float* GP_RESTRICT or0 = out.row(i);
        float* GP_RESTRICT or1 = out.row(i + 1);
        float* GP_RESTRICT or2 = out.row(i + 2);
        float* GP_RESTRICT or3 = out.row(i + 3);
        for (std::size_t k = k0; k < k1; ++k) {
          const float a0 = ar0[k];
          const float a1 = ar1[k];
          const float a2 = ar2[k];
          const float a3 = ar3[k];
          const float* GP_RESTRICT brow = b.row(k);
          if (a0 != 0.0f && a1 != 0.0f && a2 != 0.0f && a3 != 0.0f) {
            // Fast path: all four rows live for this k.
#pragma omp simd
            for (std::size_t j = 0; j < N; ++j) {
              const float bj = brow[j];
              or0[j] += a0 * bj;
              or1[j] += a1 * bj;
              or2[j] += a2 * bj;
              or3[j] += a3 * bj;
            }
          } else {
            // Mixed-liveness path: honor the reference's per-row skip so a
            // NaN/Inf in the masked b-row stays masked and -0.0 survives.
            axpy_row(a0, brow, or0, N);
            axpy_row(a1, brow, or1, N);
            axpy_row(a2, brow, or2, N);
            axpy_row(a3, brow, or3, N);
          }
        }
      }
      for (; i < re; ++i) {  // ragged row tail
        const float* GP_RESTRICT arow = a.row(i);
        float* GP_RESTRICT orow = out.row(i);
        for (std::size_t k = k0; k < k1; ++k) axpy_row(arow[k], b.row(k), orow, N);
      }
    }
  };

  const std::size_t flops = a.rows() * K * N;
  if (flops < kParallelMinFlops || ctx.threads() <= 1) {
    panel(0, a.rows());
    return;
  }
  ctx.parallel_for_chunks(0, a.rows(), row_grain(a.rows(), K * N), panel);
}

void matmul_bt(const Tensor& a, const Tensor& b, Tensor& out, exec::ExecContext& ctx) {
  check_arg(a.cols() == b.cols(), "matmul_bt inner dimension mismatch");
  if (out.rows() != a.rows() || out.cols() != b.rows()) out.resize(a.rows(), b.rows());
  const std::size_t K = a.cols();
  const std::size_t N = b.rows();

  // Dot-product form: each out(i,j) is one serial ascending-k reduction.
  // This kernel is deliberately LEFT IN ITS ORIGINAL SOURCE FORM. The
  // pipeline goldens pin the exact bits of the float chain this loop
  // compiles to, and that chain is contraction-context-dependent (the
  // compiler's vector body sums mul-then-add while its scalar path fuses —
  // which mix a given K gets depends on codegen details a restructured
  // packed kernel cannot reproduce portably). A blocked rewrite here would
  // be answer-changing, so the battery in test_gemm_kernel band-checks this
  // kernel against the reference instead of requiring bit-equality — and
  // pins exact thread-count invariance, which chunking does guarantee.
  // The serve hot path does not pass through here (FusedLinear carries its
  // own epilogue-fused kernels), so raw speed matters least of the three.
  const auto panel = [&](std::size_t rb, std::size_t re) {
    for (std::size_t i = rb; i < re; ++i) {
      const float* arow = a.row(i);
      float* orow = out.row(i);
      for (std::size_t j = 0; j < N; ++j) {
        const float* brow = b.row(j);
        float acc = 0.0f;
        for (std::size_t k = 0; k < K; ++k) acc += arow[k] * brow[k];
        orow[j] = acc;
      }
    }
  };

  const std::size_t flops = a.rows() * K * N;
  if (flops < kParallelMinFlops || ctx.threads() <= 1) {
    panel(0, a.rows());
    return;
  }
  ctx.parallel_for_chunks(0, a.rows(), row_grain(a.rows(), K * N), panel);
}

void matmul_at(const Tensor& a, const Tensor& b, Tensor& out, exec::ExecContext& ctx) {
  check_arg(a.rows() == b.rows(), "matmul_at inner dimension mismatch");
  if (out.rows() != a.cols() || out.cols() != b.cols()) out.resize(a.cols(), b.cols());
  out.zero();
  const std::size_t K = a.rows();  // reduction dimension
  const std::size_t N = b.cols();

  // A chunk owns output rows [ib, ie) — i.e. columns [ib, ie) of `a`. The
  // k-loop stays outermost (ascending) inside each chunk, so every output
  // element accumulates its k-terms in the same order as the serial
  // reference; kMR output rows advance together per k so one streamed b-row
  // feeds kMR independent chains, with the per-(k,i) zero-skip preserved.
  const auto panel = [&](std::size_t ib, std::size_t ie) {
    for (std::size_t k = 0; k < K; ++k) {
      const float* GP_RESTRICT arow = a.row(k);
      const float* GP_RESTRICT brow = b.row(k);
      std::size_t i = ib;
      for (; i + kMR <= ie; i += kMR) {
        const float a0 = arow[i];
        const float a1 = arow[i + 1];
        const float a2 = arow[i + 2];
        const float a3 = arow[i + 3];
        if (a0 != 0.0f && a1 != 0.0f && a2 != 0.0f && a3 != 0.0f) {
          float* GP_RESTRICT or0 = out.row(i);
          float* GP_RESTRICT or1 = out.row(i + 1);
          float* GP_RESTRICT or2 = out.row(i + 2);
          float* GP_RESTRICT or3 = out.row(i + 3);
#pragma omp simd
          for (std::size_t j = 0; j < N; ++j) {
            const float bj = brow[j];
            or0[j] += a0 * bj;
            or1[j] += a1 * bj;
            or2[j] += a2 * bj;
            or3[j] += a3 * bj;
          }
        } else {
          axpy_row(a0, brow, out.row(i), N);
          axpy_row(a1, brow, out.row(i + 1), N);
          axpy_row(a2, brow, out.row(i + 2), N);
          axpy_row(a3, brow, out.row(i + 3), N);
        }
      }
      for (; i < ie; ++i) axpy_row(arow[i], brow, out.row(i), N);  // ragged tail
    }
  };

  const std::size_t flops = a.cols() * K * N;
  if (flops < kParallelMinFlops || ctx.threads() <= 1) {
    panel(0, a.cols());
    return;
  }
  ctx.parallel_for_chunks(0, a.cols(), row_grain(a.cols(), K * N), panel);
}

}  // namespace gp::nn
