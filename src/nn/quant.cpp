#include "nn/quant.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/serialize.hpp"

namespace gp::nn {

QuantMode quant_mode_from_env(QuantMode fallback) {
  const char* v = std::getenv("GP_QUANT");
  if (v == nullptr || *v == '\0') return fallback;
  const std::string s(v);
  if (s == "int8") return QuantMode::kInt8;
  if (s == "off") return QuantMode::kOff;
  log_warn() << "ignoring invalid GP_QUANT='" << s << "' (want 'int8' or 'off')";
  return fallback;
}

const char* quant_mode_name(QuantMode mode) {
  return mode == QuantMode::kInt8 ? "int8" : "off";
}

QuantLinearTables quantize_folded(const std::vector<float>& weight_t, std::size_t in,
                                  std::size_t out) {
  check_arg(weight_t.size() == in * out, "quantize_folded: weight size mismatch");
  QuantLinearTables t;
  t.in = static_cast<std::uint32_t>(in);
  t.out = static_cast<std::uint32_t>(out);
  t.scales.assign(out, 0.0f);
  t.qweight.assign(in * out, 0);
  for (std::size_t c = 0; c < out; ++c) {
    float maxabs = 0.0f;
    for (std::size_t k = 0; k < in; ++k) {
      const float w = std::fabs(weight_t[k * out + c]);
      if (w > maxabs) maxabs = w;
    }
    if (maxabs == 0.0f) continue;  // dead channel: scale 0, all-zero weights
    const float scale = maxabs / 127.0f;
    t.scales[c] = scale;
    std::int8_t* qrow = t.qweight.data() + c * in;
    for (std::size_t k = 0; k < in; ++k) {
      long q = std::lrintf(weight_t[k * out + c] / scale);
      if (q > 127) q = 127;
      if (q < -127) q = -127;
      qrow[k] = static_cast<std::int8_t>(q);
    }
  }
  return t;
}

namespace {
/// Dimension sanity cap for quant sections: no layer in this codebase is
/// anywhere near 2^20 features wide, so larger values in a stream are
/// corruption, not data.
constexpr std::uint32_t kMaxQuantDim = 1u << 20;
}  // namespace

void save_quant_tables(std::ostream& out, const std::vector<QuantLinearTables>& tables) {
  BinaryWriter writer(out, "GPQ8");
  writer.write_u32(static_cast<std::uint32_t>(tables.size()));
  for (const auto& t : tables) {
    check_arg(t.scales.size() == t.out, "quant table scales/out mismatch");
    check_arg(t.qweight.size() == static_cast<std::size_t>(t.in) * t.out,
              "quant table qweight size mismatch");
    writer.write_u32(t.in);
    writer.write_u32(t.out);
    writer.write_f32_vector(t.scales);
    writer.write_i8_vector(t.qweight);
  }
}

std::vector<QuantLinearTables> load_quant_tables(std::istream& in) {
  BinaryReader reader(in, "GPQ8");
  const std::uint32_t count = reader.read_u32();
  // Each table costs >= 16 header bytes; bound the count before reserving.
  if (count > 4096) {
    throw SerializationError("implausible quant table count " + std::to_string(count));
  }
  std::vector<QuantLinearTables> tables;
  tables.reserve(count);
  for (std::uint32_t idx = 0; idx < count; ++idx) {
    QuantLinearTables t;
    t.in = reader.read_u32();
    t.out = reader.read_u32();
    if (t.in > kMaxQuantDim || t.out > kMaxQuantDim) {
      throw SerializationError("implausible quant table dims " + std::to_string(t.in) + "x" +
                               std::to_string(t.out));
    }
    t.scales = reader.read_f32_vector();
    if (t.scales.size() != t.out) {
      throw SerializationError("quant table " + std::to_string(idx) + " has " +
                               std::to_string(t.scales.size()) + " scales for " +
                               std::to_string(t.out) + " channels");
    }
    for (float s : t.scales) {
      if (!std::isfinite(s) || s < 0.0f) {
        throw SerializationError("quant table " + std::to_string(idx) +
                                 " has a non-finite or negative scale");
      }
    }
    t.qweight = reader.read_i8_vector();
    if (t.qweight.size() != static_cast<std::size_t>(t.in) * t.out) {
      throw SerializationError("quant table " + std::to_string(idx) + " has " +
                               std::to_string(t.qweight.size()) + " weights for dims " +
                               std::to_string(t.in) + "x" + std::to_string(t.out));
    }
    for (std::int8_t q : t.qweight) {
      if (q == std::numeric_limits<std::int8_t>::min()) {
        throw SerializationError("quant table " + std::to_string(idx) +
                                 " contains -128 (outside the symmetric int8 range)");
      }
    }
    tables.push_back(std::move(t));
  }
  return tables;
}

}  // namespace gp::nn
