#include "nn/layers.hpp"

#include <cmath>

namespace gp::nn {

// ---- Linear --------------------------------------------------------------

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng, std::string name) {
  check_arg(in_features > 0 && out_features > 0, "Linear feature counts must be positive");
  weight_.name = name + ".weight";
  weight_.value = Tensor(out_features, in_features);
  // Kaiming-normal initialisation for ReLU networks.
  weight_.value.randn(rng, std::sqrt(2.0 / static_cast<double>(in_features)));
  weight_.grad = Tensor(out_features, in_features);
  bias_.name = name + ".bias";
  bias_.value = Tensor(1, out_features);
  bias_.grad = Tensor(1, out_features);
}

Tensor Linear::forward(const Tensor& input, bool /*training*/) {
  check_arg(input.cols() == weight_.value.cols(), "Linear input width mismatch");
  cached_input_ = input;
  Tensor out;
  matmul_bt(input, weight_.value, out);  // (N x in) * (out x in)^T
  for (std::size_t i = 0; i < out.rows(); ++i) {
    float* row = out.row(i);
    const float* b = bias_.value.row(0);
    for (std::size_t j = 0; j < out.cols(); ++j) row[j] += b[j];
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  check_arg(grad_output.rows() == cached_input_.rows(), "Linear backward batch mismatch");
  check_arg(grad_output.cols() == weight_.value.rows(), "Linear backward width mismatch");

  // dW += g^T x ; db += sum_rows(g) ; dx = g W.
  Tensor dw;
  matmul_at(grad_output, cached_input_, dw);
  weight_.grad += dw;
  for (std::size_t i = 0; i < grad_output.rows(); ++i) {
    const float* row = grad_output.row(i);
    float* b = bias_.grad.row(0);
    for (std::size_t j = 0; j < grad_output.cols(); ++j) b[j] += row[j];
  }
  Tensor dx;
  matmul(grad_output, weight_.value, dx);
  return dx;
}

std::vector<Parameter*> Linear::parameters() { return {&weight_, &bias_}; }

// ---- ReLU ----------------------------------------------------------------

Tensor ReLU::forward(const Tensor& input, bool /*training*/) {
  mask_ = Tensor(input.rows(), input.cols());
  Tensor out = input;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    if (out.vec()[i] > 0.0f) {
      mask_.vec()[i] = 1.0f;
    } else {
      out.vec()[i] = 0.0f;
    }
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  check_arg(grad_output.numel() == mask_.numel(), "ReLU backward shape mismatch");
  Tensor dx = grad_output;
  for (std::size_t i = 0; i < dx.numel(); ++i) dx.vec()[i] *= mask_.vec()[i];
  return dx;
}

// ---- Dropout ---------------------------------------------------------------

Dropout::Dropout(double p, Rng& rng) : p_(p), rng_(&rng) {
  check_arg(p >= 0.0 && p < 1.0, "dropout p must be in [0,1)");
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  if (!training || p_ == 0.0) {
    mask_ = Tensor(input.rows(), input.cols(), 1.0f);
    return input;
  }
  mask_ = Tensor(input.rows(), input.cols());
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p_));
  Tensor out = input;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    if (rng_->bernoulli(p_)) {
      mask_.vec()[i] = 0.0f;
      out.vec()[i] = 0.0f;
    } else {
      mask_.vec()[i] = keep_scale;
      out.vec()[i] *= keep_scale;
    }
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  check_arg(grad_output.numel() == mask_.numel(), "dropout backward shape mismatch");
  Tensor dx = grad_output;
  for (std::size_t i = 0; i < dx.numel(); ++i) dx.vec()[i] *= mask_.vec()[i];
  return dx;
}

// ---- BatchNorm1d -----------------------------------------------------------

BatchNorm1d::BatchNorm1d(std::size_t num_features, Rng& /*rng*/, double momentum, double eps,
                         std::string name)
    : features_(num_features), momentum_(momentum), eps_(eps) {
  gamma_.name = name + ".gamma";
  gamma_.value = Tensor(1, num_features, 1.0f);
  gamma_.grad = Tensor(1, num_features);
  beta_.name = name + ".beta";
  beta_.value = Tensor(1, num_features);
  beta_.grad = Tensor(1, num_features);
  running_mean_.name = name + ".running_mean";
  running_mean_.value = Tensor(1, num_features);
  running_var_.name = name + ".running_var";
  running_var_.value = Tensor(1, num_features, 1.0f);
}

Tensor BatchNorm1d::forward(const Tensor& input, bool training) {
  check_arg(input.cols() == features_, "BatchNorm input width mismatch");
  const std::size_t n = input.rows();
  Tensor out(n, features_);
  x_hat_ = Tensor(n, features_);
  batch_var_ = Tensor(1, features_);

  for (std::size_t c = 0; c < features_; ++c) {
    double m = 0.0;
    double v = 0.0;
    if (training && n > 1) {
      for (std::size_t i = 0; i < n; ++i) m += input.at(i, c);
      m /= static_cast<double>(n);
      for (std::size_t i = 0; i < n; ++i) {
        const double d = input.at(i, c) - m;
        v += d * d;
      }
      v /= static_cast<double>(n);
      running_mean_.value.at(0, c) = static_cast<float>(
          (1.0 - momentum_) * running_mean_.value.at(0, c) + momentum_ * m);
      running_var_.value.at(0, c) = static_cast<float>(
          (1.0 - momentum_) * running_var_.value.at(0, c) + momentum_ * v);
    } else {
      m = running_mean_.value.at(0, c);
      v = running_var_.value.at(0, c);
    }
    batch_var_.at(0, c) = static_cast<float>(v);
    const double inv_std = 1.0 / std::sqrt(v + eps_);
    for (std::size_t i = 0; i < n; ++i) {
      const double xh = (input.at(i, c) - m) * inv_std;
      x_hat_.at(i, c) = static_cast<float>(xh);
      out.at(i, c) = static_cast<float>(gamma_.value.at(0, c) * xh + beta_.value.at(0, c));
    }
  }
  trained_with_batch_ = training && n > 1;
  return out;
}

Tensor BatchNorm1d::backward(const Tensor& grad_output) {
  check_arg(grad_output.rows() == x_hat_.rows() && grad_output.cols() == features_,
            "BatchNorm backward shape mismatch");
  const std::size_t n = grad_output.rows();
  Tensor dx(n, features_);

  for (std::size_t c = 0; c < features_; ++c) {
    const double inv_std = 1.0 / std::sqrt(static_cast<double>(batch_var_.at(0, c)) + eps_);
    const double gamma = gamma_.value.at(0, c);

    double sum_g = 0.0;
    double sum_gx = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double g = grad_output.at(i, c);
      sum_g += g;
      sum_gx += g * x_hat_.at(i, c);
      gamma_.grad.at(0, c) += static_cast<float>(g * x_hat_.at(i, c));
      beta_.grad.at(0, c) += static_cast<float>(g);
    }

    if (!trained_with_batch_) {
      // Inference statistics were used: the normalisation is a per-element
      // affine map, so the gradient is a plain scale.
      for (std::size_t i = 0; i < n; ++i) {
        dx.at(i, c) = static_cast<float>(grad_output.at(i, c) * gamma * inv_std);
      }
      continue;
    }

    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double g = grad_output.at(i, c);
      const double xh = x_hat_.at(i, c);
      dx.at(i, c) =
          static_cast<float>(gamma * inv_std * (g - inv_n * sum_g - xh * inv_n * sum_gx));
    }
  }
  return dx;
}

std::vector<Parameter*> BatchNorm1d::parameters() { return {&gamma_, &beta_}; }

std::vector<Parameter*> BatchNorm1d::buffers() { return {&running_mean_, &running_var_}; }

// ---- Sequential ------------------------------------------------------------

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, training);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> out;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<Parameter*> Sequential::buffers() {
  std::vector<Parameter*> out;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->buffers()) out.push_back(p);
  }
  return out;
}

std::unique_ptr<Sequential> make_mlp(std::size_t in_features,
                                     const std::vector<std::size_t>& hidden, Rng& rng,
                                     bool batch_norm, const std::string& name) {
  check_arg(!hidden.empty(), "make_mlp needs at least one layer");
  auto mlp = std::make_unique<Sequential>();
  std::size_t in = in_features;
  for (std::size_t i = 0; i < hidden.size(); ++i) {
    const std::string lname = name + ".l" + std::to_string(i);
    mlp->emplace<Linear>(in, hidden[i], rng, lname);
    if (batch_norm) mlp->emplace<BatchNorm1d>(hidden[i], rng, 0.1, 1e-5, lname);
    mlp->emplace<ReLU>();
    in = hidden[i];
  }
  return mlp;
}

}  // namespace gp::nn
