#include "nn/grad_check.hpp"

#include <cmath>

namespace gp::nn {

namespace {

// Deterministic probe vector: pseudo-random but fixed weights so the scalar
// objective L = sum_ij probe_ij * out_ij exercises every output element.
float probe_weight(std::size_t i) {
  return 0.25f + 0.5f * static_cast<float>((i * 2654435761u % 97)) / 97.0f;
}

double weighted_sum(const Tensor& out) {
  double acc = 0.0;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    acc += probe_weight(i) * static_cast<double>(out.vec()[i]);
  }
  return acc;
}

Tensor probe_grad(const Tensor& out) {
  Tensor g(out.rows(), out.cols());
  for (std::size_t i = 0; i < g.numel(); ++i) g.vec()[i] = probe_weight(i);
  return g;
}

}  // namespace

GradCheckResult grad_check(Layer& layer, const Tensor& input, bool training, double epsilon,
                           double tolerance) {
  GradCheckResult result;

  // Analytic pass.
  for (Parameter* p : layer.parameters()) p->grad.zero();
  const Tensor out = layer.forward(input, training);
  const Tensor analytic_dx = layer.backward(probe_grad(out));

  // Snapshot parameter grads (backward accumulated them).
  std::vector<Tensor> param_grads;
  for (Parameter* p : layer.parameters()) param_grads.push_back(p->grad);

  // Numeric input gradient.
  Tensor x = input;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    const float orig = x.vec()[i];
    x.vec()[i] = orig + static_cast<float>(epsilon);
    const double f_plus = weighted_sum(layer.forward(x, training));
    x.vec()[i] = orig - static_cast<float>(epsilon);
    const double f_minus = weighted_sum(layer.forward(x, training));
    x.vec()[i] = orig;
    const double numeric = (f_plus - f_minus) / (2.0 * epsilon);
    const double err = std::fabs(numeric - analytic_dx.vec()[i]);
    result.max_input_error = std::max(result.max_input_error, err);
    ++result.input_checked;
    if (err > tolerance) ++result.input_bad;
  }

  // Numeric parameter gradients.
  const auto params = layer.parameters();
  for (std::size_t k = 0; k < params.size(); ++k) {
    Tensor& value = params[k]->value;
    for (std::size_t i = 0; i < value.numel(); ++i) {
      const float orig = value.vec()[i];
      value.vec()[i] = orig + static_cast<float>(epsilon);
      const double f_plus = weighted_sum(layer.forward(input, training));
      value.vec()[i] = orig - static_cast<float>(epsilon);
      const double f_minus = weighted_sum(layer.forward(input, training));
      value.vec()[i] = orig;
      const double numeric = (f_plus - f_minus) / (2.0 * epsilon);
      const double err = std::fabs(numeric - param_grads[k].vec()[i]);
      result.max_param_error = std::max(result.max_param_error, err);
      ++result.param_checked;
      if (err > tolerance) ++result.param_bad;
    }
  }
  return result;
}

double scalar_grad_check(const std::function<double(const Tensor&)>& f, const Tensor& x,
                         const Tensor& analytic_grad, double epsilon) {
  check_arg(x.numel() == analytic_grad.numel(), "grad shape mismatch");
  Tensor probe = x;
  double worst = 0.0;
  for (std::size_t i = 0; i < probe.numel(); ++i) {
    const float orig = probe.vec()[i];
    probe.vec()[i] = orig + static_cast<float>(epsilon);
    const double f_plus = f(probe);
    probe.vec()[i] = orig - static_cast<float>(epsilon);
    const double f_minus = f(probe);
    probe.vec()[i] = orig;
    const double numeric = (f_plus - f_minus) / (2.0 * epsilon);
    worst = std::max(worst, std::fabs(numeric - analytic_grad.vec()[i]));
  }
  return worst;
}

}  // namespace gp::nn
