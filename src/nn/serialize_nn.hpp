// Parameter (de)serialization: persists trained models to the gp binary
// format so benches can cache expensive training runs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/layers.hpp"

namespace gp::nn {

/// Writes parameters (names + tensors) to a stream.
void save_parameters(std::ostream& out, const std::vector<Parameter*>& params);

/// Restores parameters in place. Throws SerializationError when names or
/// shapes do not match the stream contents.
void load_parameters(std::istream& in, const std::vector<Parameter*>& params);

/// File-path convenience wrappers.
void save_parameters_file(const std::string& path, const std::vector<Parameter*>& params);
void load_parameters_file(const std::string& path, const std::vector<Parameter*>& params);

}  // namespace gp::nn
