// First-order optimisers over Parameter lists.
#pragma once

#include <vector>

#include "nn/layers.hpp"

namespace gp::nn {

/// Base optimiser: step() applies accumulated gradients, then clears them.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;
  void zero_grad();

 protected:
  std::vector<Parameter*> params_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, double lr, double momentum = 0.0,
      double weight_decay = 0.0);
  void step() override;

 private:
  double lr_;
  double momentum_;
  double weight_decay_;
  std::vector<Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, double lr = 1e-3, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8, double weight_decay = 0.0);
  void step() override;

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  double weight_decay_;
  long step_count_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace gp::nn
