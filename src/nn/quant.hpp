// Post-training int8 symmetric quantization for the fused inference path.
//
// Scheme (zero-point-free, per-output-channel):
//   * weights: after the BatchNorm fold, each output channel c of a
//     FusedLinear gets scale_w[c] = maxabs(W[:,c]) / 127; the channel is
//     stored as int8 in [-127, 127] (round-to-nearest via lrintf, saturated).
//     A dead channel (maxabs == 0) stores scale 0 and all-zero weights.
//   * activations: per input row, a dynamic scale sx = maxabs(x) / 127; the
//     row is quantized once into a reusable int16 scratch so the inner loop
//     is a pure int16*int16 -> int32 multiply-accumulate the vectorizer can
//     lower to pmaddwd/vpdpwssd.
//   * accumulation is exact int32 (127*127*K stays far below 2^31 for every
//     layer width in this codebase), so the integer loop is associative and
//     bitwise-deterministic regardless of vector width or thread count.
//   * dequantization folds into the ReLU epilogue:
//       y[j] = bias[j] + float(acc) * (sx * scale_w[j]), then the clamp.
//
// Tables are computed at fuse_for_inference() time from the exact
// double-precision BN-folded weights, or preloaded from a .gpsy quant
// section (save/load below) — both routes yield identical tables because
// quantization of identical f32 weights is deterministic.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace gp::nn {

/// Inference quantization mode. kOff keeps the f32 fused path (the bitwise
/// baseline the goldens pin); kInt8 enables the symmetric int8 path.
enum class QuantMode : std::uint8_t { kOff = 0, kInt8 = 1 };

/// GP_QUANT env override: "int8" selects QuantMode::kInt8; empty/unset keeps
/// `fallback`; anything else warns and keeps `fallback` (never throws — this
/// guards an operator-facing env boundary, same contract as GP_ABSTAIN_MARGIN).
QuantMode quant_mode_from_env(QuantMode fallback = QuantMode::kOff);

/// Human-readable mode name ("off" / "int8") for logs, metrics and bench JSON.
const char* quant_mode_name(QuantMode mode);

/// Quantized tables for one fused (BN-folded) linear layer. `qweight` is
/// out-major: channel c occupies qweight[c*in .. c*in+in), so the int8 inner
/// loop streams one contiguous channel per output.
struct QuantLinearTables {
  std::uint32_t in = 0;
  std::uint32_t out = 0;
  std::vector<float> scales;        ///< per-output-channel weight scales, size out
  std::vector<std::int8_t> qweight; ///< out-major int8 weights, size in*out
};

/// Quantizes a BN-folded weight matrix given in transposed (in x out,
/// column-per-channel) layout — exactly FusedLinear's weight_t layout.
/// Deterministic: round-to-nearest (lrintf), saturation clamp to [-127, 127].
QuantLinearTables quantize_folded(const std::vector<float>& weight_t, std::size_t in,
                                  std::size_t out);

/// Cursor over a preloaded table sequence; fuse_inference consumes tables in
/// layer order and validates shape agreement against the folded weights.
struct QuantTableCursor {
  const std::vector<QuantLinearTables>* tables = nullptr;
  std::size_t next = 0;

  bool exhausted() const { return tables == nullptr || next >= tables->size(); }
};

/// Serializes a table sequence as a tagged section ("GPQ8") inside a larger
/// stream. The reader is hardened: counts are validated against remaining
/// stream bytes, scales must be finite and non-negative, every qweight byte
/// must lie in [-127, 127] (symmetric range: -128 is rejected), and the
/// size bookkeeping must be self-consistent — anything else throws
/// SerializationError, never crashes.
void save_quant_tables(std::ostream& out, const std::vector<QuantLinearTables>& tables);
std::vector<QuantLinearTables> load_quant_tables(std::istream& in);

}  // namespace gp::nn
