// Dense float tensor (row-major) plus the matrix kernels the layer library
// is built on. Two-dimensional matrices cover every need of this codebase:
// point clouds are flattened to [rows, channels] before entering layers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "exec/exec.hpp"

namespace gp::nn {

class Tensor {
 public:
  Tensor() = default;
  /// Matrix constructor (the common case).
  Tensor(std::size_t rows, std::size_t cols, float fill = 0.0f);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  void fill(float v);
  void zero() { fill(0.0f); }

  /// Reshapes to (rows x cols), reusing the existing allocation whenever
  /// capacity suffices (no shrink-to-fit). Element contents are unspecified
  /// afterwards — callers are expected to overwrite every cell.
  void resize(std::size_t rows, std::size_t cols);

  /// Gaussian init with the given stddev.
  void randn(Rng& rng, double stddev);

  /// Element-wise helpers used by optimisers/fusion code.
  Tensor& operator+=(const Tensor& other);
  Tensor& operator*=(float s);

  /// Frobenius-style reductions for diagnostics.
  double sum() const;
  double abs_max() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

// The matrix kernels partition work into row panels of the *output* matrix,
// executed on the given ExecContext. Each output element is produced by
// exactly one chunk with the serial accumulation order, so results are
// bitwise-identical for every thread count (see DESIGN.md "Execution
// model"). Small products run inline to avoid dispatch overhead.

/// out = a (rows x k) * b (k x cols). Shapes validated.
void matmul(const Tensor& a, const Tensor& b, Tensor& out,
            exec::ExecContext& ctx = exec::ExecContext::global());
/// out = a (rows x k) * b^T where b is (cols x k).
void matmul_bt(const Tensor& a, const Tensor& b, Tensor& out,
               exec::ExecContext& ctx = exec::ExecContext::global());
/// out = a^T (k x rows) * b (k x cols)  => (rows x cols).
void matmul_at(const Tensor& a, const Tensor& b, Tensor& out,
               exec::ExecContext& ctx = exec::ExecContext::global());

}  // namespace gp::nn
