// Neural-network layers with hand-written exact backward passes.
//
// Layers are stateful: forward() caches whatever backward() needs, so the
// usual call pattern is forward -> loss -> backward in lockstep. Parameter
// gradients accumulate into Parameter::grad until the optimiser consumes
// and clears them. Every backward pass here is verified against numerical
// differentiation in tests/test_nn_gradcheck.cpp.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/quant.hpp"
#include "nn/tensor.hpp"

namespace gp::nn {

/// A learnable tensor with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;
};

/// Base class: 2-D in, 2-D out.
class Layer {
 public:
  virtual ~Layer() = default;
  /// `training` toggles dropout/batch-norm statistics behaviour.
  virtual Tensor forward(const Tensor& input, bool training) = 0;
  /// Consumes dL/d(output); returns dL/d(input); accumulates param grads.
  virtual Tensor backward(const Tensor& grad_output) = 0;
  virtual std::vector<Parameter*> parameters() { return {}; }
  /// Non-learned persistent state (e.g. batch-norm running statistics);
  /// serialized alongside parameters but never touched by optimisers.
  virtual std::vector<Parameter*> buffers() { return {}; }
};

/// y = x W^T + b, with W stored (out x in) and Kaiming-uniform init.
class Linear : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng, std::string name = "linear");

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  Parameter weight_;  ///< (out x in)
  Parameter bias_;    ///< (1 x out)
  Tensor cached_input_;
};

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  Tensor mask_;
};

/// Inverted dropout: scales kept activations by 1/(1-p) during training.
class Dropout : public Layer {
 public:
  Dropout(double p, Rng& rng);
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  double p_;
  Rng* rng_;
  Tensor mask_;
};

/// Batch normalisation over the row (batch) dimension of a [N, C] matrix,
/// with running statistics for inference.
class BatchNorm1d : public Layer {
 public:
  BatchNorm1d(std::size_t num_features, Rng& rng, double momentum = 0.1, double eps = 1e-5,
              std::string name = "bn");

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::vector<Parameter*> buffers() override;

  Tensor& running_mean() { return running_mean_.value; }
  Tensor& running_var() { return running_var_.value; }
  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }
  double eps() const { return eps_; }

 private:
  std::size_t features_;
  double momentum_;
  double eps_;
  Parameter gamma_;  ///< (1 x C)
  Parameter beta_;   ///< (1 x C)
  Parameter running_mean_;  ///< buffer, not optimised
  Parameter running_var_;   ///< buffer, not optimised
  // Caches for backward.
  Tensor x_hat_;
  Tensor batch_var_;
  bool trained_with_batch_ = false;
};

/// Runs layers in order; owns them.
class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Builder-style append; returns a reference to the added layer.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::vector<Parameter*> buffers() override;

  std::size_t size() const { return layers_.size(); }

  /// Rewrites this stack into its inference-only fused form: every
  /// [Linear → BatchNorm1d? → ReLU?] run becomes one nn::FusedLinear
  /// (batch-norm folded via running statistics, ReLU as an epilogue) and
  /// Dropout layers are removed (identity at inference). Irreversible:
  /// afterwards backward() throws and parameters()/buffers() no longer
  /// expose the folded state — fuse only copies that will never be trained,
  /// serialized, or cloned (see nn/fused.hpp). With QuantMode::kInt8 each
  /// FusedLinear additionally builds (or consumes from `preload`, in layer
  /// order) symmetric int8 tables and runs the integer kernel; see
  /// nn/quant.hpp. Defined in fused.cpp.
  void fuse_inference(QuantMode mode = QuantMode::kOff, QuantTableCursor* preload = nullptr);

  /// Appends one QuantLinearTables per fusable [Linear → BatchNorm1d? →
  /// ReLU?] run, in the same order fuse_inference would fuse them —
  /// quantized from the identical double-precision BN fold, so save-time
  /// collection and fuse-time quantization agree bit-for-bit. Callable on
  /// the unfused (serialized-mode) stack. Defined in fused.cpp.
  void collect_quant_tables(std::vector<QuantLinearTables>& out);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Convenience: builds Linear -> BatchNorm -> ReLU stacks (the per-point
/// shared "MLP" unit of PointNet++-style networks).
std::unique_ptr<Sequential> make_mlp(std::size_t in_features,
                                     const std::vector<std::size_t>& hidden, Rng& rng,
                                     bool batch_norm = true, const std::string& name = "mlp");

}  // namespace gp::nn
