#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

namespace gp::nn {

Tensor softmax(const Tensor& logits) {
  Tensor out;
  softmax_into(logits, out);
  return out;
}

void softmax_into(const Tensor& logits, Tensor& out) {
  out.resize(logits.rows(), logits.cols());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const float* in = logits.row(i);
    float* o = out.row(i);
    float max_logit = in[0];
    for (std::size_t j = 1; j < logits.cols(); ++j) max_logit = std::max(max_logit, in[j]);
    double denom = 0.0;
    for (std::size_t j = 0; j < logits.cols(); ++j) {
      const double e = std::exp(static_cast<double>(in[j] - max_logit));
      o[j] = static_cast<float>(e);
      denom += e;
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::size_t j = 0; j < logits.cols(); ++j) o[j] *= inv;
  }
}

LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels,
                                 double weight) {
  check_arg(logits.rows() == labels.size(), "label count mismatch");
  check_arg(logits.rows() > 0, "empty batch");

  LossResult result;
  result.probabilities = softmax(logits);
  result.grad = result.probabilities;

  const double inv_n = 1.0 / static_cast<double>(logits.rows());
  double loss = 0.0;
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const int label = labels[i];
    check_arg(label >= 0 && static_cast<std::size_t>(label) < logits.cols(),
              "label out of range");
    const double p = std::max(static_cast<double>(result.probabilities.at(i, label)), 1e-12);
    loss -= std::log(p);
    result.grad.at(i, static_cast<std::size_t>(label)) -= 1.0f;
  }
  result.loss = weight * loss * inv_n;
  result.grad *= static_cast<float>(weight * inv_n);
  return result;
}

double accuracy(const Tensor& logits, const std::vector<int>& labels) {
  check_arg(logits.rows() == labels.size(), "label count mismatch");
  if (logits.rows() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const float* row = logits.row(i);
    std::size_t best = 0;
    for (std::size_t j = 1; j < logits.cols(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    if (static_cast<int>(best) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(logits.rows());
}

}  // namespace gp::nn
