// Numerical gradient checking: verifies a layer's analytic backward pass
// against central finite differences. Used heavily in tests.
#pragma once

#include <functional>

#include "nn/layers.hpp"

namespace gp::nn {

struct GradCheckResult {
  double max_input_error = 0.0;  ///< max |analytic - numeric| over inputs
  double max_param_error = 0.0;  ///< max over all parameters
  std::size_t input_checked = 0;
  std::size_t input_bad = 0;     ///< coordinates with error > tolerance
  std::size_t param_checked = 0;
  std::size_t param_bad = 0;

  /// Strict pass: every coordinate within tolerance.
  bool passed() const { return input_bad == 0 && param_bad == 0; }
  /// Statistical pass for composites containing ReLU+max-pool: a finite-
  /// difference probe that crosses a ReLU kink produces an O(1) mismatch at
  /// isolated coordinates even when the backward pass is exact, so allow a
  /// small fraction of outliers (a real backward bug corrupts most
  /// coordinates, not a fraction of a percent).
  bool passed(double allowed_bad_fraction) const {
    const double total = static_cast<double>(input_checked + param_checked);
    const double bad = static_cast<double>(input_bad + param_bad);
    return total > 0 && bad / total <= allowed_bad_fraction;
  }
};

/// Checks d(sum of outputs * probe)/d(input) and parameter gradients for
/// `layer` at the given input. `training` selects the forward mode (dropout
/// layers should be checked with training=false or a fixed mask).
/// `tolerance` is the per-coordinate error bound used for the bad counts.
GradCheckResult grad_check(Layer& layer, const Tensor& input, bool training = true,
                           double epsilon = 1e-3, double tolerance = 2e-2);

/// Generic scalar-function check: |d f / d x_i - numeric| for an arbitrary
/// differentiable scalar function with analytic gradient supplied.
double scalar_grad_check(const std::function<double(const Tensor&)>& f, const Tensor& x,
                         const Tensor& analytic_grad, double epsilon = 1e-3);

}  // namespace gp::nn
