#include "nn/serialize_nn.hpp"

#include <fstream>

#include "common/serialize.hpp"

namespace gp::nn {

namespace {
constexpr const char* kTag = "GPNN";
}

void save_parameters(std::ostream& out, const std::vector<Parameter*>& params) {
  BinaryWriter writer(out, kTag);
  writer.write_u32(static_cast<std::uint32_t>(params.size()));
  for (const Parameter* p : params) {
    writer.write_string(p->name);
    writer.write_u32(static_cast<std::uint32_t>(p->value.rows()));
    writer.write_u32(static_cast<std::uint32_t>(p->value.cols()));
    writer.write_f32_vector(p->value.vec());
  }
}

void load_parameters(std::istream& in, const std::vector<Parameter*>& params) {
  BinaryReader reader(in, kTag);
  const std::uint32_t count = reader.read_u32();
  if (count != params.size()) {
    throw SerializationError("parameter count mismatch while loading model");
  }
  for (Parameter* p : params) {
    const std::string name = reader.read_string();
    const std::uint32_t rows = reader.read_u32();
    const std::uint32_t cols = reader.read_u32();
    if (name != p->name || rows != p->value.rows() || cols != p->value.cols()) {
      throw SerializationError("parameter layout mismatch at " + p->name);
    }
    p->value.vec() = reader.read_f32_vector();
    if (p->value.vec().size() != static_cast<std::size_t>(rows) * cols) {
      throw SerializationError("parameter payload size mismatch at " + p->name);
    }
  }
}

void save_parameters_file(const std::string& path, const std::vector<Parameter*>& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open model file for writing: " + path);
  save_parameters(out, params);
}

void load_parameters_file(const std::string& path, const std::vector<Parameter*>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open model file for reading: " + path);
  load_parameters(in, params);
}

}  // namespace gp::nn
