// Classification losses and probability utilities.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/tensor.hpp"

namespace gp::nn {

/// Row-wise softmax of logits.
Tensor softmax(const Tensor& logits);

/// Allocation-free variant: writes the row-wise softmax into `out`,
/// reusing its buffer when the shape already matches.
void softmax_into(const Tensor& logits, Tensor& out);

struct LossResult {
  double loss = 0.0;     ///< mean cross-entropy over the batch
  Tensor grad;           ///< dL/d(logits), already divided by batch size
  Tensor probabilities;  ///< row-wise softmax (useful for metrics)
};

/// Mean softmax cross-entropy with integer labels. `weight` scales the
/// contribution of the whole batch (used for the auxiliary loss term).
LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels,
                                 double weight = 1.0);

/// Fraction of rows whose argmax equals the label.
double accuracy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace gp::nn
