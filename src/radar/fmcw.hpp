// FMCW IF-signal synthesis.
//
// For each reflector the received chirp mixes with the transmitted chirp to
// an IF tone whose frequency encodes range, whose chirp-to-chirp phase
// rotation encodes radial velocity, and whose antenna-to-antenna phase
// encodes arrival angle. We synthesise exactly that model:
//
//   s(a, c, t) = sum_k A_k * exp(j [ 2*pi*f_b(k,c) * t + phi_0(k,c) + phi_a(k,a) ])
//
//   f_b   = 2 * slope * R_kc / c_light          (beat frequency)
//   phi_0 = 4*pi * f_carrier * R_kc / c_light   (round-trip carrier phase)
//   R_kc  = R_k + v_k * c * T_chirp             (range at chirp c)
//   phi_a = pi * a * sin(az)*cos(el)            (azimuth ULA, lambda/2)
//         | pi * e * sin(el)                    (elevation ULA, lambda/2)
//   A_k   = tx_gain * sqrt(rcs) / R^2           (radar-equation amplitude)
//
// plus complex AWGN. The per-sample phase advance is constant within a
// chirp, so the inner loop is a complex-multiply recurrence (no exp calls).
#pragma once

#include "common/rng.hpp"
#include "dsp/range_doppler.hpp"
#include "kinematics/performer.hpp"
#include "radar/config.hpp"

namespace gp {

/// Spherical target parameters as seen from the radar at the origin.
struct TargetEcho {
  double range = 0.0;          ///< m
  double radial_velocity = 0;  ///< m/s, + receding
  double azimuth = 0.0;        ///< rad, + toward +x
  double elevation = 0.0;      ///< rad, + toward +z
  double rcs = 1.0;
};

/// Converts a reflector (Cartesian position/velocity) to echo parameters.
TargetEcho reflector_to_echo(const Reflector& reflector);

/// Synthesises the raw IF data cube for one frame of reflectors.
dsp::DataCube synthesize_frame(const RadarConfig& config,
                               const std::vector<Reflector>& reflectors, Rng& rng);

}  // namespace gp
