// RadarSensor: the facade the rest of the system talks to. It hides which
// backend turns reflector scenes into point-cloud frames.
#pragma once

#include "common/rng.hpp"
#include "kinematics/performer.hpp"
#include "pointcloud/point.hpp"
#include "radar/config.hpp"
#include "radar/fast_backend.hpp"

namespace gp {

enum class RadarBackend {
  kFullChain,  ///< FMCW synthesis + FFT/CFAR chain (bit-accurate, slow)
  kGeometric,  ///< calibrated geometric model (fast, statistically matched)
};

class RadarSensor {
 public:
  explicit RadarSensor(RadarConfig config = {}, RadarBackend backend = RadarBackend::kGeometric,
                       FastBackendConfig fast_config = {});

  /// Observes one gesture performance, producing per-frame point clouds.
  FrameSequence observe(const SceneSequence& scene, Rng& rng) const;

  /// Observes a single frame.
  FrameCloud observe_frame(const SceneFrame& frame, Rng& rng) const;

  /// Buffer-reusing variant: identical frame written into `out`, recycling
  /// its point storage across frames (the streaming producer path).
  void observe_frame_into(const SceneFrame& frame, Rng& rng, FrameCloud& out) const;

  const RadarConfig& config() const { return config_; }
  RadarBackend backend() const { return backend_; }

 private:
  RadarConfig config_;
  RadarBackend backend_;
  FastBackendConfig fast_config_;
};

}  // namespace gp
