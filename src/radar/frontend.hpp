// Full radar detection chain: IF data cube -> range/Doppler FFTs -> static
// clutter removal -> CA-CFAR -> FFT angle estimation -> Cartesian points.
// This mirrors the on-chip processing of the TI device used in the paper.
#pragma once

#include "common/rng.hpp"
#include "dsp/range_doppler.hpp"
#include "kinematics/performer.hpp"
#include "pointcloud/point.hpp"
#include "radar/config.hpp"

namespace gp {

/// Runs the detection chain over an already-synthesised data cube.
PointCloud detect_points(const RadarConfig& config, const dsp::DataCube& cube, int frame_index);

/// Synthesises and processes one frame of reflectors end to end.
FrameCloud process_frame(const RadarConfig& config, const SceneFrame& scene, Rng& rng);

/// Processes a whole scene sequence (one gesture performance).
FrameSequence process_scene(const RadarConfig& config, const SceneSequence& scene, Rng& rng);

}  // namespace gp
