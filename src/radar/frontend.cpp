#include "radar/frontend.hpp"

#include <algorithm>
#include <cmath>

#include "common/math_utils.hpp"
#include "dsp/angle.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "radar/fmcw.hpp"

namespace gp {

PointCloud detect_points(const RadarConfig& config, const dsp::DataCube& cube, int frame_index) {
  GP_SPAN("radar.detect");
  dsp::RangeDopplerConfig rd_config;
  rd_config.static_clutter_removal = config.static_clutter_removal;
  const auto rd = dsp::range_doppler_transform(cube, rd_config);
  const auto power_map = dsp::integrate_power(rd);
  const auto detections = dsp::cfar_2d(power_map, config.range_cfar, config.doppler_cfar);
  GP_COUNTER_ADD("gp.radar.cfar_detections", detections.size());

  GP_SPAN("radar.angle_fft");
  const std::size_t zero_doppler = config.num_chirps / 2;
  PointCloud points;
  points.reserve(detections.size());

  for (const auto& det : detections) {
    // The device discards zero-Doppler detections when static clutter
    // removal is enabled (they are residual clutter by construction).
    if (config.static_clutter_removal && det.col == zero_doppler) continue;

    const double range = (static_cast<double>(det.row) + 0.5) * config.range_resolution;
    const double velocity =
        (static_cast<double>(det.col) - static_cast<double>(zero_doppler)) *
        config.velocity_resolution();

    // Angle estimation from per-antenna snapshots at this range-Doppler bin.
    std::vector<dsp::cplx> az_snap(config.num_azimuth_antennas);
    for (std::size_t a = 0; a < config.num_azimuth_antennas; ++a) {
      az_snap[a] = rd.at(a, det.row, det.col);
    }
    std::vector<dsp::cplx> el_snap(config.num_elevation_antennas);
    for (std::size_t e = 0; e < config.num_elevation_antennas; ++e) {
      el_snap[e] = rd.at(config.num_azimuth_antennas + e, det.row, det.col);
    }

    const auto el_est = dsp::estimate_angle(el_snap, config.angle_fft_size);
    const double elevation = el_est.angle_rad;

    // The azimuth ULA measures spatial frequency sin(az)*cos(el); undo the
    // elevation projection.
    const auto az_est = dsp::estimate_angle(az_snap, config.angle_fft_size);
    const double cos_el = std::max(std::cos(elevation), 0.2);
    const double sin_az = std::clamp(std::sin(az_est.angle_rad) / cos_el, -1.0, 1.0);
    const double azimuth = std::asin(sin_az);

    RadarPoint point;
    point.position = Vec3(range * std::sin(azimuth) * std::cos(elevation),
                          range * std::cos(azimuth) * std::cos(elevation),
                          range * std::sin(elevation));
    point.velocity = velocity;
    point.snr_db = det.snr_db();
    point.frame = frame_index;
    points.push_back(point);
  }
  GP_COUNTER_ADD("gp.radar.points_detected", points.size());
  return points;
}

FrameCloud process_frame(const RadarConfig& config, const SceneFrame& scene, Rng& rng) {
  const auto cube = synthesize_frame(config, scene.reflectors, rng);
  FrameCloud frame;
  frame.frame_index = scene.frame_index;
  frame.timestamp = scene.timestamp;
  frame.points = detect_points(config, cube, scene.frame_index);
  return frame;
}

FrameSequence process_scene(const RadarConfig& config, const SceneSequence& scene, Rng& rng) {
  FrameSequence out;
  out.reserve(scene.size());
  for (const auto& frame : scene) out.push_back(process_frame(config, frame, rng));
  return out;
}

}  // namespace gp
