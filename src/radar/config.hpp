// FMCW radar configuration modelled on the paper's IWR6843AOPEVM settings
// (§V): 60–64 GHz band, 3TX x 4RX, 10 fps, 0.04 m range resolution,
// 2.7 m/s max radial velocity, 0.34 m/s velocity resolution.
#pragma once

#include <cstddef>

#include "dsp/cfar.hpp"

namespace gp {

struct RadarConfig {
  double carrier_hz = 60.25e9;      ///< chirp start frequency
  double range_resolution = 0.04;   ///< m  (=> bandwidth = c / (2 * 0.04))
  double max_velocity = 2.7;        ///< m/s, max unambiguous radial velocity
  std::size_t num_samples = 256;    ///< ADC samples per chirp (pow2)
  std::size_t num_chirps = 16;      ///< chirps per frame (pow2) => v_res 0.34
  std::size_t num_azimuth_antennas = 8;   ///< virtual ULA along x
  std::size_t num_elevation_antennas = 4; ///< virtual ULA along z
  double frame_rate = 10.0;         ///< frames per second
  double noise_sigma = 0.004;       ///< IF-sample AWGN standard deviation
  double tx_gain = 0.08;            ///< amplitude scale of the radar equation
  bool static_clutter_removal = true;
  dsp::CfarConfig range_cfar{2, 8, 1e-4};
  dsp::CfarConfig doppler_cfar{1, 4, 5e-3};
  std::size_t angle_fft_size = 64;

  // ---- derived quantities ----
  double wavelength() const;
  double bandwidth_hz() const;      ///< c / (2 * range_resolution)
  double chirp_duration_s() const;  ///< lambda / (4 * max_velocity)
  double chirp_slope() const;       ///< bandwidth / chirp duration
  double adc_rate_hz() const;       ///< num_samples / chirp duration
  double velocity_resolution() const;  ///< 2*max_velocity / num_chirps
  double max_range() const;         ///< (num_samples/2) * range_resolution
  std::size_t num_range_bins() const { return num_samples / 2; }
  std::size_t num_virtual_antennas() const {
    return num_azimuth_antennas + num_elevation_antennas;
  }

  /// Throws InvalidArgument if the configuration is inconsistent.
  void validate() const;
};

}  // namespace gp
