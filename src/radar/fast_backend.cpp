#include "radar/fast_backend.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/math_utils.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "radar/fmcw.hpp"

namespace gp {

namespace {

struct BinKey {
  int range_bin;
  int vel_bin;
  int az_bin;
  int el_bin;
  bool operator==(const BinKey&) const = default;
};

struct BinKeyHash {
  std::size_t operator()(const BinKey& k) const {
    std::size_t h = static_cast<std::size_t>(k.range_bin);
    h = h * 1000003u + static_cast<std::size_t>(k.vel_bin + 512);
    h = h * 1000003u + static_cast<std::size_t>(k.az_bin + 512);
    h = h * 1000003u + static_cast<std::size_t>(k.el_bin + 512);
    return h;
  }
};

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

FrameCloud fast_process_frame(const RadarConfig& radar, const FastBackendConfig& config,
                              const SceneFrame& scene, Rng& rng) {
  FrameCloud frame;
  fast_process_frame_into(radar, config, scene, rng, frame);
  return frame;
}

void fast_process_frame_into(const RadarConfig& radar, const FastBackendConfig& config,
                             const SceneFrame& scene, Rng& rng, FrameCloud& out) {
  GP_SPAN("radar.fast_backend");
  GP_COUNTER_ADD("gp.radar.frames_fast", 1);
  radar.validate();
  FrameCloud& frame = out;
  frame.points.clear();
  frame.frame_index = scene.frame_index;
  frame.timestamp = scene.timestamp;

  const double v_res = radar.velocity_resolution();
  const double sin_grid = 2.0 / static_cast<double>(radar.angle_fft_size);
  const int max_vel_bin = static_cast<int>(radar.num_chirps) / 2;

  // Strongest detection per resolution cell.
  std::unordered_map<BinKey, RadarPoint, BinKeyHash> cells;

  const auto try_detect = [&](const TargetEcho& echo, double snr_penalty_db) {
    if (echo.range < 0.1 || echo.range >= radar.max_range()) return;

    const double snr_db = config.snr_ref_db + 10.0 * std::log10(std::max(echo.rcs, 1e-6)) -
                          config.range_falloff * 20.0 *
                              std::log10(std::max(echo.range, 0.1) / config.ref_range) -
                          snr_penalty_db + rng.gaussian(0.0, config.snr_sigma);
    if (!rng.bernoulli(sigmoid((snr_db - config.p50_db) / config.slope_db))) return;

    // Velocity bin; bin 0 is removed by static clutter removal. A slowly
    // moving target (|v| < v_res/2) is not simply lost, though: the Doppler
    // window leaks a fraction of its energy into the adjacent bins, so it
    // survives clutter removal with probability ~ |v|/v_res at reduced SNR
    // — matching the full chain's windowed-FFT behaviour.
    int vel_bin = static_cast<int>(std::lround(echo.radial_velocity / v_res));
    double effective_snr = snr_db;
    if (radar.static_clutter_removal && vel_bin == 0) {
      const double frac = std::abs(echo.radial_velocity) / v_res;  // in [0, 0.5]
      if (!rng.bernoulli(frac)) return;
      vel_bin = echo.radial_velocity >= 0.0 ? 1 : -1;
      effective_snr -= 6.0;  // leakage loss
    }
    const int clamped_vel = std::clamp(vel_bin, -max_vel_bin, max_vel_bin - 1);

    // Range bin with sub-bin jitter.
    const double rj = echo.range + rng.gaussian(0.0, config.range_sigma);
    const int range_bin = std::clamp(
        static_cast<int>(rj / radar.range_resolution), 0,
        static_cast<int>(radar.num_range_bins()) - 1);

    // Angle measurement: noise then FFT-grid quantisation.
    const double sin_el_meas = std::clamp(
        std::sin(echo.elevation) + rng.gaussian(0.0, config.sin_el_sigma), -1.0, 1.0);
    const int el_bin = static_cast<int>(std::lround(sin_el_meas / sin_grid));
    const double sin_el_q = std::clamp(el_bin * sin_grid, -1.0, 1.0);
    const double cos_el = std::max(std::sqrt(1.0 - sin_el_q * sin_el_q), 0.2);

    const double spatial_az = std::sin(echo.azimuth) * std::cos(echo.elevation) +
                              rng.gaussian(0.0, config.sin_az_sigma);
    const int az_bin = static_cast<int>(std::lround(std::clamp(spatial_az, -1.0, 1.0) / sin_grid));
    const double sin_az = std::clamp(az_bin * sin_grid / cos_el, -1.0, 1.0);

    RadarPoint point;
    const double range_q = (static_cast<double>(range_bin) + 0.5) * radar.range_resolution;
    const double azimuth = std::asin(sin_az);
    const double elevation = std::asin(sin_el_q);
    point.position = Vec3(range_q * std::sin(azimuth) * std::cos(elevation),
                          range_q * std::cos(azimuth) * std::cos(elevation),
                          range_q * std::sin(elevation));
    point.velocity = clamped_vel * v_res;
    point.snr_db = effective_snr;
    point.frame = scene.frame_index;

    const BinKey key{range_bin, clamped_vel, az_bin, el_bin};
    auto [it, inserted] = cells.try_emplace(key, point);
    if (!inserted && point.snr_db > it->second.snr_db) it->second = point;
  };

  for (const auto& reflector : scene.reflectors) {
    const TargetEcho echo = reflector_to_echo(reflector);
    try_detect(echo, 0.0);

    // Multipath ghost: a delayed copy at extended range, weaker.
    if (rng.bernoulli(config.ghost_prob)) {
      TargetEcho ghost = echo;
      ghost.range += rng.uniform(0.5, 2.0);
      ghost.azimuth += rng.gaussian(0.0, 0.2);
      try_detect(ghost, rng.uniform(10.0, 20.0));
    }
  }

  // Residual environment clutter (moving reflectors the clutter filter
  // cannot remove: swaying cables, drifting chairs, fan blades...).
  int clutter_count = 0;
  double p = rng.uniform();
  double threshold = std::exp(-config.clutter_rate);
  while (p > threshold && clutter_count < 8) {  // inverse-CDF Poisson draw
    ++clutter_count;
    p *= rng.uniform();
  }
  for (int i = 0; i < clutter_count; ++i) {
    TargetEcho clutter;
    clutter.range = rng.uniform(0.4, radar.max_range() * 0.95);
    clutter.azimuth = rng.uniform(-1.0, 1.0);
    clutter.elevation = rng.uniform(-0.5, 0.5);
    clutter.rcs = rng.uniform(0.05, 0.5);
    Reflector fake;
    fake.position = Vec3(clutter.range * std::sin(clutter.azimuth) * std::cos(clutter.elevation),
                         clutter.range * std::cos(clutter.azimuth) * std::cos(clutter.elevation),
                         clutter.range * std::sin(clutter.elevation));
    const double v = (rng.bernoulli(0.5) ? 1.0 : -1.0) * rng.uniform(v_res, 3.0 * v_res);
    fake.velocity = fake.position.normalized() * v;
    fake.rcs = clutter.rcs;
    try_detect(reflector_to_echo(fake), 0.0);
  }

  frame.points.reserve(cells.size());
  for (auto& [key, point] : cells) frame.points.push_back(point);
}

FrameSequence fast_process_scene(const RadarConfig& radar, const FastBackendConfig& config,
                                 const SceneSequence& scene, Rng& rng) {
  // Persistent clutter sites: fixed positions for the whole scene, emitting
  // intermittently with small oscillating Doppler.
  struct ClutterSite {
    Vec3 position;
    double rcs;
    double doppler_amp;
    double phase;
  };
  std::vector<ClutterSite> sites;
  {
    const double sites_mean =
        config.site_emission_prob > 0.0
            ? 0.7 * config.clutter_rate / config.site_emission_prob
            : 0.0;
    // Inverse-CDF Poisson draw for the site count.
    int count = 0;
    double p = rng.uniform();
    double threshold = std::exp(-sites_mean);
    while (sites_mean > 0.0 && p > threshold && count < 10) {
      ++count;
      p *= rng.uniform();
    }
    const double v_res = radar.velocity_resolution();
    for (int i = 0; i < count; ++i) {
      const double range = rng.uniform(0.8, radar.max_range() * 0.9);
      const double az = rng.uniform(-1.0, 1.0);
      const double el = rng.uniform(-0.4, 0.4);
      ClutterSite site;
      site.position = Vec3(range * std::sin(az) * std::cos(el),
                           range * std::cos(az) * std::cos(el), range * std::sin(el));
      site.rcs = rng.uniform(0.08, 0.5);
      site.doppler_amp = rng.uniform(v_res, 3.0 * v_res);
      site.phase = rng.uniform(0.0, 2.0 * 3.14159265358979);
      sites.push_back(site);
    }
  }

  FastBackendConfig frame_config = config;
  frame_config.clutter_rate = 0.3 * config.clutter_rate;  // transient remainder

  FrameSequence out;
  out.reserve(scene.size());
  for (const auto& frame : scene) {
    SceneFrame augmented = frame;
    for (const auto& site : sites) {
      if (!rng.bernoulli(config.site_emission_prob)) continue;
      Reflector r;
      r.position = site.position;
      const double v = site.doppler_amp *
                       std::sin(site.phase + 2.0 * 3.14159265358979 * 0.8 * frame.timestamp);
      r.velocity = site.position.normalized() * v;
      r.rcs = site.rcs;
      augmented.reflectors.push_back(r);
    }
    out.push_back(fast_process_frame(radar, frame_config, augmented, rng));
  }
  return out;
}

}  // namespace gp
