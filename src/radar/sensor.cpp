#include "radar/sensor.hpp"

#include "radar/frontend.hpp"

namespace gp {

RadarSensor::RadarSensor(RadarConfig config, RadarBackend backend, FastBackendConfig fast_config)
    : config_(config), backend_(backend), fast_config_(fast_config) {
  config_.validate();
}

FrameCloud RadarSensor::observe_frame(const SceneFrame& frame, Rng& rng) const {
  if (backend_ == RadarBackend::kFullChain) return process_frame(config_, frame, rng);
  return fast_process_frame(config_, fast_config_, frame, rng);
}

void RadarSensor::observe_frame_into(const SceneFrame& frame, Rng& rng, FrameCloud& out) const {
  if (backend_ == RadarBackend::kFullChain) {
    out = process_frame(config_, frame, rng);  // full chain stays owning
    return;
  }
  fast_process_frame_into(config_, fast_config_, frame, rng, out);
}

FrameSequence RadarSensor::observe(const SceneSequence& scene, Rng& rng) const {
  if (backend_ == RadarBackend::kFullChain) return process_scene(config_, scene, rng);
  return fast_process_scene(config_, fast_config_, scene, rng);
}

}  // namespace gp
