// Fast geometric point-cloud backend.
//
// The full FMCW chain costs ~milliseconds per frame; dataset-scale sweeps
// (tens of thousands of gesture samples) need something cheaper. This
// backend skips waveform synthesis and directly maps each reflector to the
// detection the full chain would produce:
//   * range / velocity / angle quantised to the same bin grids,
//   * zero-Doppler detections discarded (static clutter removal),
//   * SNR-dependent detection probability with range falloff,
//   * per-bin deduplication (a radar cannot resolve within one cell),
//   * multipath ghost points and residual clutter injected at calibrated
//     rates.
// tests/test_oracles.cpp (BackendOracle) asserts its per-gesture cloud
// statistics agree with the full chain within physical tolerance bands
// (src/testkit/oracle.hpp: default_backend_bands()).
#pragma once

#include "common/rng.hpp"
#include "kinematics/performer.hpp"
#include "pointcloud/point.hpp"
#include "radar/config.hpp"

namespace gp {

struct FastBackendConfig {
  /// SNR in dB of a unit-RCS reflector at the reference range.
  double snr_ref_db = 22.0;
  double ref_range = 1.2;
  /// dB falloff per 20*log10(range/ref): 2.0 = radar-equation R^-4 power in
  /// dB terms halved by CFAR integration gain; 1.5 matches the paper's
  /// observed usable-but-degraded behaviour at 4.8 m.
  double range_falloff = 1.5;
  /// Logistic detection curve: P(detect) = sigmoid((snr - p50_db)/slope_db).
  double p50_db = 6.0;
  double slope_db = 3.0;
  /// Measurement noise on the spatial-frequency axes before binning.
  double sin_az_sigma = 0.010;
  double sin_el_sigma = 0.025;
  double range_sigma = 0.01;   ///< m, sub-bin beat-frequency jitter
  double snr_sigma = 1.5;      ///< dB
  /// Ghost (multipath) probability per detected point. Ghost ranges extend
  /// 0.5–2 m beyond the true target (wall-bounce path geometry).
  double ghost_prob = 0.02;
  /// Expected residual clutter points per frame (Poisson). In
  /// fast_process_scene roughly 70% of this budget is emitted by a few
  /// *persistent* clutter sites (fans, swaying fixtures) fixed for the whole
  /// scene — matching how residual clutter behaves in real rooms — and the
  /// rest stays transient. fast_process_frame alone is fully transient.
  double clutter_rate = 0.35;
  /// Per-frame emission probability of one persistent clutter site.
  double site_emission_prob = 0.5;
};

/// Produces the detections for one scene frame.
FrameCloud fast_process_frame(const RadarConfig& radar, const FastBackendConfig& config,
                              const SceneFrame& scene, Rng& rng);

/// Buffer-reusing variant: identical frame (same RNG draw order) written
/// into `out`, recycling its point storage across frames.
void fast_process_frame_into(const RadarConfig& radar, const FastBackendConfig& config,
                             const SceneFrame& scene, Rng& rng, FrameCloud& out);

/// Processes a whole gesture performance.
FrameSequence fast_process_scene(const RadarConfig& radar, const FastBackendConfig& config,
                                 const SceneSequence& scene, Rng& rng);

}  // namespace gp
