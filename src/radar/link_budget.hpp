// Radar link-budget analysis.
//
// Computes the post-processing SNR a reflector of given RCS yields at a
// given range under a RadarConfig, from first principles: the radar
// equation plus the coherent processing gains of the range FFT, Doppler FFT
// and non-coherent antenna integration. This is the calculation that
// justifies FastBackendConfig's calibration constants (snr_ref_db,
// range_falloff) and predicts the distance behaviour Fig. 11 measures.
#pragma once

#include "radar/config.hpp"
#include "radar/fast_backend.hpp"

namespace gp {

struct LinkBudget {
  double received_amplitude = 0.0;  ///< IF-signal amplitude of the echo
  double signal_power_db = 0.0;     ///< post-FFT peak power, dB
  double noise_power_db = 0.0;      ///< post-FFT noise floor, dB
  double snr_db = 0.0;              ///< signal - noise
  double processing_gain_db = 0.0;  ///< range+Doppler FFT + antenna gain
};

/// Analytic link budget for a point reflector (IF model of radar/fmcw.cpp,
/// Hann windows as in the processing chain).
LinkBudget compute_link_budget(const RadarConfig& config, double range_m, double rcs);

/// Range at which the post-processing SNR crosses `snr_threshold_db`
/// (bisection over [0.2, max_range]); the radar's practical detection range
/// for that RCS. Returns max_range when never crossing.
double detection_range(const RadarConfig& config, double rcs, double snr_threshold_db);

/// Calibrates a FastBackendConfig's reference SNR from the analytic budget
/// minus an implementation-loss margin. The analytic value is the ideal
/// coherent point-target bound; a gesturing arm loses ~25-35 dB against it
/// in practice (energy spread across range/Doppler cells during the frame,
/// skin/cloth RCS fluctuation, CFAR threshold margin, clutter-filter
/// attenuation of slow components). The default margin reproduces the
/// empirically tuned FastBackendConfig reference.
FastBackendConfig calibrate_fast_backend(const RadarConfig& config, FastBackendConfig base = {},
                                         double implementation_loss_db = 30.0);

}  // namespace gp
