#include "radar/config.hpp"

#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "dsp/fft.hpp"

namespace gp {

double RadarConfig::wavelength() const { return kSpeedOfLight / carrier_hz; }

double RadarConfig::bandwidth_hz() const { return kSpeedOfLight / (2.0 * range_resolution); }

double RadarConfig::chirp_duration_s() const { return wavelength() / (4.0 * max_velocity); }

double RadarConfig::chirp_slope() const { return bandwidth_hz() / chirp_duration_s(); }

double RadarConfig::adc_rate_hz() const {
  return static_cast<double>(num_samples) / chirp_duration_s();
}

double RadarConfig::velocity_resolution() const {
  return 2.0 * max_velocity / static_cast<double>(num_chirps);
}

double RadarConfig::max_range() const {
  return static_cast<double>(num_range_bins()) * range_resolution;
}

void RadarConfig::validate() const {
  check_arg(carrier_hz > 0.0, "carrier frequency must be positive");
  check_arg(range_resolution > 0.0, "range resolution must be positive");
  check_arg(max_velocity > 0.0, "max velocity must be positive");
  check_arg(dsp::is_pow2(num_samples), "num_samples must be a power of two");
  check_arg(dsp::is_pow2(num_chirps), "num_chirps must be a power of two");
  check_arg(num_azimuth_antennas >= 2, "need >= 2 azimuth antennas");
  check_arg(num_elevation_antennas >= 2, "need >= 2 elevation antennas");
  check_arg(dsp::is_pow2(angle_fft_size) &&
                angle_fft_size >= num_azimuth_antennas &&
                angle_fft_size >= num_elevation_antennas,
            "angle_fft_size must be pow2 and >= antenna counts");
  check_arg(frame_rate > 0.0, "frame rate must be positive");
}

}  // namespace gp
