#include "radar/link_budget.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace gp {

LinkBudget compute_link_budget(const RadarConfig& config, double range_m, double rcs) {
  config.validate();
  check_arg(range_m > 0.05, "link budget needs a positive range");
  check_arg(rcs > 0.0, "link budget needs a positive RCS");

  LinkBudget budget;
  // IF amplitude per the synthesis model (radar/fmcw.cpp): A = G sqrt(rcs)/R^2.
  budget.received_amplitude = config.tx_gain * std::sqrt(rcs) / (range_m * range_m);

  // Coherent processing gain. With a window w, an FFT of N samples raises a
  // tone of amplitude A to peak amplitude A * N * CG(w); Hann CG = 0.5.
  constexpr double kHannGain = 0.5;
  const double range_fft_amp = static_cast<double>(config.num_samples) * kHannGain;
  const double doppler_fft_amp = static_cast<double>(config.num_chirps) * kHannGain;
  const double signal_peak_amp = budget.received_amplitude * range_fft_amp * doppler_fft_amp;

  // Power after non-coherent integration over V antennas: V * |peak|^2.
  const double antennas = static_cast<double>(config.num_virtual_antennas());
  const double signal_power = antennas * signal_peak_amp * signal_peak_amp;

  // Noise: complex AWGN of per-sample variance 2*sigma^2 passes the two
  // FFTs with power gain N*M * window-power (Hann power gain = 3/8), then
  // the antenna sum adds V noise powers.
  constexpr double kHannPowerGain = 0.375;
  const double noise_power = antennas * 2.0 * config.noise_sigma * config.noise_sigma *
                             static_cast<double>(config.num_samples) * kHannPowerGain *
                             static_cast<double>(config.num_chirps) * kHannPowerGain;

  budget.signal_power_db = 10.0 * std::log10(signal_power);
  budget.noise_power_db = 10.0 * std::log10(noise_power);
  budget.snr_db = budget.signal_power_db - budget.noise_power_db;
  // Gain relative to a single raw sample's SNR.
  const double raw_snr = (budget.received_amplitude * budget.received_amplitude) /
                         (2.0 * config.noise_sigma * config.noise_sigma);
  budget.processing_gain_db = budget.snr_db - 10.0 * std::log10(raw_snr);
  return budget;
}

double detection_range(const RadarConfig& config, double rcs, double snr_threshold_db) {
  // SNR is monotonically decreasing in range (R^-4 power law), so bisect.
  double lo = 0.2;
  double hi = config.max_range();
  if (compute_link_budget(config, hi, rcs).snr_db >= snr_threshold_db) return hi;
  if (compute_link_budget(config, lo, rcs).snr_db < snr_threshold_db) return lo;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (compute_link_budget(config, mid, rcs).snr_db >= snr_threshold_db) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

FastBackendConfig calibrate_fast_backend(const RadarConfig& config, FastBackendConfig base,
                                         double implementation_loss_db) {
  // Pin the geometric backend's reference point to the analytic budget of a
  // unit-RCS reflector at the reference range, minus the implementation
  // loss (see header).
  base.snr_ref_db =
      compute_link_budget(config, base.ref_range, 1.0).snr_db - implementation_loss_db;
  return base;
}

}  // namespace gp
