#include "radar/fmcw.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gp {

TargetEcho reflector_to_echo(const Reflector& reflector) {
  TargetEcho echo;
  const Vec3& p = reflector.position;
  echo.range = p.norm();
  check_arg(echo.range > 1e-6, "reflector at the radar origin");
  echo.radial_velocity = reflector.velocity.dot(p / echo.range);
  const double ground = std::sqrt(p.x * p.x + p.y * p.y);
  echo.azimuth = std::atan2(p.x, p.y);
  echo.elevation = std::atan2(p.z, ground);
  echo.rcs = reflector.rcs;
  return echo;
}

dsp::DataCube synthesize_frame(const RadarConfig& config,
                               const std::vector<Reflector>& reflectors, Rng& rng) {
  GP_SPAN("radar.chirp_synth");
  GP_COUNTER_ADD("gp.radar.frames_synthesized", 1);
  config.validate();

  dsp::DataCube cube;
  cube.num_antennas = config.num_virtual_antennas();
  cube.num_chirps = config.num_chirps;
  cube.num_samples = config.num_samples;
  cube.data.assign(cube.num_antennas * cube.num_chirps * cube.num_samples, dsp::cplx(0, 0));

  const double slope = config.chirp_slope();
  const double tc = config.chirp_duration_s();
  const double ts = 1.0 / config.adc_rate_hz();
  const double fc = config.carrier_hz;
  const double max_range = config.max_range();

  for (const auto& reflector : reflectors) {
    const TargetEcho echo = reflector_to_echo(reflector);
    if (echo.range >= max_range || echo.range < 0.05) continue;

    const double amplitude =
        config.tx_gain * std::sqrt(std::max(echo.rcs, 0.0)) / (echo.range * echo.range);
    const double sin_az = std::sin(echo.azimuth);
    const double cos_el = std::cos(echo.elevation);
    const double sin_el = std::sin(echo.elevation);

    for (std::size_t a = 0; a < cube.num_antennas; ++a) {
      // Antennas [0, num_az) form the azimuth ULA along x; the rest form the
      // elevation ULA along z. Element spacing lambda/2 in both.
      double spatial_phase = 0.0;
      if (a < config.num_azimuth_antennas) {
        spatial_phase = kPi * static_cast<double>(a) * sin_az * cos_el;
      } else {
        spatial_phase = kPi * static_cast<double>(a - config.num_azimuth_antennas) * sin_el;
      }

      for (std::size_t c = 0; c < cube.num_chirps; ++c) {
        const double range_c = echo.range + echo.radial_velocity * (static_cast<double>(c) * tc);
        const double beat_freq = 2.0 * slope * range_c / kSpeedOfLight;
        const double phi0 =
            4.0 * kPi * fc * range_c / kSpeedOfLight + spatial_phase;

        // exp(j(phi0 + 2*pi*f_b*ts*s)) via a complex recurrence.
        const double dphi = 2.0 * kPi * beat_freq * ts;
        dsp::cplx w(std::cos(phi0), std::sin(phi0));
        const dsp::cplx step(std::cos(dphi), std::sin(dphi));
        dsp::cplx* row = &cube.at(a, c, 0);
        for (std::size_t s = 0; s < cube.num_samples; ++s) {
          row[s] += amplitude * w;
          w *= step;
        }
      }
    }
  }

  // Receiver noise: circular complex AWGN on every sample.
  if (config.noise_sigma > 0.0) {
    for (auto& v : cube.data) {
      v += dsp::cplx(rng.gaussian(0.0, config.noise_sigma), rng.gaussian(0.0, config.noise_sigma));
    }
  }
  return cube;
}

}  // namespace gp
