// gp::cluster configuration (DESIGN.md §12).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "faults/selfheal.hpp"
#include "serve/config.hpp"

namespace gp::cluster {

/// Deterministic link chaos for tests and cluster_bench: each direction of
/// every router↔worker link can corrupt the encoded envelope it is about to
/// send. Draws are a pure function of (seed, per-channel send counter), so a
/// retry (a fresh send) gets a fresh draw and a failing run replays exactly.
struct LinkFaultConfig {
  double flip_prob = 0.0;      ///< chance a sent envelope gets bits flipped
  std::size_t flip_bits = 3;   ///< flips per corrupted envelope
  double truncate_prob = 0.0;  ///< chance a sent envelope is cut short
  std::uint64_t seed = 0xC0DEC0DEULL;

  bool armed() const { return flip_prob > 0.0 || truncate_prob > 0.0; }
};

struct ClusterConfig {
  /// Worker processes forked at construction. GP_CLUSTER_WORKERS.
  std::size_t workers = 2;
  /// Consistent-hash ring points per worker slot: more points smooth the
  /// session distribution across slots.
  std::size_t virtual_nodes = 16;
  /// Heartbeat budget in ms: both the idle interval after which a worker is
  /// probed and the probe's reply deadline. GP_CLUSTER_HEARTBEAT_MS.
  std::uint64_t heartbeat_ms = 200;
  /// Consecutive failed probes before a hung worker is evicted.
  std::size_t max_missed_heartbeats = 3;
  /// Per-attempt reply deadline for ordinary RPCs (frames, pumps,
  /// checkpoints), in ms.
  std::uint64_t rpc_deadline_ms = 2000;
  /// Send/recv retry schedule per RPC; retry.deadline_ms bounds the whole
  /// RPC including backoffs (the faults::with_retries budget).
  faults::RetryPolicy retry{/*attempts=*/4, /*base_backoff_ms=*/1.0,
                            /*deadline_ms=*/10000};
  /// Frames accepted per session between state checkpoints. The replay
  /// buffer a failover re-delivers is at most this long.
  std::size_t checkpoint_every = 16;
  /// Fork a replacement into an evicted worker's slot. When false, capacity
  /// shrinks instead, and with every slot down push_frame sheds typed
  /// (Admission::kRejectedNoWorker).
  bool respawn = true;
  /// .gpsy model every worker publishes into its registry at spawn (empty:
  /// serve with no model — typed no-model abstentions).
  std::string model_path;
  /// Per-worker serving configuration. Workers force batch_wait_us=0 (every
  /// pump flushes, so checkpoints see a quiescent batcher) and
  /// stale_after_ticks=0 (per-worker tick counts vary with worker count;
  /// tick-based shedding would break the worker-count determinism bar).
  serve::ServeConfig serve;
  /// Link chaos applied to both directions of every link (tests/bench).
  LinkFaultConfig link_faults;

  /// Applies GP_CLUSTER_WORKERS / GP_CLUSTER_HEARTBEAT_MS on top of `base`;
  /// invalid values warn and keep the base value.
  static ClusterConfig from_env(ClusterConfig base);
  static ClusterConfig from_env() { return from_env(ClusterConfig{}); }
};

}  // namespace gp::cluster
