#include "cluster/worker.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <sstream>
#include <vector>

#include "cluster/wire.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "exec/exec.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"

namespace gp::cluster {

namespace {

/// Per-direction chaos seeds: slot s's router→worker sends draw from stream
/// 2s, worker→router replies from 2s+1, so the two directions of one link
/// (and different links) corrupt independently yet reproducibly.
LinkFaultConfig direction_faults(LinkFaultConfig base, std::size_t slot, bool reply_side) {
  base.seed = exec::child_seed(base.seed, 2 * static_cast<std::uint64_t>(slot) +
                                              (reply_side ? 1 : 0));
  return base;
}

/// Executes one decoded request against the worker's server. Handler
/// exceptions become typed kError replies — the worker never dies on a
/// request, only on a vanished router.
Message handle_request(serve::Server& server, const Message& request) {
  Message reply;
  reply.seq = request.seq;
  try {
    switch (request.type) {
      case MsgType::kFrame: {
        const WireFrame wf = decode_wire_frame(request.payload);
        const serve::Admission verdict = server.push_frame(wf.session_id, wf.frame);
        reply.type = MsgType::kAck;
        reply.payload = encode_ack(static_cast<std::uint32_t>(verdict));
        break;
      }
      case MsgType::kPump:
        reply.type = MsgType::kResults;
        reply.payload = encode_wire_results(server.pump());
        break;
      case MsgType::kDrainAll:
        reply.type = MsgType::kResults;
        reply.payload = encode_wire_results(server.drain());
        break;
      case MsgType::kCheckpoint: {
        const std::uint64_t session_id = decode_u64(request.payload);
        std::ostringstream blob(std::ios::binary);
        std::string state;
        if (server.export_session(session_id, blob)) state = blob.str();
        // Unknown session → empty blob: the router keeps its replay buffer
        // instead of treating a never-delivered session as an error.
        reply.type = MsgType::kState;
        reply.payload = encode_state(session_id, state);
        break;
      }
      case MsgType::kRestore: {
        const auto [session_id, blob] = decode_state(request.payload);
        std::istringstream in(blob, std::ios::binary);
        server.restore_session(session_id, in);
        reply.type = MsgType::kAck;
        reply.payload = encode_ack(0);
        break;
      }
      case MsgType::kHeartbeat:
        reply.type = MsgType::kAck;
        reply.payload = request.payload;  // echo the nonce back
        break;
      case MsgType::kShutdown:
        reply.type = MsgType::kAck;
        reply.payload = encode_ack(0);
        break;
      default:
        reply.type = MsgType::kError;
        reply.payload = encode_text(std::string("unexpected request type: ") +
                                    msg_type_name(request.type));
        break;
    }
  } catch (const Error& e) {
    reply.type = MsgType::kError;
    reply.payload = encode_text(e.what());
  }
  return reply;
}

}  // namespace

int worker_main(int fd, const ClusterConfig& config, std::size_t slot) {
  // Fork safety: the parent's ExecContext pool threads do not exist in this
  // process. SerialScope forces every context to run inline for the
  // worker's whole life — correct on this 1-core box and deadlock-free
  // everywhere.
  exec::SerialScope serial;

  serve::ServeConfig sc = config.serve;
  // Every pump flushes the batcher, so a checkpoint taken right after a
  // pump captures the whole stream; tick-based shedding is disabled because
  // per-worker tick counts vary with the worker count (determinism bar).
  sc.batch_wait_us = 0;
  sc.stale_after_ticks = 0;

  serve::ModelRegistry registry(sc.system);
  if (!config.model_path.empty() &&
      !registry.publish_file(config.model_path, sc.quant).has_value()) {
    log_warn() << "cluster worker " << slot << ": model publish failed for '"
               << config.model_path << "'; serving typed no-model abstentions";
  }
  serve::Server server(sc, registry);

  Channel channel(fd, direction_faults(config.link_faults, slot, /*reply_side=*/true));
  std::uint64_t last_seq = 0;
  std::string last_reply_envelope;
  bool have_reply = false;
  std::string bytes;
  for (;;) {
    bool got = false;
    try {
      got = channel.recv_message(bytes, /*deadline_ms=*/0);
    } catch (const Error&) {
      return 1;  // router died mid-message
    }
    if (!got) return 0;  // clean EOF: the router closed the link

    Message request;
    try {
      request = decode_message(bytes);
    } catch (const SerializationError& e) {
      // Corrupt transmission: typed rejection, no state change. seq 0 — the
      // seq inside corrupt bytes is untrusted — so it can never collide
      // with a real request (link seqs start at 1).
      Message reject;
      reject.type = MsgType::kCorrupt;
      reject.seq = 0;
      reject.payload = encode_text(e.what());
      try {
        channel.send_message(encode_message(reject));
      } catch (const Error&) {
        return 1;
      }
      continue;
    }

    try {
      if (have_reply && request.seq == last_seq) {
        // Duplicate of the last executed request (the router re-sent after
        // a lost or corrupt reply): resend the cached reply, execute
        // nothing. Re-encoding would consume a fresh chaos draw and is not
        // needed — send_message corrupts per send either way.
        channel.send_message(last_reply_envelope);
        continue;
      }
      const Message reply = handle_request(server, request);
      last_seq = request.seq;
      last_reply_envelope = encode_message(reply);
      have_reply = true;
      channel.send_message(last_reply_envelope);
      if (request.type == MsgType::kShutdown) return 0;
    } catch (const Error&) {
      return 1;  // send failed: router gone
    }
  }
}

WorkerHandle spawn_worker(const ClusterConfig& config, std::size_t slot,
                          const std::vector<int>& close_in_child) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw Error(std::string("cluster: socketpair failed: ") + std::strerror(errno));
  }
  // Flush stdio so buffered bytes are not emitted twice (once per process).
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw Error(std::string("cluster: fork failed: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: drop the router end plus every *other* router-side fd we
    // inherited (a sibling's link must not stay open in this process, or
    // that sibling would never see EOF when the router closes it).
    ::close(fds[0]);
    for (const int other : close_in_child) {
      if (other >= 0 && other != fds[1]) ::close(other);
    }
    int code = 1;
    try {
      code = worker_main(fds[1], config, slot);
    } catch (...) {
      code = 1;
    }
    // _exit: no atexit handlers, no static destructors, no leak sweep — the
    // parent owns the process-wide reporting.
    ::_exit(code);
  }
  ::close(fds[1]);
  WorkerHandle handle;
  handle.pid = pid;
  handle.slot = slot;
  handle.channel =
      Channel(fds[0], direction_faults(config.link_faults, slot, /*reply_side=*/false));
  return handle;
}

}  // namespace gp::cluster
