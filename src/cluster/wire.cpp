#include "cluster/wire.hpp"

#include <sstream>

#include "common/fnv.hpp"
#include "common/serialize.hpp"

namespace gp::cluster {

namespace {

constexpr const char* kEnvelopeTag = "GPWM";
constexpr const char* kFrameTag = "GPWF";
constexpr const char* kResultsTag = "GPWR";
constexpr const char* kControlTag = "GPWK";

/// Wire footprint floor of one RadarPoint (5 f64 + 1 i32), used to validate
/// untrusted point counts before any allocation.
constexpr std::size_t kMinPointBytes = 5 * sizeof(double) + sizeof(std::int32_t);
/// Wire footprint floor of one WireResult row.
constexpr std::size_t kMinResultBytes = 3 * sizeof(std::uint64_t);

/// The envelope checksum covers the payload bytes and the type/seq header
/// words: a flip in *any* of them must fail the decode, or a damaged seq
/// could defeat the worker's duplicate-suppression and double-execute a
/// request.
std::uint64_t envelope_checksum(MsgType type, std::uint64_t seq,
                                const std::string& payload) {
  std::uint64_t h = fnv::hash_string(payload);
  h = fnv::accumulate_value(h, static_cast<std::uint8_t>(type));
  h = fnv::accumulate_value(h, seq);
  return h;
}

}  // namespace

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kFrame: return "frame";
    case MsgType::kPump: return "pump";
    case MsgType::kDrainAll: return "drain_all";
    case MsgType::kCheckpoint: return "checkpoint";
    case MsgType::kRestore: return "restore";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kAck: return "ack";
    case MsgType::kResults: return "results";
    case MsgType::kState: return "state";
    case MsgType::kCorrupt: return "corrupt";
    case MsgType::kError: return "error";
  }
  return "?";
}

std::string encode_message(const Message& msg) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter w(out, kEnvelopeTag);
  w.write_u8(static_cast<std::uint8_t>(msg.type));
  w.write_u64(msg.seq);
  w.write_u64(envelope_checksum(msg.type, msg.seq, msg.payload));
  w.write_string(msg.payload);
  return out.str();
}

Message decode_message(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  BinaryReader r(in, kEnvelopeTag);
  const std::uint8_t raw_type = r.read_u8();
  if (raw_type > static_cast<std::uint8_t>(MsgType::kError)) {
    throw SerializationError("wire envelope: unknown message type " +
                             std::to_string(raw_type));
  }
  Message msg;
  msg.type = static_cast<MsgType>(raw_type);
  msg.seq = r.read_u64();
  const std::uint64_t checksum = r.read_u64();
  msg.payload = r.read_string();
  if (checksum != envelope_checksum(msg.type, msg.seq, msg.payload)) {
    throw SerializationError("wire envelope: checksum mismatch (corrupt transmission)");
  }
  return msg;
}

std::string encode_wire_frame(std::uint64_t session_id, const FrameView& frame) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter w(out, kFrameTag);
  w.write_u64(session_id);
  w.write_i32(frame.frame_index);
  w.write_f64(frame.timestamp);
  w.write_u64(frame.points.size());
  for (const RadarPoint& p : frame.points) {
    w.write_f64(p.position.x);
    w.write_f64(p.position.y);
    w.write_f64(p.position.z);
    w.write_f64(p.velocity);
    w.write_f64(p.snr_db);
    w.write_i32(p.frame);
  }
  return out.str();
}

WireFrame decode_wire_frame(const std::string& payload) {
  std::istringstream in(payload, std::ios::binary);
  BinaryReader r(in, kFrameTag);
  WireFrame wf;
  wf.session_id = r.read_u64();
  wf.frame.frame_index = r.read_i32();
  wf.frame.timestamp = r.read_f64();
  const std::uint64_t n = r.read_count(kMinPointBytes, "wire frame points");
  wf.frame.points.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    RadarPoint p;
    p.position.x = r.read_f64();
    p.position.y = r.read_f64();
    p.position.z = r.read_f64();
    p.velocity = r.read_f64();
    p.snr_db = r.read_f64();
    p.frame = r.read_i32();
    wf.frame.points.push_back(p);
  }
  return wf;
}

std::string encode_wire_results(const std::vector<serve::ServeResult>& results) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter w(out, kResultsTag);
  w.write_u64(results.size());
  for (const serve::ServeResult& res : results) {
    w.write_u64(res.session_id);
    w.write_u64(res.segment_ordinal);
    w.write_u64(res.request_id);
    w.write_i32(res.gesture);
    w.write_i32(res.user);
    w.write_u8(res.abstained ? 1 : 0);
    w.write_u8(res.quality_rejected ? 1 : 0);
    w.write_f64(res.gesture_margin);
    w.write_f64(res.user_margin);
    w.write_u64(res.model_version);
  }
  return out.str();
}

std::vector<serve::ServeResult> decode_wire_results(const std::string& payload) {
  std::istringstream in(payload, std::ios::binary);
  BinaryReader r(in, kResultsTag);
  const std::uint64_t n = r.read_count(kMinResultBytes, "wire results");
  std::vector<serve::ServeResult> results;
  results.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    serve::ServeResult res;
    res.session_id = r.read_u64();
    res.segment_ordinal = r.read_u64();
    res.request_id = r.read_u64();
    res.gesture = r.read_i32();
    res.user = r.read_i32();
    res.abstained = r.read_u8() != 0;
    res.quality_rejected = r.read_u8() != 0;
    res.gesture_margin = r.read_f64();
    res.user_margin = r.read_f64();
    res.model_version = r.read_u64();
    results.push_back(res);
  }
  return results;
}

std::string encode_ack(std::uint32_t code) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter w(out, kControlTag);
  w.write_u32(code);
  return out.str();
}

std::uint32_t decode_ack(const std::string& payload) {
  std::istringstream in(payload, std::ios::binary);
  BinaryReader r(in, kControlTag);
  return r.read_u32();
}

std::string encode_u64(std::uint64_t v) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter w(out, kControlTag);
  w.write_u64(v);
  return out.str();
}

std::uint64_t decode_u64(const std::string& payload) {
  std::istringstream in(payload, std::ios::binary);
  BinaryReader r(in, kControlTag);
  return r.read_u64();
}

std::string encode_state(std::uint64_t session_id, const std::string& blob) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter w(out, kControlTag);
  w.write_u64(session_id);
  w.write_string(blob);
  return out.str();
}

std::pair<std::uint64_t, std::string> decode_state(const std::string& payload) {
  std::istringstream in(payload, std::ios::binary);
  BinaryReader r(in, kControlTag);
  const std::uint64_t session_id = r.read_u64();
  return {session_id, r.read_string()};
}

std::string encode_text(const std::string& text) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter w(out, kControlTag);
  w.write_string(text);
  return out.str();
}

std::string decode_text(const std::string& payload) {
  std::istringstream in(payload, std::ios::binary);
  BinaryReader r(in, kControlTag);
  return r.read_string();
}

}  // namespace gp::cluster
