// gp::cluster wire protocol (DESIGN.md §12).
//
// Every byte that crosses a router↔worker link is one *envelope*: the gp
// binary header ("GPWM" magic + version byte via BinaryWriter), a message
// type, a per-link sequence number, an FNV-1a-64 checksum and the
// length-prefixed type-specific payload. The checksum covers payload bytes
// *and* the type/seq header words, so a bit flip anywhere downstream of the
// magic is detected — a corrupt envelope decodes to a typed
// SerializationError (rejected-not-crashed), never to a silently wrong
// message. Payloads reuse the same hardened BinaryReader discipline with
// their own inner tags ("GPWF" frames, "GPWR" results, "GPWK" control), so
// feeding a frame payload to the results decoder is a typed error too.
//
// Error taxonomy at this layer:
//   SerializationError — these exact bytes are malformed; re-decoding them
//     can never help (the never-retry contract of faults::with_retries).
//   TransportError     — the *link* failed (peer gone, corrupt transmission,
//     short read). Retryable: a retransmission produces fresh bytes.
//   TimeoutError       — a deadline-bounded read ran out of budget.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "pointcloud/point.hpp"
#include "serve/config.hpp"

namespace gp::cluster {

/// A link-level failure (peer died, transmission corrupted, short read).
/// Deliberately distinct from SerializationError: the bytes on the wire are
/// transient, so the router's retry policy re-sends instead of giving up.
class TransportError : public Error {
 public:
  explicit TransportError(const std::string& what) : Error(what) {}
};

/// Message vocabulary. Requests flow router→worker, replies worker→router.
enum class MsgType : std::uint8_t {
  // requests
  kFrame = 0,    ///< WireFrame payload; reply kAck(admission verdict)
  kPump,         ///< empty payload; reply kResults
  kDrainAll,     ///< empty payload; reply kResults (end-of-stream flush)
  kCheckpoint,   ///< u64 session payload; reply kState (empty blob = unknown)
  kRestore,      ///< state payload; reply kAck(0)
  kHeartbeat,    ///< u64 nonce payload; reply kAck echoes it back
  kShutdown,     ///< empty payload; reply kAck(0), then the worker exits
  // replies
  kAck,          ///< u32 code payload (admission verdict / ok)
  kResults,      ///< WireResult vector payload
  kState,        ///< (session id, state blob) payload
  kCorrupt,      ///< text payload: the request failed its envelope decode
  kError,        ///< text payload: the handler threw (protocol-level fault)
};
const char* msg_type_name(MsgType type);

/// One decoded envelope.
struct Message {
  MsgType type = MsgType::kError;
  std::uint64_t seq = 0;  ///< per-link request sequence (replies echo it)
  std::string payload;
};

/// Encodes the envelope: GPWM header | type | seq | checksum | payload.
std::string encode_message(const Message& msg);
/// Decodes and validates an envelope (magic, version, known type, checksum,
/// hardened payload length). Throws SerializationError on any mismatch.
Message decode_message(const std::string& bytes);

// ------------------------------------------------------------ payloads

/// One radar frame addressed to a session (the kFrame payload).
struct WireFrame {
  std::uint64_t session_id = 0;
  FrameCloud frame;
};

std::string encode_wire_frame(std::uint64_t session_id, const FrameView& frame);
/// Hardened decode (inner tag "GPWF", validated point count). Throws
/// SerializationError on malformed input.
WireFrame decode_wire_frame(const std::string& payload);

/// kResults payload: a batch of classified segments (WireResult rows are
/// serve::ServeResult — the cluster answers with the exact serve vocabulary).
std::string encode_wire_results(const std::vector<serve::ServeResult>& results);
std::vector<serve::ServeResult> decode_wire_results(const std::string& payload);

/// Control payloads (inner tag "GPWK"): a bare code/nonce/session id, a
/// (session, blob) state pair, and free text for kCorrupt/kError.
std::string encode_ack(std::uint32_t code);
std::uint32_t decode_ack(const std::string& payload);
std::string encode_u64(std::uint64_t v);
std::uint64_t decode_u64(const std::string& payload);
std::string encode_state(std::uint64_t session_id, const std::string& blob);
std::pair<std::uint64_t, std::string> decode_state(const std::string& payload);
std::string encode_text(const std::string& text);
std::string decode_text(const std::string& payload);

}  // namespace gp::cluster
