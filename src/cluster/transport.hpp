// gp::cluster transport: framed, deadline-bounded messaging over a
// socketpair (DESIGN.md §12).
//
// Framing is [u32 little-endian length][envelope bytes]; the envelope's own
// magic/version/checksum (wire.hpp) authenticates the content. The framing
// length is capped, so a corrupt length prefix is a typed TransportError,
// never a multi-gigabyte read. Reads are poll(2)-bounded: recv_message
// either returns a complete frame, returns false on a clean EOF (peer
// closed at a message boundary — normal shutdown), or throws TimeoutError /
// TransportError. Writes use MSG_NOSIGNAL so a dead peer surfaces as a
// typed TransportError instead of SIGPIPE killing the router.
//
// Link chaos: when constructed with an armed LinkFaultConfig, each send may
// corrupt the outgoing envelope (bit flips / truncation) under a draw keyed
// by (seed, send counter). The framing length always matches what is sent —
// the model is "bytes damaged in flight", not "framing broken" — so the
// receiver always obtains *an* envelope and the checksum decides.
#pragma once

#include <cstdint>
#include <string>

#include "cluster/config.hpp"

namespace gp::cluster {

class Channel {
 public:
  Channel() = default;
  explicit Channel(int fd, LinkFaultConfig faults = {});
  ~Channel();
  Channel(Channel&& other) noexcept;
  Channel& operator=(Channel&& other) noexcept;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Sends one framed envelope (after the chaos draw). Throws
  /// TransportError on a dead peer or write failure.
  void send_message(const std::string& envelope);

  /// Receives one framed envelope into `out`. `deadline_ms` bounds the
  /// whole message (0 = block indefinitely — the worker side, where a
  /// vanished router manifests as EOF, not a hang). Returns false on clean
  /// EOF at a message boundary; throws TimeoutError past the deadline and
  /// TransportError on mid-message EOF or read errors.
  bool recv_message(std::string& out, std::uint64_t deadline_ms);

  void close() noexcept;
  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Envelopes sent so far (chaos draws consumed); diagnostics/tests.
  std::uint64_t sends() const { return send_count_; }

  /// Hard cap on a framed message (validated against the length prefix).
  static constexpr std::uint32_t kMaxMessageBytes = 64u << 20;

 private:
  void read_exact(char* dst, std::size_t n, std::uint64_t deadline_ms,
                  std::uint64_t start_ns, bool* clean_eof);

  int fd_ = -1;
  std::uint64_t send_count_ = 0;
  LinkFaultConfig faults_;
  std::string chaos_scratch_;  ///< recycled corrupted-copy buffer
};

}  // namespace gp::cluster
